"""Mirage Cores (MICRO 2017) reproduction.

A from-scratch Python implementation of the Mirage Cores
heterogeneous-CMP design: an out-of-order core memoizes dynamic issue
schedules into per-application Schedule Caches, and clusters of
in-order cores replay them (the DynaMOS-style "OinO" mode) at
near-OoO performance; runtime arbitrators (SC-MPKI, maxSTP, fair
variants) orchestrate the shared OoO.

Public API tour:

* :mod:`repro.workloads` — the synthetic SPEC 2006-like suite.
* :mod:`repro.cores` — cycle-level OoO / InO / OinO core models.
* :mod:`repro.schedule` — trace detection, schedule recording, SC.
* :mod:`repro.memory` — caches, bus, prefetcher, coherence.
* :mod:`repro.arbiter` — the five runtime arbitrators.
* :mod:`repro.cmp` — interval-level CMP simulation.
* :mod:`repro.energy` — McPAT-like energy/area models.
* :mod:`repro.engine` — the phase pipeline driving the interval tier.
* :mod:`repro.telemetry` — typed counters, trace records, sinks.
* :mod:`repro.experiments` — one driver per paper table/figure.
* :mod:`repro.api` — the stable flat facade over all of the above.
* :mod:`repro.config` — every cache switch as one ``CacheConfig``.
"""

from repro.arbiter import (
    FairArbitrator,
    MaxSTPArbitrator,
    SCMPKIArbitrator,
    SCMPKIFairArbitrator,
    SCMPKIMaxSTPArbitrator,
)
from repro.characterize import AppModel, PhaseProfile, analytic_model
from repro.cmp import ClusterConfig, PAPER_SCALE, SIM_SCALE, TimeScale
from repro.cmp.system import CMPResult, CMPSystem, run_homo
from repro.cores import InOrderCore, OinOCore, OutOfOrderCore
from repro.energy import CoreEnergyModel, cmp_area
from repro.memory import MemoryHierarchy
from repro.schedule import Schedule, ScheduleCache, ScheduleRecorder, Trace
from repro.telemetry import JSONLSink, MemorySink, Telemetry
from repro.workloads import (
    ALL_BENCHMARKS,
    HPD_BENCHMARKS,
    LPD_BENCHMARKS,
    WorkloadMix,
    make_benchmark,
    standard_mixes,
)

__version__ = "1.9.0"

__all__ = [
    "__version__",
    # workloads
    "ALL_BENCHMARKS", "HPD_BENCHMARKS", "LPD_BENCHMARKS",
    "make_benchmark", "standard_mixes", "WorkloadMix",
    # cores + memory
    "OutOfOrderCore", "InOrderCore", "OinOCore", "MemoryHierarchy",
    # schedule memoization
    "Trace", "Schedule", "ScheduleCache", "ScheduleRecorder",
    # arbitration
    "SCMPKIArbitrator", "MaxSTPArbitrator", "SCMPKIMaxSTPArbitrator",
    "FairArbitrator", "SCMPKIFairArbitrator",
    # CMP + characterization
    "ClusterConfig", "CMPSystem", "CMPResult", "run_homo",
    "TimeScale", "PAPER_SCALE", "SIM_SCALE",
    "AppModel", "PhaseProfile", "analytic_model",
    # energy
    "CoreEnergyModel", "cmp_area",
    # telemetry
    "Telemetry", "MemorySink", "JSONLSink",
]
