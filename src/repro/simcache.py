"""Slice memoization: a simulator-level Schedule Cache.

The Mirage hardware avoids re-deriving issue schedules for repeating
traces by memoizing them in the Schedule Cache; this module applies
the same trick one level up, to the *simulator itself*.  The detailed
tier spends its time re-simulating slices whose entry state it has
seen before — most prominently when a whole cluster run repeats inside
one process (benchmark harness warm-up then timed repeats, identity
gates running the same experiment twice, tests re-running a fixture).
:class:`SliceMemo` caches the full outcome of one
:meth:`~repro.cmp.detailed.DetailedBackend.advance` slice — cycle and
counter deltas, Schedule-Cache mutations, cache/TLB/predictor/BTB
residue — keyed on a complete snapshot of the entry state, so a hit
replays the deltas instead of re-running
``OinOCore.run``/``OutOfOrderCore.run`` instruction by instruction.
The backend keeps a logical-state snapshot cache on top, so a chain
of hits neither re-snapshots nor restores the big tables per slice —
replay cost is O(1) until live simulation resumes.

Correctness model
-----------------
The key is not a hash but the *entire entry state*, compared by
equality: the instruction window identity (benchmark fingerprint +
stream position + length), the core kind, and full state snapshots of
every structure the slice reads or writes (L1s, TLBs, the shared
L2/prefetcher/bus/directory, branch predictor and BTB tables, the
Schedule Cache including its entry-generation stamp, the recorder
tables, and the OinO core's launch/abort history).  Because the slice
is a deterministic function of exactly that state, an equal key
implies a bit-identical outcome; replay restores the recorded exit
snapshots and re-applies the recorded counter deltas.  There is no
collision risk to reason about — a key that matches *is* the same
simulation.  The price is that keys are conservative: any state drift
at all (one extra cache access anywhere) misses and re-simulates,
which is exactly the over-invalidation the design allows.

The memo is process-global (:meth:`SliceMemo.shared`) and bounded:
least-recently-used slices are dropped once ``capacity`` entries are
held, and an approximate byte estimate is reported through the
``simcache.bytes`` telemetry counter.

Toggling
--------
The layer defaults to **on** and is controlled three ways, strongest
first: an explicit ``sim_cache=`` argument to
:class:`~repro.cmp.detailed.DetailedBackend` /
:class:`~repro.cmp.detailed.DetailedMirageCluster`; the process-wide
:func:`set_enabled` switch (the CLI's ``--sim-cache/--no-sim-cache``);
and the ``MIRAGE_SIM_CACHE`` environment variable (``0``/``1``), which
:func:`set_enabled` also writes so worker processes spawned by the
sweep runner inherit the setting.
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass
from typing import Iterator, TYPE_CHECKING

if TYPE_CHECKING:
    from repro.isa.instructions import Instruction
    from repro.workloads.generator import SyntheticBenchmark

#: Environment variable carrying the process-wide default (``0``/``1``).
ENV_VAR = "MIRAGE_SIM_CACHE"

#: Default bound on memoized slices (LRU beyond this).
DEFAULT_CAPACITY = 64

_enabled: bool | None = None


def enabled() -> bool:
    """The process-wide default: on unless switched off.

    Resolution order: the last :func:`set_enabled` call, else the
    ``MIRAGE_SIM_CACHE`` environment variable, else on.
    """
    global _enabled
    if _enabled is None:
        _enabled = os.environ.get(ENV_VAR, "1") != "0"
    return _enabled


def set_enabled(flag: bool) -> None:
    """Flip the process-wide default and export it to child processes."""
    global _enabled
    _enabled = bool(flag)
    os.environ[ENV_VAR] = "1" if _enabled else "0"


# ----------------------------------------------------------------------
# Stream identity
# ----------------------------------------------------------------------
class StreamCursor:
    """A benchmark's instruction stream with a *logical* position.

    Streams are deterministic per benchmark identity (see
    :class:`~repro.workloads.generator.SyntheticBenchmark`), so the
    window ``[pos, pos + n)`` is fully identified by
    ``(fingerprint, pos, n)`` — the memo key never needs the
    instructions themselves.  A memoized slice advances the cursor
    without generating anything (:meth:`skip`); the underlying
    generator lazily catches up only when a miss actually needs the
    next window (:meth:`take`), so an all-hit run never pays
    generation cost at all.
    """

    __slots__ = ("fingerprint", "pos", "_iter", "_phys")

    def __init__(self, benchmark: "SyntheticBenchmark"):
        profile = benchmark.profile
        #: Everything that determines the stream's contents.
        self.fingerprint = (
            profile.name, benchmark.seed, benchmark.base_addr,
            benchmark.pass_length,
        )
        self.pos = 0
        self._iter: Iterator["Instruction"] = benchmark.stream()
        self._phys = 0

    def take(self, n: int) -> "list[Instruction]":
        """Materialize the next *n* instructions (a miss runs these)."""
        lag = self.pos - self._phys
        if lag:
            # Catch up past memoized windows; the discarded
            # instructions are exactly the ones replay skipped.
            next(itertools.islice(self._iter, lag - 1, lag), None)
        window = list(itertools.islice(self._iter, n))
        self._phys = self.pos = self.pos + len(window)
        return window

    def skip(self, n: int) -> None:
        """Advance past *n* memoized instructions without generating."""
        self.pos += n


# ----------------------------------------------------------------------
# The memo itself
# ----------------------------------------------------------------------
@dataclass(slots=True)
class SliceDelta:
    """Everything one recorded slice changed, ready to replay.

    ``exit_state`` holds the same structure snapshots the key captured
    at entry, taken after the slice ran; replaying writes them back
    with each structure's ``state_restore`` so the simulation continues
    bit-identically.  The scalars mirror the live bookkeeping in
    :meth:`~repro.cmp.detailed.DetailedBackend.advance`.
    """

    kind: str                 #: "ooo" | "oino"
    instructions: int         #: retired by the slice
    cycles: int               #: measured slice cycles
    ipc: float
    memo_frac: float          #: OinO: fraction replayed from the SC
    sc_mpki: float            #: the per-kind SC-MPKI reading produced
    counters: dict            #: prefixed CoreStats counter deltas
    exit_state: tuple         #: structure snapshots after the slice
    approx_bytes: int = 0     #: rough in-memory footprint estimate


@dataclass(slots=True)
class MemoStats:
    """Running totals for one :class:`SliceMemo`."""

    lookups: int = 0
    hits: int = 0
    stores: int = 0
    invalidations: int = 0    #: entries dropped to stay within capacity

    @property
    def misses(self) -> int:
        return self.lookups - self.hits

    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


def approx_state_bytes(obj) -> int:
    """Cheap recursive size estimate for snapshot tuples (bytes)."""
    if isinstance(obj, tuple):
        return 16 + sum(approx_state_bytes(item) for item in obj)
    if isinstance(obj, dict):
        return 32 + sum(
            approx_state_bytes(k) + approx_state_bytes(v)
            for k, v in obj.items())
    return 16


class _HashedKey:
    """An entry-state key with its hash computed exactly once.

    Keys are large nested snapshot tuples and tuples do not cache
    their hash, so every dict probe would otherwise re-traverse the
    whole state (and an LRU refresh probes up to three times).
    Equality still compares the full tuples — element comparisons
    shortcut on identity, so re-probing a key built from the same
    cached snapshot objects is near O(1).
    """

    __slots__ = ("key", "_hash")

    def __init__(self, key: tuple):
        self.key = key
        self._hash = hash(key)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other) -> bool:
        return self.key == other.key


class SliceMemo:
    """Bounded LRU map from entry-state keys to :class:`SliceDelta`.

    Keys are full state snapshots (nested tuples of immutables), so
    lookups compare by equality — a hit is a proof of identical entry
    state, not a probabilistic digest match.
    """

    _shared: "SliceMemo | None" = None

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.stats = MemoStats()
        self._entries: dict[_HashedKey, SliceDelta] = {}
        self._bytes = 0

    @classmethod
    def shared(cls) -> "SliceMemo":
        """The process-global memo every default-configured backend uses."""
        if cls._shared is None:
            cls._shared = cls()
        return cls._shared

    # ------------------------------------------------------------------
    def lookup(self, key: tuple) -> SliceDelta | None:
        """Fetch the recorded delta for *key*, refreshing its recency."""
        self.stats.lookups += 1
        wrapped = _HashedKey(key)
        delta = self._entries.pop(wrapped, None)
        if delta is None:
            return None
        self.stats.hits += 1
        self._entries[wrapped] = delta  # re-insert: LRU order is dict order
        return delta

    def store(self, key: tuple, delta: SliceDelta) -> None:
        """Record one executed slice, evicting LRU slices as needed."""
        wrapped = _HashedKey(key)
        old = self._entries.pop(wrapped, None)
        if old is not None:
            self._bytes -= old.approx_bytes
        delta.approx_bytes = (
            approx_state_bytes(key) + approx_state_bytes(delta.exit_state))
        while len(self._entries) >= self.capacity:
            victim = next(iter(self._entries))
            self._bytes -= self._entries.pop(victim).approx_bytes
            self.stats.invalidations += 1
        self._entries[wrapped] = delta
        self._bytes += delta.approx_bytes
        self.stats.stores += 1

    def clear(self) -> None:
        """Drop every memoized slice (counts as invalidations)."""
        self.stats.invalidations += len(self._entries)
        self._entries.clear()
        self._bytes = 0

    # ------------------------------------------------------------------
    @property
    def num_entries(self) -> int:
        return len(self._entries)

    @property
    def approx_bytes(self) -> int:
        """Rough total footprint of the stored keys and deltas."""
        return self._bytes


def resolve(sim_cache) -> SliceMemo | None:
    """Map a backend's ``sim_cache`` argument to the memo to use.

    ``None`` follows the process-wide default (:func:`enabled`),
    ``True``/``False`` force the shared memo on or off, and a
    :class:`SliceMemo` instance is used as-is (private memo).
    """
    if isinstance(sim_cache, SliceMemo):
        return sim_cache
    if sim_cache is None:
        sim_cache = enabled()
    return SliceMemo.shared() if sim_cache else None
