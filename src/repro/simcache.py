"""Slice memoization: a simulator-level Schedule Cache.

The Mirage hardware avoids re-deriving issue schedules for repeating
traces by memoizing them in the Schedule Cache; this module applies
the same trick one level up, to the *simulator itself*.  The detailed
tier spends its time re-simulating slices whose entry state it has
seen before — most prominently when a whole cluster run repeats inside
one process (benchmark harness warm-up then timed repeats, identity
gates running the same experiment twice, tests re-running a fixture).
:class:`SliceMemo` caches the full outcome of one
:meth:`~repro.cmp.detailed.DetailedBackend.advance` slice — cycle and
counter deltas, Schedule-Cache mutations, cache/TLB/predictor/BTB
residue — keyed on a complete snapshot of the entry state, so a hit
replays the deltas instead of re-running
``OinOCore.run``/``OutOfOrderCore.run`` instruction by instruction.
The backend keeps a logical-state snapshot cache on top, so a chain
of hits neither re-snapshots nor restores the big tables per slice —
replay cost is O(1) until live simulation resumes.

Correctness model
-----------------
The key is not a hash but the *entire entry state*, compared by
equality: the instruction window identity (benchmark fingerprint +
stream position + length), the core kind, and full state snapshots of
every structure the slice reads or writes (L1s, TLBs, the shared
L2/prefetcher/bus/directory, branch predictor and BTB tables, the
Schedule Cache including its entry-generation stamp, the recorder
tables, and the OinO core's launch/abort history).  Because the slice
is a deterministic function of exactly that state, an equal key
implies a bit-identical outcome; replay restores the recorded exit
snapshots and re-applies the recorded counter deltas.  There is no
collision risk to reason about — a key that matches *is* the same
simulation.  The price is that keys are conservative: any state drift
at all (one extra cache access anywhere) misses and re-simulates,
which is exactly the over-invalidation the design allows.

The memo is process-global (:meth:`SliceMemo.shared`) and bounded:
least-recently-used slices are dropped once ``capacity`` entries are
held, and an approximate byte estimate is reported through the
``simcache.bytes`` telemetry counter.

Toggling
--------
The layer defaults to **on** and is controlled three ways, strongest
first: an explicit ``sim_cache=`` argument to
:class:`~repro.cmp.detailed.DetailedBackend` /
:class:`~repro.cmp.detailed.DetailedMirageCluster`; the process-wide
:func:`set_enabled` switch (the CLI's ``--sim-cache/--no-sim-cache``);
and the ``MIRAGE_SIM_CACHE`` environment variable (``0``/``1``), which
:func:`set_enabled` also writes so worker processes spawned by the
sweep runner inherit the setting.

Disk persistence
----------------
:class:`SliceStore` extends the memo across *processes*: every stored
slice is also pickled under the shared result-cache directory, and an
in-memory miss consults the store before falling back to live
simulation — so a cold process replays slices an earlier run already
simulated.  Entries are digest-named but verified by **full key
equality** after load (same correctness model as the memo: a hit is a
proof, never a probabilistic match), tagged with a schema version, and
any unreadable/mismatching file is treated as a miss, never an error.
The layer defaults to **off** (``MIRAGE_SIM_CACHE_DISK`` / the CLI's
``--sim-cache-disk``, exported to workers by :func:`set_disk_enabled`):
memo keys are whole-state snapshots, so cross-process hits only happen
for runs that are deterministic replays of each other, which is worth
paying pickling costs for only when the caller knows that is the case
(identity gates, repeated benchmark harnesses, CI smoke steps).
"""

from __future__ import annotations

import hashlib
import itertools
import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, TYPE_CHECKING

if TYPE_CHECKING:
    from repro.isa.instructions import Instruction
    from repro.workloads.generator import SyntheticBenchmark

#: Environment variable carrying the process-wide default (``0``/``1``).
ENV_VAR = "MIRAGE_SIM_CACHE"

#: Environment variable toggling the on-disk slice store (``0``/``1``).
DISK_ENV_VAR = "MIRAGE_SIM_CACHE_DISK"

#: Schema tag pickled into every on-disk entry; bump when the entry
#: layout (or anything the deltas embed) changes shape.
STORE_SCHEMA = "mirage-slices/v1"

#: Default bound on memoized slices (LRU beyond this).
DEFAULT_CAPACITY = 64

_enabled: bool | None = None
_disk_enabled: bool | None = None


def enabled() -> bool:
    """The process-wide default: on unless switched off.

    Resolution order: the last :func:`set_enabled` call, else the
    ``MIRAGE_SIM_CACHE`` environment variable, else on.
    """
    global _enabled
    if _enabled is None:
        _enabled = os.environ.get(ENV_VAR, "1") != "0"
    return _enabled


def set_enabled(flag: bool) -> None:
    """Flip the process-wide default and export it to child processes."""
    global _enabled
    _enabled = bool(flag)
    os.environ[ENV_VAR] = "1" if _enabled else "0"


def disk_enabled() -> bool:
    """The process-wide disk-store default: **off** unless switched on.

    Resolution order: the last :func:`set_disk_enabled` call, else the
    ``MIRAGE_SIM_CACHE_DISK`` environment variable, else off.
    """
    global _disk_enabled
    if _disk_enabled is None:
        _disk_enabled = os.environ.get(DISK_ENV_VAR, "0") == "1"
    return _disk_enabled


def set_disk_enabled(flag: bool) -> None:
    """Flip the disk-store default and export it to child processes."""
    global _disk_enabled
    _disk_enabled = bool(flag)
    os.environ[DISK_ENV_VAR] = "1" if _disk_enabled else "0"


# ----------------------------------------------------------------------
# Stream identity
# ----------------------------------------------------------------------
class StreamCursor:
    """A benchmark's instruction stream with a *logical* position.

    Streams are deterministic per benchmark identity (see
    :class:`~repro.workloads.generator.SyntheticBenchmark`), so the
    window ``[pos, pos + n)`` is fully identified by
    ``(fingerprint, pos, n)`` — the memo key never needs the
    instructions themselves.  A memoized slice advances the cursor
    without generating anything (:meth:`skip`); the underlying
    generator lazily catches up only when a miss actually needs the
    next window (:meth:`take`), so an all-hit run never pays
    generation cost at all.
    """

    __slots__ = ("fingerprint", "pos", "_iter", "_phys")

    def __init__(self, benchmark: "SyntheticBenchmark"):
        profile = benchmark.profile
        #: Everything that determines the stream's contents.
        self.fingerprint = (
            profile.name, benchmark.seed, benchmark.base_addr,
            benchmark.pass_length,
        )
        self.pos = 0
        self._iter: Iterator["Instruction"] = benchmark.stream()
        self._phys = 0

    def take(self, n: int) -> "list[Instruction]":
        """Materialize the next *n* instructions (a miss runs these)."""
        lag = self.pos - self._phys
        if lag:
            # Catch up past memoized windows; the discarded
            # instructions are exactly the ones replay skipped.
            next(itertools.islice(self._iter, lag - 1, lag), None)
        window = list(itertools.islice(self._iter, n))
        self._phys = self.pos = self.pos + len(window)
        return window

    def skip(self, n: int) -> None:
        """Advance past *n* memoized instructions without generating."""
        self.pos += n


# ----------------------------------------------------------------------
# The memo itself
# ----------------------------------------------------------------------
@dataclass(slots=True)
class SliceDelta:
    """Everything one recorded slice changed, ready to replay.

    ``exit_state`` holds the same structure snapshots the key captured
    at entry, taken after the slice ran; replaying writes them back
    with each structure's ``state_restore`` so the simulation continues
    bit-identically.  The scalars mirror the live bookkeeping in
    :meth:`~repro.cmp.detailed.DetailedBackend.advance`.
    """

    kind: str                 #: "ooo" | "oino"
    instructions: int         #: retired by the slice
    cycles: int               #: measured slice cycles
    ipc: float
    memo_frac: float          #: OinO: fraction replayed from the SC
    sc_mpki: float            #: the per-kind SC-MPKI reading produced
    counters: dict            #: prefixed CoreStats counter deltas
    exit_state: tuple         #: structure snapshots after the slice
    approx_bytes: int = 0     #: rough in-memory footprint estimate


@dataclass(slots=True)
class MemoStats:
    """Running totals for one :class:`SliceMemo`."""

    lookups: int = 0
    hits: int = 0
    stores: int = 0
    invalidations: int = 0    #: entries dropped to stay within capacity
    disk_hits: int = 0        #: in-memory misses served by the store
    disk_stores: int = 0      #: entries persisted to the store

    @property
    def misses(self) -> int:
        return self.lookups - self.hits

    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


def approx_state_bytes(obj) -> int:
    """Cheap recursive size estimate for snapshot tuples (bytes)."""
    if isinstance(obj, tuple):
        return 16 + sum(approx_state_bytes(item) for item in obj)
    if isinstance(obj, dict):
        return 32 + sum(
            approx_state_bytes(k) + approx_state_bytes(v)
            for k, v in obj.items())
    return 16


class _HashedKey:
    """An entry-state key with its hash computed exactly once.

    Keys are large nested snapshot tuples and tuples do not cache
    their hash, so every dict probe would otherwise re-traverse the
    whole state (and an LRU refresh probes up to three times).
    Equality still compares the full tuples — element comparisons
    shortcut on identity, so re-probing a key built from the same
    cached snapshot objects is near O(1).
    """

    __slots__ = ("key", "_hash")

    def __init__(self, key: tuple):
        self.key = key
        self._hash = hash(key)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other) -> bool:
        return self.key == other.key


class SliceMemo:
    """Bounded LRU map from entry-state keys to :class:`SliceDelta`.

    Keys are full state snapshots (nested tuples of immutables), so
    lookups compare by equality — a hit is a proof of identical entry
    state, not a probabilistic digest match.

    With a :class:`SliceStore` attached (``disk=``, or via
    :func:`resolve` when the disk layer is enabled), in-memory misses
    consult the store and stores persist through it, extending the
    memo across processes without changing its correctness model.
    """

    _shared: "SliceMemo | None" = None

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 disk: "SliceStore | None" = None):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.disk = disk
        self.stats = MemoStats()
        self._entries: dict[_HashedKey, SliceDelta] = {}
        self._bytes = 0

    @classmethod
    def shared(cls) -> "SliceMemo":
        """The process-global memo every default-configured backend uses."""
        if cls._shared is None:
            cls._shared = cls()
        return cls._shared

    # ------------------------------------------------------------------
    def lookup(self, key: tuple) -> SliceDelta | None:
        """Fetch the recorded delta for *key*, refreshing its recency."""
        self.stats.lookups += 1
        wrapped = _HashedKey(key)
        delta = self._entries.pop(wrapped, None)
        if delta is None:
            disk = self.disk
            if disk is None:
                return None
            delta = disk.load(key)
            if delta is None:
                return None
            # Promote the disk hit into the in-memory tier (without
            # re-persisting it) so chained lookups stay O(1).
            self.stats.disk_hits += 1
            self._insert(wrapped, key, delta)
            self.stats.hits += 1
            return delta
        self.stats.hits += 1
        self._entries[wrapped] = delta  # re-insert: LRU order is dict order
        return delta

    def _insert(self, wrapped: _HashedKey, key: tuple,
                delta: SliceDelta) -> None:
        """Place *delta* in the in-memory tier, evicting LRU entries."""
        old = self._entries.pop(wrapped, None)
        if old is not None:
            self._bytes -= old.approx_bytes
        delta.approx_bytes = (
            approx_state_bytes(key) + approx_state_bytes(delta.exit_state))
        while len(self._entries) >= self.capacity:
            victim = next(iter(self._entries))
            self._bytes -= self._entries.pop(victim).approx_bytes
            self.stats.invalidations += 1
        self._entries[wrapped] = delta
        self._bytes += delta.approx_bytes

    def store(self, key: tuple, delta: SliceDelta) -> None:
        """Record one executed slice, evicting LRU slices as needed."""
        self._insert(_HashedKey(key), key, delta)
        self.stats.stores += 1
        disk = self.disk
        if disk is not None and disk.save(key, delta):
            self.stats.disk_stores += 1

    def clear(self) -> None:
        """Drop every memoized slice (counts as invalidations)."""
        self.stats.invalidations += len(self._entries)
        self._entries.clear()
        self._bytes = 0

    # ------------------------------------------------------------------
    @property
    def num_entries(self) -> int:
        """How many slices the memo currently holds."""
        return len(self._entries)

    @property
    def approx_bytes(self) -> int:
        """Rough total footprint of the stored keys and deltas."""
        return self._bytes


# ----------------------------------------------------------------------
# Disk persistence
# ----------------------------------------------------------------------
@dataclass(slots=True)
class StoreStats:
    """Running totals for one :class:`SliceStore`."""

    loads: int = 0
    hits: int = 0
    stores: int = 0
    rejected: int = 0    #: unreadable, mis-tagged, or key-mismatched files

    @property
    def misses(self) -> int:
        return self.loads - self.hits


class SliceStore:
    """Pickled :class:`SliceDelta` entries under the shared cache dir.

    Each entry is one file named by the SHA-256 of its pickled
    ``(STORE_SCHEMA, key)`` prefix; the file holds the full
    ``(STORE_SCHEMA, key, delta)`` triple, and :meth:`load` only
    returns the delta when the schema tag matches *and* the stored key
    compares equal to the requested one — a digest collision or a
    stale-format file degrades to a miss, never a wrong replay.
    Writes go through a temp file + ``os.replace`` so concurrent
    processes see either the old entry or the complete new one, and
    **every** I/O or unpickling failure is swallowed as a miss: a
    corrupt store can cost time, not correctness.
    """

    _shared: "SliceStore | None" = None

    def __init__(self, root: "Path | str | None" = None):
        if root is None:
            # Lazy import: repro.config imports nothing from here, so
            # the cycle risk is one-way.
            from repro.config import default_cache_dir
            root = default_cache_dir() / "slices"
        self.root = Path(root)
        self.stats = StoreStats()

    @classmethod
    def shared(cls) -> "SliceStore":
        """The process-global store :func:`resolve` attaches."""
        if cls._shared is None:
            cls._shared = cls()
        return cls._shared

    # ------------------------------------------------------------------
    def path_for(self, key: tuple) -> Path:
        """Where *key*'s entry lives (whether or not it exists)."""
        digest = hashlib.sha256(
            pickle.dumps((STORE_SCHEMA, key))).hexdigest()
        return self.root / f"{digest[:2]}" / f"{digest}.pkl"

    def load(self, key: tuple) -> SliceDelta | None:
        """The stored delta for *key*, or ``None`` (miss/corruption).

        Reads go through ``mmap``: the kernel pages the entry straight
        into the unpickler with no intermediate read buffer, which is
        the cheap path when many pool workers replay the same warm
        store.  Files ``mmap`` cannot handle (empty, or a filesystem
        without mapping support) fall back to a plain read — either
        way any failure is a miss.
        """
        self.stats.loads += 1
        path = self.path_for(key)
        try:
            with open(path, "rb") as fh:
                try:
                    import mmap

                    with mmap.mmap(fh.fileno(), 0,
                                   access=mmap.ACCESS_READ) as view:
                        schema, stored_key, delta = pickle.loads(view)
                except (ValueError, OSError):
                    fh.seek(0)
                    schema, stored_key, delta = pickle.load(fh)
        except FileNotFoundError:
            return None
        except Exception:
            self.stats.rejected += 1
            return None
        if schema != STORE_SCHEMA or stored_key != key:
            self.stats.rejected += 1
            return None
        if not isinstance(delta, SliceDelta):
            self.stats.rejected += 1
            return None
        self.stats.hits += 1
        return delta

    def save(self, key: tuple, delta: SliceDelta) -> bool:
        """Persist one slice atomically; ``True`` when it landed."""
        path = self.path_for(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=".tmp-", suffix=".pkl")
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump((STORE_SCHEMA, key, delta), fh)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except Exception:
            return False    # best effort: a full disk is not an error
        self.stats.stores += 1
        return True


def resolve(sim_cache) -> SliceMemo | None:
    """Map a backend's ``sim_cache`` argument to the memo to use.

    ``None`` follows the process-wide default (:func:`enabled`),
    ``True``/``False`` force the shared memo on or off, and a
    :class:`SliceMemo` instance is used as-is (private memo — its
    ``disk`` attachment is the caller's business).  When the disk
    layer is enabled (:func:`disk_enabled`) the *shared* memo gets the
    shared :class:`SliceStore` attached on resolution.
    """
    if isinstance(sim_cache, SliceMemo):
        return sim_cache
    if sim_cache is None:
        sim_cache = enabled()
    if not sim_cache:
        return None
    memo = SliceMemo.shared()
    if memo.disk is None and disk_enabled():
        memo.disk = SliceStore.shared()
    return memo
