"""CMP configuration: cluster shape and time scaling.

The paper's intervals (1 M cycles), sampling periods (50 M) and run
lengths (1 B instructions) are impractical for a pure-Python simulator,
so every time quantity scales through one :class:`TimeScale`.  All the
arbitration dynamics are ratios between these quantities, so scaling
them together preserves the trade-offs established in Figure 3b.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class TimeScale:
    """All time constants of the system, scaled consistently."""

    #: Arbitration/memoize-phase interval (paper: 1_000_000 cycles).
    interval_cycles: int
    #: Forced OoO sampling period for maxSTP (paper: 50 M cycles).
    sample_period_cycles: int
    #: Per-application instruction budget (paper: 1 B instructions).
    app_instruction_budget: int
    #: Pipeline drain + register state transfer on migration.
    drain_cycles: int
    #: L1 cache warm-up penalty after migration (paper: ~4 us ≈ 8000
    #: cycles at 2 GHz, dominating migration cost).
    l1_warmup_cycles: int
    #: Transfer of the 8 KB SC over the 32 B bus (paper: ~1000 cycles).
    sc_transfer_cycles: int

    def scaled(self, factor: float) -> "TimeScale":
        """Uniformly rescale every constant by *factor*."""
        return TimeScale(
            interval_cycles=max(1, int(self.interval_cycles * factor)),
            sample_period_cycles=max(
                1, int(self.sample_period_cycles * factor)),
            app_instruction_budget=max(
                1, int(self.app_instruction_budget * factor)),
            drain_cycles=max(1, int(self.drain_cycles * factor)),
            l1_warmup_cycles=max(1, int(self.l1_warmup_cycles * factor)),
            sc_transfer_cycles=max(1, int(self.sc_transfer_cycles * factor)),
        )


#: The paper's native time constants (2 GHz clock).
PAPER_SCALE = TimeScale(
    interval_cycles=1_000_000,
    sample_period_cycles=50_000_000,
    app_instruction_budget=1_000_000_000,
    drain_cycles=500,
    l1_warmup_cycles=8_000,
    sc_transfer_cycles=1_000,
)

#: Default simulation scale: 1/50 of the paper's constants.  The
#: migration-cost:interval and sampling:interval ratios are identical
#: to the paper's, so arbitration behaviour is preserved.
SIM_SCALE = PAPER_SCALE.scaled(1 / 50).scaled(1.0)


@dataclass(frozen=True, slots=True)
class ClusterConfig:
    """One Mirage cluster (or traditional Het-CMP cluster)."""

    n_consumers: int             #: InO/OinO cores (= apps per mix)
    n_producers: int = 1         #: OoO cores
    mirage: bool = True          #: consumers have the OinO mode + SC
    sc_capacity_bytes: int = 8 * 1024
    power_gate_idle_ooo: bool = True
    scale: TimeScale = SIM_SCALE
    #: Migration warm-up pricing: ``"l1-flush"`` (flat full-L1 re-warm)
    #: or ``"state-transfer"`` (SAHM-style, scales with moved state).
    #: See :data:`repro.cmp.migration.MIGRATION_COST_MODELS`.
    migration_cost_model: str = "l1-flush"

    def __post_init__(self) -> None:
        if self.n_consumers < 0 or self.n_producers < 0:
            raise ValueError("core counts must be non-negative")
        if self.n_consumers + self.n_producers == 0:
            raise ValueError("empty CMP")

    @property
    def name(self) -> str:
        """The cluster's display name, e.g. ``8:1-Mirage``."""
        kind = "Mirage" if self.mirage else "HetCMP"
        return f"{self.n_consumers}:{self.n_producers}-{kind}"
