"""Interval-driven chip-multiprocessor simulation.

One Mirage cluster is ``n`` consumer cores (OinO-capable InO, or plain
InO for traditional Het-CMP baselines) plus one producer OoO.  The
simulator advances all applications one arbitration interval at a time
(paper: 1 M cycles; scaled here — see :class:`~repro.cmp.config.TimeScale`),
resolving arbitration, migration costs over the shared bus, Schedule
Cache coverage evolution, per-interval progress and energy.
"""

from repro.cmp.config import (
    PAPER_SCALE,
    SIM_SCALE,
    ClusterConfig,
    TimeScale,
)
from repro.cmp.migration import (
    MIGRATION_COST_MODELS,
    MigrationCostModel,
    MigrationEvent,
    StateTransferMigrationModel,
    make_cost_model,
)
from repro.cmp.system import AppState, CMPResult, CMPSystem

__all__ = [
    "TimeScale",
    "PAPER_SCALE",
    "SIM_SCALE",
    "ClusterConfig",
    "MIGRATION_COST_MODELS",
    "MigrationCostModel",
    "MigrationEvent",
    "StateTransferMigrationModel",
    "make_cost_model",
    "CMPSystem",
    "CMPResult",
    "AppState",
]
