"""Cycle-level Mirage cluster (detailed-tier CMP).

The interval simulator in :mod:`repro.cmp.system` is the workhorse for
large sweeps; this module runs a *small* Mirage cluster entirely on
the detailed core models, with real Schedule Cache contents moving
between producer and consumers, shared-L2 contention, per-core branch
predictor state, and L1 flushes on migration.  It exists to validate
the interval tier's dynamics bottom-up (see
``tests/test_detailed_cmp.py``) and as a reference implementation of
the full mechanism.

Time is sliced by *instructions per slice* per application (an
approximation of the cycle-sliced hardware; fine for validation since
arbitration decisions depend on per-slice rates, not absolute time).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.arbiter.base import AppView, Arbitrator
from repro.cores import OinOCore, OutOfOrderCore
from repro.frontend import BranchTargetBuffer, TournamentPredictor
from repro.memory import MemoryHierarchy
from repro.schedule import ScheduleCache, ScheduleRecorder
from repro.workloads.generator import SyntheticBenchmark


@dataclass
class _DetailedApp:
    """One application's persistent state across slices."""

    name: str
    stream: object                 #: persistent instruction generator
    sc: ScheduleCache              #: travels with the app
    recorder: ScheduleRecorder
    consumer: OinOCore             #: its home core (warm bpred/L1)
    instructions: int = 0
    cycles: float = 0.0
    ooo_cycles: float = 0.0
    ooo_slices: int = 0
    on_ooo: bool = False
    ipc_last: float = 0.0
    ipc_ooo_last: float | None = None
    sc_mpki_ino: float = 0.0
    sc_mpki_ooo: float | None = None
    slices_since_ooo: int = 10**9
    migrations: int = 0


@dataclass
class DetailedResult:
    app_names: list[str]
    ipcs: list[float]
    ipc_ooo_alone: list[float]
    ooo_share: list[float]
    migrations: int
    sc_bytes_transferred: int

    @property
    def speedups(self) -> list[float]:
        return [
            ipc / alone if alone else 0.0
            for ipc, alone in zip(self.ipcs, self.ipc_ooo_alone)
        ]

    @property
    def stp(self) -> float:
        s = self.speedups
        return sum(s) / len(s) if s else 0.0


class DetailedMirageCluster:
    """n consumer OinO cores + 1 producer OoO, cycle-level."""

    def __init__(
        self,
        benchmarks: list[SyntheticBenchmark],
        arbitrator: Arbitrator,
        *,
        sc_capacity: int | None = 8 * 1024,
        slice_instructions: int = 8_000,
    ):
        self.arbitrator = arbitrator
        self.slice_instructions = slice_instructions
        self.hier = MemoryHierarchy()
        self.producer_mem = self.hier.core_view(len(benchmarks))
        # The producer's frontend state is physical: one predictor and
        # BTB shared by whichever application currently occupies it.
        self.producer_bpred = TournamentPredictor()
        self.producer_btb = BranchTargetBuffer()
        self.apps: list[_DetailedApp] = []
        for i, bench in enumerate(benchmarks):
            sc = ScheduleCache(sc_capacity)
            self.apps.append(_DetailedApp(
                name=bench.name,
                stream=bench.stream(),
                sc=sc,
                recorder=ScheduleRecorder(sc),
                consumer=OinOCore(self.hier.core_view(i), sc),
            ))
        self.sc_bytes_transferred = 0
        self.total_migrations = 0

    # ------------------------------------------------------------------
    def _views(self) -> list[AppView]:
        return [
            AppView(
                index=i, name=app.name, ipc_current=app.ipc_last,
                ipc_ooo_last=app.ipc_ooo_last,
                sc_mpki_ino=app.sc_mpki_ino,
                sc_mpki_ooo=app.sc_mpki_ooo,
                intervals_since_ooo=app.slices_since_ooo,
                util=(app.ooo_cycles / app.cycles) if app.cycles else 0.0,
                on_ooo=app.on_ooo,
            )
            for i, app in enumerate(self.apps)
        ]

    def run(self, *, n_slices: int = 20) -> DetailedResult:
        for k in range(n_slices):
            chosen = self.arbitrator.pick(
                self._views(), interval_index=k, slots=1)
            chosen_idx = chosen[0] if chosen else None
            for i, app in enumerate(self.apps):
                going_to_ooo = i == chosen_idx
                if going_to_ooo != app.on_ooo:
                    self._migrate(app, to_ooo=going_to_ooo)
                self._run_slice(app)
        # Reference: each benchmark alone on an OoO, same length.
        return DetailedResult(
            app_names=[a.name for a in self.apps],
            ipcs=[a.instructions / a.cycles if a.cycles else 0.0
                  for a in self.apps],
            ipc_ooo_alone=[self._alone_ipc(a) for a in self.apps],
            ooo_share=[a.ooo_cycles / a.cycles if a.cycles else 0.0
                       for a in self.apps],
            migrations=self.total_migrations,
            sc_bytes_transferred=self.sc_bytes_transferred,
        )

    # ------------------------------------------------------------------
    def _migrate(self, app: _DetailedApp, *, to_ooo: bool) -> None:
        app.on_ooo = to_ooo
        app.migrations += 1
        self.total_migrations += 1
        # SC contents cross the shared bus; L1s drain on the way out.
        payload = app.sc.used_bytes + 2048
        self.hier.bus.transfer(int(app.cycles), payload)
        self.sc_bytes_transferred += app.sc.used_bytes
        if to_ooo:
            app.consumer.memory.flush_for_migration()
        else:
            self.producer_mem.flush_for_migration()

    def _run_slice(self, app: _DetailedApp) -> None:
        n = self.slice_instructions
        window = itertools.islice(app.stream, n)
        if app.on_ooo:
            before_misses = app.sc.stats.misses
            core = OutOfOrderCore(
                self.producer_mem, recorder=app.recorder,
                predictor=self.producer_bpred, btb=self.producer_btb,
            )
            result = core.run(window, n)
            misses = app.sc.stats.misses - before_misses
            app.sc_mpki_ooo = 1000.0 * misses / max(1, result.instructions)
            app.ipc_ooo_last = result.ipc
            app.ooo_cycles += result.cycles
            app.ooo_slices += 1
            app.slices_since_ooo = 0
        else:
            result = app.consumer.run(window, n)
            app.sc_mpki_ino = result.stats.sc_mpki()
            app.slices_since_ooo += 1
        app.instructions += result.instructions
        app.cycles += result.cycles
        app.ipc_last = result.ipc

    def _alone_ipc(self, app: _DetailedApp) -> float:
        """IPC of this benchmark alone on a private OoO (reference)."""
        from repro.workloads.profiles import get_profile
        # Use the calibration target: measuring here would perturb the
        # shared hierarchy. Good enough for speedup normalization.
        return get_profile(app.name).target_ipc_ooo
