"""Cycle-level Mirage cluster (detailed-tier CMP).

The interval simulator in :mod:`repro.cmp.system` is the workhorse for
large sweeps; this module runs a *small* Mirage cluster entirely on
the detailed core models, with real Schedule Cache contents moving
between producer and consumers, shared-L2 contention, per-core branch
predictor state, and L1 flushes on migration.  It exists to validate
the interval tier's dynamics bottom-up (see
``tests/test_detailed_cmp.py``) and as a reference implementation of
the full mechanism.

Time is sliced by *instructions per slice* per application (an
approximation of the cycle-sliced hardware; fine for validation since
arbitration decisions depend on per-slice rates, not absolute time).

Both tiers emit the same :mod:`repro.telemetry` event schema —
interval records per slice, migration records with the
:class:`~repro.cmp.migration.MigrationCostModel` cost breakdown, and a
run record with the merged core/SC counters — so tier-validation can
diff them structurally.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from functools import lru_cache

from repro.arbiter.base import AppView, Arbitrator
from repro.cmp.config import ClusterConfig
from repro.cmp.migration import MigrationCostModel
from repro.cores import OinOCore, OutOfOrderCore
from repro.engine.views import build_app_view
from repro.frontend import BranchTargetBuffer, TournamentPredictor
from repro.memory import MemoryHierarchy
from repro.schedule import ScheduleCache, ScheduleRecorder
from repro.telemetry import IntervalRecord, MigrationRecord, RunRecord, Telemetry
from repro.workloads.generator import SyntheticBenchmark
from repro.workloads.profiles import get_profile


@lru_cache(maxsize=None)
def _alone_ooo_ipc(name: str) -> float:
    """IPC of this benchmark alone on a private OoO (reference).

    Uses the calibration target: measuring here would perturb the
    shared hierarchy.  Good enough for speedup normalization.
    Memoized — the profile table lookup is pure and per-name constant.
    """
    return get_profile(name).target_ipc_ooo


@dataclass
class _DetailedApp:
    """One application's persistent state across slices."""

    name: str
    stream: object                 #: persistent instruction generator
    sc: ScheduleCache              #: travels with the app
    recorder: ScheduleRecorder
    consumer: OinOCore             #: its home core (warm bpred/L1)
    instructions: int = 0
    cycles: float = 0.0
    ooo_cycles: float = 0.0
    ooo_slices: int = 0
    on_ooo: bool = False
    ipc_last: float = 0.0
    ipc_ooo_last: float | None = None
    sc_mpki_ino: float = 0.0
    sc_mpki_ooo: float | None = None
    slices_since_ooo: int = 10**9
    migrations: int = 0


@dataclass
class DetailedResult:
    app_names: list[str]
    ipcs: list[float]
    ipc_ooo_alone: list[float]
    ooo_share: list[float]
    migrations: int
    sc_bytes_transferred: int

    @property
    def speedups(self) -> list[float]:
        return [
            ipc / alone if alone else 0.0
            for ipc, alone in zip(self.ipcs, self.ipc_ooo_alone)
        ]

    @property
    def stp(self) -> float:
        s = self.speedups
        return sum(s) / len(s) if s else 0.0


class DetailedMirageCluster:
    """n consumer OinO cores + 1 producer OoO, cycle-level."""

    def __init__(
        self,
        benchmarks: list[SyntheticBenchmark],
        arbitrator: Arbitrator,
        *,
        sc_capacity: int | None = 8 * 1024,
        slice_instructions: int = 8_000,
        telemetry: Telemetry | None = None,
    ):
        self.arbitrator = arbitrator
        self.slice_instructions = slice_instructions
        self.telemetry = telemetry or Telemetry()
        self.hier = MemoryHierarchy()
        self.producer_mem = self.hier.core_view(len(benchmarks))
        # The producer's frontend state is physical: one predictor and
        # BTB shared by whichever application currently occupies it.
        self.producer_bpred = TournamentPredictor()
        self.producer_btb = BranchTargetBuffer()
        self.apps: list[_DetailedApp] = []
        for i, bench in enumerate(benchmarks):
            sc = ScheduleCache(sc_capacity)
            self.apps.append(_DetailedApp(
                name=bench.name,
                stream=bench.stream(),
                sc=sc,
                recorder=ScheduleRecorder(sc),
                consumer=OinOCore(self.hier.core_view(i), sc),
            ))
        # Cost accounting for migrations, on a private bus: the real
        # transfer stays on the cluster's shared bus below (so L1<->L2
        # contention is unchanged); this model prices each event with
        # the same breakdown the interval tier reports.
        self.migration = MigrationCostModel(ClusterConfig(
            n_consumers=len(benchmarks),
            n_producers=1,
            mirage=True,
            sc_capacity_bytes=sc_capacity or 8 * 1024,
        ))
        self.sc_bytes_transferred = 0
        self.total_migrations = 0

    # ------------------------------------------------------------------
    def _views(self) -> list[AppView]:
        return [
            build_app_view(
                index=i,
                name=app.name,
                ipc_last=app.ipc_last,
                ipc_ooo_last=app.ipc_ooo_last,
                sc_mpki_ino=app.sc_mpki_ino,
                sc_mpki_ooo=app.sc_mpki_ooo,
                intervals_since_ooo=app.slices_since_ooo,
                on_ooo=app.on_ooo,
                t_ooo=app.ooo_cycles,
                t_total=app.cycles,
            )
            for i, app in enumerate(self.apps)
        ]

    def run(self, *, n_slices: int = 20) -> DetailedResult:
        telemetry = self.telemetry
        for k in range(n_slices):
            chosen = self.arbitrator.pick(
                self._views(), interval_index=k, slots=1)
            chosen_idx = chosen[0] if chosen else None
            for i, app in enumerate(self.apps):
                going_to_ooo = i == chosen_idx
                if going_to_ooo != app.on_ooo:
                    self._migrate(app, to_ooo=going_to_ooo, slice_index=k)
                self._run_slice(app, k)
        # Fold each app's final SC stats into the shared counter set.
        for app in self.apps:
            telemetry.counters.merge(
                app.sc.stats.counters(prefix=f"sc.{app.name}."))
        if telemetry.wants("run"):
            telemetry.emit(RunRecord(
                config=f"{len(self.apps)}:1-Mirage-detailed",
                arbitrator=self.arbitrator.name,
                intervals=n_slices,
                total_cycles=sum(a.cycles for a in self.apps),
                counters=dict(telemetry.counters),
            ))
        # Reference: each benchmark alone on an OoO, same length.
        return DetailedResult(
            app_names=[a.name for a in self.apps],
            ipcs=[a.instructions / a.cycles if a.cycles else 0.0
                  for a in self.apps],
            ipc_ooo_alone=[_alone_ooo_ipc(a.name) for a in self.apps],
            ooo_share=[a.ooo_cycles / a.cycles if a.cycles else 0.0
                       for a in self.apps],
            migrations=self.total_migrations,
            sc_bytes_transferred=self.sc_bytes_transferred,
        )

    # ------------------------------------------------------------------
    def _migrate(self, app: _DetailedApp, *, to_ooo: bool,
                 slice_index: int) -> None:
        app.on_ooo = to_ooo
        app.migrations += 1
        self.total_migrations += 1
        # SC contents cross the shared bus; L1s drain on the way out.
        payload = app.sc.used_bytes + 2048
        self.hier.bus.transfer(int(app.cycles), payload)
        self.sc_bytes_transferred += app.sc.used_bytes
        if to_ooo:
            dirty, dropped = app.consumer.memory.flush_for_migration()
        else:
            dirty, dropped = self.producer_mem.flush_for_migration()
        event = self.migration.migrate(
            app.name, now_cycles=int(app.cycles),
            interval_index=slice_index, to_ooo=to_ooo,
            sc_bytes=app.sc.used_bytes,
        )
        telemetry = self.telemetry
        telemetry.counters.bump("migration.count")
        telemetry.counters.bump("migration.sc_bytes", app.sc.used_bytes)
        telemetry.counters.bump("migration.l1_flush_dirty", dirty)
        telemetry.counters.bump("migration.l1_flush_lines", dropped)
        if telemetry.wants("migration"):
            telemetry.emit(MigrationRecord(
                interval=slice_index,
                app=app.name,
                to_ooo=to_ooo,
                sc_bytes=app.sc.used_bytes,
                drain_cycles=event.drain_cycles,
                l1_warmup_cycles=event.l1_warmup_cycles,
                sc_transfer_cycles=event.sc_transfer_cycles,
                bus_contention_cycles=event.bus_contention_cycles,
                charged_cycles=float(event.total_cycles),
                l1_flush_dirty=dirty,
                l1_flush_lines=dropped,
            ))

    def _run_slice(self, app: _DetailedApp, slice_index: int) -> None:
        n = self.slice_instructions
        window = itertools.islice(app.stream, n)
        telemetry = self.telemetry
        if app.on_ooo:
            before_misses = app.sc.stats.misses
            core = OutOfOrderCore(
                self.producer_mem, recorder=app.recorder,
                predictor=self.producer_bpred, btb=self.producer_btb,
            )
            result = core.run(window, n)
            misses = app.sc.stats.misses - before_misses
            app.sc_mpki_ooo = 1000.0 * misses / max(1, result.instructions)
            app.ipc_ooo_last = result.ipc
            app.ooo_cycles += result.cycles
            app.ooo_slices += 1
            app.slices_since_ooo = 0
            telemetry.counters.merge(result.stats.counters(prefix="ooo."))
        else:
            result = app.consumer.run(window, n)
            app.sc_mpki_ino = result.stats.sc_mpki()
            app.slices_since_ooo += 1
            telemetry.counters.merge(result.stats.counters(prefix="ino."))
        app.instructions += result.instructions
        app.cycles += result.cycles
        app.ipc_last = result.ipc
        if telemetry.wants("interval"):
            telemetry.emit(IntervalRecord(
                interval=slice_index,
                app=app.name,
                on_ooo=app.on_ooo,
                ipc=result.ipc,
                speedup=min(1.0, result.ipc
                            / max(1e-9, _alone_ooo_ipc(app.name))),
                sc_mpki_ino=app.sc_mpki_ino,
                delta_sc_mpki=(
                    (app.sc_mpki_ino - (app.sc_mpki_ooo or 0.1))
                    / max(0.1, app.sc_mpki_ooo or 0.1)),
                phase_id=-1,
            ))
