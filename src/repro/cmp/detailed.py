"""Cycle-level Mirage cluster (detailed-tier CMP).

The interval simulator in :mod:`repro.cmp.system` is the workhorse for
large sweeps; this module runs a *small* Mirage cluster entirely on
the detailed core models, with real Schedule Cache contents moving
between producer and consumers, shared-L2 contention, per-core branch
predictor state, and L1 flushes on migration.  It exists to validate
the interval tier's dynamics bottom-up (see
``tests/test_detailed_cmp.py``) and as a reference implementation of
the full mechanism.

Both tiers are now *the same simulator* from the policy's point of
view: :class:`DetailedMirageCluster` is a thin shell that assembles
the standard :class:`~repro.engine.loop.IntervalEngine` pipeline —
arbitration, migration, execution, energy — with a
:class:`DetailedBackend` as the execution substrate.  The backend owns
everything physical (core models, shared L2, the producer's
predictor/BTB, Schedule Cache movement, L1-flush migration costs) and
mirrors its measured counters into the shared
:class:`~repro.engine.state.AppState` records, so arbitration views
(:func:`~repro.engine.views.interval_tier_views`), migration
accounting, and every telemetry record come from the same code paths
as the interval tier.  ``tier-validation`` is literally "same engine,
two backends".

Time is sliced by *instructions per slice* per application (an
approximation of the cycle-sliced hardware; fine for validation since
arbitration decisions depend on per-slice rates, not absolute time):
one engine interval is one slice.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from functools import lru_cache

from repro import simcache
from repro.arbiter.base import Arbitrator
from repro.cmp.config import ClusterConfig
from repro.cmp.migration import MigrationCostModel, make_cost_model
from repro.cores import LDT_PARAMS, CGOoOCore, OinOCore, OutOfOrderCore
from repro.energy.model import CoreEnergyModel
from repro.engine import (
    ArbitrationPhase,
    EnergyPhase,
    ExecutionBackend,
    ExecutionPhase,
    IntervalEngine,
    MigrationPhase,
    MigrationTicket,
    account_migration,
)
from repro.engine.phases import EngineContext
from repro.engine.state import AppState, ExecOutcome
from repro.frontend import BranchTargetBuffer, TournamentPredictor
from repro.memory import MemoryHierarchy
from repro.schedule import ScheduleCache, ScheduleRecorder
from repro.telemetry import Telemetry
from repro.workloads.generator import SyntheticBenchmark
from repro.workloads.profiles import get_profile


@lru_cache(maxsize=None)
def _alone_ooo_ipc(name: str) -> float:
    """IPC of this benchmark alone on a private OoO (reference).

    Uses the calibration target: measuring here would perturb the
    shared hierarchy.  Good enough for speedup normalization.
    Memoized — the profile table lookup is pure and per-name constant.
    """
    return get_profile(name).target_ipc_ooo


@dataclass(slots=True)
class DetailedAppState(AppState):
    """One application's state, extended with the physical substrate.

    The inherited :class:`~repro.engine.state.AppState` fields are the
    shared language the engine phases read (``t_total`` holds measured
    cycles, ``t_ooo`` producer-resident cycles, ``sc_mpki_*_last`` the
    per-slice Schedule-Cache miss rates); the extras below are the
    detailed tier's physical state that never crosses the backend seam.
    """

    stream: object = None          #: persistent instruction generator
    sc: ScheduleCache = None       #: travels with the app
    recorder: ScheduleRecorder = None
    consumer: OinOCore = None      #: its home core (warm bpred/L1)
    instructions: int = 0          #: instructions retired so far
    ooo_slices: int = 0            #: slices spent on the producer
    migrations: int = 0            #: producer<->consumer moves

    @property
    def name(self) -> str:
        """The benchmark's name (the model here is the benchmark)."""
        return self.model.name


@dataclass
class DetailedResult:
    """Outcome of one detailed-tier cluster run."""

    app_names: list[str]
    ipcs: list[float]
    ipc_ooo_alone: list[float]
    ooo_share: list[float]           #: fraction of cycles on the OoO
    migrations: int
    sc_bytes_transferred: int
    energy_pj: float = 0.0           #: shared EnergyPhase accounting

    @property
    def speedups(self) -> list[float]:
        """Per-app measured IPC over the alone-on-OoO reference."""
        return [
            ipc / alone if alone else 0.0
            for ipc, alone in zip(self.ipcs, self.ipc_ooo_alone)
        ]

    @property
    def stp(self) -> float:
        """Mean of the per-app speedups (system throughput)."""
        s = self.speedups
        return sum(s) / len(s) if s else 0.0


class DetailedBackend(ExecutionBackend):
    """The cycle-level execution substrate (paper section 5).

    Owns the physical cluster: per-consumer OinO cores over a shared
    :class:`~repro.memory.MemoryHierarchy`, one producer OoO whose
    predictor/BTB are shared by whichever application occupies it,
    real Schedule Cache contents crossing the bus on migration, and
    the L1 flushes that price a move.

    Migration is *deferred*: :meth:`migrate` only notes the decision,
    and the physical move happens when :meth:`advance` reaches that
    application — flushing the producer's L1 as the outgoing
    application is processed (possibly after the incoming one already
    ran a slice on the still-warm producer) is part of the measured
    hand-off cost, so the ordering is load-bearing.
    """

    name = "detailed"
    #: ExecOutcome/energy kind for consumer-side slices; subclasses
    #: that swap the consumer core model override it alongside
    #: :meth:`_make_consumer`.
    consumer_kind = "oino"
    #: Telemetry counter prefix for consumer-slice stats.
    consumer_counter_prefix = "ino."

    def __init__(
        self,
        benchmarks: list[SyntheticBenchmark],
        *,
        config: ClusterConfig,
        sc_capacity: int | None = 8 * 1024,
        slice_instructions: int = 8_000,
        sim_cache: "bool | simcache.SliceMemo | None" = None,
    ):
        self.config = config
        self.slice_instructions = slice_instructions
        self.sc_capacity = sc_capacity
        # Slice memoization (repro.simcache): None follows the
        # process-wide default, True/False force the shared memo on or
        # off, a SliceMemo instance is used privately.
        self.memo = simcache.resolve(sim_cache)
        self.hier = MemoryHierarchy()
        self.producer_mem = self.hier.core_view(len(benchmarks))
        # The producer's frontend state is physical: one predictor and
        # BTB shared by whichever application currently occupies it.
        self.producer_bpred = TournamentPredictor()
        self.producer_btb = BranchTargetBuffer()
        self.apps: list[DetailedAppState] = []
        for i, bench in enumerate(benchmarks):
            sc = ScheduleCache(sc_capacity)
            # With memoization on, the stream is held behind a cursor
            # so replayed slices can skip generation entirely; with it
            # off the raw generator keeps the historical byte-for-byte
            # execution path.
            stream = (simcache.StreamCursor(bench) if self.memo is not None
                      else bench.stream())
            self.apps.append(DetailedAppState(
                model=bench,
                stream=stream,
                sc=sc,
                recorder=ScheduleRecorder(sc),
                consumer=self._make_consumer(self.hier.core_view(i), sc),
            ))
        # Cost accounting for migrations, on a private bus: the real
        # transfer stays on the cluster's shared bus below (so L1<->L2
        # contention is unchanged); this model prices each event with
        # the same breakdown the interval tier reports.
        self.migration = make_cost_model(config)
        self.sc_bytes_transferred = 0
        self._pending: list[bool | None] = [None] * len(benchmarks)
        # Logical-state snapshot cache (memo on only).  Maps a slot —
        # "hier", a producer slot, or ("sc"|"core"|"rec", app index) —
        # to that structure's current *logical* snapshot.  Slots in
        # ``_lagging`` hold a materialized state that lags the cached
        # snapshot: a replayed slice parked its exit state here instead
        # of restoring it, and :meth:`_materialize` pays the restore
        # only when a live run, a migration, or :meth:`finalize`
        # actually needs the physical structures.  An all-hit run thus
        # never re-walks or rebuilds the big tables per slice.
        self._snap_cache: dict[object, tuple] = {}
        self._lagging: set[object] = set()

    def _make_consumer(self, memory, sc: ScheduleCache):
        """Build one consumer core; the subclass variation point.

        The returned core must expose the shared core-model contract:
        ``run(stream, n)``, ``state_snapshot``/``state_restore``, and
        :class:`~repro.cores.base.CoreStats` counters (including the
        SC hit/miss counts the arbitrator's SC-MPKI signal reads).
        """
        return OinOCore(memory, sc)

    # -- ExecutionBackend ----------------------------------------------
    def migrate(self, ctx: EngineContext, index: int, *,
                to_ooo: bool) -> None:
        """Note the decision; the move happens at this app's slice."""
        self._pending[index] = to_ooo
        return None

    def advance(self, ctx: EngineContext, index: int) -> ExecOutcome:
        """Apply any pending move, then run one slice of instructions.

        With slice memoization on, the slice's entry state is keyed
        against the :class:`~repro.simcache.SliceMemo` first: a hit
        replays the recorded deltas (:meth:`_replay_slice`) instead of
        re-running the core models, parking the exit snapshots in the
        logical-state cache so a chain of hits costs O(1) per slice.
        Migration itself is never memoized — it mutates the bus and
        telemetry in ways the next slice's key then observes.
        """
        app = ctx.apps[index]
        pending = self._pending[index]
        if pending is not None:
            self._pending[index] = None
            self._perform_migration(ctx, app, index, to_ooo=pending)
        memo = self.memo
        if memo is None:
            return self._run_slice(ctx, app, index, None)
        key = self._slice_key(app, index)
        counters = ctx.telemetry.counters
        counters.bump("simcache.lookups")
        delta = memo.lookup(key)
        if delta is not None:
            counters.bump("simcache.hits")
            counters.bump("simcache.replayed_instructions",
                          delta.instructions)
            return self._replay_slice(ctx, app, index, delta)
        counters.bump("simcache.misses")
        self._materialize(self._touched_slots(app, index))
        before_inval = memo.stats.invalidations
        outcome = self._run_slice(ctx, app, index, key)
        counters.bump("simcache.invalidations",
                      memo.stats.invalidations - before_inval)
        return outcome

    # -- logical-state snapshot cache ----------------------------------
    def _slot_target(self, slot):
        """The live structure a snapshot slot names."""
        if slot == "hier":
            return self.hier
        if slot == "pbpred":
            return self.producer_bpred
        if slot == "pbtb":
            return self.producer_btb
        if slot == "pmem":
            return self.producer_mem
        kind, index = slot
        app = self.apps[index]
        if kind == "sc":
            return app.sc
        if kind == "core":
            return app.consumer
        return app.recorder

    def _snap(self, slot) -> tuple:
        """This slot's current logical snapshot, cached when known.

        The cache is refreshed at every point the backend mutates a
        structure (live-run exit, migration), so a cached entry always
        equals what ``state_snapshot()`` would return — computing it
        live happens only the first time a slot is keyed per run.
        """
        snap = self._snap_cache.get(slot)
        if snap is None:
            snap = self._slot_target(slot).state_snapshot()
            self._snap_cache[slot] = snap
        return snap

    def _park(self, slot, snap: tuple) -> None:
        """Record a replayed exit snapshot without materializing it."""
        self._snap_cache[slot] = snap
        self._lagging.add(slot)

    def _materialize(self, slots) -> None:
        """Fold parked exit snapshots back into the live structures."""
        lagging = self._lagging
        for slot in slots:
            if slot in lagging:
                self._slot_target(slot).state_restore(
                    self._snap_cache[slot])
                lagging.discard(slot)

    def _touched_slots(self, app: DetailedAppState, index: int) -> tuple:
        """Every slot a live slice of *app* reads or mutates."""
        if app.on_ooo:
            return ("hier", ("sc", index), "pbpred", "pbtb", "pmem",
                    ("rec", index))
        return ("hier", ("sc", index), ("core", index))

    def _slice_key(self, app: DetailedAppState, index: int) -> tuple:
        """Complete entry-state key for this app's next slice.

        Every structure the slice can read or write contributes a full
        snapshot, plus the identity of the instruction window and the
        per-app scalars the outcome reads without updating.  Equal keys
        therefore imply bit-identical slices; any drift at all simply
        misses (conservative over-invalidation, never a wrong replay).
        The snapshots come from the logical-state cache (:meth:`_snap`)
        — the exit state of the previous slice on each structure — so
        a steady hit chain builds its keys without touching the tables.
        """
        cursor = app.stream
        if app.on_ooo:
            core_state = (
                self._snap("pbpred"), self._snap("pbtb"),
                self._snap("pmem"), self._snap(("rec", index)),
            )
        else:
            core_state = self._snap(("core", index))
        return (
            self.name, app.on_ooo, index, self.slice_instructions,
            self.sc_capacity,
            cursor.fingerprint, cursor.pos,
            app.sc_mpki_ino_last, app.sc_mpki_ooo_last,
            self._snap(("sc", index)), self._snap("hier"),
            core_state,
        )

    def _exit_state(self, app: DetailedAppState, index: int) -> tuple:
        """Post-slice snapshots, shaped exactly like the key's.

        Taken live right after a slice ran, and folded into the
        snapshot cache: the exit state of slice *k* is the entry state
        of slice *k+1* for every structure untouched in between.
        """
        cache = self._snap_cache
        sc_state = app.sc.state_snapshot()
        hier_state = self.hier.state_snapshot()
        cache[("sc", index)] = sc_state
        cache["hier"] = hier_state
        if app.on_ooo:
            core_state = (
                self.producer_bpred.state_snapshot(),
                self.producer_btb.state_snapshot(),
                self.producer_mem.state_snapshot(),
                app.recorder.state_snapshot(),
            )
            (cache["pbpred"], cache["pbtb"], cache["pmem"],
             cache[("rec", index)]) = core_state
        else:
            core_state = app.consumer.state_snapshot()
            cache[("core", index)] = core_state
        return (sc_state, hier_state, core_state)

    def _run_slice(self, ctx: EngineContext, app: DetailedAppState,
                   index: int, key: tuple | None) -> ExecOutcome:
        """Run one slice on the real core models (the memo-miss path)."""
        n = self.slice_instructions
        if key is None:
            # Memoization off: the stream is the raw generator and the
            # historical lazy-islice path runs unchanged.
            window = itertools.islice(app.stream, n)
        else:
            window = app.stream.take(n)
        telemetry = ctx.telemetry
        if app.on_ooo:
            before_misses = app.sc.stats.misses
            core = OutOfOrderCore(
                self.producer_mem, recorder=app.recorder,
                predictor=self.producer_bpred, btb=self.producer_btb,
            )
            result = core.run(window, n)
            misses = app.sc.stats.misses - before_misses
            app.sc_mpki_ooo_last = (
                1000.0 * misses / max(1, result.instructions))
            app.ipc_ooo_last = result.ipc
            app.t_ooo += result.cycles
            app.ooo_slices += 1
            app.intervals_since_ooo = 0
            counters = result.stats.counters(prefix="ooo.")
            kind = "ooo"
            memo_frac = 0.0
            sc_mpki = app.sc_mpki_ooo_last
        else:
            result = app.consumer.run(window, n)
            app.sc_mpki_ino_last = result.stats.sc_mpki()
            app.intervals_since_ooo += 1
            counters = result.stats.counters(
                prefix=self.consumer_counter_prefix)
            kind = self.consumer_kind
            memo_frac = result.stats.memoized_fraction
            sc_mpki = app.sc_mpki_ino_last
        telemetry.counters.merge(counters)
        app.instructions += result.instructions
        app.t_total += result.cycles
        app.ipc_last = result.ipc
        if key is not None:
            self.memo.store(key, simcache.SliceDelta(
                kind=kind, instructions=result.instructions,
                cycles=result.cycles, ipc=result.ipc,
                memo_frac=memo_frac, sc_mpki=sc_mpki,
                counters=counters,
                exit_state=self._exit_state(app, index),
            ))
        return ExecOutcome(
            kind=kind, ipc=result.ipc, memo_frac=memo_frac,
            effective=result.cycles, energy_cycles=result.cycles,
            alone_ipc=_alone_ooo_ipc(app.model.name),
            sc_mpki=app.sc_mpki_ino_last,
            sc_mpki_ref=app.sc_mpki_ooo_last,
        )

    def _replay_slice(self, ctx: EngineContext, app: DetailedAppState,
                      index: int,
                      delta: "simcache.SliceDelta") -> ExecOutcome:
        """Re-apply a memoized slice's deltas (the memo-hit path).

        Mirrors :meth:`_run_slice`'s bookkeeping field by field, then
        *parks* the recorded exit snapshots in the logical-state cache
        (:meth:`_park`) so the next slice keys against exactly the
        state the original run left behind — without paying a restore
        that a following hit would immediately overwrite.  The physical
        structures catch up in :meth:`_materialize` only when live
        simulation actually resumes.
        """
        sc_state, hier_state, core_state = delta.exit_state
        if delta.kind == "ooo":
            app.sc_mpki_ooo_last = delta.sc_mpki
            app.ipc_ooo_last = delta.ipc
            app.t_ooo += delta.cycles
            app.ooo_slices += 1
            app.intervals_since_ooo = 0
            bpred, btb, mem, recorder = core_state
            self._park("pbpred", bpred)
            self._park("pbtb", btb)
            self._park("pmem", mem)
            self._park(("rec", index), recorder)
        else:
            app.sc_mpki_ino_last = delta.sc_mpki
            app.intervals_since_ooo += 1
            self._park(("core", index), core_state)
        self._park(("sc", index), sc_state)
        self._park("hier", hier_state)
        ctx.telemetry.counters.merge(delta.counters)
        app.instructions += delta.instructions
        app.t_total += delta.cycles
        app.ipc_last = delta.ipc
        app.stream.skip(delta.instructions)
        return ExecOutcome(
            kind=delta.kind, ipc=delta.ipc, memo_frac=delta.memo_frac,
            effective=delta.cycles, energy_cycles=delta.cycles,
            alone_ipc=_alone_ooo_ipc(app.model.name),
            sc_mpki=app.sc_mpki_ino_last,
            sc_mpki_ref=app.sc_mpki_ooo_last,
        )

    def finalize(self, ctx: EngineContext) -> None:
        """Fold each app's final SC stats into the shared counters."""
        if self.memo is not None:
            # Settle every parked exit snapshot into the live
            # structures (callers read SC stats, L1/L2 contents, and
            # predictor state after a run), then drop the cache: code
            # outside the engine loop may mutate state between runs,
            # which the cache cannot observe.
            self._materialize(tuple(self._lagging))
            self._snap_cache.clear()
        for app in ctx.apps:
            ctx.telemetry.counters.merge(
                app.sc.stats.counters(prefix=f"sc.{app.model.name}."))
        if self.memo is not None:
            # Gauges, not deltas: the memo may be process-global, so
            # its footprint is reported by assignment.
            counters = ctx.telemetry.counters
            counters["simcache.entries"] = self.memo.num_entries
            counters["simcache.bytes"] = self.memo.approx_bytes
            if self.memo.disk is not None:
                counters["simcache.disk_hits"] = self.memo.stats.disk_hits
                counters["simcache.disk_stores"] = (
                    self.memo.stats.disk_stores)

    # -- the physical move ---------------------------------------------
    def _perform_migration(self, ctx: EngineContext,
                           app: DetailedAppState, index: int, *,
                           to_ooo: bool) -> None:
        if self.memo is not None:
            # The move reads and mutates live state (SC occupancy, the
            # bus, an L1 flush): settle the parked snapshots it can
            # touch first.
            self._materialize(("hier", ("sc", index), ("core", index),
                               "pmem"))
        app.on_ooo = to_ooo
        app.migrations += 1
        # SC contents cross the shared bus; L1s drain on the way out.
        payload = app.sc.used_bytes + 2048
        self.hier.bus.transfer(int(app.t_total), payload)
        self.sc_bytes_transferred += app.sc.used_bytes
        if to_ooo:
            dirty, dropped = app.consumer.memory.flush_for_migration()
        else:
            dirty, dropped = self.producer_mem.flush_for_migration()
        event = self.migration.migrate(
            app.model.name, now_cycles=int(app.t_total),
            interval_index=ctx.index, to_ooo=to_ooo,
            sc_bytes=app.sc.used_bytes,
        )
        account_migration(ctx, app.model.name, MigrationTicket(
            to_ooo=to_ooo,
            sc_bytes=app.sc.used_bytes,
            event=event,
            charged=float(event.total_cycles),
            l1_flush_dirty=dirty,
            l1_flush_lines=dropped,
            counters={"migration.l1_flush_dirty": dirty,
                      "migration.l1_flush_lines": dropped},
        ))
        if self.memo is not None:
            # The bus transfer, directory flush and L1 drain just
            # changed live state behind the snapshot cache's back.
            self._snap_cache.pop("hier", None)
            self._snap_cache.pop(
                ("core", index) if to_ooo else "pmem", None)


class CGOoOBackend(DetailedBackend):
    """Cycle-level substrate with CG-OoO consumer cores.

    Identical cluster physics to :class:`DetailedBackend` — shared
    hierarchy, one producer OoO, SC contents crossing the bus on
    migration — but each consumer is a
    :class:`~repro.cores.cgooo.CGOoOCore`: block-granularity
    scheduling windows instead of the OinO replay mode.  The SC serves
    as the block-schedule memo, so the arbitrator's SC-MPKI signal
    stays live, and consumer slices are billed at the coarser-grain
    ``"cgooo"`` energy accounting.
    """

    name = "cgooo"
    consumer_kind = "cgooo"
    consumer_counter_prefix = "cgooo."

    def _make_consumer(self, memory, sc: ScheduleCache):
        """A block-level CG-OoO core over the shared substrate."""
        return CGOoOCore(memory, sc)


class LoadDelayBackend(DetailedBackend):
    """Cycle-level substrate with load-delay-tracking consumers.

    The consumers are still OinO cores (same SC replay mode, same
    ``"oino"`` energy accounting) but run the ``issue_policy="ldt"``
    pipeline: load-dependents park in a small delay queue instead of
    head-of-line-blocking the in-order issue stage.
    """

    name = "ldt"
    consumer_counter_prefix = "ldt."

    def _make_consumer(self, memory, sc: ScheduleCache):
        """An OinO core with the load-delay-tracking issue policy."""
        return OinOCore(memory, sc, params=LDT_PARAMS)


#: Cycle-tier backend classes selectable by name (the detailed half of
#: the :mod:`repro.engine.registry` roster).
CYCLE_BACKENDS: dict[str, type[DetailedBackend]] = {
    "detailed": DetailedBackend,
    "cgooo": CGOoOBackend,
    "ldt": LoadDelayBackend,
}


class DetailedMirageCluster:
    """n consumer OinO cores + 1 producer OoO, cycle-level.

    A thin shell over :class:`~repro.engine.loop.IntervalEngine` with
    the :class:`DetailedBackend` substrate — the same four phases, the
    same arbitration views, and the same telemetry paths as the
    interval tier's :class:`~repro.cmp.system.CMPSystem`.  ``backend``
    selects the consumer core model by registry name
    (:data:`CYCLE_BACKENDS`: ``"detailed"``, ``"cgooo"``, ``"ldt"``).
    """

    def __init__(
        self,
        benchmarks: list[SyntheticBenchmark],
        arbitrator: Arbitrator,
        *,
        sc_capacity: int | None = 8 * 1024,
        slice_instructions: int = 8_000,
        energy_model: CoreEnergyModel | None = None,
        telemetry: Telemetry | None = None,
        sim_cache: "bool | simcache.SliceMemo | None" = None,
        backend: str = "detailed",
        migration_cost_model: str = "l1-flush",
    ):
        backend_cls = CYCLE_BACKENDS.get(backend)
        if backend_cls is None:
            known = ", ".join(sorted(CYCLE_BACKENDS))
            raise ValueError(
                f"unknown cycle backend {backend!r} — one of: {known}")
        self.arbitrator = arbitrator
        self.telemetry = telemetry or Telemetry()
        self.energy_model = energy_model or CoreEnergyModel()
        config = ClusterConfig(
            n_consumers=len(benchmarks),
            n_producers=1,
            mirage=True,
            sc_capacity_bytes=sc_capacity or 8 * 1024,
            migration_cost_model=migration_cost_model,
        )
        self.backend = backend_cls(
            benchmarks, config=config, sc_capacity=sc_capacity,
            slice_instructions=slice_instructions, sim_cache=sim_cache)
        self.apps = self.backend.apps
        self.phases = [
            ArbitrationPhase(arbitrator),
            MigrationPhase(),
            ExecutionPhase(),
            EnergyPhase(self.energy_model),
        ]
        self.engine = IntervalEngine(
            config, self.apps, self.phases, backend=self.backend,
            telemetry=self.telemetry)

    # -- substrate views (tests and callers poke these) ----------------
    @property
    def hier(self) -> MemoryHierarchy:
        """The shared memory hierarchy (owned by the backend)."""
        return self.backend.hier

    @property
    def migration(self) -> MigrationCostModel:
        """The migration cost model (owned by the backend)."""
        return self.backend.migration

    @property
    def sc_bytes_transferred(self) -> int:
        """Total Schedule-Cache bytes shipped across the bus."""
        return self.backend.sc_bytes_transferred

    @property
    def total_migrations(self) -> int:
        """Total producer<->consumer moves performed."""
        return self.migration.total_migrations

    # ------------------------------------------------------------------
    def run(self, *, n_slices: int = 20) -> DetailedResult:
        """Drive the engine for *n_slices* intervals (one slice each)."""
        ctx = self.engine.run(max_intervals=n_slices)
        self.telemetry.summarize_run(
            config=f"{len(self.apps)}:1-Mirage-detailed",
            arbitrator=self.arbitrator.name,
            intervals=ctx.intervals,
            total_cycles=sum(a.t_total for a in self.apps),
        )
        # Reference: each benchmark alone on an OoO, same length.
        return DetailedResult(
            app_names=[a.model.name for a in self.apps],
            ipcs=[a.instructions / a.t_total if a.t_total else 0.0
                  for a in self.apps],
            ipc_ooo_alone=[_alone_ooo_ipc(a.model.name)
                           for a in self.apps],
            ooo_share=[a.t_ooo / a.t_total if a.t_total else 0.0
                       for a in self.apps],
            migrations=self.total_migrations,
            sc_bytes_transferred=self.sc_bytes_transferred,
            energy_pj=sum(a.energy_pj for a in self.apps),
        )
