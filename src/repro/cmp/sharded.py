"""Process-sharded detailed-tier cluster runs.

One :class:`~repro.cmp.detailed.DetailedMirageCluster` is a sealed
world: it owns its memory hierarchy, bus, cores and telemetry, and the
deferred-:class:`~repro.engine.backends.MigrationTicket` design keeps
even migration accounting inside the cluster.  A sweep that needs
several *independent* clusters (tier gates, multi-mix studies, bench
probes) is therefore embarrassingly parallel — but the detailed tier
is the slowest thing in the repo, so running those clusters serially
dominates wall-clock.

:class:`ShardedDetailedBackend` fans a list of :class:`ClusterSpec`
descriptions over a process pool and merges the outcomes back in
**spec order**, so the combined result is deterministic regardless of
worker scheduling.  Each spec runs through the module-level
:func:`run_cluster_spec` (picklable by construction) with a *private*
slice memo, which makes the serial fallback bit-identical to the
sharded run: no cross-spec memo coupling can leak between clusters in
either mode.  With the disk slice store enabled
(:func:`repro.simcache.disk_enabled`), workers still share warm slices
across *runs* through the store — the cross-process design the memo's
correctness model already covers.

Routing is opt-in via the ``MIRAGE_DETAILED_SHARD`` environment
variable (unset/``0`` = serial in-process, ``1`` = pool with one
worker per CPU, ``N`` = pool of *N*); experiments that hold a list of
independent detailed runs (e.g. the tier-validation gate) consult
:func:`shard_jobs` and reroute through this module when it is set.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.cmp.detailed import DetailedResult

#: Environment toggle: unset/"0" serial, "1" one worker per CPU,
#: any other integer a pool of that many workers.
ENV_VAR = "MIRAGE_DETAILED_SHARD"


def fan_out(fn, items, jobs: int | None) -> list:
    """Map *fn* over *items* through a process pool, in input order.

    The one pool idiom every sharded runner in the repo shares
    (:class:`ShardedDetailedBackend` here, the multi-cluster scenario
    runs in :mod:`repro.cluster`): ``jobs=None``/``<=1`` or a single
    item runs serially in-process; otherwise the fan-out goes through
    the process-global :class:`~repro.runner.pool.WarmPool` —
    persistent workers shared with the sweep runner, so back-to-back
    fan-outs pay no respawn — falling back to a per-call
    :class:`~concurrent.futures.ProcessPoolExecutor` when the warm
    pool is disabled (``MIRAGE_WARM_POOL=0``) or cannot run here.
    Pool failures that predate any result (sandboxes that forbid
    ``fork`` or semaphores) degrade to the serial path.  *fn* must be
    module-level and *items* picklable; when each call is a pure
    function of its item, serial and pooled runs are bit-identical.
    """
    items = list(items)
    if jobs is None or jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    from repro.runner.pool import (
        PoolUnavailable,
        WarmPool,
        warm_pool_enabled,
    )

    if warm_pool_enabled():
        try:
            # WarmPool.map preserves input order too; task errors
            # propagate (PoolTaskError), only *pool* unavailability
            # degrades.
            return WarmPool.shared(jobs).map(fn, items)
        except PoolUnavailable:
            pass
    try:
        with ProcessPoolExecutor(
                max_workers=min(jobs, len(items))) as pool:
            # pool.map preserves input order: downstream merges are
            # deterministic no matter which worker finishes first.
            return list(pool.map(fn, items))
    except (OSError, PermissionError):
        return [fn(item) for item in items]


def shard_jobs() -> int | None:
    """The worker count ``MIRAGE_DETAILED_SHARD`` asks for, or ``None``.

    ``None`` means "do not shard" (the variable is unset, ``0``, or
    unparseable); ``1`` still means "route through the pool machinery"
    — useful for exercising the sharded path deterministically.
    """
    raw = os.environ.get(ENV_VAR, "").strip()
    if not raw or raw == "0":
        return None
    try:
        jobs = int(raw)
    except ValueError:
        return None
    if jobs < 1:
        return None
    if raw == "1":
        return max(1, os.cpu_count() or 1)
    return jobs


@dataclass(frozen=True, slots=True)
class ClusterSpec:
    """Everything needed to rebuild one detailed cluster in a worker.

    Benchmarks travel as ``(name, seed, base_addr)`` triples and the
    arbitrator by registry name
    (:data:`repro.runner.units.ARBITRATORS`), so a spec is small,
    hashable and picklable; the worker re-derives the actual objects.
    """

    benchmarks: tuple                  #: of (name, seed, base_addr)
    arbitrator: str = "SC-MPKI"
    sc_capacity: int = 8 * 1024
    slice_instructions: int = 8_000
    n_slices: int = 16
    #: Telemetry event kinds to capture and ship back (e.g.
    #: ``("migration",)``); empty captures nothing.
    record_kinds: tuple = ()


@dataclass(slots=True)
class ShardOutcome:
    """What one :class:`ClusterSpec` run sends back from its worker."""

    result: "DetailedResult"
    counters: dict          #: the cluster's full telemetry counters
    records: list           #: captured events, in emission order


def run_cluster_spec(spec: ClusterSpec) -> ShardOutcome:
    """Build, run and summarize one cluster — in any process.

    Module-level and argument-picklable so a
    :class:`~concurrent.futures.ProcessPoolExecutor` can ship it; the
    slice memo is private to the call (plus the shared disk store when
    that layer is on), so outcomes do not depend on what else ran in
    the same process — serial and sharded execution are bit-identical.
    """
    from repro import simcache
    from repro.cmp.detailed import DetailedMirageCluster
    from repro.runner.units import ARBITRATORS
    from repro.telemetry import MemorySink, Telemetry
    from repro.workloads import make_benchmark

    benches = [
        make_benchmark(name, seed=seed, base_addr=base_addr)
        for name, seed, base_addr in spec.benchmarks
    ]
    telemetry = Telemetry()
    sink = None
    if spec.record_kinds:
        sink = telemetry.attach(MemorySink(kinds=set(spec.record_kinds)))
    if simcache.enabled():
        disk = (simcache.SliceStore.shared()
                if simcache.disk_enabled() else None)
        memo = simcache.SliceMemo(disk=disk)
    else:
        memo = False
    cluster = DetailedMirageCluster(
        benches, ARBITRATORS[spec.arbitrator](),
        sc_capacity=spec.sc_capacity,
        slice_instructions=spec.slice_instructions,
        telemetry=telemetry,
        sim_cache=memo,
    )
    result = cluster.run(n_slices=spec.n_slices)
    return ShardOutcome(
        result=result,
        counters=dict(telemetry.counters),
        records=list(sink.events) if sink is not None else [],
    )


def merge_counters(outcomes: "list[ShardOutcome]") -> dict:
    """Sum every shard's counters, in spec order (deterministic)."""
    merged: dict = {}
    for outcome in outcomes:
        for name, value in outcome.counters.items():
            merged[name] = merged.get(name, 0) + value
    return merged


class ShardedDetailedBackend:
    """Runs independent cluster specs over a worker pool.

    ``jobs=None`` follows :func:`shard_jobs` (and runs serially when
    that is ``None``); any explicit count forces a pool of that size.
    Worker-pool failures that predate any result (sandboxes that
    forbid ``fork``/semaphores) degrade to the serial path, which
    produces bit-identical outcomes by construction.
    """

    def __init__(self, specs: "list[ClusterSpec] | tuple", *,
                 jobs: int | None = None):
        self.specs = list(specs)
        self.jobs = jobs

    def _serial(self) -> "list[ShardOutcome]":
        return [run_cluster_spec(spec) for spec in self.specs]

    def run(self) -> "list[ShardOutcome]":
        """Every spec's outcome, in spec order."""
        jobs = self.jobs if self.jobs is not None else shard_jobs()
        return fan_out(run_cluster_spec, self.specs, jobs)
