"""Multithreaded Mirage (paper section 6, discussion).

If the threads of a parallel program perform homogeneous work, the
producer OoO can memoize *one* thread's repeatable phases and
broadcast the schedules to every InO in the cluster — one memoization
attempt speeds up all threads.  The paper discusses this qualitatively;
this module models it on the interval tier:

* all threads execute the same :class:`~repro.characterize.AppModel`
  (with per-thread progress skew);
* when the thread on the producer refreshes its Schedule Cache, the
  contents are broadcast over the shared bus to every sibling whose
  execution is in the same phase.

Comparing ``broadcast=True`` against per-thread memoization shows the
claimed effect: near-equal throughput at a fraction of the OoO time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arbiter.base import Arbitrator
from repro.arbiter.sc_mpki import SCMPKIArbitrator
from repro.characterize.phase_model import AppModel
from repro.cmp.config import ClusterConfig
from repro.cmp.migration import MigrationCostModel
from repro.energy.model import CoreEnergyModel
from repro.engine import (
    EngineContext,
    EnergyPhase,
    ExecutionPhase,
    interval_tier_views,
)
from repro.engine.state import AppState
from repro.telemetry import Telemetry


@dataclass
class ThreadedResult:
    """Outcome of a multithreaded Mirage run."""

    n_threads: int
    broadcast: bool
    intervals: int
    thread_speedups: list[float]
    ooo_active_fraction: float
    memoize_phases: int          #: intervals spent producing schedules
    energy_pj: float

    @property
    def stp(self) -> float:
        if not self.thread_speedups:
            return 0.0
        return sum(self.thread_speedups) / len(self.thread_speedups)


class MultithreadedMirage:
    """n homogeneous threads on one Mirage cluster."""

    def __init__(
        self,
        config: ClusterConfig,
        model: AppModel,
        *,
        arbitrator: Arbitrator | None = None,
        broadcast: bool = True,
        skew_instructions: int = 50_000,
        energy_model: CoreEnergyModel | None = None,
        telemetry: Telemetry | None = None,
    ):
        if not config.mirage:
            raise ValueError("multithreaded sharing needs OinO consumers")
        self.config = config
        self.model = model
        self.arbitrator = arbitrator or SCMPKIArbitrator()
        self.broadcast = broadcast
        self.energy_model = energy_model or CoreEnergyModel()
        self.migration = MigrationCostModel(config)
        self.telemetry = telemetry or Telemetry()
        self.threads = [
            AppState(model=model, instr_done=float(i * skew_instructions))
            for i in range(config.n_consumers)
        ]

    def run(self, *, max_intervals: int = 50_000) -> ThreadedResult:
        cfg = self.config
        ooo_active = 0
        memoize_phases = 0
        k = 0
        # Threads behave exactly like independent applications of the
        # same model between broadcasts, so execution and energy reuse
        # the standard engine phases; arbitration and migration stay
        # local because the broadcast step needs the chosen index.
        execution = ExecutionPhase()
        energy = EnergyPhase(self.energy_model)
        n_threads = len(self.threads)
        ctx = EngineContext(
            config=cfg,
            apps=self.threads,
            telemetry=self.telemetry,
            interval=cfg.scale.interval_cycles,
            budget=cfg.scale.app_instruction_budget,
            ooo_share=[0] * n_threads,
        )
        interval = ctx.interval

        while k < max_intervals:
            if all(t.completions >= 1 for t in self.threads):
                break
            chosen = self.arbitrator.pick(
                interval_tier_views(self.threads),
                interval_index=k, slots=cfg.n_producers,
            )[: cfg.n_producers]
            now = k * interval
            ctx.index = k
            ctx.now = now
            ctx.chosen = chosen
            ctx.mig_cost = [0.0] * n_threads
            ctx.outcomes = [None] * n_threads
            for i, thread in enumerate(self.threads):
                should = i in chosen
                if should != thread.on_ooo:
                    sc_bytes = int(
                        thread.sc_coverage * cfg.sc_capacity_bytes)
                    event = self.migration.migrate(
                        f"t{i}", now_cycles=now, interval_index=k,
                        to_ooo=should, sc_bytes=sc_bytes,
                    )
                    ctx.mig_cost[i] = min(
                        interval * 0.9, event.total_cycles)
                    thread.on_ooo = should
            if chosen:
                ooo_active += 1
                memoize_phases += 1
            execution.run(ctx)
            energy.run(ctx)
            # Broadcast: the freshly produced schedules reach every
            # sibling in the same phase, over the shared bus.
            if self.broadcast and chosen:
                producer = self.threads[chosen[0]]
                payload = int(
                    producer.sc_coverage * cfg.sc_capacity_bytes)
                for i, thread in enumerate(self.threads):
                    if i == chosen[0] or thread.on_ooo:
                        continue
                    if (self.model.phase_at(thread.instr_done).phase_id
                            == producer.sc_phase_id):
                        self.migration.bus.transfer(now, payload)
                        thread.sc_phase_id = producer.sc_phase_id
                        thread.sc_coverage = max(
                            thread.sc_coverage, producer.sc_coverage)
            k += 1

        total_cycles = k * interval
        budget = ctx.budget
        speedups = []
        for thread in self.threads:
            alone = budget / max(1e-9, self.model.mean_ipc_ooo)
            took = thread.first_completion_cycles or total_cycles
            speedups.append(min(1.0, alone / max(1e-9, took)))
        return ThreadedResult(
            n_threads=len(self.threads),
            broadcast=self.broadcast,
            intervals=k,
            thread_speedups=speedups,
            ooo_active_fraction=ooo_active / k if k else 0.0,
            memoize_phases=memoize_phases,
            energy_pj=sum(t.energy_pj for t in self.threads),
        )
