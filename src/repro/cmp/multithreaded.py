"""Multithreaded Mirage (paper section 6, discussion).

If the threads of a parallel program perform homogeneous work, the
producer OoO can memoize *one* thread's repeatable phases and
broadcast the schedules to every InO in the cluster — one memoization
attempt speeds up all threads.  The paper discusses this qualitatively;
this module models it on the interval tier:

* all threads execute the same :class:`~repro.characterize.AppModel`
  (with per-thread progress skew);
* when the thread on the producer refreshes its Schedule Cache, the
  contents are broadcast over the shared bus to every sibling whose
  execution is in the same phase.

The cluster runs the standard :class:`~repro.engine.loop.IntervalEngine`
pipeline over the :class:`~repro.engine.backends.AnalyticBackend`, with
one extra step appended: :class:`BroadcastPhase`, the canonical example
of slotting a custom :class:`~repro.engine.phases.EnginePhase` into the
shared loop (see ``docs/api.md``).

Comparing ``broadcast=True`` against per-thread memoization shows the
claimed effect: near-equal throughput at a fraction of the OoO time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arbiter.base import Arbitrator
from repro.arbiter.sc_mpki import SCMPKIArbitrator
from repro.characterize.phase_model import AppModel
from repro.cmp.config import ClusterConfig
from repro.cmp.migration import MigrationCostModel, make_cost_model
from repro.energy.model import CoreEnergyModel
from repro.engine import (
    AnalyticBackend,
    ArbitrationPhase,
    EngineContext,
    EnginePhase,
    EnergyPhase,
    ExecutionPhase,
    IntervalEngine,
    MigrationPhase,
)
from repro.engine.state import AppState
from repro.telemetry import Telemetry


@dataclass
class ThreadedResult:
    """Outcome of a multithreaded Mirage run."""

    n_threads: int
    broadcast: bool
    intervals: int
    thread_speedups: list[float]
    ooo_active_fraction: float
    memoize_phases: int          #: intervals spent producing schedules
    energy_pj: float

    @property
    def stp(self) -> float:
        """Mean thread speedup (system throughput)."""
        if not self.thread_speedups:
            return 0.0
        return sum(self.thread_speedups) / len(self.thread_speedups)


class BroadcastPhase(EnginePhase):
    """Share the producer's fresh schedules with in-phase siblings.

    Runs after the standard four phases: the thread that just occupied
    the producer broadcasts its Schedule Cache contents over the shared
    bus to every consumer thread currently executing the same phase,
    which adopts the better coverage without ever visiting the OoO.
    """

    name = "broadcast"

    def __init__(self, model: AppModel, migration: MigrationCostModel):
        self.model = model
        self.migration = migration

    def run(self, ctx: EngineContext) -> None:
        """Broadcast from the chosen producer thread, if any."""
        if not ctx.chosen:
            return
        # This phase reads and writes AppState fields the backend may
        # hold in array form (vector kernel): flush them out first and
        # hand the edits back after — no-ops for state-backed backends.
        ctx.backend.sync_apps(ctx)
        cfg = ctx.config
        producer = ctx.apps[ctx.chosen[0]]
        payload = int(producer.sc_coverage * cfg.sc_capacity_bytes)
        for i, thread in enumerate(ctx.apps):
            if i == ctx.chosen[0] or thread.on_ooo:
                continue
            if (self.model.phase_at(thread.instr_done).phase_id
                    == producer.sc_phase_id):
                self.migration.bus.transfer(ctx.now, payload)
                thread.sc_phase_id = producer.sc_phase_id
                thread.sc_coverage = max(
                    thread.sc_coverage, producer.sc_coverage)
                ctx.telemetry.counters.bump("broadcast.transfers")
        ctx.backend.absorb_apps(ctx)


class MultithreadedMirage:
    """n homogeneous threads on one Mirage cluster.

    A thin shell over :class:`~repro.engine.loop.IntervalEngine`: the
    standard pipeline plus :class:`BroadcastPhase` (skipped when
    ``broadcast=False``), all on the analytic backend.
    """

    def __init__(
        self,
        config: ClusterConfig,
        model: AppModel,
        *,
        arbitrator: Arbitrator | None = None,
        broadcast: bool = True,
        skew_instructions: int = 50_000,
        energy_model: CoreEnergyModel | None = None,
        telemetry: Telemetry | None = None,
    ):
        if not config.mirage:
            raise ValueError("multithreaded sharing needs OinO consumers")
        self.config = config
        self.model = model
        self.arbitrator = arbitrator or SCMPKIArbitrator()
        self.broadcast = broadcast
        self.energy_model = energy_model or CoreEnergyModel()
        self.migration = make_cost_model(config)
        self.telemetry = telemetry or Telemetry()
        self.threads = [
            AppState(model=model, instr_done=float(i * skew_instructions))
            for i in range(config.n_consumers)
        ]
        self.phases = [
            ArbitrationPhase(self.arbitrator),
            MigrationPhase(),
            ExecutionPhase(),
            EnergyPhase(self.energy_model),
        ]
        if broadcast:
            self.phases.append(BroadcastPhase(model, self.migration))
        self.engine = IntervalEngine(
            config, self.threads, self.phases,
            backend=AnalyticBackend(self.migration),
            telemetry=self.telemetry)

    def run(self, *, max_intervals: int = 50_000) -> ThreadedResult:
        """Run the cluster until every thread completes its budget."""
        ctx = self.engine.run(max_intervals=max_intervals)
        k = ctx.intervals
        total_cycles = k * ctx.interval
        budget = ctx.budget
        speedups = []
        for thread in self.threads:
            alone = budget / max(1e-9, self.model.mean_ipc_ooo)
            took = thread.first_completion_cycles or total_cycles
            speedups.append(min(1.0, alone / max(1e-9, took)))
        return ThreadedResult(
            n_threads=len(self.threads),
            broadcast=self.broadcast,
            intervals=k,
            thread_speedups=speedups,
            ooo_active_fraction=ctx.ooo_active_intervals / k if k else 0.0,
            memoize_phases=ctx.ooo_active_intervals,
            energy_pj=sum(t.energy_pj for t in self.threads),
        )
