"""Application migration between cores (paper sections 3.3.3, 5.5).

Migrating an application costs: draining the pipeline and moving
architectural state, re-warming the L1 caches on the destination, and
— in Mirage configurations — shipping the 8 KB Schedule Cache contents
over the shared coherent bus, where they contend with regular L1<->L2
traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cmp.config import ClusterConfig
from repro.memory.bus import SharedBus


@dataclass(slots=True)
class MigrationEvent:
    """Cost record for one migration, in cycles.

    Treated as immutable by convention (not ``frozen=True``: the
    frozen ``__init__`` routes every field through
    ``object.__setattr__``, several times the cost of a plain store,
    and these are built once per migration on the hot path).
    """

    app: str
    interval_index: int
    to_ooo: bool
    drain_cycles: int
    l1_warmup_cycles: int
    sc_transfer_cycles: int
    bus_contention_cycles: int

    @property
    def total_cycles(self) -> int:
        """Every component of the move's cost, summed."""
        return (
            self.drain_cycles
            + self.l1_warmup_cycles
            + self.sc_transfer_cycles
            + self.bus_contention_cycles
        )


class MigrationCostModel:
    """Computes migration costs and accounts bus traffic."""

    def __init__(self, config: ClusterConfig, bus: SharedBus | None = None):
        self.config = config
        self.bus = bus or SharedBus()
        self.events: list[MigrationEvent] = []
        # Running per-component totals, kept in lockstep with `events`
        # so cost_summary() stays O(1) on hot sweep paths.
        self._totals = {
            "drain": 0.0, "l1_warmup": 0.0,
            "sc_transfer": 0.0, "bus_contention": 0.0,
        }

    def migrate(
        self,
        app: str,
        *,
        now_cycles: int,
        interval_index: int,
        to_ooo: bool,
        sc_bytes: int,
    ) -> MigrationEvent:
        """Record a migration; returns its cost breakdown.

        ``sc_bytes`` is how much Schedule Cache content actually moves:
        zero for traditional Het-CMPs, up to the SC capacity for
        Mirage.  Consumer->producer transfers also ship the SC so the
        producer knows what is already memoized.
        """
        scale = self.config.scale
        sc_cycles = 0
        contention = 0
        if self.config.mirage and sc_bytes > 0:
            # The paper approximates 1000 cycles for the full 8 KB;
            # partial contents scale proportionally.
            full = self.config.sc_capacity_bytes
            sc_cycles = max(1, int(
                scale.sc_transfer_cycles * min(1.0, sc_bytes / full)))
            start, _finish = self.bus.transfer(now_cycles, sc_bytes)
            contention = start - now_cycles
        # Architectural state + dirty L1 lines also cross the bus.
        self.bus.transfer(now_cycles, 2048)
        event = MigrationEvent(
            app=app,
            interval_index=interval_index,
            to_ooo=to_ooo,
            drain_cycles=scale.drain_cycles,
            l1_warmup_cycles=self._warmup_cycles(sc_bytes),
            sc_transfer_cycles=sc_cycles,
            bus_contention_cycles=contention,
        )
        self.events.append(event)
        totals = self._totals
        totals["drain"] += event.drain_cycles
        totals["l1_warmup"] += event.l1_warmup_cycles
        totals["sc_transfer"] += sc_cycles
        totals["bus_contention"] += contention
        return event

    def _warmup_cycles(self, sc_bytes: int) -> int:
        """Destination warm-up charge; the flat L1-flush model.

        Subclasses override this hook to price warm-up differently —
        the event/bus bookkeeping in :meth:`migrate` stays shared.
        """
        del sc_bytes
        return self.config.scale.l1_warmup_cycles

    # ------------------------------------------------------------------
    @property
    def total_migrations(self) -> int:
        """How many moves this model has priced so far."""
        return len(self.events)

    def cost_summary(self) -> dict[str, float]:
        """Aggregate cycles by component (Figure 15's stacking)."""
        return dict(self._totals)


#: Architectural + pipeline state every migration ships, in bytes
#: (register files, PC/flags, TLB tags — the 2 KB bus payload above).
ARCH_STATE_BYTES = 2048
#: Reference working set for the flat model's full L1 re-warm.
L1_WORKING_SET_BYTES = 32 * 1024


class StateTransferMigrationModel(MigrationCostModel):
    """SAHM-style warm-up: cost scales with the state actually moved.

    The flat model charges a full L1 re-warm
    (``scale.l1_warmup_cycles``) on every migration.  Following SAHM
    (PAPERS.md: hardware state migration at instruction granularity),
    this variant prices warm-up by the state the migration actually
    transfers — architectural state plus the live Schedule Cache
    payload — as a fraction of a full L1 working set.  A mostly-empty
    SC migrates almost for free; the charge can never exceed the flat
    model's.
    """

    def _warmup_cycles(self, sc_bytes: int) -> int:
        """Warm-up cycles proportional to transferred state."""
        scale = self.config.scale
        moved = ARCH_STATE_BYTES + max(0, sc_bytes)
        frac = min(1.0, moved / L1_WORKING_SET_BYTES)
        return max(1, int(scale.l1_warmup_cycles * frac))


#: Selectable migration cost models, keyed by
#: :attr:`~repro.cmp.config.ClusterConfig.migration_cost_model`.
MIGRATION_COST_MODELS: dict[str, type[MigrationCostModel]] = {
    "l1-flush": MigrationCostModel,
    "state-transfer": StateTransferMigrationModel,
}


def make_cost_model(config: ClusterConfig,
                    bus: SharedBus | None = None) -> MigrationCostModel:
    """Build the migration cost model the cluster config selects.

    Raises ``ValueError`` naming the known models when the config asks
    for an unknown one.
    """
    name = config.migration_cost_model
    cls = MIGRATION_COST_MODELS.get(name)
    if cls is None:
        known = ", ".join(sorted(MIGRATION_COST_MODELS))
        raise ValueError(
            f"unknown migration cost model {name!r} — one of: {known}")
    return cls(config, bus)
