"""The interval-driven CMP simulator.

Each application owns one consumer core; one (or more) producer OoO
cores are shared through the arbitrator.  The simulator advances all
cores one arbitration interval at a time:

1. Build each application's performance-counter view and ask the
   arbitrator who gets the OoO(s) — possibly nobody (power-gated).
2. Charge migration costs (pipeline drain, L1 warm-up, SC transfer
   over the shared bus) to the applications that moved.
3. Advance every application by the interval's effective cycles at the
   IPC its current core and Schedule Cache state deliver, evolving SC
   coverage (refresh on the producer, staleness decay and phase-change
   invalidation on the consumer).
4. Integrate per-core energy; idle producers power-gate.

Applications that finish their instruction budget restart (paper
section 4.1); the run ends when every application has completed the
budget at least once.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arbiter.base import AppView, Arbitrator
from repro.characterize.phase_model import AppModel, PhaseProfile
from repro.cmp.config import ClusterConfig
from repro.cmp.migration import MigrationCostModel
from repro.energy.model import CoreEnergyModel
from repro.metrics import system_throughput, util_share


@dataclass(slots=True)
class AppState:
    """Mutable per-application simulation state."""

    model: AppModel
    instr_done: float = 0.0
    completions: int = 0
    first_completion_cycles: float | None = None
    on_ooo: bool = False
    # Schedule Cache state (Mirage consumers only).
    sc_phase_id: int | None = None
    sc_coverage: float = 0.0
    # Performance counters the arbitrator polls.
    ipc_last: float = 0.0
    ipc_ooo_last: float | None = None
    sc_mpki_ino_last: float = 0.0
    sc_mpki_ooo_last: float | None = None
    intervals_since_ooo: int = 10**9
    # Utilization bookkeeping (Equation 3).
    t_ooo: float = 0.0
    t_memoized: float = 0.0
    t_total: float = 0.0
    ooo_intervals: int = 0
    energy_pj: float = 0.0


@dataclass(slots=True)
class IntervalSample:
    """One history row for timeline figures (5 and 10)."""

    interval: int
    app: str
    on_ooo: bool
    ipc: float
    speedup: float
    sc_mpki_ino: float
    delta_sc_mpki: float
    phase_id: int


@dataclass
class CMPResult:
    """Outcome of one CMP simulation."""

    config_name: str
    arbitrator_name: str
    intervals: int
    total_cycles: float
    app_names: list[str]
    speedups: list[float]            #: per-app, vs running alone on OoO
    energy_pj: float
    ooo_active_fraction: float
    ooo_share_per_app: list[float]   #: fraction of OoO-active intervals
    migrations: int
    migration_cost_cycles: dict[str, float]
    migration_frequency: float       #: migrations per interval
    history: list[IntervalSample] = field(default_factory=list)

    @property
    def stp(self) -> float:
        return system_throughput(self.speedups)


class CMPSystem:
    """Interval-level simulator for one cluster and one workload mix."""

    def __init__(
        self,
        config: ClusterConfig,
        apps: list[AppModel],
        arbitrator: Arbitrator | None,
        *,
        energy_model: CoreEnergyModel | None = None,
        record_history: bool = False,
    ):
        if (config.n_producers > 0
                and config.n_consumers + config.n_producers < len(apps)):
            raise ValueError(
                f"{config.name} has {config.n_consumers + config.n_producers}"
                f" cores for {len(apps)} apps"
            )
        if config.n_consumers < len(apps) and config.n_producers > 0:
            # Fewer consumers than apps (e.g. the 5:3 area-neutral
            # study): the producers must always be occupied or some
            # application would have no core; only the never-gating
            # arbitrators are safe on such configs.
            self._producers_always_busy = True
        else:
            self._producers_always_busy = False
        if config.n_producers > 0 and arbitrator is None:
            raise ValueError("a producer CMP needs an arbitrator")
        self.config = config
        self.apps = [AppState(model=m) for m in apps]
        self.arbitrator = arbitrator
        self.energy_model = energy_model or CoreEnergyModel()
        self.migration = MigrationCostModel(config)
        self.record_history = record_history
        self.history: list[IntervalSample] = []

    # ------------------------------------------------------------------
    def _views(self) -> list[AppView]:
        views = []
        for i, app in enumerate(self.apps):
            views.append(AppView(
                index=i,
                name=app.model.name,
                ipc_current=app.ipc_last,
                ipc_ooo_last=app.ipc_ooo_last,
                sc_mpki_ino=app.sc_mpki_ino_last,
                sc_mpki_ooo=app.sc_mpki_ooo_last,
                intervals_since_ooo=app.intervals_since_ooo,
                util=util_share(
                    app.t_ooo, app.t_memoized,
                    min(1.0, app.ipc_last / max(1e-9, app.ipc_ooo_last))
                    if app.ipc_ooo_last else 0.0,
                    max(1.0, app.t_total),
                ),
                on_ooo=app.on_ooo,
            ))
        return views

    # ------------------------------------------------------------------
    def run(self, *, max_intervals: int = 50_000) -> CMPResult:
        cfg = self.config
        scale = cfg.scale
        interval = scale.interval_cycles
        budget = scale.app_instruction_budget
        em = self.energy_model
        ooo_active_intervals = 0
        ooo_share = [0] * len(self.apps)

        k = 0
        while k < max_intervals:
            if all(a.completions >= 1 for a in self.apps):
                break
            now = k * interval

            # ---- arbitration ----
            chosen: list[int] = []
            if cfg.n_producers > 0 and self.arbitrator is not None:
                chosen = self.arbitrator.pick(
                    self._views(), interval_index=k,
                    slots=cfg.n_producers,
                )[: cfg.n_producers]

            # ---- migrations ----
            mig_cost = [0.0] * len(self.apps)
            for i, app in enumerate(self.apps):
                should_be_on = i in chosen
                if should_be_on != app.on_ooo:
                    sc_bytes = 0
                    if cfg.mirage:
                        sc_bytes = int(
                            app.sc_coverage * cfg.sc_capacity_bytes)
                    event = self.migration.migrate(
                        app.model.name, now_cycles=now, interval_index=k,
                        to_ooo=should_be_on, sc_bytes=sc_bytes,
                    )
                    mig_cost[i] = min(interval * 0.9, event.total_cycles)
                    app.on_ooo = should_be_on

            # ---- execute the interval ----
            if chosen:
                ooo_active_intervals += 1
                for i in chosen:
                    ooo_share[i] += 1
            for i, app in enumerate(self.apps):
                self._advance(app, interval, mig_cost[i], em, k, budget)
            k += 1

        total_cycles = k * interval
        speedups = []
        for app in self.apps:
            alone = budget / max(1e-9, app.model.mean_ipc_ooo)
            took = app.first_completion_cycles or total_cycles
            speedups.append(min(1.0, alone / max(1e-9, took)))
        active_total = max(1, ooo_active_intervals)
        return CMPResult(
            config_name=cfg.name,
            arbitrator_name=(
                self.arbitrator.name if self.arbitrator else "none"),
            intervals=k,
            total_cycles=total_cycles,
            app_names=[a.model.name for a in self.apps],
            speedups=speedups,
            energy_pj=sum(a.energy_pj for a in self.apps),
            ooo_active_fraction=(
                ooo_active_intervals / k if k and cfg.n_producers else 0.0),
            ooo_share_per_app=[s / active_total for s in ooo_share],
            migrations=self.migration.total_migrations,
            migration_cost_cycles=self.migration.cost_summary(),
            migration_frequency=(
                self.migration.total_migrations / k if k else 0.0),
            history=self.history,
        )

    # ------------------------------------------------------------------
    def _advance(self, app: AppState, interval: int, mig_cost: float,
                 em: CoreEnergyModel, k: int, budget: int) -> None:
        cfg = self.config
        effective = max(0.0, interval - mig_cost)
        phase = app.model.phase_at(app.instr_done)

        if app.on_ooo:
            ipc = phase.ipc_ooo
            kind = "ooo"
            memo_frac = 0.0
            if cfg.mirage:
                # The producer refreshes the SC with this phase's
                # schedules, as far as they fit in 8 KB.
                fit = min(1.0, (cfg.sc_capacity_bytes / 1024.0)
                          / max(0.25, phase.trace_kb))
                app.sc_phase_id = phase.phase_id
                app.sc_coverage = fit
                app.sc_mpki_ooo_last = phase.sc_mpki_ooo
                sc_mpki = phase.sc_mpki_ooo
                # While memoizing, the consumer-side staleness signal
                # is satisfied: fresh schedules are being produced.
                # (Without this the app camps on the OoO, because its
                # last InO-side SC-MPKI reading stays frozen high.)
                app.sc_mpki_ino_last = phase.sc_mpki_ooo
            else:
                sc_mpki = 0.0
            app.t_ooo += effective
            app.intervals_since_ooo = 0
            app.ooo_intervals += 1
            app.ipc_ooo_last = ipc
        else:
            app.intervals_since_ooo += 1
            if cfg.mirage:
                if app.sc_phase_id == phase.phase_id:
                    app.sc_coverage *= (1.0 - phase.volatility)
                else:
                    app.sc_coverage = 0.0   # stale: schedules useless
                coverage = app.sc_coverage
                ipc = phase.ipc_oino(coverage)
                sc_mpki = phase.sc_mpki_ino(coverage)
                memo_frac = phase.memoizable * coverage
                app.t_memoized += effective * memo_frac
                kind = "oino"
            else:
                ipc = phase.ipc_ino
                sc_mpki = 0.0
                memo_frac = 0.0
                kind = "ino"

        app.ipc_last = ipc
        app.sc_mpki_ino_last = sc_mpki if not app.on_ooo else (
            app.sc_mpki_ino_last)
        app.t_total += interval

        # Progress and budget completion.
        before = app.instr_done
        app.instr_done += ipc * effective
        if (before % budget) + ipc * effective >= budget:
            app.completions += 1
            if app.first_completion_cycles is None:
                frac = (budget - before % budget) / max(
                    1e-9, ipc * effective)
                app.first_completion_cycles = (k + frac) * interval

        # Energy to completion: each application is charged until it
        # finishes its instruction budget once (restarted filler work
        # is not billed, so one slow application cannot dominate the
        # whole CMP's energy figure through its tail).
        if app.first_completion_cycles is None or app.completions == 0:
            if kind == "oino":
                # Blend OinO-mode power by how much replay happened.
                epi = (memo_frac * em.EPI_PJ["oino"]
                       + (1 - memo_frac) * em.EPI_PJ["ino"])
                leak = em.leakage["ino"] + em.leakage["oino_extra"] + \
                    em.leakage["sc"]
                app.energy_pj += (leak + epi * ipc) * interval
            else:
                app.energy_pj += em.interval_energy(kind, ipc, interval)

        if self.record_history:
            alone_ipc = phase.ipc_ooo
            self.history.append(IntervalSample(
                interval=k,
                app=app.model.name,
                on_ooo=app.on_ooo,
                ipc=ipc,
                speedup=min(1.0, ipc / max(1e-9, alone_ipc)),
                sc_mpki_ino=sc_mpki,
                delta_sc_mpki=(
                    (sc_mpki - (app.sc_mpki_ooo_last or 0.1))
                    / max(0.1, app.sc_mpki_ooo_last or 0.1)),
                phase_id=phase.phase_id,
            ))


# ----------------------------------------------------------------------
# Homogeneous baselines
# ----------------------------------------------------------------------
def run_homo(apps: list[AppModel], *, kind: str,
             config: ClusterConfig,
             energy_model: CoreEnergyModel | None = None) -> CMPResult:
    """Run every app on its own core of *kind* ("ooo" or "ino").

    Models the 0:n Homo-OoO and n:0 Homo-InO baselines: no arbitration,
    no migration, no Schedule Cache.
    """
    if kind not in ("ooo", "ino"):
        raise ValueError("kind must be 'ooo' or 'ino'")
    em = energy_model or CoreEnergyModel()
    budget = config.scale.app_instruction_budget
    speedups = []
    energy = 0.0
    longest = 0.0
    for model in apps:
        ipc = model.mean_ipc_ooo if kind == "ooo" else model.mean_ipc_ino
        cycles = budget / max(1e-9, ipc)
        alone = budget / max(1e-9, model.mean_ipc_ooo)
        speedups.append(min(1.0, alone / cycles))
        longest = max(longest, cycles)
        # Energy to completion (same accounting as CMPSystem).
        energy += em.interval_energy(kind, ipc, int(cycles))
    name = f"{len(apps)}x{kind.upper()}-homo"
    return CMPResult(
        config_name=name,
        arbitrator_name="none",
        intervals=int(longest / config.scale.interval_cycles) + 1,
        total_cycles=longest,
        app_names=[m.name for m in apps],
        speedups=speedups,
        energy_pj=energy,
        ooo_active_fraction=1.0 if kind == "ooo" else 0.0,
        ooo_share_per_app=[1.0 / len(apps)] * len(apps) if kind == "ooo"
        else [0.0] * len(apps),
        migrations=0,
        migration_cost_cycles={},
        migration_frequency=0.0,
    )
