"""The interval-driven CMP simulator.

Each application owns one consumer core; one (or more) producer OoO
cores are shared through the arbitrator.  The simulation itself now
lives in :mod:`repro.engine`: a thin interval loop drives four
composable phases — arbitration, migration, execution (Schedule-Cache
coverage evolution) and energy — over shared
:class:`~repro.engine.state.AppState` records, each phase emitting
structured events into :mod:`repro.telemetry`.

:class:`CMPSystem` assembles the standard pipeline for one cluster and
one workload mix, runs it, and folds the outcome into a
:class:`CMPResult`.  Applications that finish their instruction budget
restart (paper section 4.1); the run ends when every application has
completed the budget at least once.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arbiter.base import AppView, Arbitrator
from repro.characterize.phase_model import AppModel
from repro.cmp.config import ClusterConfig
from repro.cmp.migration import MigrationCostModel, make_cost_model
from repro.energy.model import CoreEnergyModel
from repro.engine import (
    AnalyticBackend,
    ArbitrationPhase,
    EnergyPhase,
    ExecutionPhase,
    IntervalEngine,
    MigrationPhase,
)
from repro.engine.state import AppState
from repro.engine.views import interval_tier_views
from repro.metrics import system_throughput
from repro.telemetry import IntervalRecord, MemorySink, Telemetry

def __getattr__(name: str):
    # The bespoke history row was superseded by the telemetry schema's
    # IntervalRecord; the old deep-import spelling keeps resolving (to
    # the identical class) but steers callers to the supported names.
    if name == "IntervalSample":
        import warnings

        warnings.warn(
            "repro.cmp.system.IntervalSample is deprecated; import "
            "IntervalRecord from repro.api (or repro.telemetry)",
            DeprecationWarning, stacklevel=2)
        return IntervalRecord
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")


@dataclass
class CMPResult:
    """Outcome of one CMP simulation."""

    config_name: str
    arbitrator_name: str
    intervals: int
    total_cycles: float
    app_names: list[str]
    speedups: list[float]            #: per-app, vs running alone on OoO
    energy_pj: float
    ooo_active_fraction: float
    ooo_share_per_app: list[float]   #: fraction of OoO-active intervals
    migrations: int
    migration_cost_cycles: dict[str, float]
    migration_frequency: float       #: migrations per interval
    history: list[IntervalRecord] = field(default_factory=list)

    @property
    def stp(self) -> float:
        """System throughput: the mean of the per-app speedups."""
        return system_throughput(self.speedups)


def fold_result(*, config, arbitrator_name: str, ctx, apps,
                migration: MigrationCostModel,
                history: list[IntervalRecord]) -> CMPResult:
    """Fold a finished engine context into a :class:`CMPResult`.

    The one place run outcomes become result rows: both the
    fixed-population :class:`CMPSystem` path and the dynamic
    scenario path (:mod:`repro.cluster`) fold through here, so the
    degenerate scenario is byte-identical to the classic run by
    construction — same arithmetic, same accumulation order.
    """
    k = ctx.intervals
    total_cycles = k * ctx.interval
    budget = ctx.budget
    speedups = []
    for app in apps:
        alone = budget / max(1e-9, app.model.mean_ipc_ooo)
        took = app.first_completion_cycles or total_cycles
        speedups.append(min(1.0, alone / max(1e-9, took)))
    active_total = max(1, ctx.ooo_active_intervals)
    return CMPResult(
        config_name=config.name,
        arbitrator_name=arbitrator_name,
        intervals=k,
        total_cycles=total_cycles,
        app_names=[a.model.name for a in apps],
        speedups=speedups,
        energy_pj=sum(a.energy_pj for a in apps),
        ooo_active_fraction=(
            ctx.ooo_active_intervals / k if k and config.n_producers
            else 0.0),
        ooo_share_per_app=[s / active_total for s in ctx.ooo_share],
        migrations=migration.total_migrations,
        migration_cost_cycles=migration.cost_summary(),
        migration_frequency=(
            migration.total_migrations / k if k else 0.0),
        history=history,
    )


class CMPSystem:
    """Interval-level simulator for one cluster and one workload mix.

    A thin shell over :class:`~repro.engine.loop.IntervalEngine`: it
    validates the cluster shape, builds the standard four-phase
    pipeline (``self.phases``), and wires a :class:`Telemetry` hub
    through every phase.  ``record_history=True`` attaches an
    in-memory sink capturing the per-interval trace records behind
    Figures 5 and 10 (``self.history``); pass ``telemetry=`` to stream
    the full event schema to custom sinks instead.
    """

    def __init__(
        self,
        config: ClusterConfig,
        apps: list[AppModel],
        arbitrator: Arbitrator | None,
        *,
        energy_model: CoreEnergyModel | None = None,
        record_history: bool = False,
        telemetry: Telemetry | None = None,
        vectorize: bool | None = None,
    ):
        if (config.n_producers > 0
                and config.n_consumers + config.n_producers < len(apps)):
            raise ValueError(
                f"{config.name} has {config.n_consumers + config.n_producers}"
                f" cores for {len(apps)} apps"
            )
        if config.n_consumers < len(apps) and config.n_producers > 0:
            # Fewer consumers than apps (e.g. the 5:3 area-neutral
            # study): the producers must always be occupied or some
            # application would have no core; only the never-gating
            # arbitrators are safe on such configs.
            self._producers_always_busy = True
        else:
            self._producers_always_busy = False
        if config.n_producers > 0 and arbitrator is None:
            raise ValueError("a producer CMP needs an arbitrator")
        self.config = config
        self.apps = [AppState(model=m) for m in apps]
        self.arbitrator = arbitrator
        self.energy_model = energy_model or CoreEnergyModel()
        self.migration = make_cost_model(config)
        self.telemetry = telemetry or Telemetry()
        self.record_history = record_history
        self._history_sink: MemorySink | None = None
        if record_history:
            self._history_sink = self.telemetry.attach(
                MemorySink(kinds={"interval"}))
        # vectorize picks the bit-identical advance_all kernel (None =
        # auto by cluster width / MIRAGE_VECTOR; see AnalyticBackend).
        self.backend = AnalyticBackend(self.migration, vectorize=vectorize)
        self.phases = [
            ArbitrationPhase(arbitrator),
            MigrationPhase(),
            ExecutionPhase(),
            EnergyPhase(self.energy_model),
        ]
        self.engine = IntervalEngine(
            config, self.apps, self.phases, backend=self.backend,
            telemetry=self.telemetry)

    # ------------------------------------------------------------------
    @property
    def history(self) -> list[IntervalRecord]:
        """Captured per-interval trace records (Figures 5 and 10)."""
        if self._history_sink is None:
            return []
        return self._history_sink.events

    def _views(self) -> list[AppView]:
        return interval_tier_views(self.apps)

    # ------------------------------------------------------------------
    def run(self, *, max_intervals: int = 50_000) -> CMPResult:
        """Simulate until every app completes (or *max_intervals*)."""
        cfg = self.config
        ctx = self.engine.run(max_intervals=max_intervals)
        result = fold_result(
            config=cfg,
            arbitrator_name=(
                self.arbitrator.name if self.arbitrator else "none"),
            ctx=ctx,
            apps=self.apps,
            migration=self.migration,
            history=self.history,
        )
        self.telemetry.summarize_run(
            config=cfg.name,
            arbitrator=result.arbitrator_name,
            intervals=result.intervals,
            total_cycles=result.total_cycles,
        )
        return result


# ----------------------------------------------------------------------
# Homogeneous baselines
# ----------------------------------------------------------------------
def run_homo(apps: list[AppModel], *, kind: str,
             config: ClusterConfig,
             energy_model: CoreEnergyModel | None = None) -> CMPResult:
    """Run every app on its own core of *kind* ("ooo" or "ino").

    Models the 0:n Homo-OoO and n:0 Homo-InO baselines: no arbitration,
    no migration, no Schedule Cache.
    """
    if kind not in ("ooo", "ino"):
        raise ValueError("kind must be 'ooo' or 'ino'")
    em = energy_model or CoreEnergyModel()
    budget = config.scale.app_instruction_budget
    speedups = []
    energy = 0.0
    longest = 0.0
    for model in apps:
        ipc = model.mean_ipc_ooo if kind == "ooo" else model.mean_ipc_ino
        cycles = budget / max(1e-9, ipc)
        alone = budget / max(1e-9, model.mean_ipc_ooo)
        speedups.append(min(1.0, alone / cycles))
        longest = max(longest, cycles)
        # Energy to completion (same accounting as CMPSystem).
        energy += em.interval_energy(kind, ipc, int(cycles))
    name = f"{len(apps)}x{kind.upper()}-homo"
    return CMPResult(
        config_name=name,
        arbitrator_name="none",
        intervals=int(longest / config.scale.interval_cycles) + 1,
        total_cycles=longest,
        app_names=[m.name for m in apps],
        speedups=speedups,
        energy_pj=energy,
        ooo_active_fraction=1.0 if kind == "ooo" else 0.0,
        ooo_share_per_app=[1.0 / len(apps)] * len(apps) if kind == "ooo"
        else [0.0] * len(apps),
        migrations=0,
        migration_cost_cycles={},
        migration_frequency=0.0,
    )
