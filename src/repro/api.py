"""The stable public surface, in one import.

Everything a script, notebook, or downstream test should need lives
here under one flat namespace::

    from repro.api import CMPSystem, SCMPKIArbitrator, run_experiment

The deep module paths (``repro.cmp.system``, ``repro.engine.backends``,
...) keep working — they are where the code lives — but this module is
the *supported* spelling: names listed in ``__all__`` follow the
package version's compatibility promise, internal layouts do not.
Legacy aliases that predate the facade (``repro.cmp.system.
IntervalSample``) now warn on import and point here.

The facade groups six surfaces:

* **building blocks** — workloads, app models, cluster configs;
* **simulation** — :class:`CMPSystem` (interval tier),
  :class:`DetailedMirageCluster` (cycle tier), the batch-first
  :class:`ExecutionBackend` protocol and its backends, the backend
  registry (:func:`register_backend` / :func:`get_backend` /
  :func:`list_backends` over every flavour: analytic, detailed,
  CG-OoO, load-delay tracking), migration pricing
  (:func:`make_cost_model`), plus the process-sharded runner in
  :mod:`repro.cmp.sharded`;
* **arbitration** — the five paper arbitrators;
* **infrastructure** — telemetry, the sweep runner, and every cache
  layer behind one :class:`CacheConfig`;
* **service** — the :mod:`repro.service` job server's client side
  (:class:`ServiceClient`, :class:`ServiceConfig`,
  :class:`SubmitRequest`);
* **entry points** — :func:`run_experiment` over the named experiment
  registry, and the bench harness.
"""

from __future__ import annotations

from typing import Any

from repro.arbiter import (
    FairArbitrator,
    MaxSTPArbitrator,
    SCMPKIArbitrator,
    SCMPKIFairArbitrator,
    SCMPKIMaxSTPArbitrator,
)
from repro.bench import compare_reports, run_benchmarks
from repro.characterize import AppModel, analytic_model
from repro.cmp import (
    ClusterConfig,
    StateTransferMigrationModel,
    make_cost_model,
)
from repro.cmp.detailed import (
    CGOoOBackend,
    DetailedBackend,
    DetailedMirageCluster,
    DetailedResult,
    LoadDelayBackend,
)
from repro.cores import CGOoOCore
from repro.cmp.sharded import (
    ClusterSpec,
    ShardedDetailedBackend,
    ShardOutcome,
    run_cluster_spec,
)
from repro.cmp.system import CMPResult, CMPSystem, run_homo
from repro.config import CacheConfig, ServiceConfig, default_cache_dir
from repro.engine import (
    AnalyticBackend,
    AppViewBatch,
    BackendBundle,
    BackendInfo,
    BackendSpec,
    ExecutionBackend,
    IntervalEngine,
    backend_names,
    get_backend,
    list_backends,
    register_backend,
)
from repro.experiments import EXPERIMENTS, ExperimentParams
from repro.runner import ResultCache, SweepRunner, call_unit, cmp_unit
from repro.service import ServiceClient, SubmitRequest
from repro.simcache import SliceMemo, SliceStore
from repro.telemetry import (
    IntervalRecord,
    JSONLSink,
    MemorySink,
    Telemetry,
)
from repro.workloads import (
    ALL_BENCHMARKS,
    WorkloadMix,
    make_benchmark,
    standard_mixes,
)

__all__ = [
    # building blocks
    "ALL_BENCHMARKS", "AppModel", "ClusterConfig", "WorkloadMix",
    "analytic_model", "make_benchmark", "standard_mixes",
    # simulation
    "AnalyticBackend", "AppViewBatch", "BackendBundle", "BackendInfo",
    "BackendSpec", "CGOoOBackend", "CGOoOCore", "CMPResult",
    "CMPSystem", "ClusterSpec", "DetailedBackend",
    "DetailedMirageCluster", "DetailedResult", "ExecutionBackend",
    "IntervalEngine", "LoadDelayBackend", "ShardOutcome",
    "ShardedDetailedBackend", "StateTransferMigrationModel",
    "backend_names", "get_backend", "list_backends", "make_cost_model",
    "register_backend", "run_cluster_spec", "run_homo",
    # arbitration
    "FairArbitrator", "MaxSTPArbitrator", "SCMPKIArbitrator",
    "SCMPKIFairArbitrator", "SCMPKIMaxSTPArbitrator",
    # infrastructure
    "CacheConfig", "IntervalRecord", "JSONLSink", "MemorySink",
    "ResultCache", "SliceMemo", "SliceStore", "SweepRunner",
    "Telemetry", "call_unit", "cmp_unit", "default_cache_dir",
    # service
    "ServiceClient", "ServiceConfig", "SubmitRequest",
    # entry points
    "EXPERIMENTS", "ExperimentParams", "compare_reports",
    "run_benchmarks", "run_experiment",
]


def run_experiment(name: str, *, quick: bool = False,
                   jobs: int = 1,
                   cache: CacheConfig | None = None,
                   **overrides: Any) -> dict:
    """Run one named experiment and return its result dict.

    The programmatic equivalent of ``mirage <name>``: resolves *name*
    in :data:`EXPERIMENTS`, threads the cache configuration (applied
    process-wide first, so slice-memo switches reach the backends),
    and forwards *overrides* to the driver's ``run()``.

    Args:
        name: an experiment name (see ``mirage list``).
        quick: trimmed workload sizes, as ``--quick``.
        jobs: worker processes for sweep drivers.
        cache: every cache switch in one place; ``None`` leaves the
            process defaults (result cache off, slice memo on).
        overrides: driver-specific keywords, e.g. ``n_mixes=4``.
    """
    if name not in EXPERIMENTS:
        known = ", ".join(EXPERIMENTS)
        raise KeyError(f"unknown experiment {name!r} — one of: {known}")
    if cache is not None:
        cache.apply()
    params = ExperimentParams(
        quick=quick, jobs=jobs,
        use_cache=cache.use_result_cache if cache is not None else False,
        cache_dir=cache.cache_dir if cache is not None else None,
        cache=cache,
    )
    return EXPERIMENTS[name].run(params, **overrides)
