"""The one :class:`AppView` builder both simulator tiers share.

Historically ``cmp/system.py`` and ``cmp/detailed.py`` each assembled
the arbitrator's performance-counter view by hand with subtly different
``util`` definitions; this module is now the single place the view —
and in particular its Equation-3 utilization term — is defined.  Both
backends mirror their counters into
:class:`~repro.engine.state.AppState`, so the default
:meth:`~repro.engine.backends.ExecutionBackend.views` is literally
:func:`interval_tier_views` for everyone.

Equation 3 (paper section 3.2)::

    util = (T_OoO + T_memoized * S) / T_total

and how each tier instantiates its terms:

* **interval tier** (:func:`interval_tier_views`):
  ``T_OoO`` = :attr:`AppState.t_ooo` (cycles resident on a producer),
  ``T_memoized`` = :attr:`AppState.t_memoized` (consumer cycles spent
  replaying memoized schedules), ``S`` = the Equation-2 speedup
  ``min(1, IPC_last / IPC_OoO_last)`` crediting memoized InO time at
  the rate it actually achieves, and ``T_total`` =
  ``max(1, AppState.t_total)``.

* **detailed tier** (:class:`~repro.cmp.detailed.DetailedBackend`):
  ``T_OoO`` = measured producer-resident cycles mirrored into
  ``t_ooo``, ``T_memoized`` stays 0 — replayed instructions are
  already folded into the *measured* consumer IPC, so crediting them
  again would double-count — and ``T_total`` = measured total cycles
  mirrored into ``t_total``.
"""

from __future__ import annotations

from repro.arbiter.base import AppView
from repro.metrics import util_share


def build_app_view(
    *,
    index: int,
    name: str,
    ipc_last: float,
    ipc_ooo_last: float | None,
    sc_mpki_ino: float,
    sc_mpki_ooo: float | None,
    intervals_since_ooo: int,
    on_ooo: bool,
    t_ooo: float,
    t_total: float,
    t_memoized: float = 0.0,
) -> AppView:
    """Assemble the arbitrator's view of one application.

    ``t_ooo`` / ``t_memoized`` / ``t_total`` are the Equation-3 terms
    (see the module docstring for what each tier passes); the
    Equation-2 memoization-speedup factor is derived here from the
    IPC counters, never supplied by the caller.
    """
    memo_speedup = (
        min(1.0, ipc_last / max(1e-9, ipc_ooo_last))
        if ipc_ooo_last else 0.0
    )
    return AppView(
        index=index,
        name=name,
        ipc_current=ipc_last,
        ipc_ooo_last=ipc_ooo_last,
        sc_mpki_ino=sc_mpki_ino,
        sc_mpki_ooo=sc_mpki_ooo,
        intervals_since_ooo=intervals_since_ooo,
        util=util_share(t_ooo, t_memoized, memo_speedup,
                        max(1.0, t_total)),
        on_ooo=on_ooo,
    )


def interval_tier_views(apps) -> list[AppView]:
    """Views over interval-tier :class:`~repro.engine.state.AppState`
    records, exactly as the arbitration phase polls them."""
    return [
        build_app_view(
            index=i,
            name=app.model.name,
            ipc_last=app.ipc_last,
            ipc_ooo_last=app.ipc_ooo_last,
            sc_mpki_ino=app.sc_mpki_ino_last,
            sc_mpki_ooo=app.sc_mpki_ooo_last,
            intervals_since_ooo=app.intervals_since_ooo,
            on_ooo=app.on_ooo,
            t_ooo=app.t_ooo,
            t_memoized=app.t_memoized,
            t_total=app.t_total,
        )
        for i, app in enumerate(apps)
    ]
