"""The one :class:`AppView` builder both simulator tiers share.

Historically ``cmp/system.py`` and ``cmp/detailed.py`` each assembled
the arbitrator's performance-counter view by hand with subtly different
``util`` definitions; this module is now the single place the view —
and in particular its Equation-3 utilization term — is defined.  Both
backends mirror their counters into
:class:`~repro.engine.state.AppState`, so the default
:meth:`~repro.engine.backends.ExecutionBackend.views` is literally
:func:`interval_tier_views` for everyone.

The batch-first arbitration path added with the
:meth:`~repro.engine.backends.ExecutionBackend.views_batch` protocol
method hands arbitrators an :class:`AppViewBatch` instead of a list of
freshly-built :class:`~repro.arbiter.base.AppView` objects.  A batch
is a struct-of-arrays face over the same counters: arbitrators with a
``pick_batch`` fast path read the columns directly (either the live
``AppState`` records, or the vectorized backend's numpy arrays), and
everyone else gets the exact historical view list from
:meth:`AppViewBatch.views` — built by the same code, bit for bit.

Equation 3 (paper section 3.2)::

    util = (T_OoO + T_memoized * S) / T_total

and how each tier instantiates its terms:

* **interval tier** (:func:`interval_tier_views`):
  ``T_OoO`` = :attr:`AppState.t_ooo` (cycles resident on a producer),
  ``T_memoized`` = :attr:`AppState.t_memoized` (consumer cycles spent
  replaying memoized schedules), ``S`` = the Equation-2 speedup
  ``min(1, IPC_last / IPC_OoO_last)`` crediting memoized InO time at
  the rate it actually achieves, and ``T_total`` =
  ``max(1, AppState.t_total)``.

* **detailed tier** (:class:`~repro.cmp.detailed.DetailedBackend`):
  ``T_OoO`` = measured producer-resident cycles mirrored into
  ``t_ooo``, ``T_memoized`` stays 0 — replayed instructions are
  already folded into the *measured* consumer IPC, so crediting them
  again would double-count — and ``T_total`` = measured total cycles
  mirrored into ``t_total``.
"""

from __future__ import annotations

from repro.arbiter.base import AppView
from repro.metrics import util_share


def build_app_view(
    *,
    index: int,
    name: str,
    ipc_last: float,
    ipc_ooo_last: float | None,
    sc_mpki_ino: float,
    sc_mpki_ooo: float | None,
    intervals_since_ooo: int,
    on_ooo: bool,
    t_ooo: float,
    t_total: float,
    t_memoized: float = 0.0,
) -> AppView:
    """Assemble the arbitrator's view of one application.

    ``t_ooo`` / ``t_memoized`` / ``t_total`` are the Equation-3 terms
    (see the module docstring for what each tier passes); the
    Equation-2 memoization-speedup factor is derived here from the
    IPC counters, never supplied by the caller.
    """
    memo_speedup = (
        min(1.0, ipc_last / max(1e-9, ipc_ooo_last))
        if ipc_ooo_last else 0.0
    )
    return AppView(
        index=index,
        name=name,
        ipc_current=ipc_last,
        ipc_ooo_last=ipc_ooo_last,
        sc_mpki_ino=sc_mpki_ino,
        sc_mpki_ooo=sc_mpki_ooo,
        intervals_since_ooo=intervals_since_ooo,
        util=util_share(t_ooo, t_memoized, memo_speedup,
                        max(1.0, t_total)),
        on_ooo=on_ooo,
    )


def interval_tier_views(apps) -> list[AppView]:
    """Views over interval-tier :class:`~repro.engine.state.AppState`
    records, exactly as the arbitration phase polls them."""
    return [
        build_app_view(
            index=i,
            name=app.uid or app.model.name,
            ipc_last=app.ipc_last,
            ipc_ooo_last=app.ipc_ooo_last,
            sc_mpki_ino=app.sc_mpki_ino_last,
            sc_mpki_ooo=app.sc_mpki_ooo_last,
            intervals_since_ooo=app.intervals_since_ooo,
            on_ooo=app.on_ooo,
            t_ooo=app.t_ooo,
            t_memoized=app.t_memoized,
            t_total=app.t_total,
        )
        for i, app in enumerate(apps)
    ]


class AppViewBatch:
    """Struct-of-arrays face over every application's counters.

    The batch carries the arbitration inputs in one of two layouts,
    and both materialize to the identical :class:`AppView` list:

    * **state-backed** (:meth:`from_states`): ``apps`` holds the live
      :class:`~repro.engine.state.AppState` records; fast-path
      arbitrators iterate them directly with plain attribute reads
      and pay nothing for the columns they ignore.
    * **array-backed** (:meth:`from_arrays`): ``apps`` is ``None`` and
      the per-counter numpy columns are exposed as attributes (the
      vectorized :class:`~repro.engine.backends.AnalyticBackend`
      passes views of its authoritative arrays).  ``None``-valued
      counters use the array encodings ``NaN``
      (``ipc_ooo_last``/``sc_mpki_ooo``) so a column stays one dtype.

    :meth:`views` converts either layout into the historical list of
    :class:`AppView` objects through :func:`build_app_view`, so
    arbitrators without a batch fast path observe bit-identical
    inputs.
    """

    __slots__ = ("apps", "names", "ipc_last", "ipc_ooo_last",
                 "sc_mpki_ino", "sc_mpki_ooo", "intervals_since_ooo",
                 "on_ooo", "t_ooo", "t_memoized", "t_total")

    def __init__(self, *, apps=None, names=None, ipc_last=None,
                 ipc_ooo_last=None, sc_mpki_ino=None, sc_mpki_ooo=None,
                 intervals_since_ooo=None, on_ooo=None, t_ooo=None,
                 t_memoized=None, t_total=None):
        self.apps = apps
        self.names = names
        self.ipc_last = ipc_last
        self.ipc_ooo_last = ipc_ooo_last
        self.sc_mpki_ino = sc_mpki_ino
        self.sc_mpki_ooo = sc_mpki_ooo
        self.intervals_since_ooo = intervals_since_ooo
        self.on_ooo = on_ooo
        self.t_ooo = t_ooo
        self.t_memoized = t_memoized
        self.t_total = t_total

    # ------------------------------------------------------------------
    @classmethod
    def from_states(cls, apps) -> "AppViewBatch":
        """Wrap the live ``AppState`` records without copying anything."""
        return cls(apps=list(apps))

    @classmethod
    def from_arrays(cls, *, names, ipc_last, ipc_ooo_last, sc_mpki_ino,
                    sc_mpki_ooo, intervals_since_ooo, on_ooo, t_ooo,
                    t_memoized, t_total) -> "AppViewBatch":
        """Wrap a vectorized backend's column arrays (no copies)."""
        return cls(
            names=names, ipc_last=ipc_last, ipc_ooo_last=ipc_ooo_last,
            sc_mpki_ino=sc_mpki_ino, sc_mpki_ooo=sc_mpki_ooo,
            intervals_since_ooo=intervals_since_ooo, on_ooo=on_ooo,
            t_ooo=t_ooo, t_memoized=t_memoized, t_total=t_total,
        )

    @property
    def is_vector(self) -> bool:
        """True when the batch is backed by column arrays."""
        return self.apps is None

    def __len__(self) -> int:
        return len(self.apps) if self.apps is not None else len(
            self.names)

    # ------------------------------------------------------------------
    def views(self) -> list[AppView]:
        """Materialize the historical :class:`AppView` list.

        Both layouts funnel through :func:`build_app_view` with plain
        Python scalars, so the result is bit-identical to
        :func:`interval_tier_views` over equivalently-valued state.
        """
        if self.apps is not None:
            return interval_tier_views(self.apps)
        ipc_last = self.ipc_last.tolist()
        ipc_ooo_last = self.ipc_ooo_last.tolist()
        sc_mpki_ino = self.sc_mpki_ino.tolist()
        sc_mpki_ooo = self.sc_mpki_ooo.tolist()
        since = self.intervals_since_ooo.tolist()
        on_ooo = self.on_ooo.tolist()
        t_ooo = self.t_ooo.tolist()
        t_memoized = self.t_memoized.tolist()
        t_total = self.t_total.tolist()
        return [
            build_app_view(
                index=i,
                name=self.names[i],
                ipc_last=ipc_last[i],
                ipc_ooo_last=(None if ipc_ooo_last[i] != ipc_ooo_last[i]
                              else ipc_ooo_last[i]),
                sc_mpki_ino=sc_mpki_ino[i],
                sc_mpki_ooo=(None if sc_mpki_ooo[i] != sc_mpki_ooo[i]
                             else sc_mpki_ooo[i]),
                intervals_since_ooo=since[i],
                on_ooo=on_ooo[i],
                t_ooo=t_ooo[i],
                t_memoized=t_memoized[i],
                t_total=t_total[i],
            )
            for i in range(len(self.names))
        ]
