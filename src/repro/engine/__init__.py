"""The layered interval engine behind the CMP simulator.

:class:`IntervalEngine` drives an ordered pipeline of
:class:`EnginePhase` steps — arbitration, migration, execution
(Schedule-Cache coverage evolution), energy — over shared
:class:`AppState` records, emitting structured events into
:mod:`repro.telemetry`.  :class:`~repro.cmp.system.CMPSystem` is now a
thin shell that assembles the standard pipeline; custom phases slot in
alongside the standard four (see ``docs/api.md``).
"""

from repro.engine.loop import IntervalEngine
from repro.engine.phases import (
    ArbitrationPhase,
    EngineContext,
    EnginePhase,
    EnergyPhase,
    ExecutionPhase,
    MigrationPhase,
)
from repro.engine.state import AppState, ExecOutcome
from repro.engine.views import build_app_view, interval_tier_views

__all__ = [
    "AppState",
    "ArbitrationPhase",
    "EngineContext",
    "EnginePhase",
    "EnergyPhase",
    "ExecOutcome",
    "ExecutionPhase",
    "IntervalEngine",
    "MigrationPhase",
    "build_app_view",
    "interval_tier_views",
]
