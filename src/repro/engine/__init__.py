"""The layered interval engine behind both simulator tiers.

:class:`IntervalEngine` drives an ordered pipeline of
:class:`EnginePhase` steps — arbitration, migration, execution, energy
— over shared :class:`AppState` records, emitting structured events
into :mod:`repro.telemetry`.  The execution *substrate* is pluggable
through the :class:`ExecutionBackend` protocol: the analytic tier
(:class:`AnalyticBackend`, closed-form phase tables) and the detailed
tier (:class:`~repro.cmp.detailed.DetailedBackend`, real instruction
streams) run the same loop, phases, and telemetry paths.
:class:`~repro.cmp.system.CMPSystem` and
:class:`~repro.cmp.detailed.DetailedMirageCluster` are thin shells
that assemble the standard pipeline; custom phases and backends slot
in alongside the standard ones (see ``docs/api.md``).

Backends are enumerable through :mod:`repro.engine.registry`: every
flavour — analytic, detailed, CG-OoO, load-delay tracking — registers
a factory under a name, and :func:`get_backend`/:func:`list_backends`
resolve names everywhere one is accepted (CLI, experiments, caches).
"""

from repro.engine.backends import (
    ENGINE_CACHE_TAG,
    VECTOR_ENV,
    VECTOR_MIN_APPS,
    AnalyticBackend,
    ExecutionBackend,
    MigrationTicket,
)
from repro.engine.lifecycle import LifecyclePhase
from repro.engine.loop import IntervalEngine
from repro.engine.phases import (
    ArbitrationPhase,
    EngineContext,
    EnginePhase,
    EnergyPhase,
    ExecutionPhase,
    MigrationPhase,
    account_migration,
)
from repro.engine.registry import (
    BackendBundle,
    BackendInfo,
    BackendSpec,
    backend_names,
    get_backend,
    list_backends,
    register_backend,
)
from repro.engine.state import AppState, ExecOutcome
from repro.engine.views import (
    AppViewBatch,
    build_app_view,
    interval_tier_views,
)

__all__ = [
    "ENGINE_CACHE_TAG",
    "VECTOR_ENV",
    "VECTOR_MIN_APPS",
    "AnalyticBackend",
    "AppState",
    "AppViewBatch",
    "ArbitrationPhase",
    "BackendBundle",
    "BackendInfo",
    "BackendSpec",
    "EngineContext",
    "EnginePhase",
    "EnergyPhase",
    "ExecOutcome",
    "ExecutionBackend",
    "ExecutionPhase",
    "IntervalEngine",
    "LifecyclePhase",
    "MigrationPhase",
    "MigrationTicket",
    "account_migration",
    "backend_names",
    "build_app_view",
    "get_backend",
    "interval_tier_views",
    "list_backends",
    "register_backend",
]
