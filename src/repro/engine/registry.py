"""The execution-backend registry: an enumerable N-way backend family.

PR 4 made the two tiers "same engine, two backends"; this module turns
the hardwired pair into a registered, discoverable matrix.  Each entry
names one :class:`~repro.engine.backends.ExecutionBackend` flavour and
knows how to assemble a complete, runnable bundle of it — backend,
apps, cluster config, migration cost model — from one declarative
:class:`BackendSpec`.  Everything that selects a backend by name (the
CLI's ``--backends``, the ``backend-matrix`` experiment,
:class:`~repro.runner.cache.ResultCache` key material,
:class:`~repro.cmp.detailed.DetailedMirageCluster`'s cycle-tier
roster) resolves through :func:`get_backend`, so an unknown name is
always a clear ``ValueError`` listing the roster, never a stray
``KeyError``.

Built-in roster:

* ``analytic`` — the interval tier:
  :class:`~repro.engine.backends.AnalyticBackend` over per-benchmark
  phase models.
* ``detailed`` — the cycle tier:
  :class:`~repro.cmp.detailed.DetailedBackend` with OinO consumers.
* ``cgooo`` — cycle tier with
  :class:`~repro.cores.cgooo.CGOoOCore` block-level consumers.
* ``ldt`` — cycle tier with load-delay-tracking OinO consumers.

Third-party code adds entries with :func:`register_backend`; see
docs/api.md for a worked example.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:
    from repro.cmp.config import ClusterConfig
    from repro.cmp.migration import MigrationCostModel
    from repro.engine.backends import ExecutionBackend
    from repro.engine.state import AppState


@dataclass(frozen=True, slots=True)
class BackendSpec:
    """Everything a registry factory needs to assemble one bundle.

    One declarative record, shared by every backend flavour so the
    ``backend-matrix`` experiment can hand the *same* spec to each
    registered factory and compare like with like.
    """

    #: Benchmark names, one consumer core each.
    benchmarks: tuple[str, ...] = ("bzip2", "astar")
    #: Workload generator seed (cycle tiers).
    seed: int = 5
    #: Instructions per engine interval/slice (cycle tiers).
    slice_instructions: int = 8_000
    #: Schedule Cache capacity in bytes.
    sc_capacity: int = 8 * 1024
    #: Migration warm-up pricing (see
    #: :data:`repro.cmp.migration.MIGRATION_COST_MODELS`).
    migration_cost_model: str = "l1-flush"


@dataclass(slots=True)
class BackendBundle:
    """A ready-to-run backend with its apps and cluster plumbing.

    Hand ``(config, apps, phases, backend=backend)`` to
    :class:`~repro.engine.loop.IntervalEngine` and run — the standard
    four-phase pipeline works unchanged for every registered flavour.
    """

    name: str                        #: registry name this came from
    tier: str                        #: "interval" or "cycle"
    backend: "ExecutionBackend"
    apps: "list[AppState]"
    config: "ClusterConfig"
    migration: "MigrationCostModel"


@dataclass(frozen=True, slots=True)
class BackendInfo:
    """One registry entry: a named, described backend factory."""

    name: str
    tier: str                        #: "interval" or "cycle"
    description: str
    factory: Callable[[BackendSpec], BackendBundle] = field(repr=False)

    def build(self, spec: BackendSpec | None = None) -> BackendBundle:
        """Assemble a runnable bundle (default spec when omitted)."""
        return self.factory(spec if spec is not None else BackendSpec())


_REGISTRY: dict[str, BackendInfo] = {}


def register_backend(
    name: str,
    factory: Callable[[BackendSpec], BackendBundle],
    *,
    tier: str = "cycle",
    description: str = "",
) -> BackendInfo:
    """Register (or replace) a backend factory under *name*.

    Returns the :class:`BackendInfo` now stored.  Re-registration
    overwrites — last writer wins, so tests can shadow a built-in
    with an instrumented variant and restore it after.
    """
    if tier not in ("interval", "cycle"):
        raise ValueError(
            f"tier must be 'interval' or 'cycle', got {tier!r}")
    info = BackendInfo(name=name, tier=tier, description=description,
                       factory=factory)
    _REGISTRY[name] = info
    return info


def get_backend(name: str) -> BackendInfo:
    """Resolve a backend name; raise a roster-listing ``ValueError``."""
    info = _REGISTRY.get(name)
    if info is None:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(
            f"unknown backend {name!r} — one of: {known} "
            f"(see 'mirage list --backends')")
    return info


def list_backends() -> list[BackendInfo]:
    """Every registered backend, sorted by name."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def backend_names() -> tuple[str, ...]:
    """The sorted roster of registered backend names."""
    return tuple(sorted(_REGISTRY))


# ---------------------------------------------------------------------
# Built-in factories.  Imports stay inside the factory bodies: the
# registry lives in repro.engine, which repro.cmp imports — the
# reverse edges must be lazy.
# ---------------------------------------------------------------------

def _analytic_factory(spec: BackendSpec) -> BackendBundle:
    """The interval tier: AnalyticBackend over phase models."""
    from repro.characterize import analytic_model
    from repro.cmp.config import ClusterConfig
    from repro.cmp.migration import make_cost_model
    from repro.engine.backends import AnalyticBackend
    from repro.engine.state import AppState

    config = ClusterConfig(
        n_consumers=len(spec.benchmarks),
        n_producers=1,
        mirage=True,
        sc_capacity_bytes=spec.sc_capacity,
        migration_cost_model=spec.migration_cost_model,
    )
    migration = make_cost_model(config)
    apps = [AppState(model=analytic_model(name))
            for name in spec.benchmarks]
    return BackendBundle(
        name="analytic", tier="interval",
        backend=AnalyticBackend(migration),
        apps=apps, config=config, migration=migration,
    )


def _cycle_factory(backend_name: str) -> Callable[
        [BackendSpec], BackendBundle]:
    """A factory closure for one cycle-tier backend class."""
    def build(spec: BackendSpec) -> BackendBundle:
        from repro.cmp.config import ClusterConfig
        from repro.cmp.detailed import CYCLE_BACKENDS
        from repro.workloads import make_benchmark

        benchmarks = [
            make_benchmark(name, seed=spec.seed, base_addr=(i + 1) << 34)
            for i, name in enumerate(spec.benchmarks)
        ]
        config = ClusterConfig(
            n_consumers=len(benchmarks),
            n_producers=1,
            mirage=True,
            sc_capacity_bytes=spec.sc_capacity,
            migration_cost_model=spec.migration_cost_model,
        )
        backend = CYCLE_BACKENDS[backend_name](
            benchmarks, config=config, sc_capacity=spec.sc_capacity,
            slice_instructions=spec.slice_instructions,
        )
        return BackendBundle(
            name=backend_name, tier="cycle", backend=backend,
            apps=backend.apps, config=config,
            migration=backend.migration,
        )
    return build


register_backend(
    "analytic", _analytic_factory, tier="interval",
    description="interval tier: analytic phase models, fused kernel",
)
register_backend(
    "detailed", _cycle_factory("detailed"), tier="cycle",
    description="cycle tier: OinO consumers replaying SC schedules",
)
register_backend(
    "cgooo", _cycle_factory("cgooo"), tier="cycle",
    description="cycle tier: CG-OoO block-window consumers",
)
register_backend(
    "ldt", _cycle_factory("ldt"), tier="cycle",
    description="cycle tier: load-delay-tracking OinO consumers",
)
