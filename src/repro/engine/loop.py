"""The thin interval loop that drives a phase pipeline.

The engine owns *when* — interval sequencing, completion detection,
per-phase wall-time profiling — the phases own *what*, and the
:class:`~repro.engine.backends.ExecutionBackend` owns *on which
substrate*.  Custom pipelines (extra phases, a phase swapped for an
ablation variant) and custom backends run through the same loop; see
``docs/api.md``.
"""

from __future__ import annotations

from time import perf_counter
from typing import TYPE_CHECKING, Sequence

from repro.engine.backends import AnalyticBackend, ExecutionBackend
from repro.engine.phases import EngineContext, EnginePhase
from repro.engine.state import AppState
from repro.telemetry.collector import Telemetry

if TYPE_CHECKING:
    from repro.cmp.config import ClusterConfig


class IntervalEngine:
    """Runs an ordered list of phases one interval at a time.

    Application state (``apps``) persists across :meth:`run` calls, so
    callers can advance a simulation in chunks (the white-box tests
    and the software-arbitrator studies do); each call gets a fresh
    :class:`~repro.engine.phases.EngineContext` whose interval index
    restarts at zero.  The execution substrate is the *backend*
    (default: a fresh :class:`~repro.engine.backends.AnalyticBackend`);
    every phase reaches it through ``ctx.backend``.
    """

    def __init__(self, config: "ClusterConfig", apps: list[AppState],
                 phases: Sequence[EnginePhase], *,
                 backend: ExecutionBackend | None = None,
                 telemetry: Telemetry | None = None):
        names = [p.name for p in phases]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate phase names: {names}")
        if backend is None:
            # Imported here: repro.cmp imports this module at package
            # import time, so the reverse import must stay lazy.
            from repro.cmp.migration import make_cost_model
            backend = AnalyticBackend(make_cost_model(config))
        self.config = config
        self.apps = apps
        self.phases = list(phases)
        self.backend = backend
        self.telemetry = telemetry or Telemetry()

    def run(self, *, max_intervals: int,
            stop_when_complete: bool = True) -> EngineContext:
        """Drive the pipeline until every app completed its budget at
        least once, or *max_intervals* elapse; returns the context.

        ``stop_when_complete=False`` disables the completion early-out
        and always runs the full *max_intervals*: scenario runs use it
        because applications arrive mid-run (an interval where every
        *current* resident has completed — or none is resident yet —
        must not end the simulation).
        """
        scale = self.config.scale
        ctx = EngineContext(
            config=self.config,
            apps=self.apps,
            telemetry=self.telemetry,
            interval=scale.interval_cycles,
            budget=scale.app_instruction_budget,
            backend=self.backend,
            ooo_share=[0] * len(self.apps),
        )
        begin_run = getattr(self.backend, "begin_run", None)
        if begin_run is not None:
            begin_run(ctx)
        profiler = self.telemetry.profiler
        psec = profiler.seconds
        pcalls = profiler.calls
        apps = self.apps
        phases = self.phases
        interval = ctx.interval
        k = 0
        while k < max_intervals:
            if stop_when_complete:
                # for/else spelling of all(a.completions >= 1): no
                # generator allocation on the per-interval hot path.
                for a in apps:
                    if a.completions < 1:
                        break
                else:
                    break
            ctx.index = k
            ctx.now = k * interval
            ctx.chosen = []
            # Recomputed every interval: a lifecycle phase may have
            # changed the population since the last pass.
            n_apps = len(apps)
            ctx.mig_cost = [0.0] * n_apps
            ctx.outcomes = [None] * n_apps
            for phase in phases:
                name = phase.name
                start = perf_counter()
                phase.run(ctx)
                psec[name] = psec.get(name, 0.0) + (
                    perf_counter() - start)
                pcalls[name] = pcalls.get(name, 0) + 1
            k += 1
        ctx.intervals = k
        self.backend.finalize(ctx)
        return ctx
