"""The composable phases of the interval engine.

``cmp/system.py``'s former monolithic loop is now a pipeline of four
phases, each owning one concern of the Mirage mechanism and reporting
through :mod:`repro.telemetry`:

1. :class:`ArbitrationPhase` — build every application's
   performance-counter view and ask the arbitrator who gets the
   producer OoO(s), possibly nobody (power-gated).
2. :class:`MigrationPhase` — charge migration costs (pipeline drain,
   L1 warm-up, SC transfer over the shared bus) to the applications
   that moved.
3. :class:`ExecutionPhase` — advance every application by the
   interval's effective cycles at the IPC its current core and
   Schedule-Cache state deliver, evolving SC coverage (refresh on the
   producer, staleness decay and phase-change invalidation on the
   consumer).
4. :class:`EnergyPhase` — integrate per-core energy; idle producers
   power-gate.

Phases communicate only through the :class:`EngineContext` and the
per-application :class:`~repro.engine.state.AppState` records, so they
can be reordered, replaced or extended (see ``docs/api.md``) without
touching the loop in :mod:`repro.engine.loop`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.engine.state import AppState, ExecOutcome
from repro.engine.views import interval_tier_views
from repro.telemetry.collector import Telemetry
from repro.telemetry.events import (
    ArbitrationRecord,
    EnergyRecord,
    IntervalRecord,
    MigrationRecord,
)

if TYPE_CHECKING:
    from repro.cmp.config import ClusterConfig
    from repro.cmp.migration import MigrationCostModel
    from repro.energy.model import CoreEnergyModel


@dataclass
class EngineContext:
    """Mutable per-run state the phases read and write.

    The loop resets the per-interval fields (``chosen``, ``mig_cost``,
    ``outcomes``) before each pipeline pass; the bookkeeping fields
    (``ooo_active_intervals``, ``ooo_share``) accumulate for the run.
    """

    config: "ClusterConfig"
    apps: list[AppState]
    telemetry: Telemetry
    interval: int                     #: cycles per arbitration interval
    budget: int                       #: per-app instruction budget
    index: int = 0                    #: current interval number
    now: int = 0                      #: cycles elapsed at interval start
    intervals: int = 0                #: intervals completed by the run
    chosen: list[int] = field(default_factory=list)
    mig_cost: list[float] = field(default_factory=list)
    outcomes: list[ExecOutcome | None] = field(default_factory=list)
    ooo_active_intervals: int = 0
    ooo_share: list[int] = field(default_factory=list)


class EnginePhase(ABC):
    """One step of the per-interval pipeline."""

    #: Telemetry/profiler label; unique within a pipeline.
    name: str = "phase"

    @abstractmethod
    def run(self, ctx: EngineContext) -> None:
        """Advance the simulation by this phase's concern."""


class ArbitrationPhase(EnginePhase):
    """Polls the arbitrator for the interval's OoO occupancy."""

    name = "arbitration"

    def __init__(self, arbitrator: Any):
        self.arbitrator = arbitrator

    def run(self, ctx: EngineContext) -> None:
        """Fill ``ctx.chosen`` with the apps granted a producer OoO."""
        cfg = ctx.config
        ctx.chosen = []
        if cfg.n_producers > 0 and self.arbitrator is not None:
            ctx.chosen = self.arbitrator.pick(
                interval_tier_views(ctx.apps), interval_index=ctx.index,
                slots=cfg.n_producers,
            )[: cfg.n_producers]
        if ctx.chosen:
            ctx.ooo_active_intervals += 1
            for i in ctx.chosen:
                ctx.ooo_share[i] += 1
        telemetry = ctx.telemetry
        telemetry.counters.bump("arbitration.granted", len(ctx.chosen))
        if not ctx.chosen and cfg.n_producers:
            telemetry.counters.bump("arbitration.gated")
        if telemetry.wants("arbitration"):
            telemetry.emit(ArbitrationRecord(
                interval=ctx.index,
                chosen=[ctx.apps[i].model.name for i in ctx.chosen],
                slots=cfg.n_producers,
            ))


class MigrationPhase(EnginePhase):
    """Charges migration costs to applications changing cores."""

    name = "migration"

    def __init__(self, cost_model: "MigrationCostModel"):
        self.migration = cost_model

    def run(self, ctx: EngineContext) -> None:
        """Charge ``ctx.mig_cost`` for every app changing core type."""
        cfg = ctx.config
        telemetry = ctx.telemetry
        for i, app in enumerate(ctx.apps):
            should_be_on = i in ctx.chosen
            if should_be_on == app.on_ooo:
                continue
            sc_bytes = 0
            if cfg.mirage:
                sc_bytes = int(app.sc_coverage * cfg.sc_capacity_bytes)
            event = self.migration.migrate(
                app.model.name, now_cycles=ctx.now,
                interval_index=ctx.index, to_ooo=should_be_on,
                sc_bytes=sc_bytes,
            )
            charged = min(ctx.interval * 0.9, event.total_cycles)
            ctx.mig_cost[i] = charged
            app.on_ooo = should_be_on
            telemetry.counters.bump("migration.count")
            telemetry.counters.bump("migration.sc_bytes", sc_bytes)
            if telemetry.wants("migration"):
                telemetry.emit(MigrationRecord(
                    interval=ctx.index,
                    app=app.model.name,
                    to_ooo=should_be_on,
                    sc_bytes=sc_bytes,
                    drain_cycles=event.drain_cycles,
                    l1_warmup_cycles=event.l1_warmup_cycles,
                    sc_transfer_cycles=event.sc_transfer_cycles,
                    bus_contention_cycles=event.bus_contention_cycles,
                    charged_cycles=charged,
                ))


class ExecutionPhase(EnginePhase):
    """Advances every application, evolving Schedule-Cache coverage."""

    name = "execution"

    def run(self, ctx: EngineContext) -> None:
        """Advance each app one interval, filling ``ctx.outcomes``."""
        wants_interval = ctx.telemetry.wants("interval")
        for i, app in enumerate(ctx.apps):
            ctx.outcomes[i] = self._advance(
                ctx, app, ctx.mig_cost[i], wants_interval)

    def _advance(self, ctx: EngineContext, app: AppState,
                 mig_cost: float, wants_interval: bool) -> ExecOutcome:
        cfg = ctx.config
        interval = ctx.interval
        budget = ctx.budget
        effective = max(0.0, interval - mig_cost)
        phase = app.model.phase_at(app.instr_done)

        if app.on_ooo:
            ipc = phase.ipc_ooo
            kind = "ooo"
            memo_frac = 0.0
            if cfg.mirage:
                # The producer refreshes the SC with this phase's
                # schedules, as far as they fit in 8 KB.
                fit = min(1.0, (cfg.sc_capacity_bytes / 1024.0)
                          / max(0.25, phase.trace_kb))
                app.sc_phase_id = phase.phase_id
                app.sc_coverage = fit
                app.sc_mpki_ooo_last = phase.sc_mpki_ooo
                sc_mpki = phase.sc_mpki_ooo
                # While memoizing, the consumer-side staleness signal
                # is satisfied: fresh schedules are being produced.
                # (Without this the app camps on the OoO, because its
                # last InO-side SC-MPKI reading stays frozen high.)
                app.sc_mpki_ino_last = phase.sc_mpki_ooo
            else:
                sc_mpki = 0.0
            app.t_ooo += effective
            app.intervals_since_ooo = 0
            app.ooo_intervals += 1
            app.ipc_ooo_last = ipc
        else:
            app.intervals_since_ooo += 1
            if cfg.mirage:
                if app.sc_phase_id == phase.phase_id:
                    app.sc_coverage *= (1.0 - phase.volatility)
                else:
                    app.sc_coverage = 0.0   # stale: schedules useless
                coverage = app.sc_coverage
                ipc = phase.ipc_oino(coverage)
                sc_mpki = phase.sc_mpki_ino(coverage)
                memo_frac = phase.memoizable * coverage
                app.t_memoized += effective * memo_frac
                kind = "oino"
            else:
                ipc = phase.ipc_ino
                sc_mpki = 0.0
                memo_frac = 0.0
                kind = "ino"

        app.ipc_last = ipc
        app.sc_mpki_ino_last = sc_mpki if not app.on_ooo else (
            app.sc_mpki_ino_last)
        app.t_total += interval

        # Progress and budget completion.
        before = app.instr_done
        app.instr_done += ipc * effective
        if (before % budget) + ipc * effective >= budget:
            app.completions += 1
            if app.first_completion_cycles is None:
                frac = (budget - before % budget) / max(
                    1e-9, ipc * effective)
                app.first_completion_cycles = (ctx.index + frac) * interval

        if wants_interval:
            alone_ipc = phase.ipc_ooo
            ctx.telemetry.emit(IntervalRecord(
                interval=ctx.index,
                app=app.model.name,
                on_ooo=app.on_ooo,
                ipc=ipc,
                speedup=min(1.0, ipc / max(1e-9, alone_ipc)),
                sc_mpki_ino=sc_mpki,
                delta_sc_mpki=(
                    (sc_mpki - (app.sc_mpki_ooo_last or 0.1))
                    / max(0.1, app.sc_mpki_ooo_last or 0.1)),
                phase_id=phase.phase_id,
            ))
        return ExecOutcome(kind=kind, ipc=ipc, memo_frac=memo_frac,
                           effective=effective)


class EnergyPhase(EnginePhase):
    """Integrates per-core energy from the execution outcomes.

    Each application is charged until it finishes its instruction
    budget once (restarted filler work is not billed, so one slow
    application cannot dominate the whole CMP's energy figure through
    its tail).
    """

    name = "energy"

    def __init__(self, energy_model: "CoreEnergyModel"):
        self.energy_model = energy_model

    def run(self, ctx: EngineContext) -> None:
        """Accumulate each app's interval energy from its outcome."""
        em = self.energy_model
        interval = ctx.interval
        telemetry = ctx.telemetry
        wants_energy = telemetry.wants("energy")
        for app, outcome in zip(ctx.apps, ctx.outcomes):
            if outcome is None:
                continue
            charged = 0.0
            if app.first_completion_cycles is None or app.completions == 0:
                if outcome.kind == "oino":
                    # Blend OinO-mode power by how much replay happened.
                    memo_frac = outcome.memo_frac
                    epi = (memo_frac * em.EPI_PJ["oino"]
                           + (1 - memo_frac) * em.EPI_PJ["ino"])
                    leak = em.leakage["ino"] + em.leakage["oino_extra"] + \
                        em.leakage["sc"]
                    charged = (leak + epi * outcome.ipc) * interval
                else:
                    charged = em.interval_energy(
                        outcome.kind, outcome.ipc, interval)
                app.energy_pj += charged
            if wants_energy:
                telemetry.emit(EnergyRecord(
                    interval=ctx.index,
                    app=app.model.name,
                    core=outcome.kind,
                    energy_pj=charged,
                ))
