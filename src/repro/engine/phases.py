"""The composable phases of the interval engine.

Both simulator tiers run the same per-interval pipeline, each phase
owning one concern of the Mirage mechanism and reporting through
:mod:`repro.telemetry`:

1. :class:`ArbitrationPhase` — build every application's
   performance-counter view (through the backend, which defaults to
   the shared Equation-3 builder) and ask the arbitrator who gets the
   producer OoO(s), possibly nobody (power-gated).
2. :class:`MigrationPhase` — decide who physically moves and route
   the cost accounting (counters plus
   :class:`~repro.telemetry.events.MigrationRecord`) through
   :func:`account_migration`; the backend performs the move, either
   immediately (analytic) or at that application's execution step
   (detailed — see :mod:`repro.engine.backends`).
3. :class:`ExecutionPhase` — advance every application one interval
   on the backend's substrate (closed-form phase tables, or real
   instructions through the detailed core models) and emit the shared
   per-interval trace record.
4. :class:`EnergyPhase` — integrate per-core energy; idle producers
   power-gate.

Phases communicate only through the :class:`EngineContext` and the
per-application :class:`~repro.engine.state.AppState` records, so they
can be reordered, replaced or extended (see ``docs/api.md``) without
touching the loop in :mod:`repro.engine.loop` — and the execution
substrate is swapped by changing ``ctx.backend``, never the pipeline.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.engine.backends import ExecutionBackend, MigrationTicket
from repro.engine.state import AppState, ExecOutcome
from repro.telemetry.collector import Telemetry
from repro.telemetry.events import (
    ArbitrationRecord,
    EnergyRecord,
    IntervalRecord,
    MigrationRecord,
)

if TYPE_CHECKING:
    from repro.cmp.config import ClusterConfig
    from repro.energy.model import CoreEnergyModel


@dataclass
class EngineContext:
    """Mutable per-run state the phases read and write.

    The loop resets the per-interval fields (``chosen``, ``mig_cost``,
    ``outcomes``) before each pipeline pass; the bookkeeping fields
    (``ooo_active_intervals``, ``ooo_share``) accumulate for the run.
    """

    config: "ClusterConfig"
    apps: list[AppState]
    telemetry: Telemetry
    interval: int                     #: cycles per arbitration interval
    budget: int                       #: per-app instruction budget
    backend: ExecutionBackend | None = None
    index: int = 0                    #: current interval number
    now: int = 0                      #: cycles elapsed at interval start
    intervals: int = 0                #: intervals completed by the run
    chosen: list[int] = field(default_factory=list)
    mig_cost: list[float] = field(default_factory=list)
    outcomes: list[ExecOutcome | None] = field(default_factory=list)
    ooo_active_intervals: int = 0
    ooo_share: list[int] = field(default_factory=list)


class EnginePhase(ABC):
    """One step of the per-interval pipeline."""

    #: Telemetry/profiler label; unique within a pipeline.
    name: str = "phase"

    @abstractmethod
    def run(self, ctx: EngineContext) -> None:
        """Advance the simulation by this phase's concern."""


def account_migration(ctx: EngineContext, app_name: str,
                      ticket: MigrationTicket) -> None:
    """The one migration-accounting path both tiers share.

    Bumps the standard counters (plus any substrate extras the ticket
    carries) and emits the :class:`MigrationRecord`; called by
    :class:`MigrationPhase` for immediate moves and by deferring
    backends when they apply a pending move.
    """
    telemetry = ctx.telemetry
    counters = telemetry.counters
    counters["migration.count"] = counters.get("migration.count", 0) + 1
    counters["migration.sc_bytes"] = (
        counters.get("migration.sc_bytes", 0) + ticket.sc_bytes)
    for name, value in ticket.counters.items():
        counters.bump(name, value)
    if telemetry.wants("migration"):
        event = ticket.event
        telemetry.emit(MigrationRecord(
            interval=ctx.index,
            app=app_name,
            to_ooo=ticket.to_ooo,
            sc_bytes=ticket.sc_bytes,
            drain_cycles=event.drain_cycles,
            l1_warmup_cycles=event.l1_warmup_cycles,
            sc_transfer_cycles=event.sc_transfer_cycles,
            bus_contention_cycles=event.bus_contention_cycles,
            charged_cycles=ticket.charged,
            l1_flush_dirty=ticket.l1_flush_dirty,
            l1_flush_lines=ticket.l1_flush_lines,
        ))


class ArbitrationPhase(EnginePhase):
    """Polls the arbitrator for the interval's OoO occupancy."""

    name = "arbitration"

    def __init__(self, arbitrator: Any):
        self.arbitrator = arbitrator

    def run(self, ctx: EngineContext) -> None:
        """Fill ``ctx.chosen`` with the apps granted a producer OoO."""
        cfg = ctx.config
        ctx.chosen = []
        if cfg.n_producers > 0 and self.arbitrator is not None:
            # Batch-first: arbitrators with a pick_batch fast path get
            # the backend's AppViewBatch; everyone else (including
            # duck-typed arbitrators or backends predating the batch
            # protocol) goes through the historical view-list surface.
            pick_batch = getattr(self.arbitrator, "pick_batch", None)
            views_batch = getattr(ctx.backend, "views_batch", None)
            if pick_batch is not None and views_batch is not None:
                ctx.chosen = pick_batch(
                    views_batch(ctx), interval_index=ctx.index,
                    slots=cfg.n_producers,
                )[: cfg.n_producers]
            else:
                ctx.chosen = self.arbitrator.pick(
                    ctx.backend.views(ctx), interval_index=ctx.index,
                    slots=cfg.n_producers,
                )[: cfg.n_producers]
        if ctx.chosen:
            ctx.ooo_active_intervals += 1
            apps = ctx.apps
            for i in ctx.chosen:
                ctx.ooo_share[i] += 1
                app = apps[i]
                if app.first_ooo_interval is None:
                    # First producer grant ever: the scenario metrics'
                    # latency-to-OoO-access clock stops here.
                    app.first_ooo_interval = ctx.index
        telemetry = ctx.telemetry
        counters = telemetry.counters
        counters["arbitration.granted"] = (
            counters.get("arbitration.granted", 0) + len(ctx.chosen))
        if not ctx.chosen and cfg.n_producers:
            counters["arbitration.gated"] = (
                counters.get("arbitration.gated", 0) + 1)
        if telemetry.wants("arbitration"):
            telemetry.emit(ArbitrationRecord(
                interval=ctx.index,
                chosen=[ctx.apps[i].display_name for i in ctx.chosen],
                slots=cfg.n_producers,
            ))


class MigrationPhase(EnginePhase):
    """Moves applications between core types, charging the cost."""

    name = "migration"

    def run(self, ctx: EngineContext) -> None:
        """Migrate every app whose core assignment changed.

        The backend performs (or schedules) the physical move; tickets
        returned immediately are accounted here, deferred ones at the
        backend's execution step.
        """
        backend = ctx.backend
        for i, app in enumerate(ctx.apps):
            should_be_on = i in ctx.chosen
            if should_be_on == app.on_ooo:
                continue
            ticket = backend.migrate(ctx, i, to_ooo=should_be_on)
            if ticket is None:
                continue    # substrate applies the move in advance()
            ctx.mig_cost[i] = ticket.charged
            account_migration(ctx, app.uid or app.model.name, ticket)


class ExecutionPhase(EnginePhase):
    """Advances every application on the backend's substrate."""

    name = "execution"

    def run(self, ctx: EngineContext) -> None:
        """Advance each app one interval, filling ``ctx.outcomes``.

        Backends with a batch kernel fill every outcome in one
        :meth:`~repro.engine.backends.ExecutionBackend.advance_all`
        call; the default loops the per-application ``advance``.
        Telemetry is emitted afterwards either way — ``advance`` never
        changes ``on_ooo``, so the records are identical.
        """
        backend = ctx.backend
        advance_all = getattr(backend, "advance_all", None)
        if advance_all is not None:
            advance_all(ctx)
        else:
            for i in range(len(ctx.apps)):
                ctx.outcomes[i] = backend.advance(ctx, i)
        if ctx.telemetry.wants("interval"):
            for i, app in enumerate(ctx.apps):
                outcome = ctx.outcomes[i]
                ref = outcome.sc_mpki_ref
                ctx.telemetry.emit(IntervalRecord(
                    interval=ctx.index,
                    app=app.display_name,
                    on_ooo=app.on_ooo,
                    ipc=outcome.ipc,
                    speedup=min(1.0, outcome.ipc
                                / max(1e-9, outcome.alone_ipc)),
                    sc_mpki_ino=outcome.sc_mpki,
                    delta_sc_mpki=(
                        (outcome.sc_mpki - (ref or 0.1))
                        / max(0.1, ref or 0.1)),
                    phase_id=outcome.phase_id,
                ))


class EnergyPhase(EnginePhase):
    """Integrates per-core energy from the execution outcomes.

    Each application is charged until it finishes its instruction
    budget once (restarted filler work is not billed, so one slow
    application cannot dominate the whole CMP's energy figure through
    its tail).  Backends that measure real cycles report them in
    :attr:`~repro.engine.state.ExecOutcome.energy_cycles`; the
    analytic tier bills the fixed interval length.
    """

    name = "energy"

    def __init__(self, energy_model: "CoreEnergyModel"):
        self.energy_model = energy_model

    def run(self, ctx: EngineContext) -> None:
        """Accumulate each app's interval energy from its outcome."""
        em = self.energy_model
        interval = ctx.interval
        telemetry = ctx.telemetry
        wants_energy = telemetry.wants("energy")
        # Constant per model instance: hoisted out of the per-app loop
        # (same values, same addition order as computing them inline).
        epi_oino = em.EPI_PJ["oino"]
        epi_ino = em.EPI_PJ["ino"]
        leak = em.leakage["ino"] + em.leakage["oino_extra"] + \
            em.leakage["sc"]
        for app, outcome in zip(ctx.apps, ctx.outcomes):
            if outcome is None:
                continue
            cycles = (outcome.energy_cycles
                      if outcome.energy_cycles is not None else interval)
            charged = 0.0
            if app.first_completion_cycles is None or app.completions == 0:
                if outcome.kind == "oino":
                    # Blend OinO-mode power by how much replay happened.
                    memo_frac = outcome.memo_frac
                    epi = (memo_frac * epi_oino
                           + (1 - memo_frac) * epi_ino)
                    charged = (leak + epi * outcome.ipc) * cycles
                else:
                    charged = em.interval_energy(
                        outcome.kind, outcome.ipc, cycles)
                app.energy_pj += charged
            if wants_energy:
                telemetry.emit(EnergyRecord(
                    interval=ctx.index,
                    app=app.display_name,
                    core=outcome.kind,
                    energy_pj=charged,
                ))
