"""Pluggable execution substrates behind the one interval loop.

The Mirage *policy* — arbitration at interval boundaries, migration
accounting, telemetry emission — lives once, in the shared
:mod:`repro.engine.phases` pipeline.  What varies between the two
simulator tiers is the *substrate* that executes an application for
one interval, and that seam is the :class:`ExecutionBackend` protocol:

* :class:`AnalyticBackend` — the interval tier's closed-form phase
  model: IPC and SC-MPKI come from per-benchmark phase tables, and
  Schedule-Cache coverage evolves analytically (refresh on the
  producer, staleness decay on the consumer).
* ``DetailedBackend`` (:mod:`repro.cmp.detailed`) — the cycle-level
  tier: real instruction streams through the detailed core models,
  a shared L2, per-core predictors/BTB, and real Schedule-Cache
  contents crossing the bus on migration.  Its ``advance`` slices are
  additionally memoized by :mod:`repro.simcache` (on by default):
  repeating a slice from a previously-seen entry state replays the
  recorded deltas instead of re-running the core models, with
  bit-identical results.

Both backends are driven by the same
:class:`~repro.engine.loop.IntervalEngine` and the same four phases,
so ``tier-validation`` is literally "same engine, two backends".

Backends also control *when* a migration's physical side effects
happen.  :meth:`ExecutionBackend.migrate` may perform the move
immediately and return a :class:`MigrationTicket` for the shared
accounting (the analytic tier does), or return ``None`` and apply the
move at the start of that application's :meth:`ExecutionBackend.advance`
(the detailed tier does: flushing the producer's L1 the moment the
*outgoing* application is processed — rather than before the incoming
one runs its first slice — is part of the measured hand-off cost).

The batch-first protocol
------------------------
The pipeline drives backends through batch entry points —
:meth:`ExecutionBackend.views_batch` hands the arbitrator an
:class:`~repro.engine.views.AppViewBatch` and
:meth:`ExecutionBackend.advance_all` executes every application for
the interval — with per-application :meth:`~ExecutionBackend.views` /
:meth:`~ExecutionBackend.advance` kept as the reference surface the
defaults delegate to.  :class:`AnalyticBackend` exploits the batch
seam twice over, with two interchangeable kernels:

* a **fused scalar kernel** (the default): the same Equation-3 /
  phase-table math as the reference :meth:`~AnalyticBackend.advance`,
  with the per-model constants precomputed once per
  ``(AppModel, SC capacity)`` into flat tuples (:func:`_model_aux`)
  and the phase walk run over precomputed spans;
* a **numpy vector kernel** for wide clusters: application state
  lives in struct-of-arrays form (:class:`_VectorState`) between
  intervals and one numpy pass advances everyone, using exact
  bit-for-bit phase-boundary thresholds (:func:`_model_thresholds`).

Both kernels are bit-identical to the reference ``advance`` — the
randomized equivalence suite in ``tests/test_vectorized.py`` holds
them to that — so kernel selection is pure mechanism: the
``vectorize=`` constructor argument wins, else the ``MIRAGE_VECTOR``
environment variable (``0``/``1``), else clusters with at least
:data:`VECTOR_MIN_APPS` applications go vectorized (one numpy pass
only amortizes its fixed per-ufunc cost on wide batches).
"""

from __future__ import annotations

import math
import os
import struct
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from functools import lru_cache
from typing import TYPE_CHECKING

from repro.characterize.phase_model import (
    OINO_REPLAY_EFFICIENCY,
    TRACES_PER_KILO_INSTR,
)
from repro.engine.state import ExecOutcome
from repro.engine.views import AppViewBatch

if TYPE_CHECKING:
    from repro.arbiter.base import AppView
    from repro.characterize.phase_model import AppModel
    from repro.cmp.migration import MigrationCostModel, MigrationEvent
    from repro.engine.phases import EngineContext

#: Engine/backend schema identifier, mixed into every
#: :class:`~repro.runner.cache.ResultCache` key: results produced by a
#: different loop/backend generation (e.g. the pre-unification bespoke
#: simulators, or the pre-batch protocol) can never be served against
#: the current engine.
ENGINE_CACHE_TAG = "interval-engine/backends-v2"

#: Environment override for the analytic kernel choice (``0``/``1``);
#: the ``vectorize=`` constructor argument is stronger, auto-width
#: selection weaker.
VECTOR_ENV = "MIRAGE_VECTOR"

#: Auto mode vectorizes clusters at least this wide.  Below it the
#: fused scalar kernel wins: a numpy pass costs a fixed ~40 ufunc
#: dispatches per interval regardless of width.
VECTOR_MIN_APPS = 32

_np = None


def _numpy():
    """Import numpy on first vector-kernel use (scalar runs never pay)."""
    global _np
    if _np is None:
        import numpy
        _np = numpy
    return _np


@dataclass(slots=True)
class MigrationTicket:
    """What one migration cost, for the shared accounting path.

    Produced by :meth:`ExecutionBackend.migrate` (analytic tier) or by
    the substrate's deferred move (detailed tier); consumed by
    :func:`repro.engine.phases.account_migration`, which turns it into
    counters and a :class:`~repro.telemetry.events.MigrationRecord`.
    """

    to_ooo: bool
    sc_bytes: int                #: SC payload shipped over the bus
    event: "MigrationEvent"      #: the cost model's breakdown
    charged: float               #: cycles actually billed to the app
    l1_flush_dirty: int = 0      #: detailed tier: dirty lines written back
    l1_flush_lines: int = 0      #: detailed tier: total lines dropped
    #: Extra substrate counters to bump alongside the standard ones.
    counters: dict = field(default_factory=dict)


class ExecutionBackend(ABC):
    """One execution substrate under the shared interval pipeline.

    The engine phases call a backend only through this interface; the
    per-application :class:`~repro.engine.state.AppState` records are
    the shared language (backends keep substrate extras — instruction
    streams, core models — on their own side of the seam).

    The pipeline prefers the batch entry points
    (:meth:`views_batch` / :meth:`advance_all`); their defaults
    delegate to the per-application :meth:`views` / :meth:`advance`,
    so a backend only implements what it can accelerate.
    """

    #: Short identifier used in logs, docs and cache keys.
    name: str = "backend"

    def begin_run(self, ctx: "EngineContext") -> None:
        """Hook run once before the loop's first interval.

        Backends that keep run-scoped acceleration state (the vector
        kernel's arrays) seed it here; stateless backends ignore it.
        """

    def views_batch(self, ctx: "EngineContext") -> AppViewBatch:
        """The arbitrator's batched counter view of every app.

        Both tiers mirror their counters into ``AppState``, so the
        state-backed batch is the default for everyone; fast-path
        arbitrators read the records directly, the rest materialize
        the historical view list from it.
        """
        return AppViewBatch.from_states(ctx.apps)

    def views(self, ctx: "EngineContext") -> "list[AppView]":
        """The per-application view list (reference surface).

        Defined in terms of :meth:`views_batch`, so overriding the
        batch is enough to change both.
        """
        return self.views_batch(ctx).views()

    @abstractmethod
    def migrate(self, ctx: "EngineContext", index: int, *,
                to_ooo: bool) -> MigrationTicket | None:
        """Move application *index* between core types.

        Return a :class:`MigrationTicket` if the move (and its cost
        accounting) happened now, or ``None`` if the substrate defers
        the physical move to its :meth:`advance` step — in which case
        the backend itself must route the eventual ticket through
        :func:`~repro.engine.phases.account_migration`.
        """

    @abstractmethod
    def advance(self, ctx: "EngineContext",
                index: int) -> "ExecOutcome":
        """Advance application *index* by one interval.

        Reads the migration charge from ``ctx.mig_cost[index]`` and
        must update the application's ``AppState`` counters (IPC,
        SC-MPKI, residency times) so the next arbitration sees them.
        """

    def advance_all(self, ctx: "EngineContext") -> None:
        """Advance every application by one interval.

        Fills ``ctx.outcomes`` in application order.  The default
        loops :meth:`advance`; backends with a batch kernel override
        this and must produce bit-identical outcomes and state.
        """
        for i in range(len(ctx.apps)):
            ctx.outcomes[i] = self.advance(ctx, i)

    def sync_apps(self, ctx: "EngineContext") -> None:
        """Flush any backend-held state into the ``AppState`` records.

        Custom phases that *read* AppState fields the backend may hold
        elsewhere (the vector kernel's arrays) call this first; for
        state-backed backends it is a no-op.
        """

    def absorb_apps(self, ctx: "EngineContext") -> None:
        """Re-read the ``AppState`` records into backend-held state.

        The write-side counterpart of :meth:`sync_apps`: custom phases
        that *mutated* AppState fields call this so the backend's next
        interval observes the edits.
        """

    def repopulate(self, ctx: "EngineContext") -> None:
        """Rebuild per-application state after a membership change.

        :meth:`absorb_apps` assumes the *same* applications in the
        same order; a lifecycle phase that admitted or retired
        applications (``ctx.apps`` changed length or order) calls this
        instead so shape-bound acceleration state (aux tables, vector
        arrays, cached view batches) is rebuilt for the new
        population.  The default re-seeds through :meth:`begin_run`.
        """
        self.begin_run(ctx)

    def finalize(self, ctx: "EngineContext") -> None:
        """Hook run once after the loop (fold substrate counters)."""


# ----------------------------------------------------------------------
# Fused scalar kernel
# ----------------------------------------------------------------------
@lru_cache(maxsize=None)
def _model_aux(model: "AppModel", sc_capacity_bytes: int):
    """Flat per-phase constant tables for one (model, SC capacity).

    Every derived constant is computed with the exact expressions the
    reference :meth:`AnalyticBackend.advance` evaluates per interval
    (:meth:`~repro.characterize.phase_model.PhaseProfile.sc_mpki_ooo`,
    the SC fit, the volatility retention factor), so kernels reading
    these tables stay bit-identical to it.  ``AppModel`` is frozen and
    hashable; equal models share one entry across runs.
    """
    pass_instr = model.pass_instructions
    spans = tuple(p.weight * pass_instr for p in model.phases)
    rows = tuple(
        (
            p.ipc_ooo,
            p.ipc_ino,
            p.memoizable,
            1.0 - p.volatility,
            min(1.0, (sc_capacity_bytes / 1024.0) / max(0.25, p.trace_kb)),
            (1.0 - p.memoizable) * TRACES_PER_KILO_INSTR,
            p.phase_id,
        )
        for p in model.phases
    )
    return pass_instr, spans, rows


def _advance_app(app, aux, interval, budget, mig_cost, mirage,
                 index) -> ExecOutcome:
    """One application-interval of the analytic model, fused.

    The same arithmetic as the reference
    :meth:`AnalyticBackend.advance`, operation for operation — only
    the per-phase constants come from *aux* (this application's
    :func:`_model_aux` tables, resolved once per run: hashing the
    nested ``AppModel`` on every lookup would dominate the kernel)
    and the phase walk runs over the precomputed spans.  The
    randomized equivalence suite asserts bit-identical
    ``ExecOutcome``/``AppState`` against the reference.
    """
    pass_instr, spans, rows = aux
    effective = interval - mig_cost
    if not effective > 0.0:
        effective = 0.0
    before = app.instr_done
    pos = before % pass_instr
    idx = 0
    last = len(spans) - 1
    while idx < last and pos >= spans[idx]:
        pos -= spans[idx]
        idx += 1
    (ipc_ooo, ipc_ino, memoizable, retain, fit, mpki_ooo,
     phase_id) = rows[idx]

    if app.on_ooo:
        ipc = ipc_ooo
        kind = "ooo"
        memo_frac = 0.0
        if mirage:
            app.sc_phase_id = phase_id
            app.sc_coverage = fit
            app.sc_mpki_ooo_last = mpki_ooo
            sc_mpki = mpki_ooo
            app.sc_mpki_ino_last = mpki_ooo
        else:
            sc_mpki = 0.0
        app.t_ooo += effective
        app.intervals_since_ooo = 0
        app.ooo_intervals += 1
        app.ipc_ooo_last = ipc
    else:
        app.intervals_since_ooo += 1
        if mirage:
            if app.sc_phase_id == phase_id:
                coverage = app.sc_coverage * retain
            else:
                coverage = 0.0
            app.sc_coverage = coverage
            covered = memoizable * coverage
            ipc = (covered * OINO_REPLAY_EFFICIENCY * ipc_ooo
                   + (1.0 - covered) * ipc_ino)
            sc_mpki = (1.0 - covered) * TRACES_PER_KILO_INSTR
            memo_frac = covered
            app.t_memoized += effective * memo_frac
            kind = "oino"
        else:
            ipc = ipc_ino
            sc_mpki = 0.0
            memo_frac = 0.0
            kind = "ino"
        app.sc_mpki_ino_last = sc_mpki

    app.ipc_last = ipc
    app.t_total += interval

    progress = ipc * effective
    app.instr_done = before + progress
    rem = before % budget
    if rem + progress >= budget:
        app.completions += 1
        if app.first_completion_cycles is None:
            denom = progress if progress > 1e-9 else 1e-9
            frac = (budget - rem) / denom
            app.first_completion_cycles = (index + frac) * interval

    # Positional: same ExecOutcome as the reference builds by keyword,
    # minus the per-call keyword-binding overhead (288k calls per run
    # on the interval-engine probe make it measurable).
    return ExecOutcome(kind, ipc, memo_frac, effective, None,
                       ipc_ooo, sc_mpki, app.sc_mpki_ooo_last, phase_id)


# ----------------------------------------------------------------------
# Vector kernel
# ----------------------------------------------------------------------
def _f2b(x: float) -> int:
    return struct.unpack("<q", struct.pack("<d", x))[0]


def _b2f(b: int) -> float:
    return struct.unpack("<d", struct.pack("<q", b))[0]


def _walk_index(pos: float, spans: tuple) -> int:
    """The reference ``phase_at`` subtraction walk, returning an index."""
    idx = 0
    last = len(spans) - 1
    while idx < last and pos >= spans[idx]:
        pos -= spans[idx]
        idx += 1
    return idx


@lru_cache(maxsize=None)
def _model_thresholds(model: "AppModel") -> tuple:
    """Exact phase-transition thresholds of ``phase_at`` for one model.

    ``phase_at`` is a monotone step function of ``pos = instr %
    pass_instructions`` (float subtraction preserves order), so for
    each phase index ``k`` there is a smallest double ``T_k`` with
    ``walk(T_k) >= k``; bisecting over the monotone non-negative
    float64 bit patterns finds it exactly, making the vectorized
    lookup ``(pos >= T).sum()`` agree with the walk *bit for bit* —
    including every rounding quirk of the sequential subtractions.
    ``inf`` marks transitions the in-range walk never reaches.
    """
    pass_instr = model.pass_instructions
    spans = tuple(p.weight * pass_instr for p in model.phases)
    top = math.nextafter(float(pass_instr), 0.0)
    out = []
    for k in range(1, len(spans)):
        if _walk_index(0.0, spans) >= k:
            out.append(0.0)
            continue
        if _walk_index(top, spans) < k:
            out.append(math.inf)
            continue
        lo, hi = 0, _f2b(top)
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if _walk_index(_b2f(mid), spans) >= k:
                hi = mid
            else:
                lo = mid
        out.append(_b2f(hi))
    return tuple(out)


class _VectorState:
    """Struct-of-arrays mirror of every ``AppState``, one run's worth.

    Between intervals the arrays are authoritative for the
    advance-owned counters; ``on_ooo``, ``completions`` and
    ``first_completion_cycles`` are additionally mirrored into the
    ``AppState`` records eagerly because the loop's early-exit test,
    the energy phase and the migration phase read them every interval.
    ``energy_pj`` never enters the arrays — the energy phase owns it.
    ``None``-valued counters are encoded as ``NaN`` (floats) so each
    column keeps one dtype; phase ids are float64 (small ints are
    exact).
    """

    __slots__ = (
        "n", "names", "pass_instr", "thresholds", "props", "arange",
        "instr_done", "completions", "first_completion", "on_ooo",
        "sc_phase_id", "sc_coverage", "ipc_last", "ipc_ooo_last",
        "sc_mpki_ino_last", "sc_mpki_ooo_last", "intervals_since_ooo",
        "t_ooo", "t_memoized", "t_total", "ooo_intervals",
    )

    def __init__(self, apps, config):
        np = _numpy()
        n = len(apps)
        self.n = n
        self.names = [a.uid or a.model.name for a in apps]
        sc_capacity = config.sc_capacity_bytes
        self.pass_instr = np.array(
            [float(a.model.pass_instructions) for a in apps])
        thresholds = [_model_thresholds(a.model) for a in apps]
        width = max(max((len(t) for t in thresholds), default=0), 1)
        tmat = np.full((n, width), math.inf)
        for i, row in enumerate(thresholds):
            tmat[i, :len(row)] = row
        self.thresholds = tmat
        depth = max(len(a.model.phases) for a in apps)
        props = np.empty((n, depth, 7))
        for i, a in enumerate(apps):
            rows = _model_aux(a.model, sc_capacity)[2]
            for j in range(depth):
                props[i, j] = rows[min(j, len(rows) - 1)]
        self.props = props
        self.arange = np.arange(n)
        self.absorb(apps)

    # ------------------------------------------------------------------
    def absorb(self, apps) -> None:
        """Load the arrays from the live ``AppState`` records."""
        np = _numpy()
        nan = math.nan
        self.instr_done = np.array([a.instr_done for a in apps])
        self.completions = np.array(
            [a.completions for a in apps], dtype=np.int64)
        self.first_completion = np.array(
            [nan if a.first_completion_cycles is None
             else a.first_completion_cycles for a in apps])
        self.on_ooo = np.array([a.on_ooo for a in apps], dtype=bool)
        self.sc_phase_id = np.array(
            [nan if a.sc_phase_id is None else float(a.sc_phase_id)
             for a in apps])
        self.sc_coverage = np.array([a.sc_coverage for a in apps])
        self.ipc_last = np.array([a.ipc_last for a in apps])
        self.ipc_ooo_last = np.array(
            [nan if a.ipc_ooo_last is None else a.ipc_ooo_last
             for a in apps])
        self.sc_mpki_ino_last = np.array(
            [a.sc_mpki_ino_last for a in apps])
        self.sc_mpki_ooo_last = np.array(
            [nan if a.sc_mpki_ooo_last is None else a.sc_mpki_ooo_last
             for a in apps])
        self.intervals_since_ooo = np.array(
            [a.intervals_since_ooo for a in apps], dtype=np.int64)
        self.t_ooo = np.array([a.t_ooo for a in apps])
        self.t_memoized = np.array([a.t_memoized for a in apps])
        self.t_total = np.array([a.t_total for a in apps])
        self.ooo_intervals = np.array(
            [a.ooo_intervals for a in apps], dtype=np.int64)

    def sync(self, apps) -> None:
        """Write the arrays back into the live ``AppState`` records."""
        instr = self.instr_done.tolist()
        comp = self.completions.tolist()
        first = self.first_completion.tolist()
        on = self.on_ooo.tolist()
        pid = self.sc_phase_id.tolist()
        cov = self.sc_coverage.tolist()
        ipc = self.ipc_last.tolist()
        ipc_ooo = self.ipc_ooo_last.tolist()
        mpki_ino = self.sc_mpki_ino_last.tolist()
        mpki_ooo = self.sc_mpki_ooo_last.tolist()
        since = self.intervals_since_ooo.tolist()
        t_ooo = self.t_ooo.tolist()
        t_memo = self.t_memoized.tolist()
        t_total = self.t_total.tolist()
        ooo_n = self.ooo_intervals.tolist()
        for i, a in enumerate(apps):
            a.instr_done = instr[i]
            a.completions = comp[i]
            f = first[i]
            a.first_completion_cycles = None if f != f else f
            a.on_ooo = on[i]
            p = pid[i]
            a.sc_phase_id = None if p != p else int(p)
            a.sc_coverage = cov[i]
            a.ipc_last = ipc[i]
            io = ipc_ooo[i]
            a.ipc_ooo_last = None if io != io else io
            a.sc_mpki_ino_last = mpki_ino[i]
            mo = mpki_ooo[i]
            a.sc_mpki_ooo_last = None if mo != mo else mo
            a.intervals_since_ooo = since[i]
            a.t_ooo = t_ooo[i]
            a.t_memoized = t_memo[i]
            a.t_total = t_total[i]
            a.ooo_intervals = ooo_n[i]

    def batch(self) -> AppViewBatch:
        """Zero-copy array-backed batch over the live columns."""
        return AppViewBatch.from_arrays(
            names=self.names,
            ipc_last=self.ipc_last,
            ipc_ooo_last=self.ipc_ooo_last,
            sc_mpki_ino=self.sc_mpki_ino_last,
            sc_mpki_ooo=self.sc_mpki_ooo_last,
            intervals_since_ooo=self.intervals_since_ooo,
            on_ooo=self.on_ooo,
            t_ooo=self.t_ooo,
            t_memoized=self.t_memoized,
            t_total=self.t_total,
        )


class AnalyticBackend(ExecutionBackend):
    """The interval tier's closed-form substrate (paper section 4.1).

    Execution advances every application by the interval's effective
    cycles at the IPC its current core and Schedule-Cache state
    deliver; migrations are priced by the
    :class:`~repro.cmp.migration.MigrationCostModel` and charged
    against the interval (capped at 90 % of it).

    ``vectorize`` selects the :meth:`advance_all` kernel: ``True`` /
    ``False`` force the numpy vector or fused scalar kernel, ``None``
    (the default) defers to ``MIRAGE_VECTOR`` and then to cluster
    width (at least :data:`VECTOR_MIN_APPS` applications go
    vectorized).  Either way :meth:`advance` remains the reference
    implementation and every kernel is bit-identical to it.
    """

    name = "analytic"

    def __init__(self, cost_model: "MigrationCostModel", *,
                 vectorize: bool | None = None):
        self.migration = cost_model
        self.vectorize = vectorize
        self._vec: _VectorState | None = None
        self._aux: list | None = None     #: per-app _model_aux, per run
        self._batch: AppViewBatch | None = None
        self._batch_src: list | None = None

    # ------------------------------------------------------------------
    def _use_vector(self, n_apps: int) -> bool:
        if self.vectorize is not None:
            return bool(self.vectorize)
        env = os.environ.get(VECTOR_ENV)
        if env is not None:
            return env != "0"
        return n_apps >= VECTOR_MIN_APPS

    def begin_run(self, ctx: "EngineContext") -> None:
        """Seed this run's kernel state (aux tables or vector arrays)."""
        sc_capacity = ctx.config.sc_capacity_bytes
        self._aux = [_model_aux(a.model, sc_capacity) for a in ctx.apps]
        self._batch = None
        self._batch_src = None
        if self._use_vector(len(ctx.apps)):
            self._vec = _VectorState(ctx.apps, ctx.config)
        else:
            self._vec = None

    def views_batch(self, ctx: "EngineContext") -> AppViewBatch:
        """Array-backed batch under the vector kernel, else state-backed."""
        if self._vec is not None:
            return self._vec.batch()
        # The state-backed batch only holds references to the live
        # AppState records, so one instance serves the whole run (the
        # engine never changes the membership of ctx.apps mid-run).
        if self._batch is None or self._batch_src is not ctx.apps:
            self._batch = AppViewBatch.from_states(ctx.apps)
            self._batch_src = ctx.apps
        return self._batch

    def sync_apps(self, ctx: "EngineContext") -> None:
        """Flush the vector kernel's arrays into the ``AppState``s."""
        if self._vec is not None:
            self._vec.sync(ctx.apps)

    def absorb_apps(self, ctx: "EngineContext") -> None:
        """Reload the vector kernel's arrays from the ``AppState``s."""
        if self._vec is not None:
            self._vec.absorb(ctx.apps)

    def finalize(self, ctx: "EngineContext") -> None:
        """Flush vector-kernel state so results read from ``AppState``."""
        if self._vec is not None:
            self._vec.sync(ctx.apps)

    # ------------------------------------------------------------------
    def migrate(self, ctx: "EngineContext", index: int, *,
                to_ooo: bool) -> MigrationTicket:
        """Price the move now and charge it against this interval."""
        app = ctx.apps[index]
        cfg = ctx.config
        vec = self._vec
        sc_bytes = 0
        if cfg.mirage:
            coverage = (app.sc_coverage if vec is None
                        else vec.sc_coverage[index])
            sc_bytes = int(coverage * cfg.sc_capacity_bytes)
        event = self.migration.migrate(
            app.model.name, now_cycles=ctx.now,
            interval_index=ctx.index, to_ooo=to_ooo,
            sc_bytes=sc_bytes,
        )
        # Inlined event.total_cycles (a property summing these four),
        # and min() spelled as a conditional: identical charge.
        total = (event.drain_cycles + event.l1_warmup_cycles
                 + event.sc_transfer_cycles + event.bus_contention_cycles)
        cap = ctx.interval * 0.9
        charged = cap if cap < total else total
        app.on_ooo = to_ooo
        if vec is not None:
            vec.on_ooo[index] = to_ooo
        return MigrationTicket(to_ooo, sc_bytes, event, charged)

    # ------------------------------------------------------------------
    def advance(self, ctx: "EngineContext",
                index: int) -> "ExecOutcome":
        """One interval of the analytic phase-table model (reference)."""
        vec = self._vec
        if vec is not None:
            # Array-authoritative state: route the single-app call
            # through the records so any kernel mix stays coherent.
            vec.sync(ctx.apps)
            try:
                return self._advance_state(ctx, index)
            finally:
                vec.absorb(ctx.apps)
        return self._advance_state(ctx, index)

    def _advance_state(self, ctx: "EngineContext",
                       index: int) -> "ExecOutcome":
        app = ctx.apps[index]
        cfg = ctx.config
        interval = ctx.interval
        budget = ctx.budget
        effective = max(0.0, interval - ctx.mig_cost[index])
        phase = app.model.phase_at(app.instr_done)

        if app.on_ooo:
            ipc = phase.ipc_ooo
            kind = "ooo"
            memo_frac = 0.0
            if cfg.mirage:
                # The producer refreshes the SC with this phase's
                # schedules, as far as they fit in 8 KB.
                fit = min(1.0, (cfg.sc_capacity_bytes / 1024.0)
                          / max(0.25, phase.trace_kb))
                app.sc_phase_id = phase.phase_id
                app.sc_coverage = fit
                app.sc_mpki_ooo_last = phase.sc_mpki_ooo
                sc_mpki = phase.sc_mpki_ooo
                # While memoizing, the consumer-side staleness signal
                # is satisfied: fresh schedules are being produced.
                # (Without this the app camps on the OoO, because its
                # last InO-side SC-MPKI reading stays frozen high.)
                app.sc_mpki_ino_last = phase.sc_mpki_ooo
            else:
                sc_mpki = 0.0
            app.t_ooo += effective
            app.intervals_since_ooo = 0
            app.ooo_intervals += 1
            app.ipc_ooo_last = ipc
        else:
            app.intervals_since_ooo += 1
            if cfg.mirage:
                if app.sc_phase_id == phase.phase_id:
                    app.sc_coverage *= (1.0 - phase.volatility)
                else:
                    app.sc_coverage = 0.0   # stale: schedules useless
                coverage = app.sc_coverage
                ipc = phase.ipc_oino(coverage)
                sc_mpki = phase.sc_mpki_ino(coverage)
                memo_frac = phase.memoizable * coverage
                app.t_memoized += effective * memo_frac
                kind = "oino"
            else:
                ipc = phase.ipc_ino
                sc_mpki = 0.0
                memo_frac = 0.0
                kind = "ino"

        app.ipc_last = ipc
        app.sc_mpki_ino_last = sc_mpki if not app.on_ooo else (
            app.sc_mpki_ino_last)
        app.t_total += interval

        # Progress and budget completion.
        before = app.instr_done
        app.instr_done += ipc * effective
        if (before % budget) + ipc * effective >= budget:
            app.completions += 1
            if app.first_completion_cycles is None:
                frac = (budget - before % budget) / max(
                    1e-9, ipc * effective)
                app.first_completion_cycles = (ctx.index + frac) * interval

        return ExecOutcome(
            kind=kind, ipc=ipc, memo_frac=memo_frac, effective=effective,
            alone_ipc=phase.ipc_ooo, sc_mpki=sc_mpki,
            sc_mpki_ref=app.sc_mpki_ooo_last, phase_id=phase.phase_id,
        )

    # ------------------------------------------------------------------
    def advance_all(self, ctx: "EngineContext") -> None:
        """Advance everyone with the selected bit-identical kernel."""
        if self._vec is not None:
            self._advance_all_vector(ctx)
            return
        interval = ctx.interval
        budget = ctx.budget
        cfg = ctx.config
        mirage = cfg.mirage
        aux = self._aux
        if aux is None or len(aux) != len(ctx.apps):
            # Driven without begin_run (direct API use): resolve the
            # tables for this call only — correct, just not cached.
            sc_capacity = cfg.sc_capacity_bytes
            aux = [_model_aux(a.model, sc_capacity) for a in ctx.apps]
        mig = ctx.mig_cost
        outcomes = ctx.outcomes
        index = ctx.index
        adv = _advance_app
        for i, app in enumerate(ctx.apps):
            outcomes[i] = adv(
                app, aux[i], interval, budget, mig[i], mirage, index)

    def _advance_all_vector(self, ctx: "EngineContext") -> None:
        """One numpy pass over every application (bit-identical).

        Elementwise float64 ufuncs are IEEE-754-identical to the
        corresponding CPython operations, per-element evaluation
        order/grouping matches the reference expression for expression,
        and the phase lookup uses the exact thresholds of
        :func:`_model_thresholds` — so the arrays evolve bit for bit
        as the scalar kernels would evolve the records.
        """
        np = _numpy()
        v = self._vec
        cfg = ctx.config
        mirage = cfg.mirage
        interval = ctx.interval
        budget = ctx.budget
        mig = np.array(ctx.mig_cost)
        effective = np.maximum(0.0, interval - mig)

        pos = np.mod(v.instr_done, v.pass_instr)
        idx = (pos[:, None] >= v.thresholds).sum(axis=1)
        props = v.props[v.arange, idx]
        p_ipc_ooo = props[:, 0]
        p_ipc_ino = props[:, 1]
        p_memo = props[:, 2]
        p_retain = props[:, 3]
        p_fit = props[:, 4]
        p_mpki_ooo = props[:, 5]
        p_phase_id = props[:, 6]

        on = v.on_ooo
        if mirage:
            same = v.sc_phase_id == p_phase_id
            cov_cons = np.where(same, v.sc_coverage * p_retain, 0.0)
            covered = p_memo * cov_cons
            ipc_cons = (covered * OINO_REPLAY_EFFICIENCY * p_ipc_ooo
                        + (1.0 - covered) * p_ipc_ino)
            mpki_cons = (1.0 - covered) * TRACES_PER_KILO_INSTR
            memo_frac = np.where(on, 0.0, covered)
            ipc = np.where(on, p_ipc_ooo, ipc_cons)
            sc_mpki = np.where(on, p_mpki_ooo, mpki_cons)
            v.sc_phase_id = np.where(on, p_phase_id, v.sc_phase_id)
            v.sc_coverage = np.where(on, p_fit, cov_cons)
            v.sc_mpki_ooo_last = np.where(
                on, p_mpki_ooo, v.sc_mpki_ooo_last)
            v.sc_mpki_ino_last = np.where(on, p_mpki_ooo, mpki_cons)
            v.t_memoized = np.where(
                on, v.t_memoized, v.t_memoized + effective * memo_frac)
        else:
            ipc = np.where(on, p_ipc_ooo, p_ipc_ino)
            sc_mpki = np.zeros(v.n)
            memo_frac = np.zeros(v.n)
            v.sc_mpki_ino_last = np.where(on, v.sc_mpki_ino_last, 0.0)
        v.t_ooo = np.where(on, v.t_ooo + effective, v.t_ooo)
        v.intervals_since_ooo = np.where(
            on, 0, v.intervals_since_ooo + 1)
        v.ooo_intervals = v.ooo_intervals + on
        v.ipc_ooo_last = np.where(on, p_ipc_ooo, v.ipc_ooo_last)
        v.ipc_last = ipc
        v.t_total = v.t_total + interval

        before = v.instr_done
        progress = ipc * effective
        v.instr_done = before + progress
        rem = np.mod(before, budget)
        completed = rem + progress >= budget
        if completed.any():
            v.completions = v.completions + completed
            new_first = completed & np.isnan(v.first_completion)
            if new_first.any():
                frac = (budget - rem) / np.maximum(1e-9, progress)
                first = (ctx.index + frac) * interval
                v.first_completion = np.where(
                    new_first, first, v.first_completion)
            # Eager mirror: the loop's early-exit test and the energy
            # phase read completion state from the records directly.
            comp = v.completions.tolist()
            fc = v.first_completion.tolist()
            apps = ctx.apps
            for i in np.nonzero(completed)[0].tolist():
                apps[i].completions = comp[i]
                f = fc[i]
                apps[i].first_completion_cycles = None if f != f else f

        ipc_l = ipc.tolist()
        memo_l = memo_frac.tolist()
        eff_l = effective.tolist()
        mpki_l = sc_mpki.tolist()
        ref_l = v.sc_mpki_ooo_last.tolist()
        alone_l = p_ipc_ooo.tolist()
        pid_l = p_phase_id.tolist()
        on_l = on.tolist()
        outcomes = ctx.outcomes
        for i in range(v.n):
            if on_l[i]:
                kind = "ooo"
            elif mirage:
                kind = "oino"
            else:
                kind = "ino"
            ref = ref_l[i]
            outcomes[i] = ExecOutcome(
                kind=kind, ipc=ipc_l[i], memo_frac=memo_l[i],
                effective=eff_l[i], alone_ipc=alone_l[i],
                sc_mpki=mpki_l[i],
                sc_mpki_ref=(None if ref != ref else ref),
                phase_id=int(pid_l[i]),
            )
