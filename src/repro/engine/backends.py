"""Pluggable execution substrates behind the one interval loop.

The Mirage *policy* — arbitration at interval boundaries, migration
accounting, telemetry emission — lives once, in the shared
:mod:`repro.engine.phases` pipeline.  What varies between the two
simulator tiers is the *substrate* that executes an application for
one interval, and that seam is the :class:`ExecutionBackend` protocol:

* :class:`AnalyticBackend` — the interval tier's closed-form phase
  model: IPC and SC-MPKI come from per-benchmark phase tables, and
  Schedule-Cache coverage evolves analytically (refresh on the
  producer, staleness decay on the consumer).
* ``DetailedBackend`` (:mod:`repro.cmp.detailed`) — the cycle-level
  tier: real instruction streams through the detailed core models,
  a shared L2, per-core predictors/BTB, and real Schedule-Cache
  contents crossing the bus on migration.  Its ``advance`` slices are
  additionally memoized by :mod:`repro.simcache` (on by default):
  repeating a slice from a previously-seen entry state replays the
  recorded deltas instead of re-running the core models, with
  bit-identical results.

Both backends are driven by the same
:class:`~repro.engine.loop.IntervalEngine` and the same four phases,
so ``tier-validation`` is literally "same engine, two backends".

Backends also control *when* a migration's physical side effects
happen.  :meth:`ExecutionBackend.migrate` may perform the move
immediately and return a :class:`MigrationTicket` for the shared
accounting (the analytic tier does), or return ``None`` and apply the
move at the start of that application's :meth:`ExecutionBackend.advance`
(the detailed tier does: flushing the producer's L1 the moment the
*outgoing* application is processed — rather than before the incoming
one runs its first slice — is part of the measured hand-off cost).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.engine.state import ExecOutcome
from repro.engine.views import interval_tier_views

if TYPE_CHECKING:
    from repro.arbiter.base import AppView
    from repro.cmp.migration import MigrationCostModel, MigrationEvent
    from repro.engine.phases import EngineContext

#: Engine/backend schema identifier, mixed into every
#: :class:`~repro.runner.cache.ResultCache` key: results produced by a
#: different loop/backend generation (e.g. the pre-unification bespoke
#: simulators) can never be served against the unified engine.
ENGINE_CACHE_TAG = "interval-engine/backends-v1"


@dataclass(slots=True)
class MigrationTicket:
    """What one migration cost, for the shared accounting path.

    Produced by :meth:`ExecutionBackend.migrate` (analytic tier) or by
    the substrate's deferred move (detailed tier); consumed by
    :func:`repro.engine.phases.account_migration`, which turns it into
    counters and a :class:`~repro.telemetry.events.MigrationRecord`.
    """

    to_ooo: bool
    sc_bytes: int                #: SC payload shipped over the bus
    event: "MigrationEvent"      #: the cost model's breakdown
    charged: float               #: cycles actually billed to the app
    l1_flush_dirty: int = 0      #: detailed tier: dirty lines written back
    l1_flush_lines: int = 0      #: detailed tier: total lines dropped
    #: Extra substrate counters to bump alongside the standard ones.
    counters: dict = field(default_factory=dict)


class ExecutionBackend(ABC):
    """One execution substrate under the shared interval pipeline.

    The engine phases call a backend only through this interface; the
    per-application :class:`~repro.engine.state.AppState` records are
    the shared language (backends keep substrate extras — instruction
    streams, core models — on their own side of the seam).
    """

    #: Short identifier used in logs, docs and cache keys.
    name: str = "backend"

    def views(self, ctx: "EngineContext") -> "list[AppView]":
        """The arbitrator's performance-counter view of every app.

        Both tiers mirror their counters into ``AppState``, so the
        shared Equation-3 builder is the default for everyone.
        """
        return interval_tier_views(ctx.apps)

    @abstractmethod
    def migrate(self, ctx: "EngineContext", index: int, *,
                to_ooo: bool) -> MigrationTicket | None:
        """Move application *index* between core types.

        Return a :class:`MigrationTicket` if the move (and its cost
        accounting) happened now, or ``None`` if the substrate defers
        the physical move to its :meth:`advance` step — in which case
        the backend itself must route the eventual ticket through
        :func:`~repro.engine.phases.account_migration`.
        """

    @abstractmethod
    def advance(self, ctx: "EngineContext",
                index: int) -> "ExecOutcome":
        """Advance application *index* by one interval.

        Reads the migration charge from ``ctx.mig_cost[index]`` and
        must update the application's ``AppState`` counters (IPC,
        SC-MPKI, residency times) so the next arbitration sees them.
        """

    def finalize(self, ctx: "EngineContext") -> None:
        """Hook run once after the loop (fold substrate counters)."""


class AnalyticBackend(ExecutionBackend):
    """The interval tier's closed-form substrate (paper section 4.1).

    Execution advances every application by the interval's effective
    cycles at the IPC its current core and Schedule-Cache state
    deliver; migrations are priced by the
    :class:`~repro.cmp.migration.MigrationCostModel` and charged
    against the interval (capped at 90 % of it).
    """

    name = "analytic"

    def __init__(self, cost_model: "MigrationCostModel"):
        self.migration = cost_model

    def migrate(self, ctx: "EngineContext", index: int, *,
                to_ooo: bool) -> MigrationTicket:
        """Price the move now and charge it against this interval."""
        app = ctx.apps[index]
        cfg = ctx.config
        sc_bytes = 0
        if cfg.mirage:
            sc_bytes = int(app.sc_coverage * cfg.sc_capacity_bytes)
        event = self.migration.migrate(
            app.model.name, now_cycles=ctx.now,
            interval_index=ctx.index, to_ooo=to_ooo,
            sc_bytes=sc_bytes,
        )
        charged = min(ctx.interval * 0.9, event.total_cycles)
        app.on_ooo = to_ooo
        return MigrationTicket(to_ooo=to_ooo, sc_bytes=sc_bytes,
                               event=event, charged=charged)

    def advance(self, ctx: "EngineContext",
                index: int) -> "ExecOutcome":
        """One interval of the analytic phase-table model."""
        app = ctx.apps[index]
        cfg = ctx.config
        interval = ctx.interval
        budget = ctx.budget
        effective = max(0.0, interval - ctx.mig_cost[index])
        phase = app.model.phase_at(app.instr_done)

        if app.on_ooo:
            ipc = phase.ipc_ooo
            kind = "ooo"
            memo_frac = 0.0
            if cfg.mirage:
                # The producer refreshes the SC with this phase's
                # schedules, as far as they fit in 8 KB.
                fit = min(1.0, (cfg.sc_capacity_bytes / 1024.0)
                          / max(0.25, phase.trace_kb))
                app.sc_phase_id = phase.phase_id
                app.sc_coverage = fit
                app.sc_mpki_ooo_last = phase.sc_mpki_ooo
                sc_mpki = phase.sc_mpki_ooo
                # While memoizing, the consumer-side staleness signal
                # is satisfied: fresh schedules are being produced.
                # (Without this the app camps on the OoO, because its
                # last InO-side SC-MPKI reading stays frozen high.)
                app.sc_mpki_ino_last = phase.sc_mpki_ooo
            else:
                sc_mpki = 0.0
            app.t_ooo += effective
            app.intervals_since_ooo = 0
            app.ooo_intervals += 1
            app.ipc_ooo_last = ipc
        else:
            app.intervals_since_ooo += 1
            if cfg.mirage:
                if app.sc_phase_id == phase.phase_id:
                    app.sc_coverage *= (1.0 - phase.volatility)
                else:
                    app.sc_coverage = 0.0   # stale: schedules useless
                coverage = app.sc_coverage
                ipc = phase.ipc_oino(coverage)
                sc_mpki = phase.sc_mpki_ino(coverage)
                memo_frac = phase.memoizable * coverage
                app.t_memoized += effective * memo_frac
                kind = "oino"
            else:
                ipc = phase.ipc_ino
                sc_mpki = 0.0
                memo_frac = 0.0
                kind = "ino"

        app.ipc_last = ipc
        app.sc_mpki_ino_last = sc_mpki if not app.on_ooo else (
            app.sc_mpki_ino_last)
        app.t_total += interval

        # Progress and budget completion.
        before = app.instr_done
        app.instr_done += ipc * effective
        if (before % budget) + ipc * effective >= budget:
            app.completions += 1
            if app.first_completion_cycles is None:
                frac = (budget - before % budget) / max(
                    1e-9, ipc * effective)
                app.first_completion_cycles = (ctx.index + frac) * interval

        return ExecOutcome(
            kind=kind, ipc=ipc, memo_frac=memo_frac, effective=effective,
            alone_ipc=phase.ipc_ooo, sc_mpki=sc_mpki,
            sc_mpki_ref=app.sc_mpki_ooo_last, phase_id=phase.phase_id,
        )
