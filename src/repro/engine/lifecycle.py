"""Mid-run application admission and retirement.

:class:`LifecyclePhase` is the engine phase that turns a static
fixed-population pipeline into a dynamic one: placed *first* in the
pipeline, it applies a scenario schedule's departures and arrivals at
each interval boundary before arbitration sees the population.

The contract with the rest of the engine:

* On any membership change the phase first calls
  :meth:`~repro.engine.backends.ExecutionBackend.sync_apps` (so
  backend-held state — the vector kernel's arrays — lands in the
  ``AppState`` records), mutates ``ctx.apps`` and the per-app context
  lists in lockstep, then calls
  :meth:`~repro.engine.backends.ExecutionBackend.repopulate` so the
  backend rebuilds its shape-bound acceleration state.
* Departures are processed before arrivals at the same interval, so a
  retiring application frees its consumer core for a same-interval
  admission (the global scheduler's capacity model assumes exactly
  this order).
* An application with ``depart_interval=k`` runs intervals
  ``[arrive, k)`` — it is retired at the *start* of interval ``k``
  and its residency is ``k - arrived_interval``.
* On intervals with no scheduled events the phase returns before
  touching the backend, so a static schedule (the degenerate
  :class:`~repro.workloads.scenario.Scenario`) drives the engine
  through the byte-identical fixed-population path.

Each event bumps the ``lifecycle.arrivals`` / ``lifecycle.departures``
counters and, when the telemetry hub subscribes to the kind, emits a
typed :class:`~repro.telemetry.events.LifecycleRecord`.
"""

from __future__ import annotations

from typing import Callable

from repro.engine.phases import EngineContext, EnginePhase
from repro.engine.state import AppState
from repro.telemetry.events import LifecycleRecord

#: Signature of the retirement callback: ``(app, ctx)`` at the moment
#: the application leaves ``ctx.apps`` (its counters are final).
RetireHook = Callable[[AppState, EngineContext], None]


class LifecyclePhase(EnginePhase):
    """Admits and retires applications at interval boundaries.

    Args:
        arrivals: map of interval index to the ``AppState`` records
            admitted at that interval (each record carries its own
            ``uid`` / ``arrived_interval`` / ``depart_interval``).
            Consumed as the run progresses; records for interval 0
            should instead be placed in the engine's initial app list
            and passed as *announce*.
        announce: initial residents to report as interval-0 arrivals
            (records only — they are already in ``ctx.apps``).
        on_retire: optional callback invoked for every retired
            application right after it leaves ``ctx.apps``.
        cluster: label stamped into every
            :class:`~repro.telemetry.events.LifecycleRecord`.
    """

    name = "lifecycle"

    def __init__(self, arrivals: dict[int, list[AppState]] | None = None,
                 *, announce: list[AppState] | None = None,
                 on_retire: RetireHook | None = None,
                 cluster: str = ""):
        self.arrivals = {k: list(v) for k, v in (arrivals or {}).items()}
        self.announce = list(announce or [])
        self.on_retire = on_retire
        self.cluster = cluster

    # ------------------------------------------------------------------
    def _emit(self, ctx: EngineContext, app: AppState, event: str) -> None:
        telemetry = ctx.telemetry
        counters = telemetry.counters
        key = ("lifecycle.arrivals" if event == "arrive"
               else "lifecycle.departures")
        counters[key] = counters.get(key, 0) + 1
        if telemetry.wants("lifecycle"):
            residency = (ctx.index - app.arrived_interval
                         if event == "depart" else 0)
            telemetry.emit(LifecycleRecord(
                interval=ctx.index,
                app=app.display_name,
                event=event,
                benchmark=app.model.name,
                cluster=self.cluster,
                resident=len(ctx.apps),
                completions=app.completions if event == "depart" else 0,
                residency_intervals=residency,
            ))

    # ------------------------------------------------------------------
    def run(self, ctx: EngineContext) -> None:
        """Apply this interval's departures, then its arrivals."""
        index = ctx.index
        if index == 0 and self.announce:
            # Initial residents live in ctx.apps already (the static
            # path depends on that); they are only reported here.
            for app in self.announce:
                self._emit(ctx, app, "arrive")
            self.announce = []
        apps = ctx.apps
        leaving = [
            i for i, a in enumerate(apps)
            if a.depart_interval is not None and a.depart_interval <= index
        ]
        arriving = self.arrivals.pop(index, None)
        if not leaving and not arriving:
            return
        backend = ctx.backend
        # Backend-held counters become authoritative AppState values
        # before anything is summarized or the membership changes.
        backend.sync_apps(ctx)
        for i in reversed(leaving):
            app = apps.pop(i)
            del ctx.ooo_share[i]
            self._emit(ctx, app, "depart")
            if self.on_retire is not None:
                self.on_retire(app, ctx)
        for app in arriving or ():
            app.arrived_interval = index
            apps.append(app)
            ctx.ooo_share.append(0)
            self._emit(ctx, app, "arrive")
        # Per-interval context lists must track the new population for
        # the phases running after this one in the same interval.
        n = len(apps)
        ctx.mig_cost = [0.0] * n
        ctx.outcomes = [None] * n
        backend.repopulate(ctx)
