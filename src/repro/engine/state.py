"""Mutable per-application state the engine phases read and write."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.characterize.phase_model import AppModel


@dataclass(slots=True)
class AppState:
    """One application's simulation state across intervals.

    Every engine phase owns a slice of these fields: arbitration reads
    the performance counters, migration toggles ``on_ooo``, execution
    advances progress and Schedule-Cache state, energy accumulates
    ``energy_pj``.
    """

    model: "AppModel"
    instr_done: float = 0.0
    completions: int = 0
    first_completion_cycles: float | None = None
    on_ooo: bool = False
    # Lifecycle identity and residency (scenario runs; static runs
    # keep the defaults and an empty uid means "use model.name").
    uid: str = ""
    arrived_interval: int = 0
    depart_interval: int | None = None
    first_ooo_interval: int | None = None
    # Schedule Cache state (Mirage consumers only).
    sc_phase_id: int | None = None
    sc_coverage: float = 0.0
    # Performance counters the arbitrator polls.
    ipc_last: float = 0.0
    ipc_ooo_last: float | None = None
    sc_mpki_ino_last: float = 0.0
    sc_mpki_ooo_last: float | None = None
    intervals_since_ooo: int = 10**9
    # Utilization bookkeeping (Equation 3).
    t_ooo: float = 0.0
    t_memoized: float = 0.0
    t_total: float = 0.0
    ooo_intervals: int = 0
    energy_pj: float = 0.0

    @property
    def display_name(self) -> str:
        """The engine-visible application name.

        The scenario uid when one was assigned (unique within a
        dynamic run), else the model's benchmark name — so static
        runs are byte-identical to the pre-lifecycle engine.
        """
        return self.uid or self.model.name


@dataclass(slots=True)
class ExecOutcome:
    """What one :meth:`~repro.engine.backends.ExecutionBackend.advance`
    call computed for one application this interval.

    The first four fields drive the energy phase; the rest are the
    ingredients the shared :class:`~repro.engine.phases.ExecutionPhase`
    needs to emit the tier-agnostic
    :class:`~repro.telemetry.events.IntervalRecord` — each backend
    fills them from its own notion of "reference IPC" and "SC-MPKI"
    (analytic phase tables vs measured Schedule-Cache counters).
    """

    kind: str           #: core mode executed: "ooo" | "ino" | "oino"
    ipc: float
    memo_frac: float    #: fraction of the interval replayed from the SC
    effective: float    #: cycles left after the migration charge
    #: Substrate-measured cycles to bill for energy; ``None`` means
    #: "the fixed interval length" (the analytic tier's convention).
    energy_cycles: float | None = None
    # IntervalRecord ingredients (see ExecutionPhase).
    alone_ipc: float = 0.0       #: reference IPC alone on a private OoO
    sc_mpki: float = 0.0         #: the SC-MPKI signal to trace
    sc_mpki_ref: float | None = None  #: Equation-1 OoO-side reference
    phase_id: int = -1           #: -1 where no phase model exists
