"""Mutable per-application state the engine phases read and write."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.characterize.phase_model import AppModel


@dataclass(slots=True)
class AppState:
    """One application's simulation state across intervals.

    Every engine phase owns a slice of these fields: arbitration reads
    the performance counters, migration toggles ``on_ooo``, execution
    advances progress and Schedule-Cache state, energy accumulates
    ``energy_pj``.
    """

    model: "AppModel"
    instr_done: float = 0.0
    completions: int = 0
    first_completion_cycles: float | None = None
    on_ooo: bool = False
    # Schedule Cache state (Mirage consumers only).
    sc_phase_id: int | None = None
    sc_coverage: float = 0.0
    # Performance counters the arbitrator polls.
    ipc_last: float = 0.0
    ipc_ooo_last: float | None = None
    sc_mpki_ino_last: float = 0.0
    sc_mpki_ooo_last: float | None = None
    intervals_since_ooo: int = 10**9
    # Utilization bookkeeping (Equation 3).
    t_ooo: float = 0.0
    t_memoized: float = 0.0
    t_total: float = 0.0
    ooo_intervals: int = 0
    energy_pj: float = 0.0


@dataclass(slots=True)
class ExecOutcome:
    """What :class:`~repro.engine.phases.ExecutionPhase` computed for
    one application this interval; consumed by the energy phase."""

    kind: str           #: core mode executed: "ooo" | "ino" | "oino"
    ipc: float
    memo_frac: float    #: fraction of the interval replayed from the SC
    effective: float    #: cycles left after the migration charge
