"""Trace detection.

Traces are delimited by *backward* branches: a taken branch whose
target is at or before its own pc ends the current trace (the branch is
included).  The trace's identity is its start pc plus the outcome path
of every branch inside it — the same loop body traversed along a
different internal path is a different trace, and a memoized schedule
only replays when the dynamic path matches.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instructions import Instruction

_HASH_MASK = (1 << 61) - 1


def _mix(h: int, value: int) -> int:
    """One step of a simple deterministic polynomial hash chain."""
    return ((h * 1_000_003) ^ value) & _HASH_MASK


@dataclass(slots=True)
class Trace:
    """One dynamic trace instance."""

    start_pc: int
    path_hash: int
    instructions: list[Instruction]

    @property
    def key(self) -> tuple[int, int]:
        """Identity used for schedule matching: (start pc, path)."""
        return (self.start_pc, self.path_hash)

    def __len__(self) -> int:
        return len(self.instructions)

    @property
    def num_mem_ops(self) -> int:
        return sum(1 for i in self.instructions if i.is_mem)

    @property
    def num_branches(self) -> int:
        return sum(1 for i in self.instructions if i.is_branch)

    def storage_bytes(self, metadata_bytes: int = 20) -> int:
        """Schedule Cache footprint: instructions + memory-order block.

        The paper charges 20 B of metadata per recorded schedule for
        the program-sequence ordering of memory operations.
        """
        return 4 * len(self.instructions) + metadata_bytes


class TraceBuilder:
    """Incremental trace segmentation over an instruction stream."""

    def __init__(self) -> None:
        self._pending: list[Instruction] = []
        self._path = 0
        self.completed = 0

    def feed(self, insn: Instruction) -> Trace | None:
        """Add one instruction; return a finished Trace on a boundary."""
        self._pending.append(insn)
        if insn.is_branch:
            self._path = _mix(self._path, (insn.pc << 1) | int(insn.taken))
            if insn.is_backward_branch:
                return self._finish()
        return None

    def _finish(self) -> Trace:
        trace = Trace(
            start_pc=self._pending[0].pc,
            path_hash=self._path,
            instructions=self._pending,
        )
        self._pending = []
        self._path = 0
        self.completed += 1
        return trace

    def flush(self) -> Trace | None:
        """Emit whatever is buffered (end of simulation window)."""
        if not self._pending:
            return None
        return self._finish()

    @property
    def pending_count(self) -> int:
        return len(self._pending)
