"""Schedule memoization: traces, recording, and the Schedule Cache.

A *trace* is the dynamic instruction sequence between two consecutive
backward branches (paper section 3.3) — ~50 instructions capturing hot
loop bodies.  While an application runs on the OoO core, the
:class:`~repro.schedule.recorder.ScheduleRecorder` watches each trace's
issue order; traces whose schedules repeat with high confidence are
written into the :class:`~repro.schedule.schedule_cache.ScheduleCache`
(8 KB, trace-cache organization).  An InO core in OinO mode later
replays those recorded issue orders to recover most of the OoO's
performance.
"""

from repro.schedule.recorder import RecorderTables, ScheduleRecorder
from repro.schedule.schedule_cache import Schedule, ScheduleCache, SCStats
from repro.schedule.trace import Trace, TraceBuilder

__all__ = [
    "Trace",
    "TraceBuilder",
    "Schedule",
    "ScheduleCache",
    "SCStats",
    "ScheduleRecorder",
    "RecorderTables",
]
