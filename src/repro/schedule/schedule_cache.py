"""The Schedule Cache (SC).

An 8 KB specialized cache holding memoized issue schedules, organized
like a trace cache: indexed by trace start pc with limited *path
associativity* (up to :data:`PATHS_PER_PC` control paths stored per
start pc, mirroring a trace cache's path-associative sets).  Entries
are compacted variable-length schedule records (4 B per instruction +
a 20 B memory-order metadata block).  Eviction removes entries marked
unmemoizable first, then falls back to LRU (paper section 3.3.2).

The SC also measures the statistic the arbitrator runs on: SC-MPKI,
the number of SC lookup misses per kilo committed instructions.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Maximum distinct control paths stored per trace start pc.
PATHS_PER_PC = 4


@dataclass(frozen=True, slots=True)
class Schedule:
    """A memoized issue schedule for one trace path.

    ``issue_order`` holds program-order positions in the order the OoO
    issued them; replaying the trace means issuing position
    ``issue_order[0]`` first, and so on.  The memory-order metadata the
    OinO LSQ needs is recoverable from the program-order positions, so
    it is represented only as a storage cost.
    """

    start_pc: int
    path_hash: int
    issue_order: tuple[int, ...]
    metadata_bytes: int = 20

    @property
    def num_instructions(self) -> int:
        return len(self.issue_order)

    @property
    def storage_bytes(self) -> int:
        return 4 * len(self.issue_order) + self.metadata_bytes


@dataclass(slots=True)
class SCStats:
    lookups: int = 0
    misses: int = 0
    writes: int = 0
    evictions: int = 0

    @property
    def hits(self) -> int:
        return self.lookups - self.misses

    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def mpki(self, instructions: int) -> float:
        """SC misses per kilo-instruction (the arbitrator's raw input)."""
        if instructions == 0:
            return 0.0
        return 1000.0 * self.misses / instructions

    def reset(self) -> None:
        self.lookups = 0
        self.misses = 0
        self.writes = 0
        self.evictions = 0

    def counters(self, prefix: str = "") -> dict[str, int]:
        """Flatten the stats into telemetry counter entries."""
        return {
            prefix + "lookups": self.lookups,
            prefix + "misses": self.misses,
            prefix + "writes": self.writes,
            prefix + "evictions": self.evictions,
        }


@dataclass(slots=True)
class _Entry:
    schedule: Schedule
    last_use: int
    unmemoizable: bool = False


class ScheduleCache:
    """Byte-budgeted schedule store, path-associative per start pc.

    ``capacity_bytes=None`` models the infinite SC used by the paper's
    oracle experiments (Figures 2 and 3b).
    """

    def __init__(self, capacity_bytes: int | None = 8 * 1024,
                 paths_per_pc: int = PATHS_PER_PC):
        self.capacity_bytes = capacity_bytes
        self.paths_per_pc = paths_per_pc
        self.stats = SCStats()
        self._entries: dict[tuple[int, int], _Entry] = {}
        self._by_pc: dict[int, set[int]] = {}
        # Count of launchable (not unmemoizable) paths per start pc,
        # kept in lockstep with _entries so has_pc — called by the
        # replay core for every trace head — is a dict probe instead
        # of a scan over the pc's path set.
        self._launchable: dict[int, int] = {}
        self._bytes = 0
        self._clock = 0
        #: Entry-generation stamp: bumped whenever the *contents*
        #: change (insert, removal, unmemoizable marking, bulk load or
        #: invalidation).  Recency/stat updates do not bump it.  The
        #: slice memoizer (:mod:`repro.simcache`) folds it into its
        #: state keys as a cheap first-divergence signal.
        self.generation = 0

    # ------------------------------------------------------------------
    def lookup(self, start_pc: int, path_hash: int) -> Schedule | None:
        """Fetch the schedule memoized for this exact trace path.

        Counts one SC access; a miss means the InO falls back to
        fetching program-order instructions from its L1I (or, if a
        different path for the same pc is stored, that the replayed
        schedule will misspeculate — the caller distinguishes via
        :meth:`has_pc`).
        """
        self._clock += 1
        self.stats.lookups += 1
        entry = self._entries.get((start_pc, path_hash))
        if entry is None or entry.unmemoizable:
            self.stats.misses += 1
            return None
        entry.last_use = self._clock
        return entry.schedule

    def has_pc(self, start_pc: int) -> bool:
        """True if any *launchable* path for this pc is stored (no stats).

        Unmemoizable-marked entries are excluded: the trace predictor
        will not speculatively launch a schedule known to misbehave.
        """
        return self._launchable.get(start_pc, 0) > 0

    def probe(self, start_pc: int, path_hash: int) -> Schedule | None:
        """Inspect an exact path without touching stats or recency."""
        entry = self._entries.get((start_pc, path_hash))
        if entry is None or entry.unmemoizable:
            return None
        return entry.schedule

    # ------------------------------------------------------------------
    def insert(self, schedule: Schedule) -> bool:
        """Write a schedule; returns False if it can never fit."""
        self._clock += 1
        size = schedule.storage_bytes
        if self.capacity_bytes is not None and size > self.capacity_bytes:
            return False
        key = (schedule.start_pc, schedule.path_hash)
        self.generation += 1
        self._remove(key)
        # Path associativity: cap the number of paths per start pc.
        paths = self._by_pc.get(schedule.start_pc)
        while paths and len(paths) >= self.paths_per_pc:
            victim_path = min(
                paths,
                key=lambda ph: self._entries[
                    (schedule.start_pc, ph)].last_use,
            )
            self._remove((schedule.start_pc, victim_path))
            self.stats.evictions += 1
            paths = self._by_pc.get(schedule.start_pc)
        self._make_room(size)
        self._entries[key] = _Entry(schedule=schedule, last_use=self._clock)
        self._by_pc.setdefault(schedule.start_pc, set()).add(
            schedule.path_hash)
        self._launchable[schedule.start_pc] = self._launchable.get(
            schedule.start_pc, 0) + 1
        self._bytes += size
        self.stats.writes += 1
        return True

    def _remove(self, key: tuple[int, int]) -> None:
        entry = self._entries.pop(key, None)
        if entry is None:
            return
        self.generation += 1
        self._bytes -= entry.schedule.storage_bytes
        if not entry.unmemoizable:
            left = self._launchable[key[0]] - 1
            if left:
                self._launchable[key[0]] = left
            else:
                del self._launchable[key[0]]
        paths = self._by_pc.get(key[0])
        if paths is not None:
            paths.discard(key[1])
            if not paths:
                del self._by_pc[key[0]]

    def _make_room(self, size: int) -> None:
        if self.capacity_bytes is None:
            return
        while self._bytes + size > self.capacity_bytes and self._entries:
            victim = self._pick_victim()
            self._remove(victim)
            self.stats.evictions += 1

    def _pick_victim(self) -> tuple[int, int]:
        # Unmemoizable-marked entries go first, then true LRU.
        unmemo = [k for k, e in self._entries.items() if e.unmemoizable]
        pool = unmemo if unmemo else self._entries
        return min(pool, key=lambda k: self._entries[k].last_use)

    def mark_unmemoizable(self, start_pc: int) -> None:
        """Bias future eviction against a misbehaving trace (all paths)."""
        for path in self._by_pc.get(start_pc, ()):
            entry = self._entries[(start_pc, path)]
            if not entry.unmemoizable:
                entry.unmemoizable = True
                self.generation += 1
                left = self._launchable[start_pc] - 1
                if left:
                    self._launchable[start_pc] = left
                else:
                    del self._launchable[start_pc]

    def invalidate_all(self) -> None:
        """Drop all contents (e.g. SC handed to a different program)."""
        self.generation += 1
        self._entries.clear()
        self._by_pc.clear()
        self._launchable.clear()
        self._bytes = 0

    # -- slice-memoization hooks (repro.simcache) ----------------------
    def state_snapshot(self) -> tuple:
        """Full mutable state as a hashable tuple (simcache keying).

        :class:`Schedule` objects are immutable, so snapshots share
        them by reference; entry order is preserved so a restore
        reproduces the dict iteration future evictions observe.
        """
        stats = self.stats
        return (
            self.generation, self._bytes, self._clock,
            stats.lookups, stats.misses, stats.writes, stats.evictions,
            tuple(
                (entry.schedule, entry.last_use, entry.unmemoizable)
                for entry in self._entries.values()
            ),
        )

    def state_restore(self, snap: tuple) -> None:
        """Rebuild the exact state a :meth:`state_snapshot` captured."""
        (self.generation, self._bytes, self._clock,
         lookups, misses, writes, evictions, entries) = snap
        stats = self.stats
        stats.lookups = lookups
        stats.misses = misses
        stats.writes = writes
        stats.evictions = evictions
        self._entries = {}
        self._by_pc = {}
        self._launchable = {}
        for schedule, last_use, unmemoizable in entries:
            key = (schedule.start_pc, schedule.path_hash)
            self._entries[key] = _Entry(
                schedule=schedule, last_use=last_use,
                unmemoizable=unmemoizable)
            self._by_pc.setdefault(schedule.start_pc, set()).add(
                schedule.path_hash)
            if not unmemoizable:
                self._launchable[schedule.start_pc] = (
                    self._launchable.get(schedule.start_pc, 0) + 1)

    # ------------------------------------------------------------------
    @property
    def used_bytes(self) -> int:
        return self._bytes

    @property
    def num_entries(self) -> int:
        return len(self._entries)

    def contents(self) -> list[Schedule]:
        """Snapshot of stored schedules (for migration transfer)."""
        return [e.schedule for e in self._entries.values()]

    def load_contents(self, schedules: list[Schedule]) -> None:
        """Bulk-install schedules (migration: SC contents transfer)."""
        for schedule in schedules:
            self.insert(schedule)
        # Bulk install is a transfer, not demand writes.
        self.stats.writes -= len(schedules)
