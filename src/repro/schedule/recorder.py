"""Schedule recording on the OoO core.

The OoO cannot afford to compare cycle-by-cycle schedules directly, so
the paper tracks per-trace metrics and treats matching metrics as
matching schedules.  Our deterministic equivalent hashes the issue
permutation: small hardware tables (paper: 0.3 kB) remember, per trace
path, the last schedule signature and how many consecutive executions
produced it.  Once the streak reaches ``confidence_threshold`` the
schedule is considered stable and written into the Schedule Cache.

The recorder is also where misspeculation bias lives: traces whose
replays abort too often are marked unmemoizable so the SC evicts them
first and stops re-recording them (paper keeps the abort penalty to
~0.3 % of execution time this way).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.schedule.schedule_cache import Schedule, ScheduleCache
from repro.schedule.trace import Trace

#: Traces shorter than this are not worth a Schedule Cache entry.
MIN_TRACE_LEN = 8
#: Traces longer than this exceed a sensible SC line budget.
MAX_TRACE_LEN = 256


@dataclass(slots=True)
class _TableEntry:
    signature: int
    streak: int = 1
    executions: int = 1
    aborts: int = 0
    blacklisted: bool = False
    last_use: int = 0


@dataclass(slots=True)
class RecorderTables:
    """Bounded repeatability-tracking tables (LRU replacement)."""

    size: int = 256
    entries: dict[tuple[int, int], _TableEntry] = field(default_factory=dict)
    clock: int = 0

    def get(self, key: tuple[int, int]) -> _TableEntry | None:
        entry = self.entries.get(key)
        if entry is not None:
            self.clock += 1
            entry.last_use = self.clock
        return entry

    def put(self, key: tuple[int, int], signature: int) -> _TableEntry:
        self.clock += 1
        if len(self.entries) >= self.size:
            victim = min(self.entries, key=lambda k: self.entries[k].last_use)
            del self.entries[victim]
        entry = _TableEntry(signature=signature, last_use=self.clock)
        self.entries[key] = entry
        return entry


class ScheduleRecorder:
    """Observes OoO trace executions and memoizes stable schedules."""

    def __init__(
        self,
        sc: ScheduleCache,
        *,
        confidence_threshold: int = 2,
        abort_blacklist_ratio: float = 0.25,
        table_size: int = 256,
    ):
        self.sc = sc
        self.confidence_threshold = confidence_threshold
        self.abort_blacklist_ratio = abort_blacklist_ratio
        self.tables = RecorderTables(size=table_size)
        self.observed_traces = 0
        self.memoized_writes = 0
        self.instructions_seen = 0
        self.instructions_memoized = 0

    # ------------------------------------------------------------------
    @staticmethod
    def signature_of(trace: Trace, issue_order: tuple[int, ...],
                     duration: int) -> int:
        """Approximate schedule signature from per-trace metrics.

        Matching the exact cycle-by-cycle schedule is expensive and
        fragile (issue phase jitters between iterations of the same
        loop), so — like the paper — we approximate: two executions
        whose path, bucketed execution time and bucketed amount of
        reordering agree are considered to have the same schedule.
        """
        # Execution time is deliberately *not* part of the signature:
        # cache-miss jitter perturbs it between otherwise identical
        # schedules, and replay correctness is independently guarded by
        # the path check and the replay-LSQ alias check.
        del duration
        reordered = sum(1 for k, pos in enumerate(issue_order) if pos != k)
        return hash((trace.path_hash, len(issue_order), reordered // 8))

    def observe(
        self,
        trace: Trace,
        issue_order: tuple[int, ...],
        duration: int = 0,
    ) -> None:
        """Record one trace execution with its OoO issue permutation.

        ``duration`` is the trace's issue-to-complete span in cycles,
        one of the metrics used to judge schedule repeatability.
        """
        self.observed_traces += 1
        self.instructions_seen += len(trace)
        if not MIN_TRACE_LEN <= len(trace) <= MAX_TRACE_LEN:
            return
        key = trace.key
        signature = self.signature_of(trace, issue_order, duration)
        entry = self.tables.get(key)
        if entry is None:
            self.tables.put(key, signature)
            return
        entry.executions += 1
        if entry.blacklisted:
            return
        if entry.signature == signature:
            entry.streak += 1
        else:
            entry.signature = signature
            entry.streak = 1
            return
        if entry.streak == self.confidence_threshold:
            schedule = Schedule(
                start_pc=trace.start_pc,
                path_hash=trace.path_hash,
                issue_order=issue_order,
            )
            if self.sc.insert(schedule):
                self.memoized_writes += 1
                self.instructions_memoized += len(trace)

    def report_abort(self, trace_key: tuple[int, int]) -> None:
        """A replay of this trace misspeculated and was squashed."""
        entry = self.tables.get(trace_key)
        if entry is None:
            return
        entry.aborts += 1
        if (
            entry.executions >= 4
            and entry.aborts / entry.executions > self.abort_blacklist_ratio
        ):
            entry.blacklisted = True
            self.sc.mark_unmemoizable(trace_key[0])

    # -- slice-memoization hooks (repro.simcache) ----------------------
    def state_snapshot(self) -> tuple:
        """Full mutable state as a hashable tuple (simcache keying).

        Covers the repeatability tables (in insertion order, so LRU
        eviction scans behave identically after a restore) and the
        recorder counters; the SC itself snapshots separately.
        """
        tables = self.tables
        return (
            self.observed_traces, self.memoized_writes,
            self.instructions_seen, self.instructions_memoized,
            tables.clock,
            tuple(
                (key, e.signature, e.streak, e.executions, e.aborts,
                 e.blacklisted, e.last_use)
                for key, e in tables.entries.items()
            ),
        )

    def state_restore(self, snap: tuple) -> None:
        """Rebuild the exact state a :meth:`state_snapshot` captured."""
        (self.observed_traces, self.memoized_writes,
         self.instructions_seen, self.instructions_memoized,
         clock, entries) = snap
        tables = self.tables
        tables.clock = clock
        tables.entries = {
            key: _TableEntry(
                signature=signature, streak=streak, executions=executions,
                aborts=aborts, blacklisted=blacklisted, last_use=last_use)
            for (key, signature, streak, executions, aborts,
                 blacklisted, last_use) in entries
        }

    # ------------------------------------------------------------------
    @property
    def memoization_rate(self) -> float:
        """Fraction of observed instructions that got memoized."""
        if self.instructions_seen == 0:
            return 0.0
        return self.instructions_memoized / self.instructions_seen
