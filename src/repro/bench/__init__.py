"""``repro.bench`` — the performance-measurement subsystem.

A registry of named microbenchmarks over the simulator's hot paths
(:mod:`repro.bench.registry`), a warm-up/repeat harness emitting
schema-versioned ``BENCH_<label>.json`` reports
(:mod:`repro.bench.harness`), and an old-vs-new regression comparator
(:mod:`repro.bench.compare`).  ``mirage bench`` is the CLI front end;
``docs/performance.md`` documents the workflow and the rules for
committing a new baseline.
"""

from repro.bench.compare import (
    BenchDelta,
    Comparison,
    DEFAULT_THRESHOLD,
    compare_reports,
)
from repro.bench.harness import (
    SCHEMA,
    format_report,
    machine_info,
    read_report,
    run_benchmarks,
    write_report,
)
from repro.bench.registry import (
    BENCHMARKS,
    BenchContext,
    Benchmark,
    get,
    names,
    register,
)

__all__ = [
    "BENCHMARKS", "Benchmark", "BenchContext", "register", "get",
    "names",
    "SCHEMA", "run_benchmarks", "write_report", "read_report",
    "format_report", "machine_info",
    "BenchDelta", "Comparison", "DEFAULT_THRESHOLD", "compare_reports",
]
