"""Regression comparison between two bench reports.

``mirage bench --compare OLD NEW`` diffs two ``BENCH_*.json`` files
benchmark by benchmark on their *best* wall samples: a slowdown beyond
the threshold is a regression (non-zero exit unless warn-only), a
symmetric speedup is reported as an improvement, and benchmarks present
on only one side are listed rather than silently dropped.  This is the
gate CI runs against the committed baseline, and the evidence format
perf PRs quote (see ``docs/performance.md`` for the baseline rules).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Default tolerated slowdown before a benchmark counts as regressed.
DEFAULT_THRESHOLD = 0.20


@dataclass(frozen=True)
class BenchDelta:
    """Old-vs-new outcome for one benchmark present in both reports."""

    name: str
    tier: str
    old_best: float
    new_best: float
    threshold: float

    @property
    def ratio(self) -> float:
        """``new / old`` wall time; > 1 means the new side is slower."""
        return self.new_best / max(1e-12, self.old_best)

    @property
    def speedup(self) -> float:
        """``old / new`` wall time; > 1 means the new side is faster."""
        return self.old_best / max(1e-12, self.new_best)

    @property
    def regressed(self) -> bool:
        """True when new is slower than old beyond the threshold."""
        return self.ratio > 1.0 + self.threshold

    @property
    def improved(self) -> bool:
        """True when new is faster than old beyond the threshold."""
        return self.speedup > 1.0 + self.threshold


@dataclass
class Comparison:
    """The full old-vs-new verdict ``compare_reports`` produces."""

    old_label: str
    new_label: str
    threshold: float
    deltas: list[BenchDelta]
    only_old: list[str]
    only_new: list[str]

    @property
    def regressions(self) -> list[BenchDelta]:
        """Deltas where the new side is slower beyond the threshold."""
        return [d for d in self.deltas if d.regressed]

    @property
    def improvements(self) -> list[BenchDelta]:
        """Deltas where the new side is faster beyond the threshold."""
        return [d for d in self.deltas if d.improved]

    @property
    def ok(self) -> bool:
        """True when no benchmark regressed beyond the threshold."""
        return not self.regressions

    def summary(self) -> str:
        """The ``mirage bench --compare`` report text."""
        lines = [
            f"comparing {self.old_label!r} -> {self.new_label!r} "
            f"(threshold {self.threshold:.0%} slowdown)",
        ]
        if not self.deltas:
            lines.append("no benchmarks in common")
        else:
            width = max(len(d.name) for d in self.deltas)
            # Worst regression first: the row CI should look at leads
            # the table instead of hiding in report order.
            for d in sorted(self.deltas, key=lambda d: d.ratio,
                            reverse=True):
                verdict = ("REGRESSED" if d.regressed
                           else "improved" if d.improved else "ok")
                lines.append(
                    f"{d.name:<{width}}  {d.old_best:8.4f}s -> "
                    f"{d.new_best:8.4f}s  x{d.speedup:5.2f}  {verdict}")
        for name in self.only_old:
            lines.append(f"{name}: only in {self.old_label!r} (removed?)")
        for name in self.only_new:
            lines.append(f"{name}: only in {self.new_label!r} (new)")
        n_reg = len(self.regressions)
        n_imp = len(self.improvements)
        lines.append(
            f"{len(self.deltas)} compared: {n_reg} regressed, "
            f"{n_imp} improved, {len(self.deltas) - n_reg - n_imp} "
            f"within threshold")
        return "\n".join(lines)


def compare_reports(old: dict, new: dict, *,
                    threshold: float = DEFAULT_THRESHOLD) -> Comparison:
    """Diff two report dicts (see :mod:`repro.bench.harness`).

    Args:
        old: the reference report (committed baseline, usually).
        new: the candidate report.
        threshold: tolerated fractional slowdown, e.g. ``0.2`` flags
            anything more than 20 % slower than *old*.

    Returns:
        A :class:`Comparison`; callers decide whether ``not ok`` is
        fatal (CI's warn-only mode prints and moves on).
    """
    if threshold < 0:
        raise ValueError("threshold must be >= 0")
    old_rows = old.get("benchmarks", {})
    new_rows = new.get("benchmarks", {})
    deltas = [
        BenchDelta(
            name=name,
            tier=new_rows[name].get("tier", "unknown"),
            old_best=old_rows[name]["best"],
            new_best=new_rows[name]["best"],
            threshold=threshold,
        )
        for name in old_rows if name in new_rows
    ]
    return Comparison(
        old_label=old.get("label", "old"),
        new_label=new.get("label", "new"),
        threshold=threshold,
        deltas=deltas,
        only_old=[n for n in old_rows if n not in new_rows],
        only_new=[n for n in new_rows if n not in old_rows],
    )
