"""Noise-aware regression comparison between two bench reports.

``mirage bench --compare OLD NEW`` diffs two ``BENCH_*.json`` files
benchmark by benchmark on their wall-sample *distributions*: the
headline ratio is mean-vs-mean, and a slowdown only counts as a
regression when it clears both the relative threshold and a noise
floor of :data:`NOISE_SIGMAS` pooled standard deviations — one lucky
or unlucky sample on a shared CI box no longer flips the verdict.
Reports recorded with ``repeats=1`` carry a single sample (zero
spread), so the comparison degenerates to the historical pure
threshold on their means.  Symmetric speedups are reported as
improvements, and benchmarks present on only one side are listed
rather than silently dropped.  This is the gate CI runs against the
committed baseline, and the evidence format perf PRs quote (see
``docs/performance.md`` for the baseline rules).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

#: Default tolerated slowdown before a benchmark counts as regressed.
DEFAULT_THRESHOLD = 0.20

#: How many pooled standard deviations a mean shift must exceed before
#: it is believed: 2 sigma keeps the false-positive rate of a noisy
#: shared runner low without hiding real multi-sample regressions.
NOISE_SIGMAS = 2.0


def _mean(samples: Sequence[float]) -> float:
    return sum(samples) / len(samples) if samples else 0.0


def _std(samples: Sequence[float]) -> float:
    """Population standard deviation (0.0 for a single sample)."""
    if len(samples) < 2:
        return 0.0
    mean = _mean(samples)
    return math.sqrt(_mean([(s - mean) ** 2 for s in samples]))


def _samples(entry: dict) -> list[float]:
    """An entry's wall samples; pre-noise reports carry only best."""
    samples = entry.get("wall_seconds") or [entry["best"]]
    return [float(s) for s in samples]


@dataclass(frozen=True)
class BenchDelta:
    """Old-vs-new outcome for one benchmark present in both reports."""

    name: str
    tier: str
    old_best: float
    new_best: float
    old_mean: float
    new_mean: float
    old_std: float
    new_std: float
    threshold: float

    @property
    def ratio(self) -> float:
        """``new / old`` mean wall time; > 1 means new is slower."""
        return self.new_mean / max(1e-12, self.old_mean)

    @property
    def speedup(self) -> float:
        """``old / new`` mean wall time; > 1 means new is faster."""
        return self.old_mean / max(1e-12, self.new_mean)

    @property
    def noise_floor(self) -> float:
        """The mean shift (seconds) explainable by sample noise.

        :data:`NOISE_SIGMAS` times the pooled standard deviation of
        the two sides; 0.0 when both reports carry single samples, so
        single-sample comparisons reduce to the pure threshold.
        """
        return NOISE_SIGMAS * math.sqrt(
            self.old_std ** 2 + self.new_std ** 2)

    @property
    def regressed(self) -> bool:
        """Slower beyond the threshold *and* beyond sample noise."""
        return (self.ratio > 1.0 + self.threshold
                and self.new_mean - self.old_mean > self.noise_floor)

    @property
    def improved(self) -> bool:
        """Faster beyond the threshold *and* beyond sample noise."""
        return (self.speedup > 1.0 + self.threshold
                and self.old_mean - self.new_mean > self.noise_floor)


@dataclass
class Comparison:
    """The full old-vs-new verdict ``compare_reports`` produces."""

    old_label: str
    new_label: str
    threshold: float
    deltas: list[BenchDelta]
    only_old: list[str]
    only_new: list[str]

    @property
    def regressions(self) -> list[BenchDelta]:
        """Deltas where the new side is slower beyond the threshold."""
        return [d for d in self.deltas if d.regressed]

    @property
    def improvements(self) -> list[BenchDelta]:
        """Deltas where the new side is faster beyond the threshold."""
        return [d for d in self.deltas if d.improved]

    @property
    def ok(self) -> bool:
        """True when no benchmark regressed beyond the threshold."""
        return not self.regressions

    def summary(self) -> str:
        """The ``mirage bench --compare`` report text."""
        lines = [
            f"comparing {self.old_label!r} -> {self.new_label!r} "
            f"(threshold {self.threshold:.0%} slowdown beyond "
            f"{NOISE_SIGMAS:g} sigma noise)",
        ]
        if not self.deltas:
            lines.append("no benchmarks in common")
        else:
            width = max(len(d.name) for d in self.deltas)
            # Worst regression first: the row CI should look at leads
            # the table instead of hiding in report order.
            for d in sorted(self.deltas, key=lambda d: d.ratio,
                            reverse=True):
                verdict = ("REGRESSED" if d.regressed
                           else "improved" if d.improved else "ok")
                lines.append(
                    f"{d.name:<{width}}  "
                    f"{d.old_mean:8.4f}s±{d.old_std:.4f} -> "
                    f"{d.new_mean:8.4f}s±{d.new_std:.4f}  "
                    f"x{d.speedup:5.2f}  {verdict}")
        for name in self.only_old:
            lines.append(f"{name}: only in {self.old_label!r} (removed?)")
        for name in self.only_new:
            lines.append(f"{name}: only in {self.new_label!r} (new)")
        n_reg = len(self.regressions)
        n_imp = len(self.improvements)
        lines.append(
            f"{len(self.deltas)} compared: {n_reg} regressed, "
            f"{n_imp} improved, {len(self.deltas) - n_reg - n_imp} "
            f"within threshold")
        return "\n".join(lines)


def compare_reports(old: dict, new: dict, *,
                    threshold: float = DEFAULT_THRESHOLD) -> Comparison:
    """Diff two report dicts (see :mod:`repro.bench.harness`).

    Args:
        old: the reference report (committed baseline, usually).
        new: the candidate report.
        threshold: tolerated fractional slowdown of the mean, e.g.
            ``0.2`` flags anything more than 20 % slower than *old* —
            provided the shift also exceeds the reports'
            :data:`NOISE_SIGMAS`-sigma noise floor.

    Returns:
        A :class:`Comparison`; callers decide whether ``not ok`` is
        fatal (CI's warn-only mode prints and moves on).
    """
    if threshold < 0:
        raise ValueError("threshold must be >= 0")
    old_rows = old.get("benchmarks", {})
    new_rows = new.get("benchmarks", {})
    deltas = []
    for name in old_rows:
        if name not in new_rows:
            continue
        old_samples = _samples(old_rows[name])
        new_samples = _samples(new_rows[name])
        deltas.append(BenchDelta(
            name=name,
            tier=new_rows[name].get("tier", "unknown"),
            old_best=old_rows[name]["best"],
            new_best=new_rows[name]["best"],
            old_mean=_mean(old_samples),
            new_mean=_mean(new_samples),
            old_std=_std(old_samples),
            new_std=_std(new_samples),
            threshold=threshold,
        ))
    return Comparison(
        old_label=old.get("label", "old"),
        new_label=new.get("label", "new"),
        threshold=threshold,
        deltas=deltas,
        only_old=[n for n in old_rows if n not in new_rows],
        only_new=[n for n in new_rows if n not in old_rows],
    )
