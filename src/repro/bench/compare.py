"""Noise-aware regression comparison between two bench reports.

``mirage bench --compare OLD NEW`` diffs two ``BENCH_*.json`` files
benchmark by benchmark on their wall-sample *distributions*: the
headline ratio is mean-vs-mean, and a slowdown only counts as a
regression when it clears both the relative threshold and a noise
floor of :data:`NOISE_SIGMAS` pooled standard deviations — one lucky
or unlucky sample on a shared CI box no longer flips the verdict.
Reports recorded with ``repeats=1`` carry a single sample (zero
spread), so the comparison degenerates to the historical pure
threshold on their means.  Symmetric speedups are reported as
improvements, and benchmarks present on only one side are listed
rather than silently dropped.  This is the gate CI runs against the
committed baseline, and the evidence format perf PRs quote (see
``docs/performance.md`` for the baseline rules).

On top of the threshold and the sigma floor, every delta carries a
**Welch t-test** p-value computed from the two sides' summary
statistics (:func:`welch_t` + the regularized incomplete beta — no
scipy needed): ``regressed``/``improved`` additionally require
``p < ALPHA``, so one unlucky sample can never clear the gate, and
mean shifts that are *statistically significant but below the
threshold* are surfaced as ``slower (significant)`` /
``faster (significant)`` rows instead of vanishing into ``ok`` — a
reproducible 10 % slip is exactly the early warning a perf-focused
repo wants.  Resampled identical runs produce ``p ≈ 1`` and stay
silent.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

#: Default tolerated slowdown before a benchmark counts as regressed.
DEFAULT_THRESHOLD = 0.20

#: How many pooled standard deviations a mean shift must exceed before
#: it is believed: 2 sigma keeps the false-positive rate of a noisy
#: shared runner low without hiding real multi-sample regressions.
NOISE_SIGMAS = 2.0

#: Two-sided significance level for the Welch t-test gate.
ALPHA = 0.05


# ----------------------------------------------------------------------
# Welch's t-test from summary statistics (no scipy in the container)
# ----------------------------------------------------------------------
def _betacf(a: float, b: float, x: float) -> float:
    """Continued fraction for the incomplete beta (Lentz's method)."""
    max_iterations, eps, tiny = 200, 3e-12, 1e-300
    qab, qap, qam = a + b, a + 1.0, a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    h = d
    for m in range(1, max_iterations + 1):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < eps:
            break
    return h


def regularized_incomplete_beta(a: float, b: float, x: float) -> float:
    """:math:`I_x(a, b)` — the Student-t CDF lives inside this."""
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    ln_front = (math.lgamma(a + b) - math.lgamma(a) - math.lgamma(b)
                + a * math.log(x) + b * math.log(1.0 - x))
    front = math.exp(ln_front)
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _betacf(a, b, x) / a
    return 1.0 - front * _betacf(b, a, 1.0 - x) / b


def t_two_sided_p(t: float, df: float) -> float:
    """Two-sided p-value of Student's t with *df* degrees of freedom."""
    if df <= 0:
        return 1.0
    return regularized_incomplete_beta(
        df / 2.0, 0.5, df / (df + t * t))


def welch_t(old_mean: float, old_std: float, old_n: int,
            new_mean: float, new_std: float,
            new_n: int) -> tuple[float, float]:
    """Welch's t statistic and Welch–Satterthwaite df from summaries.

    *old_std*/*new_std* are **population** standard deviations (what
    the reports store); Bessel's correction is applied here.  Returns
    ``(0.0, 0.0)`` when neither side carries usable spread — the
    caller decides what zero-variance means.
    """
    var_old = (old_std ** 2 * old_n / (old_n - 1)
               if old_n > 1 else 0.0)
    var_new = (new_std ** 2 * new_n / (new_n - 1)
               if new_n > 1 else 0.0)
    se_old = var_old / max(1, old_n)
    se_new = var_new / max(1, new_n)
    se_sq = se_old + se_new
    if se_sq <= 0.0:
        return 0.0, 0.0
    t = (new_mean - old_mean) / math.sqrt(se_sq)
    df_denominator = 0.0
    if old_n > 1:
        df_denominator += se_old ** 2 / (old_n - 1)
    if new_n > 1:
        df_denominator += se_new ** 2 / (new_n - 1)
    df = se_sq ** 2 / df_denominator if df_denominator > 0 else 0.0
    return t, df


def _mean(samples: Sequence[float]) -> float:
    return sum(samples) / len(samples) if samples else 0.0


def _std(samples: Sequence[float]) -> float:
    """Population standard deviation (0.0 for a single sample)."""
    if len(samples) < 2:
        return 0.0
    mean = _mean(samples)
    return math.sqrt(_mean([(s - mean) ** 2 for s in samples]))


def _samples(entry: dict) -> list[float]:
    """An entry's wall samples; pre-noise reports carry only best."""
    samples = entry.get("wall_seconds") or [entry["best"]]
    return [float(s) for s in samples]


@dataclass(frozen=True)
class BenchDelta:
    """Old-vs-new outcome for one benchmark present in both reports."""

    name: str
    tier: str
    old_best: float
    new_best: float
    old_mean: float
    new_mean: float
    old_std: float
    new_std: float
    threshold: float
    old_n: int = 1
    new_n: int = 1

    @property
    def ratio(self) -> float:
        """``new / old`` mean wall time; > 1 means new is slower."""
        return self.new_mean / max(1e-12, self.old_mean)

    @property
    def speedup(self) -> float:
        """``old / new`` mean wall time; > 1 means new is faster."""
        return self.old_mean / max(1e-12, self.new_mean)

    @property
    def noise_floor(self) -> float:
        """The mean shift (seconds) explainable by sample noise.

        :data:`NOISE_SIGMAS` times the pooled standard deviation of
        the two sides; 0.0 when both reports carry single samples, so
        single-sample comparisons reduce to the pure threshold.
        """
        return NOISE_SIGMAS * math.sqrt(
            self.old_std ** 2 + self.new_std ** 2)

    @property
    def p_value(self) -> float:
        """Welch two-sided p for "the mean wall times differ".

        Degenerate spreads keep the historical semantics: when
        neither side carries usable variance (single samples, or
        deterministic timers), equal means give ``p = 1`` and
        different means ``p = 0`` — so ``repeats=1`` reports reduce
        to the pure threshold gate exactly as before.
        """
        t, df = welch_t(self.old_mean, self.old_std, self.old_n,
                        self.new_mean, self.new_std, self.new_n)
        if df <= 0.0:
            identical = math.isclose(self.old_mean, self.new_mean,
                                     rel_tol=1e-12, abs_tol=1e-15)
            return 1.0 if identical else 0.0
        return t_two_sided_p(t, df)

    @property
    def significant(self) -> bool:
        """The mean shift clears the Welch gate (``p < ALPHA``)."""
        return self.p_value < ALPHA

    @property
    def regressed(self) -> bool:
        """Slower beyond the threshold, sample noise, *and* the
        Welch significance gate."""
        return (self.ratio > 1.0 + self.threshold
                and self.new_mean - self.old_mean > self.noise_floor
                and self.significant)

    @property
    def improved(self) -> bool:
        """Faster beyond the threshold, sample noise, *and* the
        Welch significance gate."""
        return (self.speedup > 1.0 + self.threshold
                and self.old_mean - self.new_mean > self.noise_floor
                and self.significant)


@dataclass
class Comparison:
    """The full old-vs-new verdict ``compare_reports`` produces."""

    old_label: str
    new_label: str
    threshold: float
    deltas: list[BenchDelta]
    only_old: list[str]
    only_new: list[str]

    @property
    def regressions(self) -> list[BenchDelta]:
        """Deltas where the new side is slower beyond the threshold."""
        return [d for d in self.deltas if d.regressed]

    @property
    def improvements(self) -> list[BenchDelta]:
        """Deltas where the new side is faster beyond the threshold."""
        return [d for d in self.deltas if d.improved]

    @property
    def significant_shifts(self) -> list[BenchDelta]:
        """Deltas whose means differ significantly (Welch) but stay
        inside the threshold — real, reproducible sub-threshold
        drift worth a look before it compounds."""
        return [d for d in self.deltas
                if d.significant and not d.regressed and not d.improved]

    @property
    def ok(self) -> bool:
        """True when no benchmark regressed beyond the threshold."""
        return not self.regressions

    def summary(self) -> str:
        """The ``mirage bench --compare`` report text."""
        lines = [
            f"comparing {self.old_label!r} -> {self.new_label!r} "
            f"(threshold {self.threshold:.0%} slowdown beyond "
            f"{NOISE_SIGMAS:g} sigma noise, Welch alpha {ALPHA:g})",
        ]
        if not self.deltas:
            lines.append("no benchmarks in common")
        else:
            width = max(len(d.name) for d in self.deltas)
            # Worst regression first: the row CI should look at leads
            # the table instead of hiding in report order.
            for d in sorted(self.deltas, key=lambda d: d.ratio,
                            reverse=True):
                verdict = ("REGRESSED" if d.regressed
                           else "improved" if d.improved
                           else "slower (significant)"
                           if d.significant and d.ratio > 1.0
                           else "faster (significant)"
                           if d.significant else "ok")
                lines.append(
                    f"{d.name:<{width}}  "
                    f"{d.old_mean:8.4f}s±{d.old_std:.4f} -> "
                    f"{d.new_mean:8.4f}s±{d.new_std:.4f}  "
                    f"x{d.speedup:5.2f}  p={d.p_value:.3f}  {verdict}")
        for name in self.only_old:
            lines.append(f"{name}: only in {self.old_label!r} (removed?)")
        for name in self.only_new:
            lines.append(f"{name}: only in {self.new_label!r} (new)")
        n_reg = len(self.regressions)
        n_imp = len(self.improvements)
        n_sig = len(self.significant_shifts)
        tail = (f"{len(self.deltas)} compared: {n_reg} regressed, "
                f"{n_imp} improved, {len(self.deltas) - n_reg - n_imp} "
                f"within threshold")
        if n_sig:
            tail += f" ({n_sig} significant sub-threshold)"
        lines.append(tail)
        return "\n".join(lines)


def compare_reports(old: dict, new: dict, *,
                    threshold: float = DEFAULT_THRESHOLD) -> Comparison:
    """Diff two report dicts (see :mod:`repro.bench.harness`).

    Args:
        old: the reference report (committed baseline, usually).
        new: the candidate report.
        threshold: tolerated fractional slowdown of the mean, e.g.
            ``0.2`` flags anything more than 20 % slower than *old* —
            provided the shift also exceeds the reports'
            :data:`NOISE_SIGMAS`-sigma noise floor.

    Returns:
        A :class:`Comparison`; callers decide whether ``not ok`` is
        fatal (CI's warn-only mode prints and moves on).
    """
    if threshold < 0:
        raise ValueError("threshold must be >= 0")
    old_rows = old.get("benchmarks", {})
    new_rows = new.get("benchmarks", {})
    deltas = []
    for name in old_rows:
        if name not in new_rows:
            continue
        old_samples = _samples(old_rows[name])
        new_samples = _samples(new_rows[name])
        deltas.append(BenchDelta(
            name=name,
            tier=new_rows[name].get("tier", "unknown"),
            old_best=old_rows[name]["best"],
            new_best=new_rows[name]["best"],
            old_mean=_mean(old_samples),
            new_mean=_mean(new_samples),
            old_std=_std(old_samples),
            new_std=_std(new_samples),
            threshold=threshold,
            old_n=len(old_samples),
            new_n=len(new_samples),
        ))
    return Comparison(
        old_label=old.get("label", "old"),
        new_label=new.get("label", "new"),
        threshold=threshold,
        deltas=deltas,
        only_old=[n for n in old_rows if n not in new_rows],
        only_new=[n for n in new_rows if n not in old_rows],
    )
