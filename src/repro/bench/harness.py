"""The measurement harness: warm up, repeat, report.

:func:`run_benchmarks` drives any subset of the registry: each probe
gets ``warmup`` untimed invocations (JIT-free Python still benefits —
allocator pools, import side effects, branch-predictor-warm OS pages)
followed by ``repeats`` timed ones, every invocation on a fresh
:class:`~repro.bench.registry.BenchContext` so state never leaks
between repetitions.  The outcome is a schema-versioned report dict
(:data:`SCHEMA`) that :func:`write_report` serializes as
``BENCH_<label>.json`` — wall-clock samples, the per-phase
:class:`~repro.telemetry.profiler.PhaseProfiler` breakdown, counter
totals, the git revision and machine identity — and
:mod:`repro.bench.compare` diffs two of.

The *best* (minimum) wall sample is the comparison statistic: noise on
a busy machine only ever adds time, so the minimum is the stable
estimate of what the code costs.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from pathlib import Path

import repro
from repro.bench.registry import BENCHMARKS, BenchContext, get

#: Report schema identifier; bump when the JSON layout changes shape.
SCHEMA = "mirage-bench/v1"


def machine_info() -> dict:
    """Identity of the machine the samples were taken on."""
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "cpu_count": os.cpu_count() or 1,
    }


def git_rev() -> str | None:
    """The repository HEAD revision, or ``None`` outside a checkout.

    A ``+dirty`` suffix marks reports measured from a tree with
    uncommitted changes — such a report describes code no commit
    matches and must not be committed as a baseline.
    """
    cwd = Path(__file__).resolve().parent
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10, cwd=cwd,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    rev = out.stdout.strip()
    if out.returncode != 0 or not rev:
        return None
    try:
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            capture_output=True, text=True, timeout=10, cwd=cwd,
        )
        if status.returncode == 0 and status.stdout.strip():
            rev += "+dirty"
    except (OSError, subprocess.TimeoutExpired):
        pass
    return rev


def run_benchmarks(names=None, *, repeats: int = 3, warmup: int = 1,
                   quick: bool = False, label: str = "local",
                   verbose: bool = False) -> dict:
    """Measure the named microbenchmarks and build the report dict.

    Args:
        names: benchmark names to run (default: the whole registry).
        repeats: timed invocations per benchmark (min becomes ``best``).
        warmup: untimed invocations before measuring starts.
        quick: trimmed workload sizes (CI smoke mode).
        label: report label, embedded in the JSON and its filename.
        verbose: print one line per benchmark as it completes.

    Returns:
        The schema-versioned report (see :data:`SCHEMA`).
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    selected = [get(n) for n in names] if names else list(
        BENCHMARKS.values())
    report: dict = {
        "schema": SCHEMA,
        "label": label,
        "version": repro.__version__,
        "git_rev": git_rev(),
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "machine": machine_info(),
        "repeats": repeats,
        "warmup": warmup,
        "quick": quick,
        "benchmarks": {},
    }
    for bench in selected:
        for _ in range(warmup):
            bench.run(BenchContext(quick=quick))
        samples: list[float] = []
        last_ctx: BenchContext | None = None
        for _ in range(repeats):
            ctx = BenchContext(quick=quick)
            start = time.perf_counter()
            bench.run(ctx)
            samples.append(time.perf_counter() - start)
            last_ctx = ctx
        entry = {
            "tier": bench.tier,
            "description": bench.description,
            "wall_seconds": samples,
            "best": min(samples),
            "mean": sum(samples) / len(samples),
            "phases": last_ctx.telemetry.profiler.as_dict(),
            "counters": dict(last_ctx.telemetry.counters),
        }
        report["benchmarks"][bench.name] = entry
        if verbose:
            print(f"{bench.name:<18} best {entry['best']:8.4f}s  "
                  f"mean {entry['mean']:8.4f}s  ({repeats} runs)")
    return report


def write_report(report: dict, path: str | Path) -> Path:
    """Serialize *report* to *path* (pretty-printed, trailing newline)."""
    path = Path(path)
    if path.parent != Path("."):
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=False) + "\n")
    return path


def read_report(path: str | Path) -> dict:
    """Load a report and validate its schema marker."""
    data = json.loads(Path(path).read_text())
    schema = data.get("schema")
    if schema != SCHEMA:
        raise ValueError(
            f"{path}: schema {schema!r} is not {SCHEMA!r} — regenerate "
            f"the report with this version's 'mirage bench'")
    return data


def format_report(report: dict) -> str:
    """Human-readable table of one report's headline numbers."""
    rev = report.get("git_rev") or "unknown"
    rev, _, dirty = rev.partition("+")
    short_rev = rev[:12] + ("+" + dirty if dirty else "")
    lines = [
        f"label {report['label']}  version {report['version']}"
        f"  rev {short_rev}"
        f"  ({report['repeats']} repeats"
        + (", quick)" if report.get("quick") else ")"),
    ]
    rows = report["benchmarks"]
    if not rows:
        return lines[0] + "\n(no benchmarks)"
    width = max(len(n) for n in rows)
    for name, entry in rows.items():
        phases = entry.get("phases", {})
        top = max(phases, key=lambda k: phases[k]["seconds"],
                  default=None)
        top_txt = ""
        if top is not None and entry["best"] > 0:
            share = phases[top]["seconds"] / max(
                1e-12, sum(p["seconds"] for p in phases.values()))
            top_txt = f"  top phase {top} ({share:4.0%})"
        lines.append(
            f"{name:<{width}}  [{entry['tier']:<8}]  "
            f"best {entry['best']:8.4f}s  mean {entry['mean']:8.4f}s"
            + top_txt)
    return "\n".join(lines)
