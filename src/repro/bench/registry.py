"""The microbenchmark registry: named, self-contained perf probes.

Each microbenchmark is one registered function exercising a hot path
of the simulator — a detailed-cluster slice step, OinO record/replay,
an interval-engine sweep, the memory-hierarchy access loop, a runner
cache round-trip — against fixed seeds, so wall-clock is the only
thing that varies between runs.  The function receives a
:class:`BenchContext` and reports through its
:class:`~repro.telemetry.collector.Telemetry` hub: counters must be
bit-deterministic (the regression tests assert this), phase timings
come from the hub's :class:`~repro.telemetry.profiler.PhaseProfiler`.

Registering a new microbenchmark is one decorator::

    @register("my-path", tier="detailed", description="...")
    def bench_my_path(ctx: BenchContext) -> None:
        with ctx.telemetry.profiler.time("setup"):
            ...
        ...

The harness in :mod:`repro.bench.harness` discovers everything in
:data:`BENCHMARKS` and times whole-function invocations around it.
"""

from __future__ import annotations

import json
import tempfile
from collections.abc import Callable
from dataclasses import dataclass, field
from pathlib import Path

from repro.telemetry import Telemetry

#: Benchmark tiers: which layer of the simulator a probe exercises.
TIERS = ("detailed", "interval", "infra")


@dataclass
class BenchContext:
    """What one microbenchmark invocation gets to work with.

    Attributes:
        quick: trimmed workload sizes for smoke runs (CI uses this).
        telemetry: fresh per-invocation hub; counters recorded here
            end up in the report and are asserted deterministic.
    """

    quick: bool = False
    telemetry: Telemetry = field(default_factory=Telemetry)

    def size(self, full: int, quick: int) -> int:
        """Pick the workload size for this invocation's mode."""
        return quick if self.quick else full


@dataclass(frozen=True)
class Benchmark:
    """One registered microbenchmark: metadata plus its probe function."""

    name: str
    tier: str                          #: "detailed" | "interval" | "infra"
    description: str
    fn: Callable[[BenchContext], None]

    def run(self, ctx: BenchContext) -> None:
        """Execute the probe once under *ctx* (timed by the harness)."""
        self.fn(ctx)


#: Registry of every microbenchmark, in registration order.
BENCHMARKS: dict[str, Benchmark] = {}


def register(name: str, *, tier: str, description: str):
    """Class the decorated function as the microbenchmark *name*."""
    if tier not in TIERS:
        raise ValueError(f"tier must be one of {TIERS}, got {tier!r}")

    def decorator(fn: Callable[[BenchContext], None]):
        if name in BENCHMARKS:
            raise ValueError(f"duplicate benchmark name {name!r}")
        BENCHMARKS[name] = Benchmark(
            name=name, tier=tier, description=description, fn=fn)
        return fn

    return decorator


def get(name: str) -> Benchmark:
    """Look up one microbenchmark; raises ``KeyError`` with the roster."""
    try:
        return BENCHMARKS[name]
    except KeyError:
        known = ", ".join(BENCHMARKS)
        raise KeyError(
            f"unknown benchmark {name!r} — choose from: {known}") from None


def names() -> list[str]:
    """Every registered microbenchmark name, in registration order."""
    return list(BENCHMARKS)


# ----------------------------------------------------------------------
# The standard probes
# ----------------------------------------------------------------------
@register(
    "detailed-slice", tier="detailed",
    description="IntervalEngine over DetailedBackend: cycle-level "
                "slices with arbitration, SC transfer, shared L2",
)
def bench_detailed_slice(ctx: BenchContext) -> None:
    """One small cycle-level Mirage cluster run, end to end."""
    from repro.arbiter import SCMPKIArbitrator
    from repro.cmp.detailed import DetailedMirageCluster
    from repro.workloads import make_benchmark

    with ctx.telemetry.profiler.time("setup"):
        cluster = DetailedMirageCluster(
            [make_benchmark("hmmer", seed=1),
             make_benchmark("gcc", seed=1),
             make_benchmark("mcf", seed=1)],
            SCMPKIArbitrator(),
            slice_instructions=ctx.size(6_000, 1_500),
            telemetry=ctx.telemetry,
        )
    with ctx.telemetry.profiler.time("slices"):
        result = cluster.run(n_slices=ctx.size(8, 3))
    ctx.telemetry.counters.bump(
        "bench.stp_milli", round(result.stp * 1000))


@register(
    "oino-replay", tier="detailed",
    description="OoO schedule recording then OinO replay of the same "
                "stream through one Schedule Cache",
)
def bench_oino_replay(ctx: BenchContext) -> None:
    """The producer/consumer memoization loop on one benchmark."""
    from repro.cores import OinOCore, OutOfOrderCore
    from repro.memory import MemoryHierarchy
    from repro.schedule import ScheduleCache, ScheduleRecorder
    from repro.workloads import make_benchmark

    n = ctx.size(30_000, 8_000)
    with ctx.telemetry.profiler.time("setup"):
        bench = make_benchmark("hmmer", seed=2)
        hier = MemoryHierarchy()
        sc = ScheduleCache(8 * 1024)
    with ctx.telemetry.profiler.time("record"):
        producer = OutOfOrderCore(
            hier.core_view(0), recorder=ScheduleRecorder(sc))
        recorded = producer.run(bench.stream(), n)
    with ctx.telemetry.profiler.time("replay"):
        consumer = OinOCore(hier.core_view(1), sc)
        replayed = consumer.run(bench.stream(), n)
    counters = ctx.telemetry.counters
    counters.merge(recorded.stats.counters(prefix="ooo."))
    counters.merge(replayed.stats.counters(prefix="oino."))
    counters.merge(sc.stats.counters(prefix="sc."))


@register(
    "sim-cache", tier="detailed",
    description="SliceMemo cold capture then all-hit replay of an "
                "identical detailed-tier cluster run",
)
def bench_sim_cache(ctx: BenchContext) -> None:
    """Slice-memoization capture/replay on a repeated cluster run.

    A private :class:`~repro.simcache.SliceMemo` is populated by the
    cold run, then an identical cluster is driven straight through the
    replay path; the probe asserts the replayed result matches before
    reporting, so a correctness regression fails loudly here too.
    """
    from repro import simcache
    from repro.arbiter import SCMPKIArbitrator
    from repro.cmp.detailed import DetailedMirageCluster
    from repro.workloads import make_benchmark

    memo = simcache.SliceMemo()
    slice_n = ctx.size(4_000, 1_000)
    n_slices = ctx.size(6, 3)

    def run():
        cluster = DetailedMirageCluster(
            [make_benchmark("hmmer", seed=3),
             make_benchmark("mcf", seed=3)],
            SCMPKIArbitrator(),
            slice_instructions=slice_n,
            sim_cache=memo,
        )
        return cluster.run(n_slices=n_slices)

    with ctx.telemetry.profiler.time("cold"):
        cold = run()
    with ctx.telemetry.profiler.time("replay"):
        warm = run()
    if (warm.ipcs, warm.migrations, warm.energy_pj) != (
            cold.ipcs, cold.migrations, cold.energy_pj):
        raise RuntimeError("sim-cache replay diverged from the cold run")
    counters = ctx.telemetry.counters
    counters.bump("simcache.lookups", memo.stats.lookups)
    counters.bump("simcache.hits", memo.stats.hits)
    counters.bump("simcache.stores", memo.stats.stores)
    counters.bump("simcache.entries", memo.num_entries)
    counters.bump("simcache.bytes", memo.approx_bytes)


@register(
    "cgooo-slice", tier="detailed",
    description="CGOoOCore block scheduling: cold schedule selection "
                "then SC-memoized replay of the same stream",
)
def bench_cgooo_slice(ctx: BenchContext) -> None:
    """The CG-OoO consumer's block-window loop, cold and memoized.

    The first run populates the Schedule Cache with block schedules
    (the bw-select path); the second run over an identical stream
    replays them (the sc-read path).  Timing is deterministic on both
    paths, so the probe asserts identical cycle counts before
    reporting — a divergence means the memo shortcut changed timing.
    """
    from repro.cores import CGOoOCore
    from repro.memory import MemoryHierarchy
    from repro.schedule import ScheduleCache
    from repro.workloads import make_benchmark

    n = ctx.size(30_000, 8_000)
    with ctx.telemetry.profiler.time("setup"):
        bench = make_benchmark("hmmer", seed=2)
        sc = ScheduleCache(32 * 1024)
    # Each leg gets a private hierarchy: only the Schedule Cache is
    # shared, so any cycle difference is the memo shortcut's fault.
    with ctx.telemetry.profiler.time("cold"):
        cold = CGOoOCore(MemoryHierarchy().core_view(0), sc).run(
            bench.stream(), n)
    bench = make_benchmark("hmmer", seed=2)
    with ctx.telemetry.profiler.time("memoized"):
        warm = CGOoOCore(MemoryHierarchy().core_view(0), sc).run(
            bench.stream(), n)
    if warm.cycles != cold.cycles:
        raise RuntimeError("memoized CG-OoO run diverged from cold")
    counters = ctx.telemetry.counters
    counters.merge(cold.stats.counters(prefix="cold."))
    counters.merge(warm.stats.counters(prefix="warm."))
    counters.merge(sc.stats.counters(prefix="sc."))


@register(
    "ldt-issue", tier="detailed",
    description="Load-delay-tracking InO issue policy against the "
                "stall baseline on one memory-bound stream",
)
def bench_ldt_issue(ctx: BenchContext) -> None:
    """Stall vs LDT issue over the same stream, same hierarchy shape."""
    from repro.cores import InOrderCore, LDT_PARAMS
    from repro.memory import MemoryHierarchy
    from repro.workloads import make_benchmark

    n = ctx.size(30_000, 8_000)
    with ctx.telemetry.profiler.time("setup"):
        bench = make_benchmark("mcf", seed=2)
    with ctx.telemetry.profiler.time("stall"):
        stall = InOrderCore(MemoryHierarchy().core_view(0)).run(
            bench.stream(), n)
    bench = make_benchmark("mcf", seed=2)
    with ctx.telemetry.profiler.time("ldt"):
        ldt = InOrderCore(MemoryHierarchy().core_view(0),
                          params=LDT_PARAMS).run(bench.stream(), n)
    counters = ctx.telemetry.counters
    counters.merge(stall.stats.counters(prefix="stall."))
    counters.merge(ldt.stats.counters(prefix="ldt."))
    counters.bump("bench.ldt_speedup_milli",
                  round(1000 * ldt.ipc / max(1e-9, stall.ipc)))


@register(
    "interval-engine", tier="interval",
    description="IntervalEngine over AnalyticBackend: one arbitrated "
                "8-app CMP run through the four-phase pipeline",
)
def bench_interval_engine(ctx: BenchContext) -> None:
    """One interval-tier CMP simulation over a standard mix."""
    from repro.arbiter import SCMPKIArbitrator
    from repro.characterize import analytic_model
    from repro.cmp import ClusterConfig
    from repro.cmp.system import CMPSystem
    from repro.workloads import standard_mixes

    with ctx.telemetry.profiler.time("setup"):
        mix = standard_mixes(8)[0]
        models = [analytic_model(name) for name in mix]
        config = ClusterConfig(n_consumers=8, n_producers=1, mirage=True)
    reps = ctx.size(6, 2)
    for _ in range(reps):
        system = CMPSystem(config, models, SCMPKIArbitrator(),
                           telemetry=ctx.telemetry)
        result = system.run()
    ctx.telemetry.counters.bump(
        "bench.stp_milli", round(result.stp * 1000))


@register(
    "interval-batch", tier="interval",
    description="AnalyticBackend's vectorized kernel: a 48-app CMP "
                "run through the numpy advance_all path",
)
def bench_interval_batch(ctx: BenchContext) -> None:
    """One wide interval-tier run that auto-selects the vector kernel.

    48 applications is past ``VECTOR_MIN_APPS``, so the backend takes
    the numpy batch path; the scalar-kernel probe stays
    ``interval-engine``, making vector-path regressions visible on
    their own row.
    """
    from repro.arbiter import SCMPKIArbitrator
    from repro.characterize import analytic_model
    from repro.cmp import ClusterConfig
    from repro.cmp.system import CMPSystem
    from repro.workloads import ALL_BENCHMARKS

    n_apps = ctx.size(48, 36)
    with ctx.telemetry.profiler.time("setup"):
        names = [ALL_BENCHMARKS[i % len(ALL_BENCHMARKS)]
                 for i in range(n_apps)]
        models = [analytic_model(name) for name in names]
        config = ClusterConfig(n_consumers=n_apps, n_producers=4,
                               mirage=True)
    reps = ctx.size(3, 1)
    for _ in range(reps):
        system = CMPSystem(config, models, SCMPKIArbitrator(),
                           telemetry=ctx.telemetry)
        result = system.run(max_intervals=ctx.size(400, 150))
    ctx.telemetry.counters.bump(
        "bench.stp_milli", round(result.stp * 1000))


@register(
    "detailed-shard", tier="detailed",
    description="ShardedDetailedBackend: two independent clusters "
                "fanned over a 2-worker process pool, merged in order",
)
def bench_detailed_shard(ctx: BenchContext) -> None:
    """Two cluster specs through the process-pool fan-out path.

    Exercises spec pickling, worker-side cluster rebuild, and the
    deterministic spec-order merge; on a one-core box this mostly
    measures pool overhead, which is exactly what the probe is for.
    """
    from repro.cmp.sharded import (
        ClusterSpec,
        ShardedDetailedBackend,
        merge_counters,
    )

    with ctx.telemetry.profiler.time("setup"):
        slice_n = ctx.size(3_000, 1_000)
        n_slices = ctx.size(5, 2)
        specs = [
            ClusterSpec(
                benchmarks=(("hmmer", 3, 1 << 34), ("mcf", 3, 2 << 34)),
                slice_instructions=slice_n, n_slices=n_slices),
            ClusterSpec(
                benchmarks=(("bzip2", 3, 1 << 34), ("astar", 3, 2 << 34)),
                slice_instructions=slice_n, n_slices=n_slices),
        ]
    with ctx.telemetry.profiler.time("shards"):
        outcomes = ShardedDetailedBackend(specs, jobs=2).run()
    counters = ctx.telemetry.counters
    counters.merge(merge_counters(outcomes))
    for outcome in outcomes:
        counters.bump("bench.stp_milli",
                      round(outcome.result.stp * 1000))


@register(
    "slice-store", tier="infra",
    description="SliceStore persistence: cold capture to disk, then "
                "a fresh memo replaying every slice from the store",
)
def bench_slice_store(ctx: BenchContext) -> None:
    """Disk round-trip of the slice memo against a temp store.

    The cold run populates a :class:`~repro.simcache.SliceStore` in a
    temporary directory; a *fresh* memo sharing only that store then
    replays the identical cluster, so every hit is a disk hit — the
    cross-process warm-start path, minus the process boundary.  The
    probe asserts result identity and that the disk layer actually
    served hits, so a silent store regression fails loudly here.
    """
    from repro import simcache
    from repro.arbiter import SCMPKIArbitrator
    from repro.cmp.detailed import DetailedMirageCluster
    from repro.workloads import make_benchmark

    slice_n = ctx.size(3_000, 1_000)
    n_slices = ctx.size(5, 2)

    def run(memo):
        cluster = DetailedMirageCluster(
            [make_benchmark("hmmer", seed=4),
             make_benchmark("mcf", seed=4)],
            SCMPKIArbitrator(),
            slice_instructions=slice_n,
            sim_cache=memo,
        )
        return cluster.run(n_slices=n_slices)

    with tempfile.TemporaryDirectory(prefix="mirage-bench-") as tmp:
        store = simcache.SliceStore(Path(tmp))
        with ctx.telemetry.profiler.time("cold"):
            cold = run(simcache.SliceMemo(disk=store))
        warm_memo = simcache.SliceMemo(disk=store)
        with ctx.telemetry.profiler.time("disk-replay"):
            warm = run(warm_memo)
        if (warm.ipcs, warm.migrations, warm.energy_pj) != (
                cold.ipcs, cold.migrations, cold.energy_pj):
            raise RuntimeError(
                "slice-store replay diverged from the cold run")
        if warm_memo.stats.disk_hits == 0:
            raise RuntimeError("slice-store replay never hit the disk")
        counters = ctx.telemetry.counters
        counters.bump("store.loads", store.stats.loads)
        counters.bump("store.hits", store.stats.hits)
        counters.bump("store.stores", store.stats.stores)
        counters.bump("store.rejected", store.stats.rejected)
        counters.bump("simcache.disk_hits", warm_memo.stats.disk_hits)


@register(
    "memory-hierarchy", tier="detailed",
    description="CoreMemory access loop: L1/TLB hits, L2 refills, "
                "strided and pointer-chase address patterns",
)
def bench_memory_hierarchy(ctx: BenchContext) -> None:
    """A deterministic demand-access loop over two core views."""
    from repro.memory import MemoryHierarchy

    with ctx.telemetry.profiler.time("setup"):
        hier = MemoryHierarchy()
        mem0 = hier.core_view(0)
        mem1 = hier.core_view(1)
    n = ctx.size(120_000, 30_000)
    latency_sum = 0
    misses = 0
    with ctx.telemetry.profiler.time("accesses"):
        for i in range(n):
            pc = 0x1000_0000 + (i % 512) * 4
            # Mixed locality: a hot strided region, a cold sweep, and
            # cross-core L2 sharing every 16th access.
            addr = (0x4000_0000 + (i % 64) * 8 if i % 4
                    else 0x5000_0000 + i * 64)
            mem = mem1 if i % 16 == 0 else mem0
            if i % 8 == 7:
                res = mem.store(pc, addr, now=i)
            elif i % 3 == 0:
                res = mem.fetch(pc, now=i)
            else:
                res = mem.load(pc, addr, now=i)
            latency_sum += res.latency
            misses += not res.l1_hit
    counters = ctx.telemetry.counters
    counters.bump("mem.accesses", n)
    counters.bump("mem.latency_sum", latency_sum)
    counters.bump("mem.l1_misses", misses)
    counters.bump("mem.l2_accesses", hier.l2.stats.accesses)
    counters.bump("mem.l2_misses", hier.l2.stats.misses)


@register(
    "runner-cache", tier="infra",
    description="ResultCache round-trip: CMPResult encode, atomic "
                "publish, keyed read-back",
)
def bench_runner_cache(ctx: BenchContext) -> None:
    """Write-then-read one CMPResult payload through the on-disk cache."""
    from repro.runner import ResultCache, cmp_unit
    from repro.runner.cache import MISS
    from repro.runner.units import execute_unit

    with ctx.telemetry.profiler.time("setup"):
        unit = cmp_unit(("hmmer", "gcc"), "SC-MPKI", max_intervals=40,
                        record_history=True)
        payload = execute_unit(unit)
    rounds = ctx.size(150, 40)
    counters = ctx.telemetry.counters
    with tempfile.TemporaryDirectory(prefix="mirage-bench-") as tmp:
        cache = ResultCache(Path(tmp))
        with ctx.telemetry.profiler.time("round-trips"):
            for i in range(rounds):
                cache.put(f"bench-{i}", unit, payload)
                back = cache.get(f"bench-{i}", unit)
                if back is MISS:
                    raise RuntimeError("cache round-trip lost the payload")
        counters.bump("cache.round_trips", rounds)
        counters.bump("cache.payload_bytes", len(json.dumps(
            back.speedups)))
        counters.bump("cache.stp_milli", round(back.stp * 1000))


@register(
    "service-roundtrip", tier="infra",
    description="Experiment service end to end: in-process server, "
                "one spawned worker, jobs submitted, streamed, then "
                "resubmitted as pure cache hits",
)
def bench_service_roundtrip(ctx: BenchContext) -> None:
    """Submission-to-result latency through the whole service stack.

    Spins up an :class:`~repro.service.server.ExperimentServer` (one
    worker process) against temp directories, pushes a batch of echo
    jobs through submit → dispatch → execute → stream, then resubmits
    the identical batch — which must come back entirely from the
    result cache.  The probe asserts both counts, so a dedup
    regression fails loudly here before it costs real compute.
    """
    import os

    from repro.config import CacheConfig, ServiceConfig
    from repro.service import ServerHandle, ServiceClient, SubmitRequest

    n_jobs = ctx.size(8, 3)
    saved_env = {key: os.environ.get(key)
                 for key in ("MIRAGE_CACHE_DIR",)}
    with tempfile.TemporaryDirectory(prefix="mirage-bench-") as tmp:
        config = ServiceConfig(
            workers=1, service_dir=Path(tmp) / "svc",
            cache=CacheConfig(cache_dir=str(Path(tmp) / "cache"),
                              use_result_cache=True))
        with ctx.telemetry.profiler.time("serve"):
            handle = ServerHandle.start(config)
        try:
            client = ServiceClient(service_dir=config.service_dir)
            requests = [
                SubmitRequest(
                    target="repro.service.protocol:echo_unit",
                    kwargs=(("tag", f"bench-{i}"),))
                for i in range(n_jobs)
            ]
            with ctx.telemetry.profiler.time("submit-wait"):
                ids = [client.submit(r)["job"]["id"] for r in requests]
                for job_id in ids:
                    client.result(job_id, timeout=120)
            with ctx.telemetry.profiler.time("cached-resubmit"):
                for request in requests:
                    again = client.submit(request)["job"]
                    if again["state"] != "done":
                        client.result(again["id"], timeout=120)
            stats = client.health()["stats"]
        finally:
            handle.stop(drain=True)
            for key, value in saved_env.items():
                if value is None:
                    os.environ.pop(key, None)
                else:
                    os.environ[key] = value
    if stats["executions"] != n_jobs:
        raise RuntimeError(
            f"expected {n_jobs} executions, saw {stats['executions']}")
    if stats["cache_hits"] != n_jobs:
        raise RuntimeError(
            f"expected {n_jobs} cache hits, saw {stats['cache_hits']}")
    counters = ctx.telemetry.counters
    counters.bump("service.jobs", 2 * n_jobs)
    counters.bump("service.executions", stats["executions"])
    counters.bump("service.cache_hits", stats["cache_hits"])


@register(
    "pool-warm", tier="infra",
    description="WarmPool dispatch: persistent workers reused across "
                "batches vs a cold process pool spawned per batch",
)
def bench_pool_warm(ctx: BenchContext) -> None:
    """Repeated unit batches, cold-pool-per-batch vs one warm pool.

    The cold leg is exactly what every parallel path used to pay: a
    fresh ``ProcessPoolExecutor`` (fork + pool teardown) per batch.
    The warm leg spawns the pool once (its own phase, so the
    amortized cost is visible) and dispatches the same batches to the
    already-running workers.  The probe asserts the two legs'
    results are bit-identical before reporting; where the pool cannot
    run, both legs degrade serially and the probe still reports.
    """
    from concurrent.futures import ProcessPoolExecutor

    from repro.runner.pool import PoolUnavailable, WarmPool
    from repro.runner.units import cmp_unit, execute_unit

    with ctx.telemetry.profiler.time("setup"):
        n_units = ctx.size(6, 3)
        batches = ctx.size(3, 2)
        units = [cmp_unit(("hmmer", "gcc"), "SC-MPKI",
                          max_intervals=24 + i) for i in range(n_units)]

    def run_cold():
        try:
            with ProcessPoolExecutor(max_workers=2) as pool:
                return list(pool.map(execute_unit, units))
        except (OSError, PermissionError):
            return [execute_unit(unit) for unit in units]

    with ctx.telemetry.profiler.time("cold-pools"):
        for _ in range(batches):
            cold = run_cold()
    pool = None
    try:
        with ctx.telemetry.profiler.time("warm-spawn"):
            pool = WarmPool(2)
        with ctx.telemetry.profiler.time("warm-batches"):
            for _ in range(batches):
                warm = pool.map(execute_unit, units)
    except PoolUnavailable:
        with ctx.telemetry.profiler.time("warm-batches"):
            for _ in range(batches):
                warm = [execute_unit(unit) for unit in units]
    finally:
        if pool is not None:
            pool.shutdown()
    if warm != cold:
        raise RuntimeError("warm-pool batch diverged from cold pool")
    counters = ctx.telemetry.counters
    counters.bump("pool.batches", batches)
    counters.bump("pool.units", batches * n_units)
    for result in warm:
        counters.bump("bench.stp_milli", round(result.stp * 1000))


@register(
    "sweep-makespan", tier="infra",
    description="LPT dispatch through the warm pool: a skewed unit "
                "batch longest-first vs submission order",
)
def bench_sweep_makespan(ctx: BenchContext) -> None:
    """FIFO vs longest-first dispatch of one deliberately skewed batch.

    The batch is several light units followed by one unit ~8x their
    cost — the worst case for submission-order dispatch, whose
    makespan ends on the late-starting heavy unit.  LPT starts the
    heavy unit first, so the light tail packs behind it.  The probe
    asserts the LPT permutation is the deterministic pure function
    of the cost hints it must be, and that both dispatch orders
    produce bit-identical (input-ordered) results.
    """
    from repro.runner.pool import PoolUnavailable, WarmPool, lpt_order
    from repro.runner.units import cmp_unit, execute_unit

    with ctx.telemetry.profiler.time("setup"):
        light_n = ctx.size(6, 4)
        base = ctx.size(60, 30)
        units = [cmp_unit(("bzip2", "astar"), "SC-MPKI",
                          max_intervals=base + i)
                 for i in range(light_n)]
        units.append(cmp_unit(("hmmer", "gcc", "mcf", "bzip2"),
                              "SC-MPKI", max_intervals=base * 8))
        costs = [float(unit.max_intervals * len(unit.benchmarks))
                 for unit in units]
    order = lpt_order(costs)
    if order[0] != len(units) - 1:
        raise RuntimeError("LPT did not dispatch the heavy unit first")
    if order != lpt_order(costs):
        raise RuntimeError("LPT ordering is nondeterministic")
    pool = None
    try:
        pool = WarmPool(2)
        with ctx.telemetry.profiler.time("fifo"):
            fifo = pool.map(execute_unit, units)
        with ctx.telemetry.profiler.time("lpt"):
            lpt = pool.map(execute_unit, units, costs=costs)
    except PoolUnavailable:
        with ctx.telemetry.profiler.time("fifo"):
            fifo = [execute_unit(unit) for unit in units]
        with ctx.telemetry.profiler.time("lpt"):
            lpt = [execute_unit(unit) for unit in units]
    finally:
        if pool is not None:
            pool.shutdown()
    if lpt != fifo:
        raise RuntimeError("LPT dispatch changed a sweep's results")
    counters = ctx.telemetry.counters
    counters.bump("pool.units", 2 * len(units))
    # The permutation itself, folded to one deterministic number.
    counters.bump("pool.lpt_order_key",
                  sum(i * position for i, position in enumerate(order)))
    for result in lpt:
        counters.bump("bench.stp_milli", round(result.stp * 1000))
