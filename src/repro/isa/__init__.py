"""Instruction set model for the Mirage Cores reproduction.

The simulator works on a compact, ARM-flavoured RISC instruction model:
each :class:`~repro.isa.instructions.Instruction` carries an operation
class, architectural source/destination registers, an optional memory
address, and branch metadata.  Programs are produced lazily by the
workload generators in :mod:`repro.workloads` as deterministic streams
of instructions annotated with program counters so that traces (the
unit of schedule memoization) can be delimited by backward branches.
"""

from repro.isa.instructions import (
    NUM_ARCH_REGS,
    FP_REG_BASE,
    Instruction,
    OpClass,
    is_fp_class,
    is_mem_class,
)
from repro.isa.program import BasicBlock, InstructionStream, iter_block

__all__ = [
    "NUM_ARCH_REGS",
    "FP_REG_BASE",
    "Instruction",
    "OpClass",
    "is_fp_class",
    "is_mem_class",
    "BasicBlock",
    "InstructionStream",
    "iter_block",
]
