"""Instruction and operation-class definitions.

The model is deliberately small: the cycle-level cores in
:mod:`repro.cores` only need to know an instruction's operation class
(which functional unit it occupies and for how long), its register
dependencies, whether it touches memory (and at what address), and its
branch behaviour.  That is exactly the information an issue schedule is
built from, and therefore all that schedule memoization needs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

#: Number of architectural integer registers (ARM-like: r0-r31 modelled).
NUM_ARCH_REGS = 32

#: Architectural register ids >= FP_REG_BASE denote floating-point registers.
FP_REG_BASE = 32

#: Total architectural register namespace (32 int + 32 fp).
TOTAL_ARCH_REGS = 64


class OpClass(enum.IntEnum):
    """Operation classes, each mapping to a functional-unit type."""

    IALU = 0       #: single-cycle integer ALU op
    IMUL = 1       #: integer multiply (3 cycles)
    IDIV = 2       #: integer divide (12 cycles, unpipelined)
    FALU = 3       #: floating-point add/sub (3 cycles)
    FMUL = 4       #: floating-point multiply (4 cycles)
    FDIV = 5       #: floating-point divide (16 cycles, unpipelined)
    LOAD = 6       #: memory load (latency from the cache hierarchy)
    STORE = 7      #: memory store
    BRANCH = 8     #: conditional/unconditional control transfer
    NOP = 9        #: no-op (pipeline filler)


#: Base execution latency per op class, excluding memory-hierarchy time.
BASE_LATENCY: dict[OpClass, int] = {
    OpClass.IALU: 1,
    OpClass.IMUL: 3,
    OpClass.IDIV: 12,
    OpClass.FALU: 3,
    OpClass.FMUL: 4,
    OpClass.FDIV: 16,
    OpClass.LOAD: 1,   # address generation; cache adds access latency
    OpClass.STORE: 1,
    OpClass.BRANCH: 1,
    OpClass.NOP: 1,
}

_MEM_CLASSES = frozenset({OpClass.LOAD, OpClass.STORE})
_FP_CLASSES = frozenset({OpClass.FALU, OpClass.FMUL, OpClass.FDIV})


def is_mem_class(opclass: OpClass) -> bool:
    """Return True if *opclass* accesses data memory."""
    return opclass in _MEM_CLASSES


def is_fp_class(opclass: OpClass) -> bool:
    """Return True if *opclass* executes on a floating-point unit."""
    return opclass in _FP_CLASSES


#: Per-opclass lookup rows indexed by the IntEnum value.  The hot core
#: loops read ``is_load``/``is_mem``/``base_latency`` several times per
#: dynamic instruction; materializing them once at construction (plain
#: slot attributes, filled from these tuples in ``__post_init__``)
#: removes a Python property call plus an enum hash from every read.
_IS_LOAD_BY_OP = tuple(op is OpClass.LOAD for op in OpClass)
_IS_STORE_BY_OP = tuple(op is OpClass.STORE for op in OpClass)
_IS_MEM_BY_OP = tuple(op in _MEM_CLASSES for op in OpClass)
_BASE_LATENCY_BY_OP = tuple(BASE_LATENCY[op] for op in OpClass)


@dataclass(slots=True)
class Instruction:
    """One dynamic instruction.

    Attributes:
        seq: Global dynamic sequence number (program order).
        pc: Program counter of the static instruction.
        opclass: Operation class (functional unit + base latency).
        dst: Destination architectural register, or ``None``.
        srcs: Source architectural registers (may be empty).
        mem_addr: Effective address for loads/stores, else ``None``.
        is_branch: True for control transfers.
        taken: Branch outcome (meaningful only when ``is_branch``).
        target: Branch target pc (meaningful only when ``is_branch``).
        mispredicted: Set by the frontend model when the branch predictor
            got this instance wrong; drives redirect bubbles.
        is_load: Derived: ``opclass is OpClass.LOAD``.
        is_store: Derived: ``opclass is OpClass.STORE``.
        is_mem: Derived: the instruction accesses data memory.
        base_latency: Derived: execution latency excluding
            memory-hierarchy time (:data:`BASE_LATENCY`).
    """

    seq: int
    pc: int
    opclass: OpClass
    dst: int | None = None
    srcs: tuple[int, ...] = ()
    mem_addr: int | None = None
    is_branch: bool = False
    taken: bool = False
    target: int = 0
    mispredicted: bool = field(default=False, compare=False)
    is_load: bool = field(init=False, compare=False, repr=False)
    is_store: bool = field(init=False, compare=False, repr=False)
    is_mem: bool = field(init=False, compare=False, repr=False)
    base_latency: int = field(init=False, compare=False, repr=False)

    def __post_init__(self) -> None:
        op = self.opclass
        self.is_load = _IS_LOAD_BY_OP[op]
        self.is_store = _IS_STORE_BY_OP[op]
        self.is_mem = _IS_MEM_BY_OP[op]
        self.base_latency = _BASE_LATENCY_BY_OP[op]

    @property
    def is_backward_branch(self) -> bool:
        """Backward branches delimit traces (paper section 3.3)."""
        return self.is_branch and self.taken and self.target <= self.pc

    def encoding_bytes(self) -> int:
        """Size of the instruction in the Schedule Cache (fixed 4 B ISA)."""
        return 4

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [f"#{self.seq}", f"pc={self.pc:#x}", self.opclass.name]
        if self.dst is not None:
            parts.append(f"d=r{self.dst}")
        if self.srcs:
            parts.append("s=" + ",".join(f"r{s}" for s in self.srcs))
        if self.mem_addr is not None:
            parts.append(f"@{self.mem_addr:#x}")
        if self.is_branch:
            parts.append(f"->{self.target:#x}" + ("T" if self.taken else "N"))
        return "<Insn " + " ".join(parts) + ">"
