"""Static program shapes: basic blocks and lazy instruction streams.

Workload generators build programs out of :class:`BasicBlock` templates
(loop bodies, straight-line regions) and then instantiate them lazily as
an :class:`InstructionStream` — an iterator of dynamic
:class:`~repro.isa.instructions.Instruction` objects with concrete
sequence numbers, addresses and branch outcomes.  Streams are the only
interface the cores consume, so a program of any dynamic length costs
O(1) memory.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from repro.isa.instructions import Instruction, OpClass


@dataclass(slots=True)
class BlockInstr:
    """Static instruction template within a basic block.

    ``mem_stream`` names which generated address stream feeds this
    instruction's effective addresses (resolved by the workload layer).
    """

    opclass: OpClass
    dst: int | None = None
    srcs: tuple[int, ...] = ()
    mem_stream: int | None = None


@dataclass(slots=True)
class BasicBlock:
    """A static basic block: straight-line instructions plus a terminator.

    The terminating branch is implicit: when ``loop_back`` is true the
    block ends with a backward branch to ``start_pc`` (taken while the
    enclosing loop continues), which is what delimits traces.
    """

    start_pc: int
    instrs: list[BlockInstr] = field(default_factory=list)
    loop_back: bool = False

    @property
    def size(self) -> int:
        """Number of instructions including the terminator branch."""
        return len(self.instrs) + (1 if self.loop_back else 0)

    @property
    def end_pc(self) -> int:
        return self.start_pc + 4 * self.size


class InstructionStream:
    """Iterator adapter that tracks the dynamic sequence number.

    Wraps any iterable of instruction *factories* (callables that accept
    the next sequence number and return an Instruction) or plain
    instructions; mostly used by tests and the workload generator's
    internals.
    """

    def __init__(self, source: Iterable[Instruction]):
        self._source = iter(source)
        self.emitted = 0

    def __iter__(self) -> Iterator[Instruction]:
        return self

    def __next__(self) -> Instruction:
        insn = next(self._source)
        self.emitted += 1
        return insn


def iter_block(
    block: BasicBlock,
    seq_start: int,
    *,
    addr_of: "callable | None" = None,
    taken: bool = True,
) -> Iterator[Instruction]:
    """Instantiate one dynamic execution of *block*.

    Args:
        block: the static block template.
        seq_start: sequence number for the first emitted instruction.
        addr_of: callback ``(mem_stream_id) -> int`` resolving effective
            addresses; required if the block contains memory ops.
        taken: outcome of the terminating backward branch, when present.
    """
    seq = seq_start
    pc = block.start_pc
    for tmpl in block.instrs:
        mem_addr = None
        if tmpl.mem_stream is not None:
            if addr_of is None:
                raise ValueError("block has memory ops but no addr_of given")
            mem_addr = addr_of(tmpl.mem_stream)
        yield Instruction(
            seq=seq,
            pc=pc,
            opclass=tmpl.opclass,
            dst=tmpl.dst,
            srcs=tmpl.srcs,
            mem_addr=mem_addr,
        )
        seq += 1
        pc += 4
    if block.loop_back:
        yield Instruction(
            seq=seq,
            pc=pc,
            opclass=OpClass.BRANCH,
            is_branch=True,
            taken=taken,
            target=block.start_pc,
        )
