"""The service-facing ``mirage`` subcommands.

``mirage serve`` runs the job server in the foreground; ``mirage
submit`` / ``jobs`` / ``tail`` / ``shutdown`` are thin wrappers around
:class:`~repro.service.client.ServiceClient`, discovering the server
through the ``server.json`` file under the service directory
(``--service-dir`` or ``MIRAGE_SERVICE_DIR``).  Every client command
takes ``--json`` for machine-readable output; ``mirage submit
--porcelain`` prints only the job id, which is what scripts pipe into
``mirage tail``.
"""

from __future__ import annotations

import argparse
import json
import sys


def _serve(argv: list[str]) -> int:
    from repro.config import CacheConfig, ServiceConfig
    from repro.service.server import serve

    parser = argparse.ArgumentParser(
        prog="mirage serve",
        description="Run the experiment job server in the foreground.")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: 127.0.0.1). "
                             "Loopback binds trust their clients; on "
                             "any other bind, mutating endpoints "
                             "(POST /jobs, POST /shutdown) require "
                             "the session token from server.json — "
                             "POST /jobs executes arbitrary call "
                             "targets, so never expose it unguarded")
    parser.add_argument("--port", type=int, default=0,
                        help="bind port (default: 0 = ephemeral)")
    parser.add_argument("--workers", type=int, default=2, metavar="N",
                        help="worker processes to spawn (default: 2)")
    parser.add_argument("--service-dir", metavar="DIR",
                        help="journal/stream/address directory "
                             "(default: <cache dir>/service)")
    parser.add_argument("--heartbeat-interval", type=float, default=1.0,
                        metavar="S", help="worker heartbeat period "
                        "(default: 1.0)")
    parser.add_argument("--heartbeat-timeout", type=float, default=5.0,
                        metavar="S", help="silence before a worker is "
                        "evicted (default: 5.0)")
    parser.add_argument("--drain-timeout", type=float, default=30.0,
                        metavar="S", help="graceful-shutdown budget "
                        "(default: 30.0)")
    parser.add_argument("--cache-dir", metavar="DIR",
                        help="result-cache location "
                             "(default: ~/.cache/mirage)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable result-cache reads/writes "
                             "(digests still key coalescing)")
    args = parser.parse_args(argv)
    if args.workers < 0:
        parser.error("--workers must be >= 0")
    cache_cfg = CacheConfig(cache_dir=args.cache_dir,
                            use_result_cache=not args.no_cache)
    serve(ServiceConfig(
        host=args.host, port=args.port, workers=args.workers,
        heartbeat_interval=args.heartbeat_interval,
        heartbeat_timeout=args.heartbeat_timeout,
        drain_timeout=args.drain_timeout,
        service_dir=args.service_dir, cache=cache_cfg))
    return 0


def _client(args) -> "object":
    from repro.service.client import ServiceClient

    return ServiceClient(service_dir=args.service_dir)


def _submit(argv: list[str]) -> int:
    from repro.service.client import ServiceError, TERMINAL_EVENTS
    from repro.service.protocol import SubmitRequest

    parser = argparse.ArgumentParser(
        prog="mirage submit",
        description="Submit experiments to a running `mirage serve`.")
    parser.add_argument("experiments", nargs="*", metavar="NAME",
                        help="experiment names (or 'all')")
    parser.add_argument("--target", default="", metavar="PKG.MOD:FN",
                        help="ad-hoc call target instead of experiments")
    parser.add_argument("--quick", action="store_true",
                        help="trimmed workload sizes")
    parser.add_argument("--n-mixes", type=int, default=None, metavar="N",
                        help="cap mixes per configuration")
    parser.add_argument("--seed", type=int, default=None, metavar="N",
                        help="mix-selection seed")
    parser.add_argument("--priority", type=int, default=0, metavar="N",
                        help="scheduling priority (higher runs first)")
    parser.add_argument("--service-dir", metavar="DIR",
                        help="service directory to discover the server")
    parser.add_argument("--wait", action="store_true",
                        help="tail the job until it finishes")
    parser.add_argument("--porcelain", action="store_true",
                        help="print only the job id (for scripts)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="print the raw server response as JSON")
    args = parser.parse_args(argv)
    if not args.experiments and not args.target:
        parser.error("name at least one experiment (or --target)")
    request = SubmitRequest(
        experiments=tuple(args.experiments), target=args.target,
        quick=args.quick, n_mixes=args.n_mixes, seed=args.seed,
        priority=args.priority)
    try:
        client = _client(args)
        response = client.submit(request)
    except ServiceError as exc:
        print(f"mirage submit: {exc}", file=sys.stderr)
        return 1
    info = response["job"]
    if args.porcelain:
        print(info["id"])
    elif args.as_json:
        print(json.dumps(response, indent=2))
    else:
        note = " (coalesced with an in-flight job)" \
            if response.get("coalesced") else ""
        print(f"[submit] {info['id']}: {info['experiment']} — "
              f"{info['state']}, {info['units_total']} unit(s){note}")
    if not args.wait:
        return 0
    try:
        record = client.wait(info["id"])
    except ServiceError as exc:
        print(f"mirage submit: {exc}", file=sys.stderr)
        return 1
    if not args.porcelain and not args.as_json:
        print(f"[submit] {info['id']} -> {record['event']}")
    assert record["event"] in TERMINAL_EVENTS
    return 0 if record["event"] == "done" else 1


def _jobs(argv: list[str]) -> int:
    from repro.service.client import ServiceError

    parser = argparse.ArgumentParser(
        prog="mirage jobs",
        description="List jobs on a running `mirage serve`.")
    parser.add_argument("job_id", nargs="?", metavar="JOB",
                        help="show one job instead of the listing")
    parser.add_argument("--service-dir", metavar="DIR",
                        help="service directory to discover the server")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="print raw JSON")
    args = parser.parse_args(argv)
    try:
        client = _client(args)
        if args.job_id:
            rows = [client.job(args.job_id)]
        else:
            rows = client.jobs()
    except ServiceError as exc:
        print(f"mirage jobs: {exc}", file=sys.stderr)
        return 1
    if args.as_json:
        print(json.dumps(rows, indent=2))
        return 0
    if not rows:
        print("no jobs")
        return 0
    width = max(len(r["id"]) for r in rows)
    for row in rows:
        extra = f" x{row['submissions']}" if row["submissions"] > 1 else ""
        error = f" — {row['error']}" if row.get("error") else ""
        print(f"{row['id']:<{width}}  {row['state']:<9} "
              f"{row['units_done']}/{row['units_total']:<3} "
              f"{row['experiment']}{extra}{error}")
    return 0


def _tail(argv: list[str]) -> int:
    from repro.service.client import ServiceError

    parser = argparse.ArgumentParser(
        prog="mirage tail",
        description="Stream a job's progress records until it "
                    "finishes.")
    parser.add_argument("job_id", metavar="JOB", help="job id to follow")
    parser.add_argument("--from", dest="start", type=int, default=0,
                        metavar="N", help="skip the first N records")
    parser.add_argument("--service-dir", metavar="DIR",
                        help="service directory to discover the server")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="print the raw JSONL records")
    args = parser.parse_args(argv)
    try:
        client = _client(args)
        exit_event = ""
        for record in client.tail(args.job_id, start=args.start,
                                  timeout=None):
            if args.as_json:
                print(json.dumps(record, separators=(",", ":")),
                      flush=True)
            else:
                worker = (f" [{record['worker_id']}]"
                          if record.get("worker_id") else "")
                detail = (f" — {record['detail']}"
                          if record.get("detail") else "")
                print(f"{record['job_id']} {record['event']:<9} "
                      f"{record['units_done']}/{record['units_total']} "
                      f"{record['experiment']}{worker}{detail}",
                      flush=True)
            exit_event = record.get("event", exit_event)
    except ServiceError as exc:
        print(f"mirage tail: {exc}", file=sys.stderr)
        return 1
    return 0 if exit_event == "done" else 1


def _shutdown(argv: list[str]) -> int:
    from repro.service.client import ServiceError

    parser = argparse.ArgumentParser(
        prog="mirage shutdown",
        description="Stop a running `mirage serve`.")
    parser.add_argument("--no-drain", action="store_true",
                        help="stop immediately instead of finishing "
                             "accepted work")
    parser.add_argument("--service-dir", metavar="DIR",
                        help="service directory to discover the server")
    args = parser.parse_args(argv)
    try:
        _client(args).shutdown(drain=not args.no_drain)
    except ServiceError as exc:
        print(f"mirage shutdown: {exc}", file=sys.stderr)
        return 1
    print("[shutdown] requested"
          + (" (no drain)" if args.no_drain else " (draining)"))
    return 0


#: Subcommand name → handler, used by the main CLI router.
COMMANDS = {
    "serve": _serve,
    "submit": _submit,
    "jobs": _jobs,
    "tail": _tail,
    "shutdown": _shutdown,
}


def service_command(argv: list[str]) -> int:
    """Route one service subcommand (``argv[0]`` names it)."""
    return COMMANDS[argv[0]](argv[1:])
