"""The worker process: one TCP connection, one unit at a time.

Run as ``python -m repro.service.worker --connect HOST:PORT --id ID
--token TOKEN`` (which is exactly how the server spawns its fleet).
The worker dials the server's single port, introduces itself with a
``hello`` line, then loops: read a ``run`` message, execute its
:class:`~repro.runner.units.WorkUnit` via
:func:`~repro.runner.units.execute_unit`, and send back a ``result``
envelope (or an ``error``).  A daemon thread sends ``heartbeat``
lines on a fixed interval so the server's monitor can tell a busy
worker from a dead one; a ``stop`` message (or EOF) ends the session.

Workers are intentionally dumb: no queueing, no caching, no retry —
all of that lives in the server, which makes killing a worker at any
moment safe (its in-flight unit is simply requeued).

With ``--pool`` (or ``MIRAGE_SERVICE_POOL=1``) the worker draws
execution from the same process-global
:class:`~repro.runner.pool.WarmPool` the sweep runner and fan-outs
share — a unit's simulation crashing then takes down a *pool child*
(respawned, unit re-run) instead of the TCP session.  The pool is a
bit-identical transport, so the streamed results are unchanged; when
it cannot run here the worker silently executes inline as before.
"""

from __future__ import annotations

import argparse
import os
import socket
import threading
from typing import Any, Callable

from repro.runner.cache import encode_payload
from repro.runner.units import WorkUnit, execute_unit
from repro.service.protocol import (
    dump_message,
    load_message,
    unit_from_dict,
)

#: Environment opt-in for pool-backed execution (same as ``--pool``).
POOL_ENV_VAR = "MIRAGE_SERVICE_POOL"


def make_executor(use_pool: bool | None = None) -> Callable[[WorkUnit], Any]:
    """The unit executor a worker should run: pooled or inline.

    *use_pool* ``None`` consults ``MIRAGE_SERVICE_POOL``.  The pooled
    executor degrades to inline execution per call when the warm pool
    is unavailable (disabled, sandboxed, or nested), so opting in can
    never make a worker less capable.
    """
    if use_pool is None:
        use_pool = os.environ.get(POOL_ENV_VAR) == "1"
    if not use_pool:
        return execute_unit

    def pooled(unit: WorkUnit) -> Any:
        from repro.runner.pool import PoolUnavailable, WarmPool

        try:
            return WarmPool.shared(1).map(execute_unit, [unit])[0]
        except PoolUnavailable:
            return execute_unit(unit)

    return pooled


def run_worker(host: str, port: int, worker_id: str, token: str,
               heartbeat_interval: float = 1.0,
               use_pool: bool | None = None) -> int:
    """Connect to a server and execute units until told to stop.

    Returns the number of units completed.  A *heartbeat_interval*
    of zero (or less) disables heartbeats — only useful for tests
    that want to get evicted.  *use_pool* routes execution through
    the shared warm pool (see :func:`make_executor`).
    """
    executor = make_executor(use_pool)
    sock = socket.create_connection((host, port))
    reader = sock.makefile("r", encoding="utf-8", newline="\n")
    send_lock = threading.Lock()

    def send(message: dict) -> None:
        data = (dump_message(message) + "\n").encode()
        with send_lock:
            sock.sendall(data)

    send({"type": "hello", "worker_id": worker_id, "token": token,
          "pid": os.getpid()})
    stop = threading.Event()

    def beat() -> None:
        while not stop.wait(heartbeat_interval):
            try:
                send({"type": "heartbeat"})
            except OSError:
                return

    if heartbeat_interval > 0:
        threading.Thread(target=beat, daemon=True,
                         name=f"heartbeat-{worker_id}").start()
    units_done = 0
    try:
        for line in reader:
            line = line.strip()
            if not line:
                continue
            try:
                message = load_message(line)
            except ValueError:
                continue
            mtype = message.get("type")
            if mtype == "stop":
                break
            if mtype != "run":
                continue
            digest = str(message.get("digest", ""))
            try:
                unit = unit_from_dict(message["unit"])
                result = executor(unit)
                send({"type": "result", "digest": digest,
                      "payload": encode_payload(result)})
                units_done += 1
            except OSError:
                break
            except Exception as exc:  # noqa: BLE001 — reported upstream
                try:
                    send({"type": "error", "digest": digest,
                          "message": f"{type(exc).__name__}: {exc}"})
                except OSError:
                    break
    finally:
        stop.set()
        try:
            sock.close()
        except OSError:
            pass
    return units_done


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (``python -m repro.service.worker``)."""
    parser = argparse.ArgumentParser(
        prog="repro.service.worker",
        description="Experiment-service worker process.")
    parser.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="server address to dial")
    parser.add_argument("--id", required=True, dest="worker_id",
                        help="worker id to register under")
    parser.add_argument("--token", required=True,
                        help="server session token")
    parser.add_argument("--heartbeat", type=float, default=1.0,
                        help="heartbeat interval in seconds "
                             "(<= 0 disables)")
    parser.add_argument("--pool", action="store_true", default=None,
                        help="execute units through the shared warm "
                             "pool (default: MIRAGE_SERVICE_POOL)")
    options = parser.parse_args(argv)
    host, _, port = options.connect.rpartition(":")
    try:
        run_worker(host or "127.0.0.1", int(port), options.worker_id,
                   options.token,
                   heartbeat_interval=options.heartbeat,
                   use_pool=options.pool)
    except (ConnectionError, OSError) as exc:
        print(f"[worker {options.worker_id}] connection lost: {exc}",
              flush=True)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
