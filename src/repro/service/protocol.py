"""Wire protocol and job decomposition for the experiment service.

Everything that crosses a process or socket boundary is defined here:

* :class:`SubmitRequest` — what a client asks for (named experiments,
  or an ad-hoc ``"pkg.mod:fn"`` call target), plus priority;
* :func:`decompose` — a request broken into the picklable
  :class:`~repro.runner.units.WorkUnit` values the worker fleet
  executes, one per experiment — ``mirage submit all`` really does
  fan one unit per driver across the workers;
* :func:`unit_digest` — the unit's identity under the *shared*
  :class:`~repro.runner.cache.ResultCache` keying, which is what makes
  concurrent identical submissions coalesce onto one execution;
* JSONL message framing (:func:`dump_message` / :func:`load_message`)
  used on both the worker TCP protocol and the job stream files.

The module also hosts the call-unit targets the service dispatches
(:func:`run_experiment_unit`) and a few tiny deterministic targets the
tests and the ``service-roundtrip`` microbenchmark submit instead of
full experiments.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import time
from dataclasses import dataclass
from typing import Any

from repro.runner.units import WorkUnit, call_unit

#: The experiment name service-owned units are cached under.  One
#: namespace for every job keeps the dedup property simple: equal
#: digest ⇔ equal unit ⇔ one execution.
SERVICE_EXPERIMENT = "service"


@dataclass(frozen=True)
class SubmitRequest:
    """One client submission: experiments to run, or a call target.

    Attributes:
        experiments: registered experiment names (``"all"`` expands to
            every driver); mutually exclusive with *target*.
        target: ad-hoc ``"pkg.module:function"`` call target — the
            escape hatch the tests and the bench probe use.
        args: positional arguments for *target* (JSON-pure).
        kwargs: sorted ``(key, value)`` pairs for *target*.
        quick: trimmed workload sizes, as ``mirage --quick``.
        n_mixes: cap on mixes per configuration, where drivers sweep.
        seed: mix-selection seed, where drivers take one.
        priority: higher runs earlier; ties serve in submission order.
    """

    experiments: tuple[str, ...] = ()
    target: str = ""
    args: tuple = ()
    kwargs: tuple = ()
    quick: bool = False
    n_mixes: int | None = None
    seed: int | None = None
    priority: int = 0

    def describe(self) -> str:
        """A short human label for job listings."""
        if self.target:
            return f"call {self.target}"
        label = " ".join(self.experiments) or "(empty)"
        if self.quick:
            label += " --quick"
        return label


def request_from_dict(data: dict) -> SubmitRequest:
    """Rebuild a :class:`SubmitRequest` from its JSON form."""
    return SubmitRequest(
        experiments=tuple(data.get("experiments", ())),
        target=data.get("target", ""),
        args=tuple(data.get("args", ())),
        kwargs=tuple((k, v) for k, v in data.get("kwargs", ())),
        quick=bool(data.get("quick", False)),
        n_mixes=data.get("n_mixes"),
        seed=data.get("seed"),
        priority=int(data.get("priority", 0)),
    )


def request_to_dict(request: SubmitRequest) -> dict:
    """The JSON-safe form of a :class:`SubmitRequest`."""
    return dataclasses.asdict(request)


# ----------------------------------------------------------------------
# Decomposition into work units
# ----------------------------------------------------------------------
def decompose(request: SubmitRequest) -> list[WorkUnit]:
    """Break a submission into the units the worker fleet executes.

    Experiment submissions become one ``"call"`` unit per named
    driver (``"all"`` expands against the registry), each invoking
    :func:`run_experiment_unit` in a worker process; *target*
    submissions become a single call unit.  Raises ``ValueError`` for
    empty or unknown submissions, so a bad request never reaches the
    queue.
    """
    if request.target:
        return [call_unit(request.target, *request.args,
                          **dict(request.kwargs))]
    from repro.experiments import EXPERIMENTS

    names: list[str] = []
    for name in request.experiments:
        if name == "all":
            names.extend(EXPERIMENTS)
        elif name in EXPERIMENTS:
            names.append(name)
        else:
            known = ", ".join([*EXPERIMENTS, "all"])
            raise ValueError(
                f"unknown experiment {name!r} — choose from: {known}")
    if not names:
        raise ValueError("nothing to run: no experiments and no target")
    kwargs: dict[str, Any] = {"quick": request.quick}
    if request.n_mixes is not None:
        kwargs["n_mixes"] = request.n_mixes
    if request.seed is not None:
        kwargs["seed"] = request.seed
    return [
        call_unit("repro.service.protocol:run_experiment_unit",
                  name, **kwargs)
        for name in names
    ]


def run_experiment_unit(name: str, *, quick: bool = False,
                        n_mixes: int | None = None,
                        seed: int | None = None) -> dict:
    """Execute one named experiment inside a worker process.

    The service's per-unit :class:`~repro.runner.cache.ResultCache` is
    the dedup layer, so the driver itself runs uncached and serial —
    parallelism comes from the fleet, not from nested pools.
    """
    from repro.experiments import EXPERIMENTS, ExperimentParams

    params = ExperimentParams(quick=quick, n_mixes=n_mixes, seed=seed,
                              jobs=1, use_cache=False)
    return EXPERIMENTS[name].run(params)


def unit_to_dict(unit: WorkUnit) -> dict:
    """A work unit as plain JSON data (for the wire and the journal)."""
    return dataclasses.asdict(unit)


def unit_from_dict(data: dict) -> WorkUnit:
    """Rebuild a :class:`~repro.runner.units.WorkUnit` from JSON data.

    Restores the tuple-typed fields JSON flattened to lists; the JSON
    forms are identical either way, so digests computed before and
    after a round-trip agree.
    """
    fields = dict(data)
    fields["benchmarks"] = tuple(fields.get("benchmarks", ()))
    if fields.get("scale") is not None:
        fields["scale"] = tuple(fields["scale"])
    fields["args"] = tuple(fields.get("args", ()))
    fields["kwargs"] = tuple(
        (pair[0], pair[1]) for pair in fields.get("kwargs", ()))
    return WorkUnit(**fields)


def unit_digest(cache, unit: WorkUnit) -> str:
    """The unit's service-wide identity: a digest of the shared
    :meth:`~repro.runner.cache.ResultCache.key_material`.

    Because this is literally the result cache's own keying, "two
    submissions share a digest" and "two submissions share a cache
    entry" are the same statement — coalescing and caching can never
    disagree about what counts as identical work.
    """
    material = cache.key_material(SERVICE_EXPERIMENT, unit)
    return hashlib.sha256(material.encode()).hexdigest()[:32]


# ----------------------------------------------------------------------
# Message framing (worker protocol and stream files)
# ----------------------------------------------------------------------
def dump_message(message: dict) -> str:
    """One protocol message as a compact single-line JSON string."""
    return json.dumps(message, separators=(",", ":"))


def load_message(line: str) -> dict:
    """Parse one protocol line; raises ``ValueError`` on junk."""
    message = json.loads(line)
    if not isinstance(message, dict):
        raise ValueError(f"protocol message must be an object: {line!r}")
    return message


# ----------------------------------------------------------------------
# Tiny deterministic call targets (tests, bench probe)
# ----------------------------------------------------------------------
def echo_unit(value: Any = None, tag: str = "") -> dict:
    """Return the inputs — the cheapest possible unit of work."""
    return {"value": value, "tag": tag}


def sleep_unit(seconds: float) -> dict:
    """Sleep then return — lets tests observe a busy worker."""
    time.sleep(seconds)
    return {"slept": seconds}


def flaky_unit(flag_path: str, sleep_s: float = 60.0) -> dict:
    """First execution parks (after dropping a flag file); retries
    return immediately.

    The kill-a-worker test submits this: the flag file signals "a
    worker is now executing me", the test SIGKILLs that worker, and
    the requeued attempt — seeing the flag — completes at once.
    """
    from pathlib import Path

    flag = Path(flag_path)
    if flag.exists():
        return {"attempt": "retry"}
    flag.write_text("started")
    deadline = time.monotonic() + sleep_s
    while time.monotonic() < deadline:
        time.sleep(0.05)
    return {"attempt": "first"}
