"""The thin HTTP client behind ``mirage submit`` / ``jobs`` / ``tail``.

:class:`ServiceClient` talks plain HTTP/1.1 (one request per
connection) to a running :class:`~repro.service.server.ExperimentServer`.
Clients find the server through the ``server.json`` address file the
server writes under its service directory, so ``mirage submit table1``
works with no flags as long as ``mirage serve`` runs with the same
``MIRAGE_SERVICE_DIR``.

The streaming endpoint (``GET /jobs/<id>/stream``) replays a job's
full :class:`~repro.telemetry.events.JobRecord` history and then
follows it live; :meth:`ServiceClient.tail` exposes that as an
iterator of record dicts, and :meth:`ServiceClient.result` folds it
down to the decoded result payloads most callers want.
"""

from __future__ import annotations

import http.client
import json
import time
from collections.abc import Iterator
from pathlib import Path
from typing import Any

from repro.config import default_service_dir
from repro.runner.cache import decode_payload
from repro.service.protocol import SubmitRequest, request_to_dict

#: Job stream events that end a tail.
TERMINAL_EVENTS = frozenset({"done", "failed", "cancelled"})


class ServiceError(RuntimeError):
    """A request the server answered with an error (or not at all)."""


def discover(service_dir: str | Path | None = None
             ) -> tuple[str, int] | None:
    """Read the server address file; ``None`` when no server is up.

    The file may be stale (a crashed server leaves it behind) — the
    first actual request will surface that as a connection error.
    """
    base = Path(service_dir) if service_dir else default_service_dir()
    try:
        data = json.loads((base / "server.json").read_text())
        return str(data["host"]), int(data["port"])
    except (OSError, json.JSONDecodeError, KeyError, ValueError):
        return None


def _read_token(service_dir: str | Path | None = None) -> str:
    """The session token from the server address file (or ``""``)."""
    base = Path(service_dir) if service_dir else default_service_dir()
    try:
        data = json.loads((base / "server.json").read_text())
        return str(data.get("token", ""))
    except (OSError, json.JSONDecodeError, ValueError):
        return ""


class ServiceClient:
    """HTTP client for one experiment server.

    *token* authenticates mutating requests against servers bound to
    non-loopback interfaces; when omitted it is read from the same
    ``server.json`` file used for address discovery (explicit
    *address* with no *service_dir* sends no token — loopback servers
    never require one).
    """

    def __init__(self, address: tuple[str, int] | None = None,
                 service_dir: str | Path | None = None,
                 timeout: float = 30.0, token: str | None = None):
        discovered = address is None
        if address is None:
            address = discover(service_dir)
            if address is None:
                base = (Path(service_dir) if service_dir
                        else default_service_dir())
                raise ServiceError(
                    f"no server address file under {base} — "
                    f"is `mirage serve` running?")
        if token is None and (discovered or service_dir is not None):
            token = _read_token(service_dir)
        self.address = address
        self.timeout = timeout
        self.token = token or ""

    def _headers(self, with_content: bool = False) -> dict[str, str]:
        headers: dict[str, str] = {}
        if with_content:
            headers["Content-Type"] = "application/json"
        if self.token:
            headers["Authorization"] = f"Bearer {self.token}"
        return headers

    # ------------------------------------------------------------------
    def _request(self, method: str, path: str,
                 body: dict | None = None) -> dict:
        host, port = self.address
        conn = http.client.HTTPConnection(host, port,
                                          timeout=self.timeout)
        try:
            payload = json.dumps(body).encode() if body is not None else None
            conn.request(method, path, body=payload,
                         headers=self._headers(
                             with_content=payload is not None))
            response = conn.getresponse()
            data = json.loads(response.read() or b"{}")
            if response.status >= 400:
                raise ServiceError(
                    data.get("error",
                             f"HTTP {response.status} for {path}"))
            return data
        except (ConnectionError, OSError, TimeoutError) as exc:
            raise ServiceError(
                f"server at {host}:{port} unreachable: {exc}") from exc
        finally:
            conn.close()

    # ------------------------------------------------------------------
    def health(self) -> dict:
        """The server's ``GET /health`` snapshot."""
        return self._request("GET", "/health")

    def jobs(self) -> list[dict]:
        """Every job the server knows, as info dicts."""
        return self._request("GET", "/jobs")["jobs"]

    def job(self, job_id: str) -> dict:
        """One job's info dict; raises :class:`ServiceError` if
        unknown."""
        return self._request("GET", f"/jobs/{job_id}")["job"]

    def submit(self, request: SubmitRequest) -> dict:
        """Submit one request; returns ``{"job": info, "coalesced":
        bool}``."""
        return self._request("POST", "/jobs", request_to_dict(request))

    def submit_experiments(self, *names: str, quick: bool = False,
                           n_mixes: int | None = None,
                           seed: int | None = None,
                           priority: int = 0) -> dict:
        """Convenience wrapper building the :class:`SubmitRequest`."""
        return self.submit(SubmitRequest(
            experiments=tuple(names), quick=quick, n_mixes=n_mixes,
            seed=seed, priority=priority))

    def shutdown(self, drain: bool = True) -> dict:
        """Ask the server to stop (draining accepted work first)."""
        return self._request("POST", "/shutdown", {"drain": drain})

    # ------------------------------------------------------------------
    def tail(self, job_id: str, start: int = 0,
             timeout: float | None = None) -> Iterator[dict]:
        """Yield a job's stream records (replay, then live) until the
        job reaches a terminal state.

        *timeout* bounds the wait for each next record (defaults to
        the client timeout); blowing it raises :class:`ServiceError`.
        """
        host, port = self.address
        conn = http.client.HTTPConnection(
            host, port, timeout=timeout or self.timeout)
        try:
            conn.request("GET", f"/jobs/{job_id}/stream?from={start}",
                         headers=self._headers())
            response = conn.getresponse()
            if response.status >= 400:
                data = json.loads(response.read() or b"{}")
                raise ServiceError(
                    data.get("error", f"HTTP {response.status}"))
            while True:
                line = response.readline()
                if not line:
                    return
                line = line.strip()
                if line:
                    yield json.loads(line)
        except (ConnectionError, OSError, TimeoutError) as exc:
            raise ServiceError(
                f"stream for {job_id} broke: {exc}") from exc
        finally:
            conn.close()

    def wait(self, job_id: str,
             timeout: float | None = None) -> dict:
        """Block until the job finishes; returns its terminal record.

        *timeout* is a wall-clock bound on the whole wait, not on a
        single record.
        """
        deadline = (time.monotonic() + timeout
                    if timeout is not None else None)
        last: dict | None = None
        for record in self.tail(job_id, timeout=timeout):
            last = record
            if record.get("event") in TERMINAL_EVENTS:
                return record
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError(
                    f"timed out waiting for job {job_id}")
        if last is not None and last.get("event") in TERMINAL_EVENTS:
            return last
        raise ServiceError(
            f"stream for job {job_id} ended before a terminal state")

    def result(self, job_id: str,
               timeout: float | None = None) -> list[Any]:
        """The job's decoded unit results, in decomposition order.

        Raises :class:`ServiceError` if the job failed or was
        cancelled.
        """
        record = self.wait(job_id, timeout=timeout)
        if record.get("event") != "done":
            raise ServiceError(
                f"job {job_id} {record.get('event')}: "
                f"{record.get('detail', '')}")
        return [decode_payload(envelope)
                for envelope in record["payload"]["results"]]
