"""The asyncio experiment server behind ``mirage serve``.

One process, one event loop, three responsibilities:

* **Jobs** — submissions decompose into work units
  (:func:`~repro.service.protocol.decompose`); a priority
  :class:`~repro.service.jobs.JobQueue` feeds them to the fleet.
  Identical concurrent submissions coalesce: unit identity is the
  shared :class:`~repro.runner.cache.ResultCache` digest, so two
  clients asking for the same sweep share one in-flight execution —
  and a later identical submission after completion is a cache hit
  that never reaches the queue at all.
* **Workers** — a typed registry
  (:class:`~repro.service.registry.WorkerRegistry`) of worker
  processes the server spawns (and respawns) plus any that attach
  externally.  Workers speak a JSONL protocol over the same TCP port
  the HTTP API lives on; heartbeats ride the connection, a monitor
  loop evicts the silent, and evicted workers' in-flight units are
  requeued ahead of later submissions.
* **State** — every submission and job state change is appended to an
  on-disk journal (:mod:`repro.service.journal`); a restarted server
  replays it and resubmits unfinished jobs, whose finished units come
  straight back from the result cache.  Per-job progress streams as
  typed :class:`~repro.telemetry.events.JobRecord` lines through
  :class:`~repro.telemetry.sinks.JSONLSink` files that ``mirage
  tail`` (the ``GET /jobs/<id>/stream`` endpoint) follows live.

The HTTP surface is deliberately tiny — ``GET /health``, ``GET
/jobs``, ``GET /jobs/<id>``, ``POST /jobs``, ``GET /jobs/<id>/stream``
and ``POST /shutdown`` — JSON in, JSON (or an NDJSON stream) out, one
request per connection.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import os
import secrets
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import Any

import repro
from repro.config import ServiceConfig
from repro.runner.cache import MISS, ResultCache, decode_payload, encode_payload
import repro.service.jobs as jobstates
from repro.service.journal import Journal, replay
from repro.service.jobs import Job, JobQueue, UnitTask
from repro.service.protocol import (
    SERVICE_EXPERIMENT,
    SubmitRequest,
    decompose,
    dump_message,
    load_message,
    request_from_dict,
    request_to_dict,
    unit_digest,
    unit_from_dict,
    unit_to_dict,
)
from repro.service.registry import BUSY, IDLE, WorkerInfo, WorkerRegistry
from repro.telemetry.events import JobRecord, WorkerRecord
from repro.telemetry.sinks import JSONLSink, dump_record

#: Per-line buffer limit for the shared listener.  Worker ``result``
#: lines carry whole encoded result envelopes (detailed-tier CMP
#: histories run to megabytes), which would blow through asyncio's
#: default 64 KiB stream limit and kill the session mid-job — so the
#: listener gets a far larger one, and :meth:`_worker_session` treats
#: an overrun as a failed unit rather than a retriable disconnect.
PROTOCOL_LINE_LIMIT = 64 * 1024 * 1024

#: Bind hosts the server treats as trusted (no HTTP auth required).
_LOOPBACK_HOSTS = ("localhost", "::1")


def _is_loopback(host: str) -> bool:
    """Whether *host* only accepts connections from this machine."""
    return host in _LOOPBACK_HOSTS or host.startswith("127.")


class ExperimentServer:
    """The long-running job server wrapping the ``Experiment`` API.

    Construct with a :class:`~repro.config.ServiceConfig`, then either
    ``await start()`` inside an existing event loop, or use
    :class:`ServerHandle` to run one on a background thread (what the
    tests and the bench probe do), or :func:`serve` for the blocking
    CLI entry point.
    """

    def __init__(self, config: ServiceConfig | None = None):
        self.config = config or ServiceConfig()
        self.dir = self.config.resolved_dir()
        cache_cfg = self.config.cache_config()
        self.cache_cfg = cache_cfg
        #: Keying/dedup layer; ``use_result_cache`` only gates whether
        #: finished payloads are read/written, never the keying.
        self.cache = ResultCache(cache_cfg.cache_dir)
        self.use_result_cache = cache_cfg.use_result_cache
        self.journal = Journal(self.dir / "journal.jsonl")
        self.registry = WorkerRegistry()
        self.queue = JobQueue()
        self.jobs: dict[str, Job] = {}
        self.tasks: dict[str, UnitTask] = {}
        self.token = secrets.token_hex(8)
        #: Operational counters exposed under ``GET /health``.
        self.stats = {"executions": 0, "cache_hits": 0, "coalesced": 0,
                      "evictions": 0, "requeues": 0, "respawns": 0,
                      "submissions": 0}
        self.address: tuple[str, int] | None = None
        self._active_keys: dict[str, str] = {}    # job key -> job id
        self._key_of: dict[str, str] = {}         # job id -> job key
        self._streams: dict[str, list[str]] = {}
        self._stream_sinks: dict[str, JSONLSink] = {}
        self._stream_events: dict[str, asyncio.Event] = {}
        self._evict_reason: dict[str, str] = {}
        self._procs: dict[str, subprocess.Popen] = {}
        self._seq = 0
        self._job_counter = 0
        self._worker_counter = 0
        self._respawn_budget = 5 * max(1, self.config.workers)
        self._draining = False
        self._stopping = False
        self._server: asyncio.base_events.Server | None = None
        self._monitor: asyncio.Task | None = None
        self._stopped = asyncio.Event()
        self._trace: JSONLSink | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind, recover the journal, spawn the fleet; returns the
        bound ``(host, port)``."""
        self.dir.mkdir(parents=True, exist_ok=True)
        (self.dir / "streams").mkdir(exist_ok=True)
        # Env-backed cache switches must be exported before workers
        # spawn, so the fleet inherits the same configuration.
        self.cache_cfg.apply()
        self._trace = JSONLSink(self.dir / "server-trace.jsonl", mode="a")
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port,
            limit=PROTOCOL_LINE_LIMIT)
        sock = self._server.sockets[0].getsockname()
        self.address = (sock[0], sock[1])
        if not _is_loopback(self.config.host):
            print(f"[serve] WARNING: bound to non-loopback "
                  f"{self.config.host} — POST /jobs runs arbitrary "
                  f"call targets, so mutating endpoints now require "
                  f"the session token from server.json",
                  file=sys.stderr, flush=True)
        self._write_address_file()
        await self._recover()
        for _ in range(self.config.workers):
            self._spawn_worker()
        self._monitor = asyncio.ensure_future(self._monitor_loop())
        return self.address

    async def run_until_stopped(self) -> None:
        """Start (if needed) and block until a shutdown completes."""
        if self.address is None:
            await self.start()
        await self._stopped.wait()

    async def shutdown(self, drain: bool = True) -> None:
        """Stop the server; with *drain*, finish accepted work first.

        Draining rejects new submissions (503) immediately, then waits
        up to ``drain_timeout`` for the queue and every in-flight unit
        to finish before stopping the fleet.  Without drain (or past
        the timeout) unfinished jobs simply stay non-terminal in the
        journal, and the next server start requeues them.
        """
        self._draining = True
        if drain:
            deadline = time.monotonic() + self.config.drain_timeout
            while ((self.queue or self.tasks)
                   and time.monotonic() < deadline):
                await asyncio.sleep(0.05)
        self._stopping = True
        for info in self.registry.all():
            writer = info.handle
            if writer is not None:
                try:
                    writer.write((dump_message({"type": "stop"})
                                  + "\n").encode())
                    await writer.drain()
                except (ConnectionError, OSError):
                    pass
        if self._monitor is not None:
            self._monitor.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for popen in self._procs.values():
            popen.terminate()
        for popen in self._procs.values():
            try:
                popen.wait(timeout=2.0)
            except subprocess.TimeoutExpired:
                popen.kill()
        self._procs.clear()
        for sink in self._stream_sinks.values():
            sink.close()
        if self._trace is not None:
            self._trace.close()
        self.journal.close()
        try:
            (self.dir / "server.json").unlink()
        except OSError:
            pass
        self._stopped.set()

    def _write_address_file(self) -> None:
        host, port = self.address
        payload = {"host": host, "port": port, "pid": os.getpid(),
                   "token": self.token, "version": repro.__version__,
                   "started": round(time.time(), 3)}
        (self.dir / "server.json").write_text(
            json.dumps(payload, indent=2) + "\n")

    async def _recover(self) -> None:
        """Replay the journal: restore history, requeue the unfinished."""
        state = replay(self.dir / "journal.jsonl")
        self._job_counter = state.max_job_number
        self._seq = state.max_seq
        for jj in state.jobs.values():
            request = request_from_dict(jj.request)
            units = [unit_from_dict(u) for u in jj.units]
            job = Job(job_id=jj.job_id, request=request,
                      digests=list(jj.digests), units=units,
                      state=jj.state, priority=jj.priority, seq=jj.seq,
                      error=jj.error)
            self.jobs[jj.job_id] = job
            self._streams[jj.job_id] = self._read_stream_file(jj.job_id)
            if job.finished:
                continue
            # Unfinished: requeue as if freshly submitted (results
            # already in the cache come back instantly).
            key = _job_key(job.digests)
            self._active_keys[key] = job.job_id
            self._key_of[job.job_id] = key
            self._emit_job(job, "requeued",
                           detail="journal replay after restart")
            self._enqueue_units(job)
            self._maybe_finalize(job)

    def _read_stream_file(self, job_id: str) -> list[str]:
        path = self.dir / "streams" / f"{job_id}.jsonl"
        try:
            return [line for line in
                    path.read_text().splitlines() if line.strip()]
        except OSError:
            return []

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    async def submit(self, request: SubmitRequest) -> tuple[Job, bool]:
        """Accept one submission; returns ``(job, coalesced)``.

        Raises ``ValueError`` for undecomposable requests and
        ``RuntimeError`` while draining.
        """
        if self._draining:
            raise RuntimeError("server is draining: not accepting jobs")
        self.stats["submissions"] += 1
        units = decompose(request)
        digests = [unit_digest(self.cache, u) for u in units]
        key = _job_key(digests)
        active = self._active_keys.get(key)
        if active is not None and not self.jobs[active].finished:
            job = self.jobs[active]
            job.submissions += 1
            self.stats["coalesced"] += 1
            if request.priority > job.priority:
                job.priority = request.priority
                for digest in job.digests:
                    task = self.tasks.get(digest)
                    if task is not None and not task.done:
                        task.priority = max(task.priority,
                                            request.priority)
                        if not task.assigned_to:
                            self.queue.push(task)
            self._emit_job(job, "coalesced",
                           detail=f"submission #{job.submissions}")
            await self._dispatch()
            return job, True
        self._job_counter += 1
        self._seq += 1
        job = Job(job_id=f"j{self._job_counter}", request=request,
                  digests=digests, units=units,
                  priority=request.priority, seq=self._seq,
                  created=round(time.time(), 3))
        self.jobs[job.job_id] = job
        self._active_keys[key] = job.job_id
        self._key_of[job.job_id] = key
        self._streams[job.job_id] = []
        self.journal.append({
            "event": "submit", "id": job.job_id, "seq": job.seq,
            "priority": job.priority, "key": key,
            "request": request_to_dict(request),
            "units": [unit_to_dict(u) for u in units],
            "digests": digests,
        })
        self._emit_job(job, "queued")
        self._enqueue_units(job)
        self._maybe_finalize(job)
        await self._dispatch()
        return job, False

    def _enqueue_units(self, job: Job) -> None:
        """Subscribe the job to its units: share in-flight tasks,
        satisfy cache hits immediately, queue the rest."""
        for unit, digest in zip(job.units, job.digests):
            if digest in job.results:
                continue                       # duplicate within job
            task = self.tasks.get(digest)
            if task is not None and not task.done:
                if job.job_id not in task.job_ids:
                    task.job_ids.append(job.job_id)
                task.priority = max(task.priority, job.priority)
                continue
            hit = (self.cache.get(SERVICE_EXPERIMENT, unit)
                   if self.use_result_cache else MISS)
            if hit is not MISS:
                self.stats["cache_hits"] += 1
                job.results[digest] = encode_payload(hit)
                self._emit_job(job, "unit", worker_id="cache",
                               payload={"digest": digest,
                                        "result": job.results[digest]})
                continue
            task = UnitTask(digest=digest, unit=unit,
                            job_ids=[job.job_id],
                            priority=job.priority, seq=job.seq)
            self.tasks[digest] = task
            self.queue.push(task)

    # ------------------------------------------------------------------
    # Dispatch and completion
    # ------------------------------------------------------------------
    async def _dispatch(self) -> None:
        """Hand queued units to idle workers until one side runs dry."""
        while True:
            idle = self.registry.idle()
            if not idle:
                return
            digest = self.queue.pop()
            if digest is None:
                return
            task = self.tasks.get(digest)
            if task is None or task.done or task.assigned_to:
                continue
            worker = idle[0]
            task.assigned_to = worker.worker_id
            task.attempts += 1
            worker.state = BUSY
            worker.unit_digest = digest
            self._emit_worker(worker, "busy", unit_digest=digest)
            for job_id in task.job_ids:
                job = self.jobs.get(job_id)
                if job is not None and job.state == jobstates.QUEUED:
                    job.state = jobstates.RUNNING
                    self._emit_job(job, "started",
                                   worker_id=worker.worker_id)
            message = dump_message({"type": "run", "digest": digest,
                                    "unit": unit_to_dict(task.unit)})
            try:
                worker.handle.write((message + "\n").encode())
                await worker.handle.drain()
            except (ConnectionError, OSError):
                # The session handler will notice the dead connection
                # and requeue; just stop assigning to this worker.
                worker.state = IDLE
                worker.unit_digest = ""
                task.assigned_to = ""
                self.queue.push(task)
                return

    def _unit_result(self, info: WorkerInfo, digest: str,
                     envelope: dict) -> None:
        info.state = IDLE
        info.unit_digest = ""
        info.units_done += 1
        self._emit_worker(info, "idle", unit_digest=digest)
        task = self.tasks.get(digest)
        if task is None or task.done:
            return                              # late duplicate: drop
        task.done = True
        task.assigned_to = ""
        self.stats["executions"] += 1
        if self.use_result_cache:
            try:
                self.cache.put(SERVICE_EXPERIMENT, task.unit,
                               decode_payload(envelope))
            except (OSError, TypeError, KeyError):
                pass                            # caching is best-effort
        self._complete_unit(task, envelope, worker_id=info.worker_id)

    def _unit_error(self, info: WorkerInfo, digest: str,
                    message: str) -> None:
        info.state = IDLE
        info.unit_digest = ""
        self._emit_worker(info, "idle", unit_digest=digest,
                          detail=message)
        task = self.tasks.get(digest)
        if task is None or task.done:
            return
        task.done = True
        task.assigned_to = ""
        self.queue.discard(digest)
        self.tasks.pop(digest, None)
        for job_id in task.job_ids:
            job = self.jobs.get(job_id)
            if job is not None and not job.finished:
                self._finalize(job, jobstates.FAILED, error=message)

    def _complete_unit(self, task: UnitTask, envelope: dict,
                       worker_id: str) -> None:
        self.queue.discard(task.digest)
        self.tasks.pop(task.digest, None)
        for job_id in task.job_ids:
            job = self.jobs.get(job_id)
            if job is None or job.finished:
                continue
            job.results[task.digest] = envelope
            self._emit_job(job, "unit", worker_id=worker_id,
                           payload={"digest": task.digest,
                                    "result": envelope})
            self._maybe_finalize(job)

    def _maybe_finalize(self, job: Job) -> None:
        if not job.finished and all(
                d in job.results for d in job.digests):
            self._finalize(job, jobstates.DONE)

    def _finalize(self, job: Job, state: str, error: str = "") -> None:
        job.state = state
        job.error = error
        self.journal.append({"event": "state", "id": job.job_id,
                             "state": state, "error": error})
        payload = ({"results": job.ordered_results()}
                   if state == jobstates.DONE else {})
        self._emit_job(job, "done" if state == jobstates.DONE
                       else state, detail=error, payload=payload)
        key = self._key_of.pop(job.job_id, None)
        if key is not None and self._active_keys.get(key) == job.job_id:
            del self._active_keys[key]
        sink = self._stream_sinks.pop(job.job_id, None)
        if sink is not None:
            sink.close()

    # ------------------------------------------------------------------
    # Worker fleet
    # ------------------------------------------------------------------
    def _spawn_worker(self) -> None:
        if self._respawn_budget <= 0 or self.address is None:
            return
        self._respawn_budget -= 1
        self._worker_counter += 1
        worker_id = f"w{self._worker_counter}"
        host, port = self.address
        env = dict(os.environ)
        src_root = str(Path(repro.__file__).resolve().parent.parent)
        existing = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = (src_root + (os.pathsep + existing
                                         if existing else ""))
        popen = subprocess.Popen(
            [sys.executable, "-m", "repro.service.worker",
             "--connect", f"{host}:{port}", "--id", worker_id,
             "--token", self.token,
             "--heartbeat", str(self.config.heartbeat_interval)],
            env=env, stdout=subprocess.DEVNULL)
        self._procs[worker_id] = popen
        self._emit_worker_raw(worker_id, "spawned", pid=popen.pid)

    async def _monitor_loop(self) -> None:
        """Evict workers whose heartbeats went silent."""
        interval = max(0.05, self.config.heartbeat_interval / 2)
        while not self._stopping:
            await asyncio.sleep(interval)
            for info in self.registry.stale(
                    self.config.heartbeat_timeout):
                self.stats["evictions"] += 1
                self._evict_reason[info.worker_id] = "heartbeat-timeout"
                writer = info.handle
                if writer is not None:
                    writer.close()  # session handler does the requeue

    async def _worker_session(self, hello_line: str, reader, writer
                              ) -> None:
        try:
            hello = load_message(hello_line)
        except ValueError:
            writer.close()
            return
        if (hello.get("type") != "hello"
                or hello.get("token") != self.token):
            writer.close()
            return
        worker_id = str(hello.get("worker_id") or
                        f"x{secrets.token_hex(3)}")
        info = WorkerInfo(worker_id=worker_id,
                          pid=int(hello.get("pid", 0)),
                          spawned=worker_id in self._procs,
                          handle=writer)
        try:
            self.registry.add(info)
        except ValueError:
            writer.close()
            return
        self._emit_worker(info, "registered")
        await self._dispatch()
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # The line overran PROTOCOL_LINE_LIMIT: a result
                    # this server can never read.  Requeueing would
                    # loop forever (a respawned worker reproduces the
                    # same oversized line), so fail the unit instead.
                    if info.unit_digest:
                        self._unit_error(
                            info, info.unit_digest,
                            "result line exceeded the protocol limit "
                            f"of {PROTOCOL_LINE_LIMIT} bytes")
                        await self._dispatch()
                    break
                if not line:
                    break
                try:
                    message = load_message(line.decode())
                except ValueError:
                    continue
                info.beat()
                mtype = message.get("type")
                if mtype == "result":
                    self._unit_result(info, message.get("digest", ""),
                                      message.get("payload", {}))
                    await self._dispatch()
                elif mtype == "error":
                    self._unit_error(info, message.get("digest", ""),
                                     str(message.get("message", "")))
                    await self._dispatch()
                # heartbeats only needed info.beat() above
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass
        finally:
            await self._worker_gone(worker_id)

    async def _worker_gone(self, worker_id: str) -> None:
        info = self.registry.remove(worker_id)
        if info is None:
            return
        reason = self._evict_reason.pop(worker_id, "disconnect")
        popen = self._procs.pop(worker_id, None)
        if popen is not None:
            popen.kill()
        if info.unit_digest:
            task = self.tasks.get(info.unit_digest)
            if (task is not None and not task.done
                    and task.assigned_to == worker_id):
                task.assigned_to = ""
                self.queue.push(task)
                self.stats["requeues"] += 1
                for job_id in task.job_ids:
                    job = self.jobs.get(job_id)
                    if job is not None and not job.finished:
                        self._emit_job(
                            job, "requeued", worker_id=worker_id,
                            detail=f"worker lost ({reason})")
        self._emit_worker(info, "evicted", detail=reason)
        # Respawn during a drain too: a drain that loses its last
        # worker would otherwise spin out the whole drain_timeout with
        # accepted work it can never finish.
        if info.spawned and not self._stopping:
            self.stats["respawns"] += 1
            self._spawn_worker()
        if not self._stopping:
            await self._dispatch()

    # ------------------------------------------------------------------
    # Streaming + telemetry emission
    # ------------------------------------------------------------------
    def _emit_job(self, job: Job, event: str, *, worker_id: str = "",
                  detail: str = "", payload: dict | None = None) -> None:
        record = JobRecord(
            job_id=job.job_id, event=event,
            experiment=job.request.describe(),
            units_total=job.units_total, units_done=job.units_done,
            priority=job.priority, worker_id=worker_id, detail=detail,
            payload=payload or {})
        line = dump_record(record)
        self._streams.setdefault(job.job_id, []).append(line)
        sink = self._stream_sinks.get(job.job_id)
        if sink is None:
            sink = JSONLSink(
                self.dir / "streams" / f"{job.job_id}.jsonl", mode="a")
            self._stream_sinks[job.job_id] = sink
        sink.emit(record)
        sink.close()          # flush every record: tails may be live
        self._notify_stream(job.job_id)

    def _emit_worker(self, info: WorkerInfo, event: str, *,
                     unit_digest: str = "", detail: str = "") -> None:
        self._emit_worker_raw(info.worker_id, event, pid=info.pid,
                              unit_digest=unit_digest,
                              units_done=info.units_done, detail=detail)

    def _emit_worker_raw(self, worker_id: str, event: str, *,
                         pid: int = 0, unit_digest: str = "",
                         units_done: int = 0, detail: str = "") -> None:
        if self._trace is None:
            return
        self._trace.emit(WorkerRecord(
            worker_id=worker_id, event=event, pid=pid,
            unit_digest=unit_digest, units_done=units_done,
            detail=detail))
        self._trace.close()

    def _notify_stream(self, job_id: str) -> None:
        event = self._stream_events.pop(job_id, None)
        if event is not None:
            event.set()

    def _stream_event(self, job_id: str) -> asyncio.Event:
        return self._stream_events.setdefault(job_id, asyncio.Event())

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        """Sort one fresh connection into worker vs HTTP handling."""
        try:
            first = await reader.readline()
        except (ConnectionError, OSError, ValueError):
            writer.close()
            return
        if not first:
            writer.close()
            return
        text = first.decode("utf-8", errors="replace").strip()
        try:
            if text.startswith("{"):
                await self._worker_session(text, reader, writer)
            else:
                await self._http_session(text, reader, writer)
        except (ConnectionError, OSError, EOFError):
            # EOFError covers asyncio.IncompleteReadError: a client
            # that sent Content-Length but hung up early.
            pass
        finally:
            try:
                writer.close()
            except (ConnectionError, OSError):
                pass

    async def _http_session(self, request_line: str, reader, writer
                            ) -> None:
        parts = request_line.split()
        if len(parts) < 2:
            return
        method, path = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if not line or line in (b"\r\n", b"\n"):
                break
            name, _, value = line.decode("utf-8", "replace").partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length = int(headers.get("content-length", 0) or 0)
        if length:
            body = await reader.readexactly(length)
        await self._route(method, path, body, writer, headers)

    def _authorized(self, headers: dict[str, str]) -> bool:
        """Whether a request may hit a mutating endpoint.

        Loopback binds trust their clients (anything that can connect
        can also read ``server.json``).  Any other bind requires the
        session token — ``POST /jobs`` executes arbitrary call
        targets, so an open bind without auth would be remote code
        execution.
        """
        if _is_loopback(self.config.host):
            return True
        token = self.token.encode()
        auth = headers.get("authorization", "")
        if auth.startswith("Bearer ") and secrets.compare_digest(
                auth[len("Bearer "):].strip().encode(), token):
            return True
        return secrets.compare_digest(
            headers.get("x-mirage-token", "").encode(), token)

    async def _route(self, method: str, path: str, body: bytes,
                     writer, headers: dict[str, str]) -> None:
        path, _, query = path.partition("?")
        if method == "POST" and not self._authorized(headers):
            await _respond(writer, 403, {
                "error": "mutating endpoints on a non-loopback bind "
                         "require the session token (Authorization: "
                         "Bearer <token> from server.json)"})
            return
        if method == "GET" and path == "/health":
            await _respond(writer, 200, self.health())
        elif method == "GET" and path == "/jobs":
            await _respond(writer, 200, {
                "jobs": [j.info() for j in self.jobs.values()]})
        elif method == "POST" and path == "/jobs":
            try:
                request = request_from_dict(json.loads(body or b"{}"))
                job, coalesced = await self.submit(request)
            except (ValueError, json.JSONDecodeError) as exc:
                await _respond(writer, 400, {"error": str(exc)})
                return
            except RuntimeError as exc:
                await _respond(writer, 503, {"error": str(exc)})
                return
            await _respond(writer, 200, {"job": job.info(),
                                         "coalesced": coalesced})
        elif method == "POST" and path == "/shutdown":
            try:
                drain = bool(json.loads(body or b"{}").get("drain", True))
            except json.JSONDecodeError:
                drain = True
            await _respond(writer, 200, {"ok": True, "drain": drain})
            asyncio.ensure_future(self.shutdown(drain=drain))
        elif method == "GET" and path.startswith("/jobs/"):
            rest = path[len("/jobs/"):]
            job_id, _, tail = rest.partition("/")
            if tail == "stream":
                start = 0
                for part in query.split("&"):
                    if part.startswith("from="):
                        try:
                            start = int(part[5:])
                        except ValueError:
                            pass
                await self._stream_response(writer, job_id, start)
            elif not tail:
                job = self.jobs.get(job_id)
                if job is None:
                    await _respond(writer, 404,
                                   {"error": f"no job {job_id!r}"})
                else:
                    await _respond(writer, 200, {"job": job.info()})
            else:
                await _respond(writer, 404, {"error": "not found"})
        else:
            await _respond(writer, 404, {"error": "not found"})

    async def _stream_response(self, writer, job_id: str,
                               start: int) -> None:
        """Live-tail a job's JSONL stream until it reaches a terminal
        state (response is terminated by connection close)."""
        if job_id not in self._streams and job_id not in self.jobs:
            # Unknown in memory: fall back to a stream file from a
            # previous server generation, if one exists.
            lines = self._read_stream_file(job_id)
            if not lines:
                await _respond(writer, 404,
                               {"error": f"no job {job_id!r}"})
                return
            self._streams[job_id] = lines
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: application/x-ndjson\r\n"
                     b"Connection: close\r\n\r\n")
        index = max(0, start)
        while True:
            event = self._stream_event(job_id)
            lines = self._streams.get(job_id, [])
            while index < len(lines):
                writer.write((lines[index] + "\n").encode())
                index += 1
            await writer.drain()
            job = self.jobs.get(job_id)
            if job is None or job.finished:
                break
            await event.wait()

    # ------------------------------------------------------------------
    def health(self) -> dict:
        """The ``GET /health`` snapshot: fleet, queue, and counters."""
        states: dict[str, int] = {}
        for job in self.jobs.values():
            states[job.state] = states.get(job.state, 0) + 1
        return {
            "ok": True,
            "version": repro.__version__,
            "draining": self._draining,
            "queue_depth": len(self.queue),
            "inflight": len([t for t in self.tasks.values()
                             if t.assigned_to]),
            "workers": [w.status() for w in self.registry.all()],
            "jobs": states,
            "stats": dict(self.stats),
        }


def _job_key(digests: list[str]) -> str:
    """A job's coalescing identity: the digest of its unit digests."""
    return hashlib.sha256("|".join(digests).encode()).hexdigest()[:32]


async def _respond(writer, status: int, payload: dict) -> None:
    """Write one JSON response and flush (connection closes after)."""
    reasons = {200: "OK", 400: "Bad Request", 403: "Forbidden",
               404: "Not Found", 503: "Service Unavailable"}
    body = json.dumps(payload).encode()
    writer.write((f"HTTP/1.1 {status} {reasons.get(status, 'OK')}\r\n"
                  f"Content-Type: application/json\r\n"
                  f"Content-Length: {len(body)}\r\n"
                  f"Connection: close\r\n\r\n").encode() + body)
    await writer.drain()


def serve(config: ServiceConfig | None = None) -> None:
    """Blocking entry point: run a server until shutdown or Ctrl-C."""
    server = ExperimentServer(config)

    async def _main() -> None:
        host, port = await server.start()
        print(f"[serve] listening on {host}:{port} "
              f"({server.config.workers} workers, "
              f"dir {server.dir})", flush=True)
        try:
            await server.run_until_stopped()
        except asyncio.CancelledError:
            pass

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass


class ServerHandle:
    """An in-process server running its event loop on a thread.

    What the tests, the bench probe, and embedding applications use:
    ``ServerHandle.start(config)`` returns once the server is bound,
    and the calling thread talks to it over the normal client API.
    """

    def __init__(self, server: ExperimentServer, loop, thread):
        self.server = server
        self.loop = loop
        self.thread = thread

    @classmethod
    def start(cls, config: ServiceConfig | None = None,
              timeout: float = 30.0) -> "ServerHandle":
        """Spin up a server on a daemon thread; returns when bound."""
        server = ExperimentServer(config)
        loop = asyncio.new_event_loop()
        thread = threading.Thread(
            target=_run_loop, args=(loop,), daemon=True,
            name="mirage-service")
        thread.start()
        future = asyncio.run_coroutine_threadsafe(server.start(), loop)
        future.result(timeout=timeout)
        return cls(server, loop, thread)

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)``."""
        return self.server.address

    def call(self, coro, timeout: float = 60.0) -> Any:
        """Run a coroutine on the server loop and wait for its result."""
        return asyncio.run_coroutine_threadsafe(
            coro, self.loop).result(timeout=timeout)

    def stop(self, drain: bool = True, timeout: float = 60.0) -> None:
        """Graceful shutdown, then tear the loop and thread down."""
        self.call(self.server.shutdown(drain=drain), timeout=timeout)
        self._teardown()

    def abort(self) -> None:
        """Simulate a crash: kill workers and the loop with no
        journal finalization (the journal-replay tests use this)."""
        for popen in list(self.server._procs.values()):
            popen.kill()
        self.server._procs.clear()

        def _close() -> None:
            if self.server._server is not None:
                self.server._server.close()
            if self.server._monitor is not None:
                self.server._monitor.cancel()

        self.loop.call_soon_threadsafe(_close)
        self._teardown()

    def _teardown(self) -> None:
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10.0)
        if not self.loop.is_running():
            self.loop.close()


def _run_loop(loop) -> None:
    asyncio.set_event_loop(loop)
    loop.run_forever()
