"""The on-disk job journal: service state that survives restarts.

The server appends one JSON line per state-changing event —
submissions (with the full decomposed unit list) and job state
transitions — fsyncing nothing and rewriting nothing: recovery is a
pure replay.  On startup the server folds the journal into a
:class:`JournalState`; jobs that never reached a terminal state are
resubmitted from their journaled units (finished units come straight
back from the result cache, so replayed work is usually free).

The journal records *what was asked*, not result payloads — those
live in the shared :class:`~repro.runner.cache.ResultCache` and the
per-job stream files, so the journal stays small and append-only.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path


class Journal:
    """Append-only JSONL event log under the service directory."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._handle = None

    def append(self, event: dict) -> None:
        """Write one event line (stamped with wall-clock ``ts``)."""
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a")
        record = {"ts": round(time.time(), 3), **event}
        self._handle.write(json.dumps(record, separators=(",", ":"))
                           + "\n")
        self._handle.flush()

    def close(self) -> None:
        """Release the file handle (appends may resume later)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None


@dataclass
class JournaledJob:
    """One job as reconstructed from the journal.

    Attributes:
        job_id: the id the job ran under.
        state: last journaled state (``"queued"`` if only submitted).
        request: the submission's JSON form.
        units: the decomposed units' JSON forms, in order.
        digests: the units' digests, in the same order.
        priority: scheduling priority at submission.
        seq: global submission sequence number.
        error: failure detail, when the job failed.
    """

    job_id: str
    state: str = "queued"
    request: dict = field(default_factory=dict)
    units: list = field(default_factory=list)
    digests: list = field(default_factory=list)
    priority: int = 0
    seq: int = 0
    error: str = ""


@dataclass
class JournalState:
    """Everything a replay learns: jobs by id, and the counters a
    restarted server must continue from.

    Attributes:
        jobs: job id → :class:`JournaledJob`, in submission order.
        max_job_number: highest numeric job id seen (``"j7"`` → 7).
        max_seq: highest submission sequence number seen.
    """

    jobs: dict[str, JournaledJob] = field(default_factory=dict)
    max_job_number: int = 0
    max_seq: int = 0

    def unfinished(self) -> list[JournaledJob]:
        """Jobs that never reached a terminal state, in order."""
        from repro.service.jobs import TERMINAL_STATES

        return [job for job in self.jobs.values()
                if job.state not in TERMINAL_STATES]


def replay(path: str | Path) -> JournalState:
    """Fold a journal file into a :class:`JournalState`.

    Tolerates a truncated final line (the crash case journals exist
    for); any other malformed line is skipped rather than fatal, so a
    damaged journal degrades to losing that event, not the service.
    """
    state = JournalState()
    journal_path = Path(path)
    if not journal_path.exists():
        return state
    with journal_path.open() as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue
            kind = event.get("event")
            if kind == "submit":
                job = JournaledJob(
                    job_id=event.get("id", ""),
                    request=event.get("request", {}),
                    units=event.get("units", []),
                    digests=event.get("digests", []),
                    priority=int(event.get("priority", 0)),
                    seq=int(event.get("seq", 0)),
                )
                if job.job_id:
                    state.jobs[job.job_id] = job
                    state.max_seq = max(state.max_seq, job.seq)
                    number = job.job_id.lstrip("j")
                    if number.isdigit():
                        state.max_job_number = max(
                            state.max_job_number, int(number))
            elif kind == "state":
                job = state.jobs.get(event.get("id", ""))
                if job is not None:
                    job.state = event.get("state", job.state)
                    job.error = event.get("error", job.error)
    return state
