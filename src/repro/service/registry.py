"""The typed worker registry: who is alive, idle, busy, or stale.

The server tracks every connected worker — both the fleet it spawned
and externally-attached ones — as a :class:`WorkerInfo` entry carrying
its state, heartbeat clock, and in-flight unit.  The registry answers
the three questions the dispatch and monitor loops ask: *who is idle*,
*who went silent past the heartbeat timeout*, and *is everyone idle*
(the graceful-drain condition).

Heartbeats are compared on the monotonic clock, so wall-clock jumps
can neither evict a healthy worker nor keep a dead one alive.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

#: Worker lifecycle states.
IDLE = "idle"
BUSY = "busy"
DRAINING = "draining"


@dataclass
class WorkerInfo:
    """One connected worker's registry entry.

    Attributes:
        worker_id: unique id (spawned fleet: ``"w1"``...; external
            workers pick their own).
        pid: worker process id, 0 when unknown.
        state: ``"idle"`` | ``"busy"`` | ``"draining"``.
        spawned: True when this server owns the process (and should
            respawn a replacement if it dies).
        connected_at: monotonic attach time.
        last_beat: monotonic time of the last heartbeat (or any
            message — results count as liveness too).
        unit_digest: digest of the unit being executed, if busy.
        units_done: units completed over this connection's lifetime.
        handle: opaque transport/process handles owned by the server;
            never serialized.
    """

    worker_id: str
    pid: int = 0
    state: str = IDLE
    spawned: bool = False
    connected_at: float = field(default_factory=time.monotonic)
    last_beat: float = field(default_factory=time.monotonic)
    unit_digest: str = ""
    units_done: int = 0
    handle: Any = None

    def beat(self) -> None:
        """Record a liveness signal now."""
        self.last_beat = time.monotonic()

    def silent_for(self) -> float:
        """Seconds since the last liveness signal."""
        return time.monotonic() - self.last_beat

    def status(self) -> dict:
        """The JSON summary served by ``GET /health``."""
        return {
            "id": self.worker_id,
            "pid": self.pid,
            "state": self.state,
            "spawned": self.spawned,
            "unit": self.unit_digest,
            "units_done": self.units_done,
            "silent_s": round(self.silent_for(), 3),
        }


class WorkerRegistry:
    """Every connected worker, addressable by id."""

    def __init__(self) -> None:
        self._workers: dict[str, WorkerInfo] = {}

    def __len__(self) -> int:
        return len(self._workers)

    def __contains__(self, worker_id: str) -> bool:
        return worker_id in self._workers

    def add(self, info: WorkerInfo) -> None:
        """Register a worker; duplicate ids are a protocol error."""
        if info.worker_id in self._workers:
            raise ValueError(f"duplicate worker id {info.worker_id!r}")
        self._workers[info.worker_id] = info

    def get(self, worker_id: str) -> WorkerInfo | None:
        """The entry for *worker_id*, or ``None``."""
        return self._workers.get(worker_id)

    def remove(self, worker_id: str) -> WorkerInfo | None:
        """Drop and return a worker's entry (``None`` if unknown)."""
        return self._workers.pop(worker_id, None)

    def all(self) -> list[WorkerInfo]:
        """Every registered worker, in attach order."""
        return list(self._workers.values())

    def idle(self) -> list[WorkerInfo]:
        """Workers ready for an assignment."""
        return [w for w in self._workers.values() if w.state == IDLE]

    def busy(self) -> list[WorkerInfo]:
        """Workers currently executing a unit."""
        return [w for w in self._workers.values() if w.state == BUSY]

    def stale(self, timeout: float) -> list[WorkerInfo]:
        """Workers silent for longer than *timeout* seconds."""
        return [w for w in self._workers.values()
                if w.silent_for() > timeout]

    def all_idle(self) -> bool:
        """True when no worker holds in-flight work (drain condition)."""
        return all(w.state != BUSY for w in self._workers.values())
