"""Simulation-as-a-service: the async experiment server and its fleet.

The package turns the repository's experiment drivers into a
long-running service:

* :mod:`repro.service.server` — the asyncio job server behind
  ``mirage serve`` (priority queue, worker fleet, journal, streams);
* :mod:`repro.service.worker` — the worker process the server spawns;
* :mod:`repro.service.client` — the HTTP client behind ``mirage
  submit`` / ``jobs`` / ``tail``;
* :mod:`repro.service.protocol` — submissions, decomposition into
  :class:`~repro.runner.units.WorkUnit` values, digests, framing;
* :mod:`repro.service.jobs`, :mod:`repro.service.registry`,
  :mod:`repro.service.journal` — job/task state, the typed worker
  registry, and the restart journal.

See ``docs/service.md`` for the operational guide.
"""

from repro.config import ServiceConfig, default_service_dir
from repro.service.client import ServiceClient, ServiceError, discover
from repro.service.protocol import SubmitRequest, decompose, unit_digest
from repro.service.server import ExperimentServer, ServerHandle, serve

__all__ = [
    "ExperimentServer",
    "ServerHandle",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "SubmitRequest",
    "decompose",
    "default_service_dir",
    "discover",
    "serve",
    "unit_digest",
]
