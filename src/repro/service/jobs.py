"""Job and unit-task state for the experiment service.

A *job* is one client submission: a set of work units plus bookkeeping
(state, priority, per-unit results).  A *unit task* is one unit of
work the fleet actually executes; several jobs may subscribe to the
same task when their submissions overlap — that sharing, keyed by the
result cache's own digests, is how concurrent identical submissions
coalesce onto a single execution.

:class:`JobQueue` is the priority queue between submission and the
fleet: a heap ordered by ``(-priority, seq)``, so higher priorities
run first and ties serve in submission order.  Requeued tasks (after
a worker eviction) keep their original sequence number, so an evicted
unit goes back *ahead* of everything submitted after it.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any

from repro.runner.units import WorkUnit
from repro.service.protocol import SubmitRequest

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: States a job never leaves.
TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED})


@dataclass
class UnitTask:
    """One unit of executable work, shared by every subscribing job.

    Attributes:
        digest: the unit's service-wide cache digest (its identity).
        unit: the picklable work unit itself.
        job_ids: jobs waiting on this task, in subscription order.
        priority: best priority among subscribers (heap order).
        seq: submission sequence of the first subscriber; preserved
            across requeues so evicted work does not lose its place.
        attempts: times the task has been handed to a worker.
        assigned_to: worker id currently executing it, or ``""``.
        done: set once a result (or terminal failure) was recorded.
    """

    digest: str
    unit: WorkUnit
    job_ids: list[str] = field(default_factory=list)
    priority: int = 0
    seq: int = 0
    attempts: int = 0
    assigned_to: str = ""
    done: bool = False


@dataclass
class Job:
    """One submission's full lifecycle record.

    Attributes:
        job_id: server-assigned id (``"j1"``, ``"j2"``, ...).
        request: the submission that created it.
        digests: unit digests, in decomposition order.
        units: the decomposed work units, in the same order.
        state: one of the module's lifecycle states.
        priority: scheduling priority (higher first).
        seq: global submission sequence number.
        created: submission wall-clock time.
        results: digest → result envelope, filled as units complete.
        error: first failure detail, for ``"failed"`` jobs.
        submissions: identical submissions coalesced onto this job
            (1 = never coalesced).
    """

    job_id: str
    request: SubmitRequest
    digests: list[str]
    units: list[WorkUnit]
    state: str = QUEUED
    priority: int = 0
    seq: int = 0
    created: float = 0.0
    results: dict[str, Any] = field(default_factory=dict)
    error: str = ""
    submissions: int = 1

    @property
    def units_total(self) -> int:
        """How many units the job decomposed into."""
        return len(self.digests)

    @property
    def units_done(self) -> int:
        """How many of them have results so far.

        Counted over ``digests`` (not ``results``, which is keyed by
        digest) so jobs with duplicate units still reach
        ``units_done == units_total``.
        """
        return sum(1 for d in self.digests if d in self.results)

    @property
    def finished(self) -> bool:
        """True once the job reached a terminal state."""
        return self.state in TERMINAL_STATES

    def ordered_results(self) -> list[Any]:
        """Result envelopes in decomposition order (complete jobs)."""
        return [self.results[d] for d in self.digests]

    def info(self) -> dict:
        """The JSON job summary served by ``GET /jobs``."""
        return {
            "id": self.job_id,
            "experiment": self.request.describe(),
            "state": self.state,
            "priority": self.priority,
            "units_total": self.units_total,
            "units_done": self.units_done,
            "submissions": self.submissions,
            "created": self.created,
            "error": self.error,
        }


class JobQueue:
    """The priority queue between submissions and the worker fleet.

    A binary heap of ``(-priority, seq, digest)`` triples with lazy
    invalidation: pushing the same digest again (e.g. after a
    coalescing submission raised its priority) simply shadows the
    stale entry, and :meth:`pop` skips entries whose digest is no
    longer pending.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, str]] = []
        self._pending: set[str] = set()

    def __len__(self) -> int:
        return len(self._pending)

    def push(self, task: UnitTask) -> None:
        """Queue (or re-queue) *task* under its current priority."""
        self._pending.add(task.digest)
        heapq.heappush(self._heap, (-task.priority, task.seq, task.digest))

    def discard(self, digest: str) -> None:
        """Drop a digest from the pending set (lazy heap removal)."""
        self._pending.discard(digest)

    def pop(self) -> str | None:
        """The next pending digest by priority, or ``None`` if empty."""
        while self._heap:
            _, _, digest = heapq.heappop(self._heap)
            if digest in self._pending:
                self._pending.remove(digest)
                return digest
        return None

    def pending(self) -> set[str]:
        """A snapshot of every digest still waiting for a worker."""
        return set(self._pending)
