"""Command-line entry point: ``mirage <experiment> [options]``.

Runs one experiment driver (or ``all``) and prints its tables.
``mirage list`` shows every registered experiment.  Sweep-style
drivers honour ``--jobs N`` (process fan-out) and cache their per-unit
results under ``~/.cache/mirage/`` (``--cache-dir`` to relocate,
``--no-cache`` to disable); serial, parallel, and cached runs produce
identical tables.

``--trace FILE`` streams the run's telemetry (see
:mod:`repro.telemetry`) to a JSONL file; ``mirage trace FILE``
inspects one afterwards.

Detailed-tier runs memoize repeated slices (:mod:`repro.simcache`) by
default; ``--no-sim-cache`` disables it, and ``--sim-cache-disk``
additionally persists memoized slices under the cache dir so later
processes replay them — bit-identical tables in every combination.
All cache switches travel as one :class:`repro.config.CacheConfig`.

``mirage bench`` runs the :mod:`repro.bench` microbenchmarks and
writes a schema-versioned ``BENCH_<label>.json``; ``mirage bench
--compare OLD NEW`` diffs two such reports and fails on regressions
(see ``docs/performance.md``).

``mirage serve`` runs the :mod:`repro.service` job server, and
``mirage submit`` / ``jobs`` / ``tail`` / ``shutdown`` talk to it
(see ``docs/service.md``).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.experiments import EXPERIMENTS, ExperimentParams


def _print_listing() -> None:
    width = max(len(name) for name in EXPERIMENTS)
    fig_width = max(len(e.figure) for e in EXPERIMENTS.values())
    for exp in EXPERIMENTS.values():
        print(f"{exp.name:<{width}}  {exp.figure:<{fig_width}}  "
              f"{exp.title}")
    print(f"{'all':<{width}}  {'':<{fig_width}}  "
          f"run every experiment above")
    print(f"{'trace':<{width}}  {'':<{fig_width}}  "
          f"inspect a JSONL telemetry trace (mirage trace FILE)")
    print(f"{'bench':<{width}}  {'':<{fig_width}}  "
          f"run the perf microbenchmarks (mirage bench --help)")
    print(f"{'serve':<{width}}  {'':<{fig_width}}  "
          f"run the experiment job server (mirage serve --help)")
    print(f"{'submit':<{width}}  {'':<{fig_width}}  "
          f"submit experiments to a server (also: jobs, tail, "
          f"shutdown)")


def _print_backends() -> None:
    """The execution-backend roster (``mirage list --backends``)."""
    from repro.engine.registry import list_backends

    infos = list_backends()
    width = max(len(info.name) for info in infos)
    tier_width = max(len(info.tier) for info in infos)
    for info in infos:
        print(f"{info.name:<{width}}  {info.tier:<{tier_width}}  "
              f"{info.description}")


#: ``mirage trace --kind`` choices: the record kinds with a table view.
TRACE_KINDS = ("interval", "migration", "arbitration", "energy",
               "lifecycle", "run")


def _trace_table(events: list, kind: str, app: str | None,
                 limit: int) -> int:
    """Print one kind's tabular view; returns rows matched pre-limit."""
    from repro.experiments.common import format_table

    rows = [
        e for e in events
        if e.kind == kind and (app is None or getattr(e, "app", None) == app)
    ]
    if not rows:
        return 0
    shown = rows[:limit]
    print(f"\n{kind} records"
          + (f" for {app}" if app else "")
          + (f" (first {len(shown)} of {len(rows)})"
             if len(rows) > len(shown) else f" ({len(shown)})"))
    if kind == "interval":
        print(format_table(
            ["interval", "app", "core", "ipc", "speedup", "dSC-MPKI"],
            [[e.interval, e.app, "OoO" if e.on_ooo else "InO",
              e.ipc, e.speedup, e.delta_sc_mpki] for e in shown],
        ))
    elif kind == "migration":
        print(format_table(
            ["interval", "app", "dir", "sc_bytes", "charged",
             "l1_dirty", "l1_lines"],
            [[e.interval, e.app, "->OoO" if e.to_ooo else "->InO",
              e.sc_bytes, e.charged_cycles, e.l1_flush_dirty,
              e.l1_flush_lines] for e in shown],
        ))
    elif kind == "arbitration":
        print(format_table(
            ["interval", "chosen", "slots"],
            [[e.interval, ",".join(e.chosen) or "(gated)", e.slots]
             for e in shown],
        ))
    elif kind == "energy":
        print(format_table(
            ["interval", "app", "core", "energy_pj"],
            [[e.interval, e.app, e.core, e.energy_pj] for e in shown],
        ))
    elif kind == "lifecycle":
        print(format_table(
            ["interval", "app", "event", "benchmark", "cluster",
             "resident", "residency"],
            [[e.interval, e.app, e.event, e.benchmark, e.cluster,
              e.resident, e.residency_intervals] for e in shown],
        ))
    return len(rows)


def _residency_summary(events: list, app: str | None) -> None:
    """Per-app arrival/departure/residency from lifecycle records."""
    from repro.experiments.common import format_table

    apps: dict[str, dict] = {}
    for e in events:
        if e.kind != "lifecycle" or (app is not None and e.app != app):
            continue
        row = apps.setdefault(
            e.app, {"arrived": None, "departed": None,
                    "residency": None, "completions": 0})
        if e.event == "arrive":
            row["arrived"] = e.interval
        else:
            row["departed"] = e.interval
            row["residency"] = e.residency_intervals
            row["completions"] = e.completions
    if not apps:
        return
    print(f"\nper-app residency ({len(apps)} apps)")
    print(format_table(
        ["app", "arrived", "departed", "residency", "completions"],
        [
            [name,
             "?" if row["arrived"] is None else row["arrived"],
             "-" if row["departed"] is None else row["departed"],
             "-" if row["residency"] is None else row["residency"],
             row["completions"]]
            for name, row in sorted(apps.items())
        ],
    ))


def _trace_command(path: str, *, app: str | None, limit: int,
                   kind: str | None = None) -> int:
    """Summarize and tabulate a JSONL telemetry trace."""
    from repro.telemetry import read_trace

    trace_path = Path(path)
    if not trace_path.exists():
        print(f"mirage trace: no such file: {path}", file=sys.stderr)
        return 1
    events = read_trace(trace_path)
    by_kind: dict[str, int] = {}
    for event in events:
        by_kind[event.kind] = by_kind.get(event.kind, 0) + 1
    counts = ", ".join(f"{n} {k}" for k, n in sorted(by_kind.items()))
    print(f"{path}: {len(events)} records ({counts or 'empty'})")

    # Per-app migration counts: the first thing one checks when
    # debugging backend parity, so it never needs JSONL spelunking.
    mig_by_app: dict[str, int] = {}
    for event in events:
        if event.kind == "migration" and (app is None or event.app == app):
            mig_by_app[event.app] = mig_by_app.get(event.app, 0) + 1
    if mig_by_app:
        per_app = ", ".join(
            f"{name}={n}" for name, n in sorted(mig_by_app.items()))
        print(f"migrations per app: {per_app}")

    if kind in (None, "run"):
        for event in events:
            if event.kind == "run":
                print(f"\nrun: {event.config} under {event.arbitrator} — "
                      f"{event.intervals} intervals, "
                      f"{event.total_cycles:.0f} cycles")
                counters = event.counters
                lookups = counters.get("simcache.lookups", 0)
                if lookups:
                    hits = counters.get("simcache.hits", 0)
                    replayed = counters.get(
                        "simcache.replayed_instructions", 0)
                    invalidations = counters.get(
                        "simcache.invalidations", 0)
                    print(f"  sim-cache: {hits:.0f}/{lookups:.0f} slice "
                          f"hits ({100.0 * hits / lookups:.1f}%), "
                          f"{replayed:.0f} instructions replayed, "
                          f"{invalidations:.0f} invalidations")
                for name in sorted(counters):
                    print(f"  {name} = {counters[name]}")

    shown_any = 0
    for table_kind in TRACE_KINDS:
        if table_kind == "run":
            continue
        if kind is None and table_kind != "interval":
            continue            # default view: the interval table only
        if kind is not None and table_kind != kind:
            continue
        shown_any += _trace_table(events, table_kind, app, limit)
    if kind == "lifecycle":
        _residency_summary(events, app)
    if not shown_any and (app is not None or kind not in (None, "run")):
        desc = kind or "interval"
        print(f"\nno {desc} records"
              + (f" for app {app!r}" if app else ""))
    return 0


def _bench_command(argv: list[str]) -> int:
    """The ``mirage bench`` subcommand (its own option namespace)."""
    from repro.bench import (
        compare_reports,
        DEFAULT_THRESHOLD,
        format_report,
        names,
        read_report,
        run_benchmarks,
        write_report,
    )

    parser = argparse.ArgumentParser(
        prog="mirage bench",
        description=(
            "Measure the simulator's hot paths with the repro.bench "
            "microbenchmarks, or compare two saved reports."
        ),
    )
    parser.add_argument(
        "names", nargs="*",
        help="benchmarks to run (default: all; see --list)")
    parser.add_argument(
        "--list", action="store_true",
        help="print every registered microbenchmark and exit")
    parser.add_argument(
        "--quick", action="store_true",
        help="trimmed workload sizes (CI smoke mode)")
    parser.add_argument(
        "--repeat", type=int, default=3, metavar="N",
        help="timed repetitions per benchmark (default: 3)")
    parser.add_argument(
        "--warmup", type=int, default=1, metavar="N",
        help="untimed warm-up runs per benchmark (default: 1)")
    parser.add_argument(
        "--label", default="local",
        help="report label; the default output file is "
             "BENCH_<label>.json (default: local)")
    parser.add_argument(
        "--output", metavar="FILE",
        help="report path (default: BENCH_<label>.json)")
    parser.add_argument(
        "--compare", nargs=2, metavar=("OLD", "NEW"),
        help="diff two saved reports instead of measuring")
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        metavar="FRAC",
        help="tolerated slowdown fraction for --compare "
             f"(default: {DEFAULT_THRESHOLD})")
    parser.add_argument(
        "--warn-only", action="store_true",
        help="with --compare: report regressions but exit 0")
    args = parser.parse_args(argv)

    if args.list:
        from repro.bench import BENCHMARKS

        width = max(len(n) for n in BENCHMARKS)
        for bench in BENCHMARKS.values():
            print(f"{bench.name:<{width}}  [{bench.tier:<8}]  "
                  f"{bench.description}")
        return 0

    if args.compare:
        old_path, new_path = args.compare
        try:
            comparison = compare_reports(
                read_report(old_path), read_report(new_path),
                threshold=args.threshold)
        except (OSError, ValueError) as exc:
            print(f"mirage bench: {exc}", file=sys.stderr)
            return 2
        print(comparison.summary())
        if not comparison.ok and not args.warn_only:
            return 1
        return 0

    unknown = [n for n in args.names if n not in names()]
    if unknown:
        parser.error(
            f"unknown benchmark(s) {', '.join(unknown)} — "
            f"choose from: {', '.join(names())}")
    if args.repeat < 1:
        parser.error("--repeat must be >= 1")
    report = run_benchmarks(
        args.names or None, repeats=args.repeat, warmup=args.warmup,
        quick=args.quick, label=args.label, verbose=True)
    out = Path(args.output) if args.output else Path(
        f"BENCH_{args.label}.json")
    write_report(report, out)
    print(f"\n{format_report(report)}")
    print(f"[bench] report -> {out}")
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv[:1] == ["bench"]:
        # `bench` owns its option namespace (repeat counts, compare
        # paths); route before the experiment parser sees them.
        return _bench_command(argv[1:])
    if argv[:1] and argv[0] in ("serve", "submit", "jobs", "tail",
                                "shutdown"):
        # Service subcommands own their option namespaces too.
        from repro.service.cli import service_command

        return service_command(argv)
    parser = argparse.ArgumentParser(
        prog="mirage",
        description=(
            "Mirage Cores (MICRO 2017) reproduction: run one of the "
            "paper's experiments and print its tables."
        ),
    )
    parser.add_argument(
        "experiment", nargs="?",
        help="experiment name (see 'mirage list'), 'all', or 'trace'",
    )
    parser.add_argument(
        "path", nargs="?",
        help="trace file to inspect (only with 'mirage trace')",
    )
    parser.add_argument(
        "--list", action="store_true",
        help="print each experiment's name, paper figure, and title",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller workloads for a fast smoke run",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for sweep experiments (default: 1)",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR",
        help="result-cache location (default: ~/.cache/mirage)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="neither read nor write the on-disk result cache",
    )
    parser.add_argument(
        "--export", metavar="DIR",
        help="also write each experiment's raw result as JSON in DIR",
    )
    parser.add_argument(
        "--trace", metavar="FILE",
        help="append the run's telemetry records to FILE (JSONL)",
    )
    parser.add_argument(
        "--app", metavar="NAME",
        help="with 'mirage trace': only this application's intervals",
    )
    parser.add_argument(
        "--limit", type=int, default=20, metavar="N",
        help="with 'mirage trace': interval rows to print (default: 20)",
    )
    parser.add_argument(
        "--kind", choices=TRACE_KINDS, metavar="KIND",
        help="with 'mirage trace': only this record kind "
             f"({', '.join(TRACE_KINDS)})",
    )
    parser.add_argument(
        "--shape", metavar="SHAPE",
        help="with 'mirage scenario': traffic shape "
             "(steady, bursty, diurnal, mixed)",
    )
    parser.add_argument(
        "--clusters", type=int, metavar="N",
        help="with 'mirage scenario': number of Mirage clusters "
             "behind the global scheduler",
    )
    parser.add_argument(
        "--policy", metavar="NAME",
        help="with 'mirage scenario': compare only this placement "
             "policy (round-robin, least-loaded, sc-mpki)",
    )
    parser.add_argument(
        "--backends", nargs="?", const="*", metavar="NAMES",
        help="with 'mirage backend-matrix': comma-separated backend "
             "names to cross-validate (bare flag = all registered); "
             "with 'mirage list': print the backend roster instead",
    )
    parser.add_argument(
        "--sim-cache", dest="sim_cache", action="store_true",
        default=None,
        help="memoize detailed-tier slices in the process-wide "
             "SliceMemo (bit-identical results; the default)",
    )
    parser.add_argument(
        "--no-sim-cache", dest="sim_cache", action="store_false",
        help="disable detailed-tier slice memoization",
    )
    parser.add_argument(
        "--sim-cache-disk", dest="sim_cache_disk", action="store_true",
        default=None,
        help="persist memoized slices under the cache dir so later "
             "processes replay them (bit-identical results)",
    )
    parser.add_argument(
        "--no-sim-cache-disk", dest="sim_cache_disk",
        action="store_false",
        help="keep slice memoization in-memory only (the default)",
    )
    args = parser.parse_args(argv)

    # One CacheConfig carries every cache switch from here down;
    # apply() writes the env-backed ones so --jobs workers inherit.
    from repro.config import CacheConfig

    cache_cfg = CacheConfig(
        cache_dir=args.cache_dir,
        use_result_cache=not args.no_cache,
        sim_cache=args.sim_cache,
        sim_cache_disk=args.sim_cache_disk,
    ).apply()

    if args.list or args.experiment == "list":
        if args.backends is not None:
            _print_backends()
        else:
            _print_listing()
        return 0
    if args.experiment is None:
        parser.error("an experiment name (or 'all' / 'list') is required")
    if args.experiment == "trace":
        if args.path is None:
            parser.error("'mirage trace' needs a trace file path")
        return _trace_command(args.path, app=args.app, limit=args.limit,
                              kind=args.kind)
    if args.kind is not None:
        parser.error("--kind only makes sense with 'mirage trace'")
    if args.path is not None:
        parser.error("a file path only makes sense with 'mirage trace'")
    if args.experiment != "all" and args.experiment not in EXPERIMENTS:
        known = ", ".join([*EXPERIMENTS, "all"])
        parser.error(
            f"unknown experiment {args.experiment!r} — "
            f"choose from: {known} (or run 'mirage list')")
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")

    backend_overrides = {}
    if args.backends is not None:
        if args.experiment != "backend-matrix":
            parser.error("--backends only makes sense with 'mirage "
                         "backend-matrix' (or 'mirage list --backends')")
        if args.backends != "*":
            # Resolve each name now so a typo fails with the registry
            # roster before any work unit is scheduled.
            from repro.engine.registry import get_backend

            chosen = tuple(
                part.strip() for part in args.backends.split(",")
                if part.strip())
            if not chosen:
                parser.error("--backends got an empty selection")
            for backend_name in chosen:
                try:
                    get_backend(backend_name)
                except ValueError as exc:
                    parser.error(str(exc))
            backend_overrides["backends"] = chosen

    scenario_overrides = {}
    if (args.shape is not None or args.clusters is not None
            or args.policy is not None):
        if args.experiment != "scenario":
            parser.error("--shape/--clusters/--policy only make sense "
                         "with 'mirage scenario'")
        from repro.cluster.scheduler import POLICIES
        from repro.workloads.scenario import SHAPES

        if args.shape is not None:
            if args.shape not in SHAPES:
                parser.error(f"unknown shape {args.shape!r} — choose "
                             f"from: {', '.join(SHAPES)}")
            scenario_overrides["shape"] = args.shape
        if args.clusters is not None:
            if args.clusters < 1:
                parser.error("--clusters must be >= 1")
            scenario_overrides["n_clusters"] = args.clusters
        if args.policy is not None:
            if args.policy not in POLICIES:
                parser.error(f"unknown policy {args.policy!r} — choose "
                             f"from: {', '.join(POLICIES)}")
            scenario_overrides["policies"] = (args.policy,)

    if args.trace:
        # One file per invocation: truncate now, every experiment run
        # below appends to it in order.
        trace_path = Path(args.trace)
        if trace_path.parent != Path("."):
            trace_path.parent.mkdir(parents=True, exist_ok=True)
        trace_path.write_text("")

    names = list(EXPERIMENTS) if args.experiment == "all" else [
        args.experiment]
    for name in names:
        exp = EXPERIMENTS[name]
        params = ExperimentParams(
            quick=args.quick,
            jobs=args.jobs,
            use_cache=cache_cfg.use_result_cache,
            cache_dir=cache_cfg.cache_dir,
            cache=cache_cfg,
            trace=args.trace,
        )
        print(f"=== {name} ===")
        start = time.time()
        overrides = (scenario_overrides if name == "scenario"
                     else backend_overrides if name == "backend-matrix"
                     else {})
        result = exp.run(params, **overrides)
        exp.print_table(result)
        if args.export:
            from repro.report import to_json

            out_dir = Path(args.export)
            out_dir.mkdir(parents=True, exist_ok=True)
            to_json(result, out_dir / f"{name}.json")
            print(f"[exported {out_dir / (name + '.json')}]")
        if exp.last_runner is not None and exp.last_runner.stats.total_units:
            print(f"[runner] {exp.last_runner.stats.summary()}")
            slowest = exp.last_runner.stats.slowest_summary()
            if slowest:
                print(f"[runner] slowest units: {slowest}")
        print(f"--- {name} done in {time.time() - start:.1f}s ---\n")
    if args.trace:
        with open(args.trace) as handle:
            n_records = sum(1 for line in handle if line.strip())
        print(f"[trace] {n_records} records -> {args.trace}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
