"""Command-line entry point: ``mirage <experiment> [options]``.

Runs one experiment driver (or ``all``) and prints its tables.
``mirage list`` shows every registered experiment.  Sweep-style
drivers honour ``--jobs N`` (process fan-out) and cache their per-unit
results under ``~/.cache/mirage/`` (``--cache-dir`` to relocate,
``--no-cache`` to disable); serial, parallel, and cached runs produce
identical tables.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import EXPERIMENTS, ExperimentParams


def _print_listing() -> None:
    width = max(len(name) for name in EXPERIMENTS)
    fig_width = max(len(e.figure) for e in EXPERIMENTS.values())
    for exp in EXPERIMENTS.values():
        print(f"{exp.name:<{width}}  {exp.figure:<{fig_width}}  "
              f"{exp.title}")
    print(f"{'all':<{width}}  {'':<{fig_width}}  "
          f"run every experiment above")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="mirage",
        description=(
            "Mirage Cores (MICRO 2017) reproduction: run one of the "
            "paper's experiments and print its tables."
        ),
    )
    parser.add_argument(
        "experiment", nargs="?",
        help="experiment name (see 'mirage list'), or 'all'",
    )
    parser.add_argument(
        "--list", action="store_true",
        help="print each experiment's name, paper figure, and title",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller workloads for a fast smoke run",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for sweep experiments (default: 1)",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR",
        help="result-cache location (default: ~/.cache/mirage)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="neither read nor write the on-disk result cache",
    )
    parser.add_argument(
        "--export", metavar="DIR",
        help="also write each experiment's raw result as JSON in DIR",
    )
    args = parser.parse_args(argv)

    if args.list or args.experiment == "list":
        _print_listing()
        return 0
    if args.experiment is None:
        parser.error("an experiment name (or 'all' / 'list') is required")
    if args.experiment != "all" and args.experiment not in EXPERIMENTS:
        known = ", ".join([*EXPERIMENTS, "all"])
        parser.error(
            f"unknown experiment {args.experiment!r} — "
            f"choose from: {known} (or run 'mirage list')")
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")

    names = list(EXPERIMENTS) if args.experiment == "all" else [
        args.experiment]
    for name in names:
        exp = EXPERIMENTS[name]
        params = ExperimentParams(
            quick=args.quick,
            jobs=args.jobs,
            use_cache=not args.no_cache,
            cache_dir=args.cache_dir,
        )
        print(f"=== {name} ===")
        start = time.time()
        result = exp.run(params)
        exp.print_table(result)
        if args.export:
            from pathlib import Path

            from repro.report import to_json

            out_dir = Path(args.export)
            out_dir.mkdir(parents=True, exist_ok=True)
            to_json(result, out_dir / f"{name}.json")
            print(f"[exported {out_dir / (name + '.json')}]")
        if exp.last_runner is not None and exp.last_runner.stats.total_units:
            print(f"[runner] {exp.last_runner.stats.summary()}")
        print(f"--- {name} done in {time.time() - start:.1f}s ---\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
