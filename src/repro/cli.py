"""Command-line entry point: ``mirage <experiment> [--quick]``.

Runs one experiment driver (or ``all``) and prints its tables.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import EXPERIMENTS


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="mirage",
        description=(
            "Mirage Cores (MICRO 2017) reproduction: run one of the "
            "paper's experiments and print its tables."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=[*EXPERIMENTS, "all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller workloads for a fast smoke run",
    )
    parser.add_argument(
        "--export", metavar="DIR",
        help="also write each experiment's raw result as JSON in DIR",
    )
    args = parser.parse_args(argv)

    names = list(EXPERIMENTS) if args.experiment == "all" else [
        args.experiment]
    for name in names:
        module = EXPERIMENTS[name]
        print(f"=== {name} ===")
        start = time.time()
        module.main(quick=args.quick)
        if args.export:
            from pathlib import Path

            from repro.report import to_json

            out_dir = Path(args.export)
            out_dir.mkdir(parents=True, exist_ok=True)
            to_json(module.run(), out_dir / f"{name}.json")
            print(f"[exported {out_dir / (name + '.json')}]")
        print(f"--- {name} done in {time.time() - start:.1f}s ---\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
