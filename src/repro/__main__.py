"""``python -m repro`` — alias for the ``mirage`` console script."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
