"""Per-benchmark phase characterization.

The interval-level CMP simulator (:mod:`repro.cmp`) advances whole
arbitration intervals at a time and therefore needs, per benchmark
phase: the IPC on each core type, the memoizable instruction fraction,
the schedule working-set size, and the schedule volatility.  Two
sources provide these :class:`PhaseProfile` sets:

* :func:`analytic_model` derives them from the paper-calibrated targets
  in :mod:`repro.workloads.profiles` (fast; the default for the big
  CMP sweeps).
* :func:`measure_model` runs the detailed cycle-level cores on the
  synthetic benchmark, one phase at a time (slow; used by Figure 1/2
  style experiments and validation tests).
"""

from repro.characterize.phase_model import (
    AppModel,
    PhaseProfile,
    analytic_model,
    measure_model,
)

__all__ = [
    "PhaseProfile",
    "AppModel",
    "analytic_model",
    "measure_model",
]
