"""Phase profiles and the two ways of obtaining them."""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass

from repro.cores import InOrderCore, OinOCore, OutOfOrderCore
from repro.memory import MemoryHierarchy
from repro.schedule import ScheduleCache, ScheduleRecorder
from repro.workloads.generator import SyntheticBenchmark
from repro.workloads.profiles import get_profile

#: Efficiency of replaying a memoized schedule on the OinO relative to
#: native OoO execution of the same trace (paper: "up to 90 %").
OINO_REPLAY_EFFICIENCY = 0.92

#: Average dynamic trace length (instructions); traces per kilo-instr
#: follows, which converts uncovered fractions into SC-MPKI.
MEAN_TRACE_LEN = 50.0
TRACES_PER_KILO_INSTR = 1000.0 / MEAN_TRACE_LEN


@dataclass(frozen=True, slots=True)
class PhaseProfile:
    """Interval-simulation inputs for one execution phase."""

    phase_id: int
    weight: float            #: fraction of the pass spent in this phase
    ipc_ooo: float
    ipc_ino: float
    memoizable: float        #: oracle memoizable instruction fraction
    volatility: float        #: per-interval SC staleness probability
    trace_kb: float          #: schedule working set (vs the 8 KB SC)

    @property
    def sc_mpki_ooo(self) -> float:
        """SC-MPKI the producer measures while memoizing this phase.

        Non-memoizable traces keep missing in the SC even on the OoO;
        this is the arbitrator's intrinsic-memoizability signal.
        """
        return (1.0 - self.memoizable) * TRACES_PER_KILO_INSTR

    def sc_mpki_ino(self, coverage: float) -> float:
        """SC-MPKI on the consumer given current SC coverage [0..1]."""
        covered = self.memoizable * coverage
        return (1.0 - covered) * TRACES_PER_KILO_INSTR

    def ipc_oino(self, coverage: float) -> float:
        """OinO-mode IPC given the fraction of memoizable traces that
        are present and fresh in the SC."""
        covered = self.memoizable * coverage
        return (
            covered * OINO_REPLAY_EFFICIENCY * self.ipc_ooo
            + (1.0 - covered) * self.ipc_ino
        )


@dataclass(frozen=True, slots=True)
class AppModel:
    """A benchmark as the interval-level CMP simulator sees it."""

    name: str
    category: str
    phases: tuple[PhaseProfile, ...]
    pass_instructions: int   #: dynamic instructions in one phase cycle

    def phase_at(self, instr_index: float) -> PhaseProfile:
        """Phase active at the given dynamic instruction index."""
        pos = instr_index % self.pass_instructions
        for phase in self.phases:
            span = phase.weight * self.pass_instructions
            if pos < span:
                return phase
            pos -= span
        return self.phases[-1]

    @property
    def mean_ipc_ooo(self) -> float:
        """Phase-weight-averaged IPC on the out-of-order core."""
        return sum(p.ipc_ooo * p.weight for p in self.phases)

    @property
    def mean_ipc_ino(self) -> float:
        """Phase-weight-averaged IPC on the in-order core."""
        return sum(p.ipc_ino * p.weight for p in self.phases)


def _jitter(name: str, phase: int, salt: str) -> float:
    """Deterministic uniform [0,1) noise per (benchmark, phase)."""
    seed = zlib.crc32(f"{name}/{phase}/{salt}".encode())
    return random.Random(seed).random()


def analytic_model(
    name: str,
    *,
    pass_instructions: int = 3_000_000,
) -> AppModel:
    """Derive an AppModel from the paper-calibrated profile targets.

    Per-phase values jitter deterministically around the benchmark
    targets so that phase changes are visible to the arbitrator (the
    bzip2 timeline of Figure 5 depends on this).
    """
    prof = get_profile(name)
    total_w = sum(prof.phase_weights)
    phases = []
    for i in range(prof.phase_count):
        u_ipc = _jitter(name, i, "ipc")
        u_ratio = _jitter(name, i, "ratio")
        u_memo = _jitter(name, i, "memo")
        u_ws = _jitter(name, i, "ws")
        ipc_ooo = prof.target_ipc_ooo * (0.80 + 0.40 * u_ipc)
        ratio = prof.target_ipc_ratio * (0.92 + 0.16 * u_ratio)
        memoizable = min(0.98, max(
            0.0, prof.target_memoizable * (0.85 + 0.30 * u_memo)))
        # Schedule working set: more variants and bigger bodies mean
        # more schedule bytes competing for the 8 KB SC.
        trace_kb = (
            prof.loops_per_phase * prof.variants
            * prof.body_len * 4.3 / 1024.0
        ) * (0.8 + 0.8 * u_ws)
        phases.append(PhaseProfile(
            phase_id=i,
            weight=prof.phase_weights[i] / total_w,
            ipc_ooo=ipc_ooo,
            ipc_ino=ipc_ooo * min(0.99, ratio),
            memoizable=memoizable,
            volatility=prof.schedule_volatility,
            trace_kb=trace_kb,
        ))
    return AppModel(
        name=name,
        category=prof.category,
        phases=tuple(phases),
        pass_instructions=pass_instructions,
    )


def measure_model(
    name: str,
    *,
    seed: int = 1,
    instructions_per_phase: int = 30_000,
) -> AppModel:
    """Derive an AppModel by running the detailed cores phase by phase.

    Slower but grounded in the cycle-level tier: the synthetic
    benchmark is executed on the OoO (with an infinite-SC oracle
    recorder), the InO and the OinO for each phase, and the measured
    IPCs/memoized fractions become the phase profile.
    """
    prof = get_profile(name)
    bench = SyntheticBenchmark(prof, seed=seed)
    budgets = bench.phase_budgets
    total = sum(budgets)
    phases = []
    stream_pos = 0
    stream = bench.stream()
    for i, budget in enumerate(budgets):
        run_len = min(budget, instructions_per_phase)
        # Fresh hardware per phase: phase boundaries cool everything.
        window = []
        for _ in range(run_len):
            window.append(next(stream))
        for _ in range(budget - run_len):   # skip the phase remainder
            next(stream)
        stream_pos += budget

        sc = ScheduleCache(None)
        rec = ScheduleRecorder(sc)
        r_ooo = OutOfOrderCore(
            MemoryHierarchy().core_view(0), recorder=rec
        ).run(iter(window), run_len)
        r_ino = InOrderCore(MemoryHierarchy().core_view(1)).run(
            iter(window), run_len)
        r_oino = OinOCore(MemoryHierarchy().core_view(2), sc).run(
            iter(window), run_len)

        trace_bytes = sum(s.storage_bytes for s in sc.contents())
        phases.append(PhaseProfile(
            phase_id=i,
            weight=budget / total,
            ipc_ooo=r_ooo.ipc,
            ipc_ino=min(r_ino.ipc, r_ooo.ipc * 0.99),
            memoizable=r_oino.stats.memoized_fraction,
            volatility=prof.schedule_volatility,
            trace_kb=max(0.25, trace_bytes / 1024.0),
        ))
    return AppModel(
        name=name,
        category=prof.category,
        phases=tuple(phases),
        pass_instructions=total,
    )
