"""Backend matrix: every registered backend, cross-validated pairwise.

:mod:`repro.experiments.tier_validation` checks the analytic tier
against one cycle-level substrate; this experiment generalizes that
pattern to the whole :mod:`repro.engine.registry` roster.  Each
registered backend gets one *leg*: the same benchmark pair, the same
SC-MPKI arbitrator, the same unchanged
:class:`~repro.engine.loop.IntervalEngine` four-phase pipeline —
only the execution substrate differs.  Every pair of legs is then
compared on the dynamics all substrates must agree on (which
application earns more producer time, how far throughput diverges),
so adding a backend to the registry automatically buys it a
cross-validation row here.

A second table reruns the core models alone (InO, InO-LDT, CG-OoO,
OoO on one benchmark) through the McPAT-like energy model — the
fig8-style check that CG-OoO's energy-per-instruction lands between
the in-order and out-of-order endpoints.
"""

from __future__ import annotations

from itertools import combinations

from repro.arbiter import SCMPKIArbitrator
from repro.energy import CoreEnergyModel
from repro.engine import (
    ArbitrationPhase,
    EnergyPhase,
    ExecutionPhase,
    IntervalEngine,
    MigrationPhase,
)
from repro.engine.registry import BackendSpec, backend_names, get_backend
from repro.experiments.common import format_table, mean
from repro.runner import SweepRunner, call_unit
from repro.telemetry import Telemetry
from repro.workloads import get_profile

#: A memoizable app paired with an unmemoizable one (same pair the
#: tier-validation experiment uses, so legs are directly comparable).
PAIR = ("bzip2", "astar")

#: The standalone core models the energy table compares, with the
#: energy-model kind each one's event counts are priced under.
ENERGY_CORES = (("ino", "ino"), ("ldt", "ino"),
                ("cgooo", "cgooo"), ("ooo", "ooo"))


def backend_leg(name: str, *, intervals: int = 24,
                slice_instructions: int = 8_000,
                max_intervals: int = 400) -> dict:
    """One backend's run over :data:`PAIR`, as a JSON-pure work unit.

    Interval-tier legs run to completion (up to *max_intervals*);
    cycle-tier legs run a fixed *intervals* slices.  Both report the
    same shape — OoO share per app, system throughput, migration and
    schedule-transfer totals — so the matrix can diff any two legs.
    """
    info = get_backend(name)
    bundle = info.build(BackendSpec(
        benchmarks=PAIR, slice_instructions=slice_instructions))
    tele, trace = Telemetry.recording(kinds={"migration"})
    engine = IntervalEngine(
        bundle.config, bundle.apps,
        [
            ArbitrationPhase(SCMPKIArbitrator()),
            MigrationPhase(),
            ExecutionPhase(),
            EnergyPhase(CoreEnergyModel()),
        ],
        backend=bundle.backend, telemetry=tele,
    )
    budget = max_intervals if info.tier == "interval" else intervals
    ctx = engine.run(max_intervals=budget)
    apps = bundle.apps
    if info.tier == "interval":
        active = max(1, ctx.ooo_active_intervals)
        share = {a.model.name: s / active
                 for a, s in zip(apps, ctx.ooo_share)}
        total_cycles = ctx.intervals * ctx.interval
        speedups = []
        for a in apps:
            alone = ctx.budget / max(1e-9, a.model.mean_ipc_ooo)
            took = a.first_completion_cycles or total_cycles
            speedups.append(min(1.0, alone / max(1e-9, took)))
    else:
        share = {a.model.name: (a.t_ooo / a.t_total if a.t_total else 0.0)
                 for a in apps}
        speedups = [
            (a.instructions / a.t_total if a.t_total else 0.0)
            / max(1e-9, get_profile(a.model.name).target_ipc_ooo)
            for a in apps
        ]
    migrations = trace.records("migration")
    return {
        "backend": name,
        "tier": info.tier,
        "ooo_share": share,
        "stp": mean(speedups),
        "migrations": bundle.migration.total_migrations,
        "sc_bytes_transferred": sum(m.sc_bytes for m in migrations),
        "energy_pj": sum(a.energy_pj for a in apps),
    }


def energy_table(instructions: int = 20_000) -> list[dict]:
    """EPI of each standalone core model on one benchmark (fig8-style).

    Runs InO, load-delay-tracking InO, CG-OoO and OoO alone on the
    memoizable half of :data:`PAIR` and prices the event counts with
    :meth:`~repro.energy.CoreEnergyModel.breakdown`.  The ordering the
    paper's energy story needs — InO < CG-OoO < OoO — is asserted by
    the test suite, not here.
    """
    from repro.cores import (
        CGOoOCore,
        InOrderCore,
        LDT_PARAMS,
        OutOfOrderCore,
    )
    from repro.memory import MemoryHierarchy
    from repro.schedule.schedule_cache import ScheduleCache
    from repro.workloads import make_benchmark

    bench_name = PAIR[0]
    em = CoreEnergyModel()
    rows = []
    for model, kind in ENERGY_CORES:
        bench = make_benchmark(bench_name, seed=7)
        view = MemoryHierarchy().core_view(0)
        if model == "ooo":
            core = OutOfOrderCore(view)
        elif model == "cgooo":
            core = CGOoOCore(view, ScheduleCache(capacity_bytes=8 * 1024))
        elif model == "ldt":
            core = InOrderCore(view, params=LDT_PARAMS)
        else:
            core = InOrderCore(view)
        result = core.run(bench.stream(), instructions)
        energy = em.breakdown(kind, result.energy_events, result.cycles)
        rows.append({
            "model": model,
            "ipc": result.ipc,
            "epi_pj": energy.total_pj / max(1, result.instructions),
            "total_pj": energy.total_pj,
        })
    return rows


def _divergence(a: dict, b: dict) -> dict:
    """How far two legs disagree on the shared dynamics."""
    memo, unmemo = PAIR
    return {
        "pair": (a["backend"], b["backend"]),
        "d_share_memo": abs(a["ooo_share"][memo] - b["ooo_share"][memo]),
        "d_stp": abs(a["stp"] - b["stp"]),
        "agree_preference": (
            (a["ooo_share"][memo] > a["ooo_share"][unmemo])
            == (b["ooo_share"][memo] > b["ooo_share"][unmemo])),
    }


def run(*, backends: tuple[str, ...] | None = None, intervals: int = 24,
        slice_instructions: int = 8_000, max_intervals: int = 400,
        energy_instructions: int = 20_000,
        runner: SweepRunner | None = None) -> dict:
    """Run every selected backend's leg and diff all pairs.

    ``backends=None`` means the full registry roster; explicit names
    are validated up front so a typo fails with the roster listing
    before any work is scheduled.
    """
    names = tuple(backends) if backends else backend_names()
    for name in names:
        get_backend(name)
    units = [
        call_unit("repro.experiments.backend_matrix:backend_leg", name,
                  intervals=intervals,
                  slice_instructions=slice_instructions,
                  max_intervals=max_intervals)
        for name in names
    ]
    units.append(call_unit(
        "repro.experiments.backend_matrix:energy_table",
        energy_instructions))
    *legs, energy = (runner or SweepRunner()).map(units)
    pairwise = [_divergence(a, b) for a, b in combinations(legs, 2)]
    return {
        "pair": PAIR,
        "backends": list(names),
        "legs": legs,
        "pairwise": pairwise,
        "energy": energy,
        "all_agree": all(p["agree_preference"] for p in pairwise),
    }


def print_table(result: dict) -> None:
    """Render the legs, the pairwise diff, and the energy table."""
    memo, unmemo = result["pair"]
    print(f"Backend matrix on ({memo}, {unmemo}):")
    print(format_table(
        ["backend", "tier", f"{memo} OoO share", f"{unmemo} OoO share",
         "STP", "migrations", "SC bytes"],
        [
            [leg["backend"], leg["tier"],
             leg["ooo_share"][memo], leg["ooo_share"][unmemo],
             leg["stp"], leg["migrations"], leg["sc_bytes_transferred"]]
            for leg in result["legs"]
        ],
    ))
    print("\nPairwise divergence:")
    print(format_table(
        ["pair", "d(OoO share)", "d(STP)", "same preference"],
        [
            ["/".join(p["pair"]), p["d_share_memo"], p["d_stp"],
             "yes" if p["agree_preference"] else "NO"]
            for p in result["pairwise"]
        ],
    ))
    print(f"\nCore-model energy on {memo} "
          "(fig8-style; expect InO < CG-OoO < OoO):")
    print(format_table(
        ["model", "IPC", "EPI (pJ)", "total (pJ)"],
        [[r["model"], r["ipc"], r["epi_pj"], r["total_pj"]]
         for r in result["energy"]],
    ))
    agree = sum(p["agree_preference"] for p in result["pairwise"])
    print(f"\npairs agreeing on the qualitative preference: "
          f"{agree}/{len(result['pairwise'])}")
    if "cgooo" in result["backends"]:
        print("(CG-OoO consumers self-record block schedules, so they "
              "lean on the producer less; divergence there is the "
              "model's point, not a tier bug.)")
