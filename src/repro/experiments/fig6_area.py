"""Figure 6: CMP area vs. cluster size.

Pure model arithmetic: for n in {4, 8, 12, 16}, the area of the n:0
Homo-InO CMP, the n:1 Mirage CMP (OinO-capable consumers) and the n:1
traditional Het-CMP, all relative to the n-OoO homogeneous CMP.

Paper shape: a traditional 4:1 is ~55 % bigger than 4:0 Homo-InO, the
OinO mode adds another ~23 %, and the 8:1 Mirage lands at ~74 % of the
8-OoO homogeneous CMP's area.
"""

from __future__ import annotations

from repro.energy import cmp_area
from repro.energy.model import AREA_UNITS
from repro.experiments.common import format_table

N_VALUES = (4, 8, 12, 16)


def run(*, n_values=N_VALUES) -> dict:
    rows = []
    for n in n_values:
        homo_ooo = n * AREA_UNITS["ooo"]
        rows.append({
            "n": n,
            "homo_ino": (n * AREA_UNITS["ino"]) / homo_ooo,
            "mirage": cmp_area(n, 1, mirage=True) / homo_ooo,
            "traditional": cmp_area(n, 1, mirage=False) / homo_ooo,
        })
    return {"rows": rows}


def print_table(result: dict) -> None:
    print("Figure 6: area relative to n-OoO Homo-CMP")
    print(format_table(
        ["n", "Homo-InO (n:0)", "Mirage (n:1)", "Traditional (n:1)"],
        [[r["n"], r["homo_ino"], r["mirage"], r["traditional"]]
         for r in result["rows"]],
    ))
