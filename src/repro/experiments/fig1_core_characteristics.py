"""Figure 1: InO relative to OoO — performance, power, energy, area.

Detailed-tier experiment: run each benchmark on the OoO and the InO,
feed the event counts through the McPAT-like energy model, and report
category means of InO/OoO for performance (IPC), power (pJ/cycle),
energy (pJ for the same instruction count) and area.

Paper shape: InO keeps ~60 % performance overall (less for HPD), at
~1/5 the power, ~1/3 the energy, and <1/2 the area.
"""

from __future__ import annotations

from repro.cores import InOrderCore, OutOfOrderCore
from repro.energy import CoreEnergyModel, core_area
from repro.experiments.common import format_table, mean
from repro.memory import MemoryHierarchy
from repro.runner import SweepRunner, call_unit, run_units
from repro.workloads import ALL_BENCHMARKS, get_profile, make_benchmark


def measure(name: str, *, instructions: int = 30_000,
            seed: int = 1) -> dict:
    bench = make_benchmark(name, seed=seed)
    em = CoreEnergyModel()
    r_ooo = OutOfOrderCore(MemoryHierarchy().core_view(0)).run(
        bench.stream(), instructions)
    r_ino = InOrderCore(MemoryHierarchy().core_view(1)).run(
        bench.stream(), instructions)
    e_ooo = em.breakdown("ooo", r_ooo.energy_events, r_ooo.cycles)
    e_ino = em.breakdown("ino", r_ino.energy_events, r_ino.cycles)
    return {
        "benchmark": name,
        "category": get_profile(name).category,
        "performance": r_ino.ipc / max(1e-9, r_ooo.ipc),
        "power": (e_ino.power_pw_per_cycle(r_ino.cycles)
                  / max(1e-9, e_ooo.power_pw_per_cycle(r_ooo.cycles))),
        "energy": e_ino.total_pj / max(1e-9, e_ooo.total_pj),
        "area": core_area("ino") / core_area("ooo"),
    }


def run(*, instructions: int = 30_000,
        benchmarks: tuple[str, ...] = ALL_BENCHMARKS,
        runner: SweepRunner | None = None) -> dict:
    # One pure call per benchmark -> one cached, parallelizable sweep.
    per_bench = run_units(
        [call_unit("repro.experiments.fig1_core_characteristics:measure",
                   name, instructions=instructions)
         for name in benchmarks],
        runner)
    groups = {}
    for label, pred in [
        ("overall", lambda r: True),
        ("HPD", lambda r: r["category"] == "HPD"),
        ("LPD", lambda r: r["category"] == "LPD"),
    ]:
        rows = [r for r in per_bench if pred(r)]
        groups[label] = {
            metric: mean(r[metric] for r in rows)
            for metric in ("performance", "power", "energy", "area")
        }
    return {"benchmarks": per_bench, "groups": groups}


def print_table(result: dict) -> None:
    print("Figure 1: InO relative to OoO (category means)")
    print(format_table(
        ["group", "performance", "power", "energy", "area"],
        [[g, v["performance"], v["power"], v["energy"], v["area"]]
         for g, v in result["groups"].items()],
    ))
