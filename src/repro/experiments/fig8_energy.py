"""Figure 8: energy consumption vs. cluster size per arbitrator.

Same sweep as Figure 7, reporting CMP energy relative to the n-OoO
homogeneous CMP.

Paper shape: all small-core configurations sit far below Homo-OoO;
SC-MPKI conserves the most (it power-gates the OoO), reaching ~46 %
at 8:1 (a 54 % saving), while the always-on maxSTP/SC-MPKI+maxSTP
arbitrators burn more.  Relative energy falls as n grows because one
OoO is amortized over more consumers.
"""

from __future__ import annotations

from repro.experiments.common import format_table, mean
from repro.runner import SweepRunner, cmp_unit, homo_unit
from repro.workloads import standard_mixes

N_VALUES = (4, 8, 12, 16)
ARBITRATOR_NAMES = ("SC-MPKI", "SC-MPKI+maxSTP", "maxSTP")


def run(*, n_values=N_VALUES, n_mixes: int = 8, seed: int = 2017,
        runner: SweepRunner | None = None) -> dict:
    runner = runner or SweepRunner()
    per_n = {n: standard_mixes(n, seed=seed)[:n_mixes] for n in n_values}
    units = []
    for n in n_values:
        for mix in per_n[n]:
            units.append(homo_unit(mix, "ooo"))
            units.append(homo_unit(mix, "ino"))
            units.extend(cmp_unit(mix, name) for name in ARBITRATOR_NAMES)
    results = iter(runner.map(units))
    rows = []
    for n in n_values:
        rel = {name: [] for name in ARBITRATOR_NAMES}
        rel["Homo-InO"] = []
        for _mix in per_n[n]:
            homo_ooo, homo_ino = next(results), next(results)
            base = max(1e-9, homo_ooo.energy_pj)
            rel["Homo-InO"].append(homo_ino.energy_pj / base)
            for name in ARBITRATOR_NAMES:
                rel[name].append(next(results).energy_pj / base)
        rows.append({"n": n, "energy": {k: mean(v) for k, v in rel.items()}})
    return {"rows": rows}


def print_table(result: dict) -> None:
    print("Figure 8: energy relative to Homo-OoO")
    print(format_table(
        ["n", "Homo-InO", "SC-MPKI", "SC-MPKI+maxSTP", "maxSTP"],
        [[r["n"], r["energy"]["Homo-InO"], r["energy"]["SC-MPKI"],
          r["energy"]["SC-MPKI+maxSTP"], r["energy"]["maxSTP"]]
         for r in result["rows"]],
    ))
