"""Figure 3b: switching-interval trade-off.

Two opposing curves over the memoize-phase interval length:

* **Migration overhead**: switching an application between two cores
  every ``n`` cycles costs (drain + L1 warm-up + SC transfer) per
  switch — >10 % of performance at 1 k-cycle intervals, negligible
  beyond ~1 M cycles (paper scale; everything here is in paper-scale
  cycles for readability).
* **Memoizability**: the fraction of instructions usefully memoized
  with an infinite SC that the producer may only refresh once per
  interval; longer intervals leave more stale schedules, so the
  fraction falls.  Modelled per benchmark from its volatility and
  phase structure, averaged over the suite.

The paper picks 1 M cycles as the sweet spot where migration overhead
has flattened but memoizability is still high.
"""

from __future__ import annotations

from repro.characterize import analytic_model
from repro.cmp import PAPER_SCALE
from repro.experiments.common import format_table, mean
from repro.runner import SweepRunner, call_unit
from repro.workloads import ALL_BENCHMARKS

#: Interval lengths swept, in paper-scale cycles.
INTERVALS = (1_000, 10_000, 100_000, 1_000_000, 10_000_000)

#: Per-switch migration cost at paper scale (drain + L1 + SC).
SWITCH_COST_CYCLES = (
    PAPER_SCALE.drain_cycles
    + PAPER_SCALE.l1_warmup_cycles
    + PAPER_SCALE.sc_transfer_cycles
)

#: Interval the per-interval volatility constants are defined against.
VOLATILITY_BASE_INTERVAL = PAPER_SCALE.interval_cycles


def migration_overhead(interval_cycles: int) -> float:
    """Fractional performance lost to one switch per interval."""
    return SWITCH_COST_CYCLES / (SWITCH_COST_CYCLES + interval_cycles)


def memoizable_fraction(interval_cycles: int,
                        benchmarks=ALL_BENCHMARKS) -> float:
    """Suite-mean usefully-memoized fraction at a refresh interval.

    Between refreshes, coverage of each phase's schedules decays with
    the benchmark's volatility; the average coverage over the interval
    is what the consumer actually enjoys.
    """
    fractions = []
    for name in benchmarks:
        model = analytic_model(name)
        per_phase = []
        for phase in model.phases:
            steps = max(1, interval_cycles // VOLATILITY_BASE_INTERVAL)
            keep = 1.0 - phase.volatility
            if keep >= 1.0:
                avg_cov = 1.0
            else:
                # Mean of keep^0..keep^(steps-1).
                avg_cov = (1 - keep ** steps) / (steps * (1 - keep))
            per_phase.append(phase.memoizable * avg_cov * phase.weight)
        fractions.append(sum(per_phase))
    return mean(fractions)


def run(*, intervals=INTERVALS,
        runner: SweepRunner | None = None) -> dict:
    runner = runner or SweepRunner()
    fractions = runner.map([
        call_unit(
            "repro.experiments.fig3_interval_tradeoff:memoizable_fraction",
            n)
        for n in intervals
    ])
    rows = []
    for n, fraction in zip(intervals, fractions):
        rows.append({
            "interval_cycles": n,
            "perf_vs_no_switching": 1.0 - migration_overhead(n),
            "memoizable_fraction": fraction,
        })
    return {"rows": rows, "chosen_interval": PAPER_SCALE.interval_cycles}


def print_table(result: dict) -> None:
    print("Figure 3b: interval-length trade-off (paper-scale cycles)")
    print(format_table(
        ["interval", "perf vs no-switch", "memoizable fraction"],
        [[r["interval_cycles"], r["perf_vs_no_switching"],
          r["memoizable_fraction"]] for r in result["rows"]],
    ))
    print(f"\nchosen memoize-phase interval: "
          f"{result['chosen_interval']:,} cycles")
