"""Headline claims: the abstract's 8:1 numbers in one run.

* ~84 % of the performance of a homogeneous 8-OoO CMP,
* a ~28 % increase relative to a traditional Het-CMP runtime (maxSTP),
* ~55 % energy saving and ~25 % area saving,
* scaling limit around 12 consumers per producer (OoO saturates).
"""

from __future__ import annotations

from repro.energy import cmp_area
from repro.energy.model import AREA_UNITS
from repro.experiments.common import format_table, mean
from repro.runner import SweepRunner, cmp_unit, homo_unit
from repro.workloads import standard_mixes


def run(*, n_mixes: int = 10, seed: int = 2017,
        runner: SweepRunner | None = None) -> dict:
    runner = runner or SweepRunner()
    mixes = standard_mixes(8, seed=seed)[:n_mixes]
    scaling_mixes = {
        n: standard_mixes(n, seed=seed)[:max(2, n_mixes // 3)]
        for n in (8, 12, 16)
    }
    units = []
    for mix in mixes:
        units.append(homo_unit(mix, "ooo"))
        units.append(cmp_unit(mix, "SC-MPKI"))
        units.append(cmp_unit(mix, "maxSTP"))
    for n, n_mix in scaling_mixes.items():
        units.extend(cmp_unit(m, "SC-MPKI") for m in n_mix)
    results = iter(runner.map(units))
    stp_mirage, stp_trad, energy_rel, util = [], [], [], []
    for _mix in mixes:
        homo_ooo, res, trad = next(results), next(results), next(results)
        stp_mirage.append(res.stp)
        stp_trad.append(trad.stp)
        energy_rel.append(res.energy_pj / max(1e-9, homo_ooo.energy_pj))
        util.append(res.ooo_active_fraction)
    # Scaling limit: OoO utilization at 12:1 and 16:1.
    util_by_n = {
        n: mean(next(results).ooo_active_fraction for _ in n_mix)
        for n, n_mix in scaling_mixes.items()
    }
    return {
        "performance_vs_homo_ooo": mean(stp_mirage),
        "gain_vs_traditional": mean(stp_mirage) / max(1e-9,
                                                      mean(stp_trad)) - 1,
        "energy_vs_homo_ooo": mean(energy_rel),
        "area_vs_homo_ooo": cmp_area(8, 1, mirage=True) / (
            8 * AREA_UNITS["ooo"]),
        "ooo_gated_fraction": 1 - mean(util),
        "ooo_utilization_by_n": util_by_n,
    }


def print_table(result: dict) -> None:
    r = result
    print("Headline (8 InO : 1 OoO, SC-MPKI arbitrator)")
    print(format_table(["claim", "paper", "measured"], [
        ["performance vs 8-OoO Homo-CMP", "84%",
         f"{r['performance_vs_homo_ooo']:.0%}"],
        ["gain vs traditional Het-CMP", "+28%",
         f"{r['gain_vs_traditional']:+.0%}"],
        ["energy vs 8-OoO Homo-CMP", "45%",
         f"{r['energy_vs_homo_ooo']:.0%}"],
        ["area vs 8-OoO Homo-CMP", "74%",
         f"{r['area_vs_homo_ooo']:.0%}"],
        ["OoO power-gated time", "40%",
         f"{r['ooo_gated_fraction']:.0%}"],
    ]))
    print("\nOoO utilization by cluster size (saturation ~12:1):")
    for n, u in r["ooo_utilization_by_n"].items():
        print(f"  {n}:1 -> {u:.0%}")
