"""Headline claims: the abstract's 8:1 numbers in one run.

* ~84 % of the performance of a homogeneous 8-OoO CMP,
* a ~28 % increase relative to a traditional Het-CMP runtime (maxSTP),
* ~55 % energy saving and ~25 % area saving,
* scaling limit around 12 consumers per producer (OoO saturates).

The sweep repeats over ``n_seeds`` independent mix-selection seeds
and reports each headline number as a mean with a 95 % confidence
interval across seeds — the abstract's point estimates become
defensible intervals instead of one lucky draw.  All seeds' units go
through one runner call, so the whole study is a single cached,
parallelizable sweep.
"""

from __future__ import annotations

from repro.energy import cmp_area
from repro.energy.model import AREA_UNITS
from repro.experiments.common import format_table, mean, mean_ci95
from repro.runner import SweepRunner, cmp_unit, homo_unit
from repro.workloads import standard_mixes

#: The headline metrics reported with a CI across seeds (area is a
#: seed-independent constant and prints bare).
CI_METRICS = ("performance_vs_homo_ooo", "gain_vs_traditional",
              "energy_vs_homo_ooo", "ooo_gated_fraction")


def _seed_units(seed: int, n_mixes: int) -> tuple[list, list, dict]:
    """(units, mixes, scaling_mixes) for one mix-selection seed."""
    mixes = standard_mixes(8, seed=seed)[:n_mixes]
    scaling_mixes = {
        n: standard_mixes(n, seed=seed)[:max(2, n_mixes // 3)]
        for n in (8, 12, 16)
    }
    units = []
    for mix in mixes:
        units.append(homo_unit(mix, "ooo"))
        units.append(cmp_unit(mix, "SC-MPKI"))
        units.append(cmp_unit(mix, "maxSTP"))
    for n_mix in scaling_mixes.values():
        units.extend(cmp_unit(m, "SC-MPKI") for m in n_mix)
    return units, mixes, scaling_mixes


def _seed_numbers(results, mixes, scaling_mixes) -> dict:
    """One seed's headline numbers from its slice of sweep results."""
    results = iter(results)
    stp_mirage, stp_trad, energy_rel, util = [], [], [], []
    for _mix in mixes:
        homo_ooo, res, trad = next(results), next(results), next(results)
        stp_mirage.append(res.stp)
        stp_trad.append(trad.stp)
        energy_rel.append(res.energy_pj / max(1e-9, homo_ooo.energy_pj))
        util.append(res.ooo_active_fraction)
    # Scaling limit: OoO utilization at 12:1 and 16:1.
    util_by_n = {
        n: mean(next(results).ooo_active_fraction for _ in n_mix)
        for n, n_mix in scaling_mixes.items()
    }
    return {
        "performance_vs_homo_ooo": mean(stp_mirage),
        "gain_vs_traditional": mean(stp_mirage) / max(1e-9,
                                                      mean(stp_trad)) - 1,
        "energy_vs_homo_ooo": mean(energy_rel),
        "ooo_gated_fraction": 1 - mean(util),
        "ooo_utilization_by_n": util_by_n,
    }


def run(*, n_mixes: int = 10, seed: int = 2017, n_seeds: int = 3,
        runner: SweepRunner | None = None) -> dict:
    runner = runner or SweepRunner()
    seeds = [seed + 101 * k for k in range(max(1, n_seeds))]
    plans = [_seed_units(s, n_mixes) for s in seeds]
    # One flat unit list across every seed: maximum fan-out width for
    # the pool, one cache pass, one trace.
    all_units = [u for units, _, _ in plans for u in units]
    all_results = runner.map(all_units)
    per_seed = []
    cursor = 0
    for units, mixes, scaling_mixes in plans:
        per_seed.append(_seed_numbers(
            all_results[cursor:cursor + len(units)], mixes,
            scaling_mixes))
        cursor += len(units)
    result: dict = {"n_seeds": len(seeds), "seeds": seeds}
    ci: dict = {}
    for metric in CI_METRICS:
        center, half = mean_ci95([s[metric] for s in per_seed])
        result[metric] = center
        ci[metric] = half
    result["ci95"] = ci
    result["area_vs_homo_ooo"] = cmp_area(8, 1, mirage=True) / (
        8 * AREA_UNITS["ooo"])
    result["ooo_utilization_by_n"] = {
        n: mean(s["ooo_utilization_by_n"][n] for s in per_seed)
        for n in per_seed[0]["ooo_utilization_by_n"]
    }
    result["per_seed"] = per_seed
    return result


def _pct(value: float, half: float, sign: bool = False) -> str:
    """``86% ±2%`` (single-seed runs print the bare point estimate)."""
    text = f"{value:+.0%}" if sign else f"{value:.0%}"
    if half > 0:
        text += f" ±{half:.0%}"
    return text


def print_table(result: dict) -> None:
    r = result
    ci = r.get("ci95", {})
    print("Headline (8 InO : 1 OoO, SC-MPKI arbitrator)")
    print(format_table(["claim", "paper", "measured"], [
        ["performance vs 8-OoO Homo-CMP", "84%",
         _pct(r["performance_vs_homo_ooo"],
              ci.get("performance_vs_homo_ooo", 0.0))],
        ["gain vs traditional Het-CMP", "+28%",
         _pct(r["gain_vs_traditional"],
              ci.get("gain_vs_traditional", 0.0), sign=True)],
        ["energy vs 8-OoO Homo-CMP", "45%",
         _pct(r["energy_vs_homo_ooo"],
              ci.get("energy_vs_homo_ooo", 0.0))],
        ["area vs 8-OoO Homo-CMP", "74%",
         f"{r['area_vs_homo_ooo']:.0%}"],
        ["OoO power-gated time", "40%",
         _pct(r["ooo_gated_fraction"],
              ci.get("ooo_gated_fraction", 0.0))],
    ]))
    if r.get("n_seeds", 1) > 1:
        print(f"\n(±: 95% CI over {r['n_seeds']} mix-selection seeds)")
    print("\nOoO utilization by cluster size (saturation ~12:1):")
    for n, u in r["ooo_utilization_by_n"].items():
        print(f"  {n}:1 -> {u:.0%}")
