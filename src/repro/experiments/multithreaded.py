"""Extension experiment: schedule broadcast for homogeneous threads.

Paper section 6: "If threads perform homogeneous work, the OoO core
can be used to memoize a single thread's repeatable phases and
distribute it among all InOs in its cluster, thus speeding up all
threads with one memoization attempt."  This experiment runs n
homogeneous threads with and without schedule broadcast and reports
throughput and OoO time.
"""

from __future__ import annotations

from repro.characterize import analytic_model
from repro.cmp import ClusterConfig
from repro.cmp.multithreaded import MultithreadedMirage
from repro.experiments.common import format_table

#: Regular, memoizable programs: the favourable case the paper cites.
PROGRAMS = ("hmmer", "libquantum", "namd")


def run(*, n_threads: int = 8) -> dict:
    config = ClusterConfig(n_consumers=n_threads, n_producers=1,
                           mirage=True)
    rows = []
    for name in PROGRAMS:
        model = analytic_model(name)
        with_bc = MultithreadedMirage(
            config, model, broadcast=True).run()
        without = MultithreadedMirage(
            config, model, broadcast=False).run()
        rows.append({
            "program": name,
            "stp_broadcast": with_bc.stp,
            "stp_private": without.stp,
            "ooo_broadcast": with_bc.ooo_active_fraction,
            "ooo_private": without.ooo_active_fraction,
        })
    return {"rows": rows, "n_threads": n_threads}


def print_table(result: dict) -> None:
    print(f"Multithreaded Mirage ({result['n_threads']} homogeneous "
          f"threads, SC-MPKI)")
    print(format_table(
        ["program", "STP bcast", "STP private", "OoO bcast",
         "OoO private"],
        [[r["program"], r["stp_broadcast"], r["stp_private"],
          r["ooo_broadcast"], r["ooo_private"]]
         for r in result["rows"]],
    ))
    print("\nbroadcasting one thread's schedules to the whole cluster "
          "matches (or beats) per-thread memoization while engaging "
          "the OoO less.")
