"""Figure 7: system throughput vs. cluster size per arbitrator.

Interval-tier sweep: for n in {4, 8, 12, 16}, workload mixes of n
applications run under Homo-InO, SC-MPKI (Mirage), SC-MPKI+maxSTP
(Mirage) and maxSTP (traditional Het-CMP); STP is reported relative to
the n-OoO homogeneous CMP (whose STP is 1 by definition).

Paper shape at 8:1: maxSTP gains ~8 % over Homo-InO, while SC-MPKI
gains ~39 % and essentially matches SC-MPKI+maxSTP; overall SC-MPKI
reaches ~84 % of Homo-OoO.  Gains taper as n grows and the single OoO
saturates.
"""

from __future__ import annotations

from repro.experiments.common import format_table, mean
from repro.runner import SweepRunner, cmp_unit, homo_unit
from repro.workloads import standard_mixes

N_VALUES = (4, 8, 12, 16)
ARBITRATOR_NAMES = ("SC-MPKI", "SC-MPKI+maxSTP", "maxSTP")


def run(*, n_values=N_VALUES, n_mixes: int = 8, seed: int = 2017,
        runner: SweepRunner | None = None) -> dict:
    """Sweep cluster sizes; returns STP relative to Homo-OoO.

    ``n_mixes`` caps how many of the 32 standard mixes are simulated
    per configuration (the paper uses all 32; 8 keeps the default
    bench quick while preserving the shape).
    """
    runner = runner or SweepRunner()
    per_n = {n: standard_mixes(n, seed=seed)[:n_mixes] for n in n_values}
    units = []
    for n in n_values:
        for mix in per_n[n]:
            units.append(homo_unit(mix, "ino"))
            units.extend(cmp_unit(mix, name) for name in ARBITRATOR_NAMES)
    results = iter(runner.map(units))
    rows = []
    for n in n_values:
        stp = {name: [] for name in ARBITRATOR_NAMES}
        stp["Homo-InO"] = []
        ooo_active = {name: [] for name in ARBITRATOR_NAMES}
        for _mix in per_n[n]:
            stp["Homo-InO"].append(next(results).stp)
            for name in ARBITRATOR_NAMES:
                res = next(results)
                stp[name].append(res.stp)
                ooo_active[name].append(res.ooo_active_fraction)
        rows.append({
            "n": n,
            "stp": {k: mean(v) for k, v in stp.items()},
            "ooo_active": {k: mean(v) for k, v in ooo_active.items()},
        })
    return {"rows": rows}


def print_table(result: dict) -> None:
    print("Figure 7: STP relative to Homo-OoO")
    print(format_table(
        ["n", "Homo-InO", "SC-MPKI", "SC-MPKI+maxSTP", "maxSTP"],
        [[r["n"], r["stp"]["Homo-InO"], r["stp"]["SC-MPKI"],
          r["stp"]["SC-MPKI+maxSTP"], r["stp"]["maxSTP"]]
         for r in result["rows"]],
    ))
