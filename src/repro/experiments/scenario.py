"""Scenario study: dynamic traffic across a cluster-of-clusters.

Beyond the paper's fixed mixes: applications arrive and depart on a
seeded schedule (steady / bursty / diurnal / mixed traffic shapes,
:func:`repro.workloads.make_scenario`), a global scheduler places each
arrival onto one of N Mirage clusters, and every cluster runs the
dynamic interval engine with mid-run admission and retirement.  The
driver compares the placement policies on scenario-level metrics the
fixed-mix figures cannot express: tail latency to the first OoO grant
(p50/p95/p99), SLA attainment (fraction of tenants reaching a target
progress rate), fairness over per-tenant progress, and throughput
retention under arrival spikes.

Every ``(policy, cluster)`` simulation is an independent
:func:`repro.cluster.dynamic.run_scenario_unit` call fanned through
the sweep runner, so serial, ``--jobs N`` and cached runs are
bit-identical; placement itself is a pure function of the schedule
and runs inline.
"""

from __future__ import annotations

from repro.cluster.dynamic import cluster_specs, summarize_scenario
from repro.cluster.scheduler import POLICIES, place_scenario
from repro.experiments.common import format_table
from repro.runner import SweepRunner, call_unit
from repro.workloads import make_scenario

#: Placement policies the table compares, in print order.
POLICY_NAMES = tuple(POLICIES)

#: The run_scenario_unit dotted path the call units execute.
UNIT_TARGET = "repro.cluster.dynamic:run_scenario_unit"


def run(*, shape: str = "bursty", n_apps: int = 24,
        duration: int = 400, n_clusters: int = 3, capacity: int = 8,
        policies=POLICY_NAMES, arbitrator: str = "SC-MPKI",
        seed: int = 2017, sla_target: float = 0.5,
        runner: SweepRunner | None = None) -> dict:
    """One scenario, every placement policy, one comparison table.

    The scenario is built once (same seed ⇒ same schedule for every
    policy) and placed once per policy; the resulting per-cluster
    simulations for *all* policies fan out through one ``runner.map``
    so a parallel run overlaps across policies too.
    """
    runner = runner or SweepRunner()
    scenario = make_scenario(shape, n_apps=n_apps, duration=duration,
                             seed=seed)
    placements = {
        policy: place_scenario(scenario, n_clusters=n_clusters,
                               capacity=capacity, policy=policy)
        for policy in policies
    }
    units = []
    spans = {}
    for policy in policies:
        specs = cluster_specs(placements[policy], capacity=capacity,
                              arbitrator=arbitrator)
        spans[policy] = (len(units), len(units) + len(specs))
        units.extend(call_unit(UNIT_TARGET, spec) for spec in specs)
    results = runner.map(units)
    rows = []
    for policy in policies:
        lo, hi = spans[policy]
        placement = placements[policy]
        metrics = summarize_scenario(
            results[lo:hi], len(placement.rejected),
            placement.queued_delays, sla_target=sla_target)
        rows.append({
            "policy": policy,
            "clusters": hi - lo,
            **metrics,
        })
    return {
        "scenario": {
            "name": scenario.name,
            "shape": scenario.shape,
            "n_apps": n_apps,
            "duration": duration,
            "seed": seed,
            "n_clusters": n_clusters,
            "capacity": capacity,
            "arbitrator": arbitrator,
            "sla_target": sla_target,
        },
        "rows": rows,
    }


def print_table(result: dict) -> None:
    info = result["scenario"]
    print(
        f"\nScenario study: {info['shape']} traffic, "
        f"{info['n_apps']} apps over {info['duration']} intervals, "
        f"{info['n_clusters']} clusters x {info['capacity']} slots "
        f"({info['arbitrator']}, SLA target {info['sla_target']:g}):")
    print(format_table(
        ["policy", "placed", "rej", "wait-p95", "lat-p50", "lat-p95",
         "lat-p99", "SLA", "fair", "progress", "spike", "migr"],
        [
            [
                r["policy"],
                r["apps"],
                r["rejected"],
                r["queue_delay"]["p95"],
                r["latency"]["p50"],
                r["latency"]["p95"],
                r["latency"]["p99"],
                r["sla"],
                r["fairness"],
                r["stp"],
                r["spike"]["ratio"],
                r["migrations"],
            ]
            for r in result["rows"]
        ],
    ))
    print(
        "\nwait-p95: admission queueing delay (intervals); lat-*: "
        "arrival to first OoO grant; SLA: fraction of tenants at >= "
        "target progress; progress: mean per-tenant progress vs "
        "alone-on-OoO; spike: throughput under population spikes vs "
        "overall.")
