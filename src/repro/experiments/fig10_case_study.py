"""Figure 10: case study — astar + hmmer + bzip2 on a 3:1 cluster.

Interval-tier timelines under maxSTP (traditional) and SC-MPKI
(Mirage).  Every point is one interval's speedup relative to OoO-alone
execution, marked by whether the app held the OoO.

Paper shape:
* astar rarely gets the OoO under either scheduler (low slowdown for
  maxSTP, unmemoizable for SC-MPKI).
* Under maxSTP, hmmer monopolizes the OoO (highest slowdown) and
  bzip2 starves.
* Under SC-MPKI, hmmer reaches >90 % of OoO performance while mostly
  running memoized on the InO, freeing the OoO for bzip2 or for power
  gating.
"""

from __future__ import annotations

from repro.experiments.common import format_table, make_system, mean
from repro.telemetry import MemorySink, Telemetry
from repro.workloads.mixes import WorkloadMix

MIX = WorkloadMix(name="fig10", category="Random",
                  benchmarks=("astar", "hmmer", "bzip2"))


def run(*, intervals: int = 500,
        telemetry: Telemetry | None = None) -> dict:
    out = {}
    tele = telemetry or Telemetry()
    for arb in ("maxSTP", "SC-MPKI"):
        trace = tele.attach(MemorySink(kinds={"interval"}))
        try:
            system = make_system(MIX, arb, telemetry=tele)
            result = system.run(max_intervals=intervals)
        finally:
            tele.detach(trace)
        per_app = {}
        for name in MIX:
            series = [s for s in trace.events if s.app == name]
            per_app[name] = {
                "mean_speedup": mean(s.speedup for s in series),
                "ooo_fraction": mean(float(s.on_ooo) for s in series),
                "series": [
                    {"interval": s.interval, "speedup": s.speedup,
                     "on_ooo": s.on_ooo}
                    for s in series
                ],
            }
        out[arb] = {
            "apps": per_app,
            # STP over the recorded window (runs are truncated at
            # `intervals`, so completion-based speedups would be
            # meaningless here).
            "stp": mean(v["mean_speedup"] for v in per_app.values()),
            "ooo_active": result.ooo_active_fraction,
        }
    return out


def print_table(result: dict) -> None:
    for arb, data in result.items():
        print(f"\n{arb}: STP {data['stp']:.3f}, "
              f"OoO active {data['ooo_active']:.0%}")
        print(format_table(
            ["app", "mean speedup", "OoO residence"],
            [[name, v["mean_speedup"], v["ooo_fraction"]]
             for name, v in data["apps"].items()],
        ))
