"""Figure 2: oracle memoizability and its effect on InO performance.

Detailed-tier experiment under the paper's ideal conditions: infinite
Schedule Cache, producer-trained oracle schedules.  For each benchmark
the OoO runs first (populating the infinite SC through the recorder),
then the OinO consumes it.  Reported per category: the fraction of
instructions executed from memoized schedules, and the OinO's
performance relative to the OoO.

Paper shape: HPD memoizes more than LPD and gains a larger boost;
once memoized, the best benchmarks reach ~90 % of OoO performance.
"""

from __future__ import annotations

from repro.cores import InOrderCore, OinOCore, OutOfOrderCore
from repro.experiments.common import format_table, mean
from repro.memory import MemoryHierarchy
from repro.runner import SweepRunner, call_unit, run_units
from repro.schedule import ScheduleCache, ScheduleRecorder
from repro.workloads import ALL_BENCHMARKS, get_profile, make_benchmark


def measure(name: str, *, instructions: int = 40_000, seed: int = 1) -> dict:
    bench = make_benchmark(name, seed=seed)
    sc = ScheduleCache(None)  # infinite: the oracle condition
    recorder = ScheduleRecorder(sc)
    r_ooo = OutOfOrderCore(
        MemoryHierarchy().core_view(0), recorder=recorder
    ).run(bench.stream(), instructions)
    r_ino = InOrderCore(MemoryHierarchy().core_view(1)).run(
        bench.stream(), instructions)
    r_oino = OinOCore(MemoryHierarchy().core_view(2), sc).run(
        bench.stream(), instructions)
    return {
        "benchmark": name,
        "category": get_profile(name).category,
        "memoized_fraction": r_oino.stats.memoized_fraction,
        "perf_plain_ino": r_ino.ipc / max(1e-9, r_ooo.ipc),
        "perf_with_memoization": r_oino.ipc / max(1e-9, r_ooo.ipc),
        "trace_aborts": r_oino.stats.trace_aborts,
        "traces": r_oino.stats.traces,
    }


def run(*, instructions: int = 40_000,
        benchmarks: tuple[str, ...] = ALL_BENCHMARKS,
        runner: SweepRunner | None = None) -> dict:
    # One pure call per benchmark -> one cached, parallelizable sweep.
    per_bench = run_units(
        [call_unit("repro.experiments.fig2_memoization:measure",
                   name, instructions=instructions)
         for name in benchmarks],
        runner)
    groups = {}
    for label, pred in [
        ("overall", lambda r: True),
        ("HPD", lambda r: r["category"] == "HPD"),
        ("LPD", lambda r: r["category"] == "LPD"),
    ]:
        rows = [r for r in per_bench if pred(r)]
        groups[label] = {
            "memoized_fraction": mean(
                r["memoized_fraction"] for r in rows),
            "perf_with_memoization": mean(
                r["perf_with_memoization"] for r in rows),
            "perf_plain_ino": mean(r["perf_plain_ino"] for r in rows),
        }
    return {"benchmarks": per_bench, "groups": groups}


def print_table(result: dict) -> None:
    print("Figure 2: oracle memoization (infinite SC)")
    print(format_table(
        ["group", "memoized", "OinO perf vs OoO", "plain InO vs OoO"],
        [[g, v["memoized_fraction"], v["perf_with_memoization"],
          v["perf_plain_ino"]]
         for g, v in result["groups"].items()],
    ))
