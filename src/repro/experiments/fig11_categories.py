"""Figure 11: 8:1 benefits by benchmark category (HPD / LPD / Random).

Interval-tier: 8-app mixes drawn exclusively from one category, or at
random, run under every arbitrator; reports (a) STP relative to
Homo-OoO, (b) OoO utilization, (c) energy relative to Homo-OoO.

Paper shape: HPD mixes memoize well, so SC-MPKI engages the OoO hard
(~80 % active) and gains the most over Homo-InO (~54 %); LPD mixes
offer little scope (OoO ~27 % active, ~12 % speedup) but save the most
energy; random mixes land in between and relieve HPD contention, so
Mirage works best on heterogeneous mixes.
"""

from __future__ import annotations

from repro.experiments.common import format_table, mean
from repro.runner import SweepRunner, cmp_unit, homo_unit
from repro.workloads import standard_mixes
from repro.workloads.mixes import MIX_HPD, MIX_LPD, MIX_RANDOM

ARBITRATOR_NAMES = ("SC-MPKI", "SC-MPKI+maxSTP", "maxSTP")
CATEGORIES = (MIX_HPD, MIX_LPD, MIX_RANDOM)


def run(*, n_apps: int = 8, mixes_per_category: int = 4,
        seed: int = 2017, runner: SweepRunner | None = None) -> dict:
    runner = runner or SweepRunner()
    all_mixes = standard_mixes(
        n_apps, seed=seed,
        n_single_category=2 * mixes_per_category,
        n_random=mixes_per_category,
    )
    per_category = {
        category: [m for m in all_mixes
                   if m.category == category][:mixes_per_category]
        for category in CATEGORIES
    }
    units = []
    for category in CATEGORIES:
        for mix in per_category[category]:
            units.append(homo_unit(mix, "ooo"))
            units.append(homo_unit(mix, "ino"))
            units.extend(cmp_unit(mix, name) for name in ARBITRATOR_NAMES)
    results = iter(runner.map(units))
    out = {}
    for category in CATEGORIES:
        stats = {
            name: {"stp": [], "util": [], "energy": []}
            for name in ARBITRATOR_NAMES
        }
        homo_ino_stp, homo_ino_energy = [], []
        for _mix in per_category[category]:
            homo_ooo, homo_ino = next(results), next(results)
            base = max(1e-9, homo_ooo.energy_pj)
            homo_ino_stp.append(homo_ino.stp)
            homo_ino_energy.append(homo_ino.energy_pj / base)
            for name in ARBITRATOR_NAMES:
                res = next(results)
                stats[name]["stp"].append(res.stp)
                stats[name]["util"].append(res.ooo_active_fraction)
                stats[name]["energy"].append(res.energy_pj / base)
        out[category] = {
            "Homo-InO": {
                "stp": mean(homo_ino_stp),
                "util": 0.0,
                "energy": mean(homo_ino_energy),
            },
            **{
                name: {k: mean(v) for k, v in vals.items()}
                for name, vals in stats.items()
            },
        }
    return out


def print_table(result: dict) -> None:
    for metric, title in [("stp", "speedup vs Homo-OoO"),
                          ("util", "OoO utilization"),
                          ("energy", "energy vs Homo-OoO")]:
        print(f"\nFigure 11 ({title}):")
        arbs = ["Homo-InO", *ARBITRATOR_NAMES]
        print(format_table(
            ["category", *arbs],
            [[cat, *(result[cat][a][metric] for a in arbs)]
             for cat in CATEGORIES],
        ))
