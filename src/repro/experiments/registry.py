"""The Experiment registry: one uniform API over all 21 drivers.

Each driver module keeps its pure ``run(**kwargs) -> dict`` and a
``print_table(result)`` renderer; an :class:`Experiment` wraps the pair
with a name, a human title, the paper figure it reproduces, and the
one place the ``--quick`` knob is mapped to driver-specific sizes
(:data:`QUICK_OVERRIDES`).  All drivers accept the same
:class:`ExperimentParams`, which also carries the sweep-runner knobs
(``jobs``, ``use_cache``, ``cache_dir``); parameters a driver does not
understand are simply not forwarded.

Back-compat: ``EXPERIMENTS[name].run(n_mixes=4)`` and
``EXPERIMENTS[name].main(quick=True)`` keep working exactly as they
did when the registry held bare modules.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from pathlib import Path
from types import ModuleType
from typing import Any, Mapping

from repro.config import CacheConfig
from repro.runner import SweepRunner
from repro.telemetry import JSONLSink, Telemetry

#: The single source of truth for what ``--quick`` means per driver:
#: the keyword overrides applied to ``run()`` when ``params.quick``.
#: Drivers no longer hard-code their own ``3 if quick else 8``.
QUICK_OVERRIDES: dict[str, dict[str, Any]] = {
    "table1": {"instructions": 10_000},
    "fig1": {"instructions": 10_000},
    "fig2": {"instructions": 12_000},
    "fig3": {},
    "fig5": {"intervals": 200},
    "fig6": {},
    "fig7": {"n_mixes": 3},
    "fig8": {"n_mixes": 3},
    "fig9": {"instructions": 10_000, "n_mixes": 2},
    "fig10": {"intervals": 200},
    "fig11": {"mixes_per_category": 2},
    "fig12": {},
    "fig13": {"n_mixes": 2},
    "fig14": {"n_mixes": 2},
    "fig15": {"n_mixes": 4},
    "headline": {"n_mixes": 4, "n_seeds": 2},
    "software-arbiter": {"n_mixes": 2},
    "multithreaded": {"n_threads": 4},
    "tier-validation": {"n_slices": 10},
    "backend-matrix": {"intervals": 16, "slice_instructions": 4_000,
                       "max_intervals": 200, "energy_instructions": 4_000},
    "scenario": {"n_apps": 10, "duration": 120, "n_clusters": 2,
                 "capacity": 6},
}


@dataclass
class ExperimentParams:
    """Uniform knobs accepted by every experiment.

    Attributes:
        quick: smaller workloads for a fast smoke run; the per-driver
            mapping lives in :data:`QUICK_OVERRIDES`.
        n_mixes: cap on simulated mixes per configuration, where the
            driver sweeps mixes (ignored elsewhere).
        seed: mix-selection seed, where the driver takes one.
        jobs: worker processes for sweep drivers; 1 = serial.
        use_cache: consult/populate the on-disk result cache
            (superseded by *cache* when that is set).
        cache_dir: cache location (default ``~/.cache/mirage``;
            superseded by *cache* when that is set).
        cache: a :class:`~repro.config.CacheConfig` describing every
            cache layer in one place — the CLI builds one; when set it
            wins over the legacy ``use_cache``/``cache_dir`` pair.
        trace: JSONL file the run's telemetry trace is appended to;
            runner-based drivers trace through the sweep runner,
            telemetry-aware drivers get a :class:`Telemetry` hub with
            a :class:`JSONLSink` attached.
    """

    quick: bool = False
    n_mixes: int | None = None
    seed: int | None = None
    jobs: int = 1
    use_cache: bool = False
    cache_dir: str | Path | None = None
    cache: "CacheConfig | None" = None
    trace: str | Path | None = None

    def cache_config(self) -> "CacheConfig":
        """The effective cache configuration (legacy fields folded
        in when no explicit :class:`CacheConfig` was provided)."""
        if self.cache is not None:
            return self.cache
        return CacheConfig(cache_dir=self.cache_dir,
                           use_result_cache=self.use_cache)

    def make_runner(self, experiment: str) -> SweepRunner:
        """A SweepRunner wired to these params' jobs/cache/trace."""
        return SweepRunner(jobs=self.jobs,
                           cache=self.cache_config().result_cache(),
                           experiment=experiment, trace=self.trace)


class Experiment:
    """One paper table/figure: metadata plus run/print entry points."""

    def __init__(self, name: str, title: str, figure: str,
                 module: ModuleType,
                 quick_overrides: Mapping[str, Any] | None = None):
        self.name = name
        self.title = title
        self.figure = figure
        self.module = module
        self.quick_overrides = dict(
            QUICK_OVERRIDES.get(name, {}) if quick_overrides is None
            else quick_overrides)
        #: The runner built for the most recent :meth:`run`, for
        #: callers that want its cache/timing stats (the CLI does).
        self.last_runner: SweepRunner | None = None

    def __repr__(self) -> str:
        return f"Experiment({self.name!r}, {self.figure!r})"

    @property
    def accepts(self) -> frozenset[str]:
        """Keyword names the driver's ``run()`` understands."""
        return frozenset(
            inspect.signature(self.module.run).parameters)

    # ------------------------------------------------------------------
    def run(self, params: ExperimentParams | None = None, /,
            **overrides) -> dict:
        """Run the driver under *params*; *overrides* go straight to
        the module's ``run()`` (the historical calling convention)."""
        params = ExperimentParams() if params is None else params
        quick = params.quick
        if "quick" not in self.accepts:
            quick = bool(overrides.pop("quick", quick))
        kwargs: dict[str, Any] = {}
        if quick:
            kwargs.update(self.quick_overrides)
        if params.n_mixes is not None and "n_mixes" in self.accepts:
            kwargs["n_mixes"] = params.n_mixes
        if params.seed is not None and "seed" in self.accepts:
            kwargs["seed"] = params.seed
        if "runner" in self.accepts and "runner" not in overrides:
            self.last_runner = params.make_runner(self.name)
            kwargs["runner"] = self.last_runner
        else:
            self.last_runner = None
        trace_telemetry: Telemetry | None = None
        if (params.trace is not None and "telemetry" in self.accepts
                and "telemetry" not in overrides):
            # Non-runner drivers stream their events straight to the
            # trace file; runner-based drivers already trace through
            # the sweep runner above.
            trace_telemetry = Telemetry(
                sinks=[JSONLSink(params.trace, mode="a")])
            kwargs["telemetry"] = trace_telemetry
        kwargs.update(overrides)
        try:
            return self.module.run(**kwargs)
        finally:
            if trace_telemetry is not None:
                trace_telemetry.close()

    def print_table(self, result: dict) -> None:
        """Render *result* the way the figure is shown in the paper."""
        self.module.print_table(result)

    def main(self, quick: bool = False,
             params: ExperimentParams | None = None) -> None:
        """Run and print in one call (the pre-registry driver API)."""
        if params is None:
            params = ExperimentParams(quick=quick)
        self.print_table(self.run(params))
