"""Figure 13: fair schedulers — performance, utilization, energy.

Interval-tier sweep over n in {4, 8, 12, 16} for the round-robin Fair
arbitrator (traditional Het-CMP) and SC-MPKI-fair (Mirage), relative
to Homo-OoO; Homo-InO provides the floor.

Paper shape: plain Fair keeps the OoO 100 % busy and migrates every
interval, paying energy without much performance; SC-MPKI-fair skips
applications already served by memoization, matching or beating
Fair's performance at far lower OoO utilization and energy.
"""

from __future__ import annotations

from repro.experiments.common import format_table, mean
from repro.runner import SweepRunner, cmp_unit, homo_unit
from repro.workloads import standard_mixes

N_VALUES = (4, 8, 12, 16)
ARBITRATOR_NAMES = ("Fair", "SC-MPKI-fair")


def run(*, n_values=N_VALUES, n_mixes: int = 6, seed: int = 2017,
        runner: SweepRunner | None = None) -> dict:
    runner = runner or SweepRunner()
    per_n = {n: standard_mixes(n, seed=seed)[:n_mixes] for n in n_values}
    units = []
    for n in n_values:
        for mix in per_n[n]:
            units.append(homo_unit(mix, "ooo"))
            units.append(homo_unit(mix, "ino"))
            units.extend(cmp_unit(mix, name) for name in ARBITRATOR_NAMES)
    results = iter(runner.map(units))
    rows = []
    for n in n_values:
        acc = {
            name: {"stp": [], "util": [], "energy": []}
            for name in ARBITRATOR_NAMES
        }
        homo_ino_stp = []
        for _mix in per_n[n]:
            homo_ooo, homo_ino = next(results), next(results)
            base = max(1e-9, homo_ooo.energy_pj)
            homo_ino_stp.append(homo_ino.stp)
            for name in ARBITRATOR_NAMES:
                res = next(results)
                acc[name]["stp"].append(res.stp)
                acc[name]["util"].append(res.ooo_active_fraction)
                acc[name]["energy"].append(res.energy_pj / base)
        rows.append({
            "n": n,
            "homo_ino_stp": mean(homo_ino_stp),
            **{
                name: {k: mean(v) for k, v in vals.items()}
                for name, vals in acc.items()
            },
        })
    return {"rows": rows}


def print_table(result: dict) -> None:
    for metric, title in [("stp", "performance"), ("util", "utilization"),
                          ("energy", "energy")]:
        print(f"\nFigure 13 ({title} vs Homo-OoO):")
        print(format_table(
            ["n", "Fair", "SC-MPKI-fair"],
            [[r["n"], r["Fair"][metric], r["SC-MPKI-fair"][metric]]
             for r in result["rows"]],
        ))
