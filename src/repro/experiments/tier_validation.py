"""Validation: same engine, two backends.

The big sweeps (Figures 7-15) run on the analytic backend; this
experiment checks its dynamics bottom-up by running the *same*
:class:`~repro.engine.loop.IntervalEngine` pipeline on the cycle-level
:class:`~repro.cmp.detailed.DetailedBackend` (via
:class:`~repro.cmp.detailed.DetailedMirageCluster`) and comparing the
qualitative outcomes both execution substrates must agree on:

* the SC-MPKI arbitrator gives memoizable applications more producer
  time than unmemoizable ones;
* the memoizable application ends up closer to its OoO-alone speed
  than the unmemoizable one (relative to their InO baselines);
* schedule bytes genuinely cross the bus when migrations happen.
"""

from __future__ import annotations

from repro.arbiter import SCMPKIArbitrator
from repro.cmp.detailed import DetailedMirageCluster
from repro.experiments.common import format_table
from repro.runner import SweepRunner, call_unit, cmp_unit
from repro.telemetry import Telemetry
from repro.workloads import make_benchmark

#: A memoizable app paired with an unmemoizable one.
PAIR = ("bzip2", "astar")


def detailed_tier(n_slices: int, slice_instructions: int) -> dict:
    """The cycle-level half, as one JSON-pure work unit.

    When ``MIRAGE_DETAILED_SHARD`` is set the cluster runs through
    :mod:`repro.cmp.sharded` (same spec, worker-pool machinery); the
    two paths are bit-identical, so the returned dict never depends on
    the routing.
    """
    from repro.cmp.sharded import (
        ClusterSpec,
        ShardedDetailedBackend,
        shard_jobs,
    )

    if shard_jobs() is not None:
        spec = ClusterSpec(
            benchmarks=tuple(
                (name, 5, (i + 1) << 34) for i, name in enumerate(PAIR)),
            slice_instructions=slice_instructions,
            n_slices=n_slices,
            record_kinds=("migration",),
        )
        outcome = ShardedDetailedBackend([spec]).run()[0]
        detailed = outcome.result
        migrations = outcome.records
    else:
        benches = [
            make_benchmark(name, seed=5, base_addr=(i + 1) << 34)
            for i, name in enumerate(PAIR)
        ]
        tele, trace = Telemetry.recording(kinds={"migration"})
        detailed = DetailedMirageCluster(
            benches, SCMPKIArbitrator(),
            slice_instructions=slice_instructions,
            telemetry=tele,
        ).run(n_slices=n_slices)
        migrations = trace.records("migration")
    return {
        "ooo_share": dict(zip(detailed.app_names, detailed.ooo_share)),
        "stp": detailed.stp,
        # Summed from the telemetry migration records — structurally
        # the same accounting the interval tier emits.
        "sc_bytes_transferred": sum(m.sc_bytes for m in migrations),
        "migration_charged_cycles": sum(
            m.charged_cycles for m in migrations),
    }


def run(*, n_slices: int = 16, slice_instructions: int = 8_000,
        runner: SweepRunner | None = None) -> dict:
    runner = runner or SweepRunner()
    det, interval = runner.map([
        call_unit("repro.experiments.tier_validation:detailed_tier",
                  n_slices, slice_instructions),
        cmp_unit(PAIR, "SC-MPKI", n_consumers=2, mirage=True,
                 max_intervals=400),
    ])
    det_share = det["ooo_share"]
    int_share = dict(zip(interval.app_names, interval.ooo_share_per_app))

    memo, unmemo = PAIR
    return {
        "pair": PAIR,
        "detailed": det,
        "interval": {
            "ooo_share": int_share,
            "stp": interval.stp,
        },
        "agreement": {
            "detailed_prefers_memoizable":
                det_share[memo] > det_share[unmemo],
            "interval_prefers_memoizable":
                int_share[memo] > int_share[unmemo],
            "schedules_transferred":
                det["sc_bytes_transferred"] > 0,
        },
    }


def print_table(result: dict) -> None:
    memo, unmemo = result["pair"]
    print(f"Tier validation on ({memo}, {unmemo}):")
    print(format_table(
        ["tier", f"{memo} OoO share", f"{unmemo} OoO share", "STP"],
        [
            ["detailed",
             result["detailed"]["ooo_share"][memo],
             result["detailed"]["ooo_share"][unmemo],
             result["detailed"]["stp"]],
            ["interval",
             result["interval"]["ooo_share"][memo],
             result["interval"]["ooo_share"][unmemo],
             result["interval"]["stp"]],
        ],
    ))
    ok = all(result["agreement"].values())
    print(f"\ntiers agree on the qualitative dynamics: "
          f"{'yes' if ok else 'NO'}")


