"""Figure 12: per-application OoO utilization under each arbitrator.

One 8-application mix on an 8:1 cluster; the figure stacks how the
OoO's active time divides between the applications.

Paper shape: maxSTP starves most applications in favour of the
slowest; SC-MPKI is less skewed but still uneven; Fair is exactly
even; SC-MPKI-fair caps everyone at the fair share, with memoizable
applications taking *less* than their share because the arbitrator
powers the OoO down at their turn.
"""

from __future__ import annotations

from repro.experiments.common import format_table
from repro.metrics import fairness_index
from repro.runner import SweepRunner, cmp_unit
from repro.workloads import standard_mixes

ARBITRATOR_NAMES = ("maxSTP", "SC-MPKI", "Fair", "SC-MPKI-fair")


def run(*, n_apps: int = 8, seed: int = 2017, mix=None,
        runner: SweepRunner | None = None) -> dict:
    runner = runner or SweepRunner()
    if mix is None:
        mix = [m for m in standard_mixes(n_apps, seed=seed)
               if m.category == "Random"][0]
    results = runner.map(
        [cmp_unit(mix, name) for name in ARBITRATOR_NAMES])
    out = {"mix": list(mix), "arbitrators": {}}
    for name, res in zip(ARBITRATOR_NAMES, results):
        shares = res.ooo_share_per_app
        out["arbitrators"][name] = {
            "shares": shares,
            "max_share": max(shares) if shares else 0.0,
            "fairness_index": fairness_index(shares),
            "ooo_active": res.ooo_active_fraction,
        }
    return out


def print_table(result: dict) -> None:
    apps = result["mix"]
    print("Figure 12: per-app share of OoO-active time (8:1)")
    print(format_table(
        ["arbitrator", *apps, "fairness"],
        [[name, *data["shares"], data["fairness_index"]]
         for name, data in result["arbitrators"].items()],
    ))
