"""Figure 14: area-neutral comparison — 8:1 Mirage vs. 5:3 traditional.

The 5 InO + 3 OoO traditional Het-CMP (Kumar et al.'s best pick) has
roughly the same area as the 8:1 Mirage cluster.  Both run the same
8-application mixes; the traditional system uses maxSTP over its three
OoOs, Mirage uses SC-MPKI over its one.  Migration is free for the 5:3
system (the paper assumes instantaneous transfer for this experiment).

Paper shape: despite owning two more OoO cores, the 5:3 CMP is ~23 %
slower and ~20 % hungrier than the 8:1 Mirage configuration.
"""

from __future__ import annotations

from repro.cmp import SIM_SCALE, TimeScale
from repro.energy import cmp_area
from repro.energy.model import AREA_UNITS
from repro.experiments.common import format_table, mean
from repro.runner import SweepRunner, cmp_unit, homo_unit
from repro.workloads import standard_mixes


def run(*, n_mixes: int = 6, seed: int = 2017,
        runner: SweepRunner | None = None) -> dict:
    runner = runner or SweepRunner()
    mixes = standard_mixes(8, seed=seed)[:n_mixes]
    free_migration = TimeScale(
        interval_cycles=SIM_SCALE.interval_cycles,
        sample_period_cycles=SIM_SCALE.sample_period_cycles,
        app_instruction_budget=SIM_SCALE.app_instruction_budget,
        drain_cycles=1, l1_warmup_cycles=1, sc_transfer_cycles=1,
    )
    units = []
    for mix in mixes:
        units.append(homo_unit(mix, "ooo", n_consumers=8))
        units.append(cmp_unit(mix, "SC-MPKI", n_consumers=8,
                              n_producers=1, mirage=True))
        units.append(cmp_unit(mix, "maxSTP", n_consumers=5,
                              n_producers=3, mirage=False,
                              scale=free_migration))
    results = iter(runner.map(units))
    acc = {
        "mirage_8_1": {"stp": [], "util": [], "energy": []},
        "trad_5_3": {"stp": [], "util": [], "energy": []},
    }
    for _mix in mixes:
        base = max(1e-9, next(results).energy_pj)
        mirage, trad = next(results), next(results)
        for key, res in [("mirage_8_1", mirage), ("trad_5_3", trad)]:
            acc[key]["stp"].append(res.stp)
            acc[key]["util"].append(res.ooo_active_fraction)
            acc[key]["energy"].append(res.energy_pj / base)
    homo8_area = 8 * AREA_UNITS["ooo"]
    return {
        "mirage_8_1": {
            **{k: mean(v) for k, v in acc["mirage_8_1"].items()},
            "area": cmp_area(8, 1, mirage=True) / homo8_area,
        },
        "trad_5_3": {
            **{k: mean(v) for k, v in acc["trad_5_3"].items()},
            "area": cmp_area(5, 3, mirage=False) / homo8_area,
        },
    }


def print_table(result: dict) -> None:
    print("Figure 14: area-neutral 8:1 Mirage vs 5:3 traditional")
    print(format_table(
        ["config", "performance", "utilization", "energy", "area"],
        [[name, v["stp"], v["util"], v["energy"], v["area"]]
         for name, v in result.items()],
    ))
