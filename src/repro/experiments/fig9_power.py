"""Figure 9: (a) per-structure power breakdown, (b) OoO utilization.

(a) Detailed-tier: run a representative benchmark set on all three
core models and report each structure's contribution to overall
power.  Paper shape: the OoO's scheduler/ROB/rename dominate its
budget; OinO additions (expanded PRF, replay LSQ, SC) raise InO
dynamic power ~2.4x while staying well under the OoO (which burns
~2.1x OinO); OinO fetches from the small SC, cutting I-cache and
branch-prediction power.

(b) Interval-tier: fraction of cycles the producer OoO is active per
arbitrator and cluster size.  Paper shape: SC-MPKI gates the OoO
(~60 % active at 8:1, saturating at 100 % by 12:1); the
throughput-oriented arbitrators keep it always on.
"""

from __future__ import annotations

from repro.cores import InOrderCore, OinOCore, OutOfOrderCore
from repro.energy import CoreEnergyModel
from repro.experiments.common import format_table, mean
from repro.memory import MemoryHierarchy
from repro.runner import SweepRunner, call_unit, cmp_unit
from repro.schedule import ScheduleCache, ScheduleRecorder
from repro.workloads import make_benchmark, standard_mixes

#: Representative benchmarks for the power breakdown.
BREAKDOWN_BENCHMARKS = ("hmmer", "bzip2", "libquantum", "gobmk")
N_VALUES = (4, 8, 12, 16)
ARBITRATOR_NAMES = ("SC-MPKI", "SC-MPKI+maxSTP", "maxSTP")


def power_breakdown(*, instructions: int = 30_000, seed: int = 1) -> dict:
    """Per-structure fraction of overall power for OoO, InO, OinO."""
    em = CoreEnergyModel()
    totals = {"ooo": {}, "ino": {}, "oino": {}}
    power = {"ooo": 0.0, "ino": 0.0, "oino": 0.0}
    for name in BREAKDOWN_BENCHMARKS:
        bench = make_benchmark(name, seed=seed)
        sc = ScheduleCache(None)
        rec = ScheduleRecorder(sc)
        runs = {
            "ooo": OutOfOrderCore(
                MemoryHierarchy().core_view(0), recorder=rec
            ).run(bench.stream(), instructions),
            "ino": InOrderCore(MemoryHierarchy().core_view(1)).run(
                bench.stream(), instructions),
            "oino": OinOCore(MemoryHierarchy().core_view(2), sc).run(
                bench.stream(), instructions),
        }
        for kind, result in runs.items():
            bd = em.breakdown(kind, result.energy_events, result.cycles)
            for structure, pj in bd.dynamic_pj.items():
                totals[kind][structure] = (
                    totals[kind].get(structure, 0.0)
                    + pj / result.cycles)
            totals[kind]["leakage"] = (
                totals[kind].get("leakage", 0.0)
                + bd.leakage_pj / result.cycles)
            power[kind] += bd.power_pw_per_cycle(result.cycles)
    fractions = {
        kind: {s: v / max(1e-9, sum(parts.values()))
               for s, v in parts.items()}
        for kind, parts in totals.items()
    }
    n = len(BREAKDOWN_BENCHMARKS)
    return {
        "fractions": fractions,
        "avg_power": {k: v / n for k, v in power.items()},
    }


def ooo_utilization(*, n_values=N_VALUES, n_mixes: int = 6,
                    seed: int = 2017,
                    runner: SweepRunner | None = None) -> list[dict]:
    runner = runner or SweepRunner()
    per_n = {n: standard_mixes(n, seed=seed)[:n_mixes] for n in n_values}
    units = [
        cmp_unit(mix, name)
        for n in n_values
        for mix in per_n[n]
        for name in ARBITRATOR_NAMES
    ]
    results = iter(runner.map(units))
    rows = []
    for n in n_values:
        active = {name: [] for name in ARBITRATOR_NAMES}
        for _mix in per_n[n]:
            for name in ARBITRATOR_NAMES:
                active[name].append(next(results).ooo_active_fraction)
        rows.append({"n": n,
                     "active": {k: mean(v) for k, v in active.items()}})
    return rows


def run(*, instructions: int = 30_000, n_mixes: int = 6,
        runner: SweepRunner | None = None) -> dict:
    runner = runner or SweepRunner()
    # The detailed-tier breakdown is one expensive indivisible unit;
    # running it through the runner makes it cacheable alongside the
    # utilization sweep.
    breakdown = runner.run(call_unit(
        "repro.experiments.fig9_power:power_breakdown",
        instructions=instructions))
    return {
        "breakdown": breakdown,
        "utilization": ooo_utilization(n_mixes=n_mixes, runner=runner),
    }


def print_table(result: dict) -> None:
    bd = result["breakdown"]
    print("Figure 9a: average power (pJ/cycle) per core kind")
    print(format_table(
        ["kind", "power", "vs InO"],
        [[k, v, v / max(1e-9, bd["avg_power"]["ino"])]
         for k, v in bd["avg_power"].items()],
    ))
    print("\ntop power structures per core kind:")
    for kind, parts in bd["fractions"].items():
        top = sorted(parts.items(), key=lambda kv: -kv[1])[:5]
        desc = ", ".join(f"{s} {f:.0%}" for s, f in top)
        print(f"  {kind:<5} {desc}")
    print("\nFigure 9b: fraction of cycles the OoO is active")
    print(format_table(
        ["n", *ARBITRATOR_NAMES],
        [[r["n"], *(r["active"][a] for a in ARBITRATOR_NAMES)]
         for r in result["utilization"]],
    ))
