"""Figure 15: migration costs and frequency per workload mix.

Interval-tier: every standard 8-app mix runs under SC-MPKI; the
migration cost model splits each migration into SC transfer and L1
warm-up (plus drain and bus contention), reported as a fraction of
total execution cycles, alongside the migration frequency.

Paper shape: overall transfer overhead is tiny (~0.15 % of execution);
L1 refill dominates the per-migration cost; HPD mixes migrate more
often (schedule production pays off), LPD mixes mostly stay on the
InO cores.
"""

from __future__ import annotations

from repro.experiments.common import format_table, mean
from repro.runner import SweepRunner, cmp_unit
from repro.workloads import standard_mixes


def run(*, n_apps: int = 8, n_mixes: int = 12, seed: int = 2017,
        runner: SweepRunner | None = None) -> dict:
    runner = runner or SweepRunner()
    mixes = standard_mixes(n_apps, seed=seed)[:n_mixes]
    results = runner.map([cmp_unit(mix, "SC-MPKI") for mix in mixes])
    rows = []
    for mix, res in zip(mixes, results):
        total = max(1e-9, res.total_cycles * n_apps)
        costs = res.migration_cost_cycles
        rows.append({
            "mix": mix.name,
            "category": mix.category,
            "sc_transfer_frac": costs.get("sc_transfer", 0.0) / total,
            "l1_transfer_frac": (
                costs.get("l1_warmup", 0.0) + costs.get("drain", 0.0)
            ) / total,
            "migration_frequency": res.migration_frequency,
        })
    overall = mean(
        r["sc_transfer_frac"] + r["l1_transfer_frac"] for r in rows)
    by_cat = {}
    for cat in ("HPD", "LPD", "Random"):
        cat_rows = [r for r in rows if r["category"] == cat]
        if cat_rows:
            by_cat[cat] = {
                "migration_frequency": mean(
                    r["migration_frequency"] for r in cat_rows),
                "transfer_frac": mean(
                    r["sc_transfer_frac"] + r["l1_transfer_frac"]
                    for r in cat_rows),
            }
    return {"rows": rows, "overall_transfer_frac": overall,
            "by_category": by_cat}


def print_table(result: dict) -> None:
    print("Figure 15: migration cost per mix (fractions of exec cycles)")
    print(format_table(
        ["mix", "category", "SC transfer", "L1+drain", "mig/interval"],
        [[r["mix"], r["category"], r["sc_transfer_frac"],
          r["l1_transfer_frac"], r["migration_frequency"]]
         for r in result["rows"]],
    ))
    print(f"\noverall transfer overhead: "
          f"{result['overall_transfer_frac']:.3%}")
