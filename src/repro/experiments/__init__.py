"""Experiment drivers: one module per paper table/figure.

Each driver module exposes a pure ``run(...) -> dict`` returning the
figure's rows or series, plus a ``print_table(result)`` that renders
them; the :class:`~repro.experiments.registry.Experiment` objects in
:data:`EXPERIMENTS` bundle the pair with metadata and the uniform
:class:`~repro.experiments.registry.ExperimentParams` knobs (``quick``,
``n_mixes``, ``seed``, ``jobs``, caching).  ``python -m repro <name>``
and the ``mirage`` CLI dispatch here.  The benchmark harness under
``benchmarks/`` calls the same ``run`` functions, so the printed tables
and the recorded numbers always agree.

Sweep-style drivers accept a ``runner=`` (see :mod:`repro.runner`) and
fan their per-mix simulations out over worker processes with on-disk
result caching; serial, parallel, and cached runs are bit-identical.
"""

from repro.experiments import (
    backend_matrix,
    multithreaded,
    scenario,
    software_arbiter,
    tier_validation,
    fig1_core_characteristics,
    fig2_memoization,
    fig3_interval_tradeoff,
    fig5_bzip2_timeline,
    fig6_area,
    fig7_throughput,
    fig8_energy,
    fig9_power,
    fig10_case_study,
    fig11_categories,
    fig12_fair_share,
    fig13_fairness,
    fig14_area_neutral,
    fig15_migration,
    headline,
    table1,
)
from repro.experiments.registry import Experiment, ExperimentParams

#: name -> (title, paper figure, driver module)
_DEFINITIONS = [
    ("table1", "HPD/LPD benchmark classification", "Table 1", table1),
    ("fig1", "InO vs OoO core characteristics", "Figure 1",
     fig1_core_characteristics),
    ("fig2", "Oracle memoization benefits", "Figure 2",
     fig2_memoization),
    ("fig3", "Switching-interval trade-off", "Figure 3b",
     fig3_interval_tradeoff),
    ("fig5", "bzip2 schedule-spike timeline", "Figure 5",
     fig5_bzip2_timeline),
    ("fig6", "CMP area vs cluster size", "Figure 6", fig6_area),
    ("fig7", "System throughput vs cluster size", "Figure 7",
     fig7_throughput),
    ("fig8", "Energy vs cluster size", "Figure 8", fig8_energy),
    ("fig9", "Power breakdown and OoO utilization", "Figures 9a/9b",
     fig9_power),
    ("fig10", "Four-app case study timeline", "Figure 10",
     fig10_case_study),
    ("fig11", "Benefits by benchmark category", "Figure 11",
     fig11_categories),
    ("fig12", "Per-app OoO share fairness", "Figure 12",
     fig12_fair_share),
    ("fig13", "Fair schedulers compared", "Figure 13", fig13_fairness),
    ("fig14", "Area-neutral 8:1 vs 5:3", "Figure 14",
     fig14_area_neutral),
    ("fig15", "Migration cost and frequency", "Figure 15",
     fig15_migration),
    ("headline", "The abstract's 8:1 claims", "Abstract", headline),
    # Extensions beyond the paper's figures (sections 3.2.4 and 6).
    ("software-arbiter", "HW vs SW arbitration granularity",
     "Section 3.2.4", software_arbiter),
    ("multithreaded", "Schedule broadcast to sibling threads",
     "Section 6", multithreaded),
    ("scenario", "Dynamic traffic across a cluster-of-clusters",
     "Extension", scenario),
    # Methodology: cross-check the two simulation tiers.
    ("tier-validation", "Detailed vs interval tier agreement",
     "Section 4", tier_validation),
    ("backend-matrix", "All registered backends, cross-validated",
     "Section 4", backend_matrix),
]

EXPERIMENTS: dict[str, Experiment] = {
    name: Experiment(name, title, figure, module)
    for name, title, figure, module in _DEFINITIONS
}

__all__ = ["EXPERIMENTS", "Experiment", "ExperimentParams"]
