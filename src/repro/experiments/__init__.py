"""Experiment drivers: one module per paper table/figure.

Each module exposes ``run(...) -> dict`` returning the figure's rows or
series, plus a ``main()`` that prints them; ``python -m repro <name>``
dispatches here.  The benchmark harness under ``benchmarks/`` calls the
same ``run`` functions, so the printed tables and the recorded numbers
always agree.
"""

from repro.experiments import (
    multithreaded,
    software_arbiter,
    tier_validation,
    fig1_core_characteristics,
    fig2_memoization,
    fig3_interval_tradeoff,
    fig5_bzip2_timeline,
    fig6_area,
    fig7_throughput,
    fig8_energy,
    fig9_power,
    fig10_case_study,
    fig11_categories,
    fig12_fair_share,
    fig13_fairness,
    fig14_area_neutral,
    fig15_migration,
    headline,
    table1,
)

EXPERIMENTS = {
    "table1": table1,
    "fig1": fig1_core_characteristics,
    "fig2": fig2_memoization,
    "fig3": fig3_interval_tradeoff,
    "fig5": fig5_bzip2_timeline,
    "fig6": fig6_area,
    "fig7": fig7_throughput,
    "fig8": fig8_energy,
    "fig9": fig9_power,
    "fig10": fig10_case_study,
    "fig11": fig11_categories,
    "fig12": fig12_fair_share,
    "fig13": fig13_fairness,
    "fig14": fig14_area_neutral,
    "fig15": fig15_migration,
    "headline": headline,
    # Extensions beyond the paper's figures (sections 3.2.4 and 6).
    "software-arbiter": software_arbiter,
    "multithreaded": multithreaded,
    # Methodology: cross-check the two simulation tiers.
    "tier-validation": tier_validation,
}

__all__ = ["EXPERIMENTS"]
