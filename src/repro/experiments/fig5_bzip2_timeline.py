"""Figure 5: relation between ΔSC-MPKI and IPC for bzip2.

Interval-tier timeline: bzip2 runs in a small Mirage cluster under the
SC-MPKI arbitrator with history recording; the experiment extracts
bzip2's per-interval IPC and ΔSC-MPKI series.

Paper shape: during stable loops ΔSC-MPKI sits near zero; phase
changes show up simultaneously as IPC level shifts and ΔSC-MPKI
spikes, which is exactly when the arbitrator migrates bzip2 for
re-memoization.
"""

from __future__ import annotations

from repro.experiments.common import format_table, make_system
from repro.telemetry import MemorySink, Telemetry
from repro.workloads.mixes import WorkloadMix


def run(*, intervals: int = 500, companions=("gamess", "namd",
                                             "libquantum"),
        telemetry: Telemetry | None = None) -> dict:
    mix = WorkloadMix(
        name="fig5", category="Random",
        benchmarks=("bzip2", *companions),
    )
    tele = telemetry or Telemetry()
    trace = tele.attach(MemorySink(kinds={"interval"}))
    try:
        system = make_system(mix, "SC-MPKI", telemetry=tele)
        system.run(max_intervals=intervals)
    finally:
        tele.detach(trace)
    series = [s for s in trace.events if s.app == "bzip2"]
    spikes = [
        s for s in series
        if s.delta_sc_mpki > 1.0 and not s.on_ooo
    ]
    phase_changes = sum(
        1 for a, b in zip(series, series[1:]) if a.phase_id != b.phase_id
    )
    return {
        "series": [
            {
                "interval": s.interval,
                "ipc": s.ipc,
                "delta_sc_mpki": s.delta_sc_mpki,
                "on_ooo": s.on_ooo,
                "phase_id": s.phase_id,
            }
            for s in series
        ],
        "n_spikes": len(spikes),
        "n_phase_changes": phase_changes,
    }


def spikes_align_with_phase_changes(result: dict,
                                    window: int = 5) -> float:
    """Fraction of phase changes with a ΔSC-MPKI spike in their locus.

    The figure's claim is that "large changes in ΔSC-MPKI are seen in
    the immediate locus of a phase change": every phase change should
    show a nearby spike.  (Spikes can also occur elsewhere — e.g. slow
    coverage decay while the application waits for the OoO — so the
    reverse direction is not required to hold.)
    """
    series = result["series"]
    change_points = [
        b["interval"]
        for a, b in zip(series, series[1:])
        if a["phase_id"] != b["phase_id"]
    ]
    if not change_points:
        return 0.0
    spike_intervals = {
        s["interval"] for s in series
        if s["delta_sc_mpki"] > 1.0 and not s["on_ooo"]
    }
    covered = sum(
        1 for c in change_points
        if any(abs(c - s) <= window for s in spike_intervals)
    )
    return covered / len(change_points)


def print_table(result: dict) -> None:
    print("Figure 5: bzip2 timeline (every 10th interval)")
    print(format_table(
        ["interval", "ipc", "dSC-MPKI", "on OoO", "phase"],
        [[s["interval"], s["ipc"], s["delta_sc_mpki"],
          "*" if s["on_ooo"] else "", s["phase_id"]]
         for s in result["series"][::10]],
    ))
    print(f"\nspikes: {result['n_spikes']}, "
          f"phase changes: {result['n_phase_changes']}, "
          f"alignment: {spikes_align_with_phase_changes(result):.0%}")
