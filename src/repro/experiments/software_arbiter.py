"""Extension experiment: hardware vs software arbitration granularity.

Paper section 3.2.4 argues a software arbitrator — confined to OS
timeslices of ~10 ms instead of the hardware arbitrator's 1 M-cycle
reaction time — would be less effective, because stale decisions hold
across many memoize-phase opportunities.  This experiment sweeps the
reaction granularity of the SC-MPKI arbitrator on 8:1 Mirage clusters.
"""

from __future__ import annotations

from repro.experiments.common import format_table, mean
from repro.runner import SweepRunner, cmp_unit
from repro.workloads import standard_mixes

#: Reaction granularities in hardware intervals (1 = the hardware
#: arbitrator itself; 20 ~ a 10 ms OS timeslice at paper scale).
GRANULARITIES = (1, 5, 20, 50)


def run(*, n_mixes: int = 6, seed: int = 2017,
        runner: SweepRunner | None = None) -> dict:
    runner = runner or SweepRunner()
    mixes = standard_mixes(8, seed=seed)[:n_mixes]
    units = [
        cmp_unit(mix, "SC-MPKI", n_consumers=8, mirage=True,
                 reaction_intervals=granularity)
        for granularity in GRANULARITIES
        for mix in mixes
    ]
    results = iter(runner.map(units))
    rows = []
    for granularity in GRANULARITIES:
        stp, util = [], []
        for _mix in mixes:
            res = next(results)
            stp.append(res.stp)
            util.append(res.ooo_active_fraction)
        rows.append({
            "reaction_intervals": granularity,
            "stp": mean(stp),
            "ooo_active": mean(util),
        })
    return {"rows": rows}


def print_table(result: dict) -> None:
    print("Hardware vs software arbitration (SC-MPKI on 8:1 Mirage)")
    print(format_table(
        ["reaction (intervals)", "STP", "OoO active"],
        [[r["reaction_intervals"], r["stp"], r["ooo_active"]]
         for r in result["rows"]],
    ))
    hw = result["rows"][0]["stp"]
    sw = result["rows"][2]["stp"]
    print(f"\nOS-timeslice arbitration keeps {sw / hw:.0%} of the "
          f"hardware arbitrator's throughput (paper: 'effectiveness "
          f"might be lower').")
