"""Table 1: classification of benchmarks by InO:OoO IPC ratio.

The paper splits the suite at a 60 % IPC ratio.  Our detailed cores
produce a lower absolute InO:OoO ratio across the board (a coarser
model than gem5's), so the reproduction target is the *two-band
structure* and per-benchmark ordering: we report both the paper's
boundary and the empirical split boundary, and score agreement against
the paper's category labels.
"""

from __future__ import annotations

from repro.cores import InOrderCore, OutOfOrderCore
from repro.experiments.common import format_table
from repro.memory import MemoryHierarchy
from repro.runner import SweepRunner, call_unit, run_units
from repro.workloads import ALL_BENCHMARKS, get_profile, make_benchmark

PAPER_BOUNDARY = 0.60


def measure_ratio(name: str, *, instructions: int = 30_000,
                  seed: int = 1) -> float:
    """InO:OoO IPC ratio for one benchmark on the detailed cores."""
    bench = make_benchmark(name, seed=seed)
    r_ooo = OutOfOrderCore(MemoryHierarchy().core_view(0)).run(
        bench.stream(), instructions)
    r_ino = InOrderCore(MemoryHierarchy().core_view(1)).run(
        bench.stream(), instructions)
    return r_ino.ipc / max(1e-9, r_ooo.ipc)


def run(*, instructions: int = 30_000,
        benchmarks: tuple[str, ...] = ALL_BENCHMARKS,
        runner: SweepRunner | None = None) -> dict:
    # Each per-benchmark measurement is an independent pure call, so
    # the whole table is one sweep: cached, and parallel under
    # --jobs (floats survive the call-unit JSON round-trip exactly,
    # keeping the printed table byte-identical to the serial loop).
    ratios = run_units(
        [call_unit("repro.experiments.table1:measure_ratio", name,
                   instructions=instructions) for name in benchmarks],
        runner)
    rows = []
    for name, ratio in zip(benchmarks, ratios):
        prof = get_profile(name)
        rows.append({
            "benchmark": name,
            "paper_category": prof.category,
            "ratio": ratio,
        })
    # Empirical boundary: midpoint between the two bands' medians.
    hpd = sorted(r["ratio"] for r in rows if r["paper_category"] == "HPD")
    lpd = sorted(r["ratio"] for r in rows if r["paper_category"] == "LPD")
    if hpd and lpd:
        boundary = (hpd[len(hpd) // 2] + lpd[len(lpd) // 2]) / 2
    else:
        boundary = PAPER_BOUNDARY
    agree = 0
    for r in rows:
        r["measured_category"] = "HPD" if r["ratio"] < boundary else "LPD"
        r["agrees"] = r["measured_category"] == r["paper_category"]
        agree += r["agrees"]
    return {
        "rows": rows,
        "boundary": boundary,
        "paper_boundary": PAPER_BOUNDARY,
        "agreement": agree / len(rows) if rows else 0.0,
    }


def print_table(result: dict) -> None:
    print(format_table(
        ["benchmark", "paper", "ratio", "measured", "agrees"],
        [[r["benchmark"], r["paper_category"], r["ratio"],
          r["measured_category"], "yes" if r["agrees"] else "NO"]
         for r in result["rows"]],
    ))
    print(f"\nempirical boundary: {result['boundary']:.3f} "
          f"(paper: {result['paper_boundary']:.2f}); "
          f"agreement {result['agreement']:.0%}")
