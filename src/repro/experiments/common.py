"""Shared plumbing for the experiment drivers."""

from __future__ import annotations

from repro.characterize import AppModel
from repro.cmp import ClusterConfig, TimeScale, SIM_SCALE
from repro.cmp.system import CMPResult, CMPSystem, run_homo
# The arbitrator tables and the memoized per-benchmark model live with
# the work-unit executor so drivers and pool workers share one source.
from repro.runner.units import ARBITRATORS, TRADITIONAL, app_model
from repro.telemetry import Telemetry
from repro.workloads.mixes import WorkloadMix


def models_for(mix: WorkloadMix) -> list[AppModel]:
    return [app_model(name) for name in mix]


def make_system(
    mix: WorkloadMix,
    arbitrator_name: str,
    *,
    n_producers: int = 1,
    scale: TimeScale | None = None,
    record_history: bool = False,
    telemetry: Telemetry | None = None,
) -> CMPSystem:
    """Build a CMP for *mix* under the named arbitrator."""
    mirage = arbitrator_name not in TRADITIONAL
    config = ClusterConfig(
        n_consumers=len(mix),
        n_producers=n_producers,
        mirage=mirage,
        scale=scale or SIM_SCALE,
    )
    return CMPSystem(
        config, models_for(mix), ARBITRATORS[arbitrator_name](),
        record_history=record_history,
        telemetry=telemetry,
    )


def run_mix(mix: WorkloadMix, arbitrator_name: str, **kwargs) -> CMPResult:
    return make_system(mix, arbitrator_name, **kwargs).run()


def homo_baselines(
    mix: WorkloadMix, *, scale: TimeScale | None = None
) -> tuple[CMPResult, CMPResult]:
    """(Homo-OoO, Homo-InO) baselines for *mix*."""
    config = ClusterConfig(
        n_consumers=len(mix), n_producers=1, scale=scale or SIM_SCALE)
    models = models_for(mix)
    return (
        run_homo(models, kind="ooo", config=config),
        run_homo(models, kind="ino", config=config),
    )


def mean(values) -> float:
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


#: Two-sided 97.5 % Student-t critical values by degrees of freedom —
#: enough for the seed counts headline runs use; beyond the table the
#: normal approximation is within a percent.
_T95 = {1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
        6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
        15: 2.131, 20: 2.086, 30: 2.042}


def t_critical_95(df: int) -> float:
    """The two-sided 95 % t critical value for *df* (>=1)."""
    if df in _T95:
        return _T95[df]
    for bound in (10, 15, 20, 30):
        if df <= bound:
            return _T95[bound]
    return 1.96


def mean_ci95(values) -> tuple[float, float]:
    """``(mean, half_width)`` of a 95 % confidence interval.

    The half-width is 0.0 for fewer than two values — a single seed
    carries no spread information, so the point estimate prints bare.
    """
    values = list(values)
    center = mean(values)
    n = len(values)
    if n < 2:
        return center, 0.0
    variance = sum((v - center) ** 2 for v in values) / (n - 1)
    return center, t_critical_95(n - 1) * (variance / n) ** 0.5


def format_table(headers: list[str], rows: list[list]) -> str:
    """Plain-text table for the drivers' main() output."""
    widths = [
        max(len(str(h)), *(len(_fmt(r[i])) for r in rows)) if rows
        else len(str(h))
        for i, h in enumerate(headers)
    ]
    def line(cells):
        return "  ".join(_fmt(c).rjust(w) for c, w in zip(cells, widths))
    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(r) for r in rows)
    return "\n".join(out)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
