"""Cycle-level core models.

Three machines, all 3-wide with identical functional units (the paper's
configuration, chosen so issue schedules transfer directly):

* :class:`~repro.cores.ooo.OutOfOrderCore` — 12-stage, 128-entry ROB,
  dataflow issue within the ROB window; optionally records trace issue
  schedules through a :class:`~repro.schedule.recorder.ScheduleRecorder`.
* :class:`~repro.cores.inorder.InOrderCore` — 8-stage, stall-on-use,
  program-order issue.
* :class:`~repro.cores.oino.OinOCore` — an InOrderCore augmented with
  the OinO mode: traces that hit in the Schedule Cache issue in their
  recorded OoO order (atomically, with a replay LSQ and expanded PRF);
  misses and misspeculations fall back to program order.
* :class:`~repro.cores.cgooo.CGOoOCore` — the coarse-grain OoO
  comparison point: block-granularity scheduling windows, dataflow
  issue within a block, a short ring of outstanding blocks across.

The in-order machines additionally accept
``CoreParams(issue_policy="ldt")`` (see :data:`LDT_PARAMS`): per-load
delay tracking parks load-dependents in a small queue so independent
younger instructions keep issuing, instead of blanket stall-on-use.

The models are *dataflow-slot* simulators: one pass per instruction
computes fetch/issue/complete/commit cycles subject to machine width,
window occupancy, functional-unit counts, cache latencies and branch
redirects, rather than iterating cycle by cycle (see DESIGN.md §5).
"""

from repro.cores.base import CoreResult, CoreStats, EnergyEvents
from repro.cores.cgooo import CGOoOCore
from repro.cores.functional_units import FUPool, SlotPool, fu_type_for
from repro.cores.inorder import InOrderCore
from repro.cores.oino import OinOCore
from repro.cores.ooo import OutOfOrderCore
from repro.cores.params import (
    CGOOO_PARAMS,
    INO_PARAMS,
    LDT_PARAMS,
    OOO_PARAMS,
    CoreParams,
)

__all__ = [
    "CoreParams",
    "OOO_PARAMS",
    "INO_PARAMS",
    "LDT_PARAMS",
    "CGOOO_PARAMS",
    "CoreResult",
    "CoreStats",
    "EnergyEvents",
    "FUPool",
    "SlotPool",
    "fu_type_for",
    "OutOfOrderCore",
    "InOrderCore",
    "OinOCore",
    "CGOoOCore",
]
