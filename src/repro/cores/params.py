"""Core parameterization (paper Table 2)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class CoreParams:
    """Microarchitectural parameters for one core model."""

    name: str
    width: int = 3                 #: superscalar width (fetch/issue/commit)
    pipeline_depth: int = 12       #: stages; sets the mispredict penalty
    rob_size: int = 128            #: OoO window (ignored by InO)
    lq_size: int = 32              #: load-queue entries (OoO)
    sq_size: int = 32              #: store-queue entries (OoO)
    mem_inflight: int = 8          #: in-flight memory ops (InO/OinO MSHRs)
    int_regs: int = 128            #: physical integer register file
    fp_regs: int = 256             #: physical floating-point register file
    fetch_to_issue: int = 4        #: front-end stages before issue

    #: Extra cycles from branch resolve to fetch restart on mispredict.
    @property
    def mispredict_penalty(self) -> int:
        return self.pipeline_depth - 2

    #: Bubble cycles when a taken branch misses in the BTB.
    btb_miss_bubble: int = 2


#: The producer OoO: deeply pipelined 3-wide with big windows.
OOO_PARAMS = CoreParams(
    name="OoO",
    width=3,
    pipeline_depth=12,
    rob_size=128,
    lq_size=32,
    sq_size=32,
    int_regs=128,
    fp_regs=256,
    fetch_to_issue=5,
)

#: The consumer InO: same width/FUs, shallower pipeline, no windows.
INO_PARAMS = CoreParams(
    name="InO",
    width=3,
    pipeline_depth=8,
    rob_size=1,
    mem_inflight=8,
    int_regs=128,
    fp_regs=128,
    fetch_to_issue=3,
)

#: OinO-mode additions (paper section 3.3.2): every architectural
#: register may map to up to 4 physical registers (128-entry PRF) and a
#: 32-entry replay LSQ tracks memory order inside an atomic trace.
OINO_PRF_MAPPINGS_PER_ARCH_REG = 4
OINO_REPLAY_LSQ_ENTRIES = 32
#: Squash + program-order restart penalty when a memoized trace
#: misspeculates (cycles of pipeline refill before re-execution).
OINO_ABORT_PENALTY = 12
