"""Core parameterization (paper Table 2)."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class CoreParams:
    """Microarchitectural parameters for one core model."""

    name: str
    width: int = 3                 #: superscalar width (fetch/issue/commit)
    pipeline_depth: int = 12       #: stages; sets the mispredict penalty
    rob_size: int = 128            #: OoO window (ignored by InO)
    lq_size: int = 32              #: load-queue entries (OoO)
    sq_size: int = 32              #: store-queue entries (OoO)
    mem_inflight: int = 8          #: in-flight memory ops (InO/OinO MSHRs)
    int_regs: int = 128            #: physical integer register file
    fp_regs: int = 256             #: physical floating-point register file
    fetch_to_issue: int = 4        #: front-end stages before issue

    #: Extra cycles from branch resolve to fetch restart on mispredict.
    @property
    def mispredict_penalty(self) -> int:
        return self.pipeline_depth - 2

    #: Bubble cycles when a taken branch misses in the BTB.
    btb_miss_bubble: int = 2

    #: In-order issue policy: ``"stall"`` is the classic stall-on-use
    #: pipeline (instruction *i* blocks everything younger); ``"ldt"``
    #: adds load-delay tracking (Diavastos & Carlson) — an instruction
    #: waiting only on an outstanding load parks in a small delay
    #: queue and independent younger instructions keep issuing.
    issue_policy: str = "stall"
    #: Load-delay-tracking queue entries (parked load-dependents).
    ldt_queue: int = 8


#: The producer OoO: deeply pipelined 3-wide with big windows.
OOO_PARAMS = CoreParams(
    name="OoO",
    width=3,
    pipeline_depth=12,
    rob_size=128,
    lq_size=32,
    sq_size=32,
    int_regs=128,
    fp_regs=256,
    fetch_to_issue=5,
)

#: The consumer InO: same width/FUs, shallower pipeline, no windows.
INO_PARAMS = CoreParams(
    name="InO",
    width=3,
    pipeline_depth=8,
    rob_size=1,
    mem_inflight=8,
    int_regs=128,
    fp_regs=128,
    fetch_to_issue=3,
)

#: The load-delay-tracking consumer: the InO pipeline with per-load
#: delay counters gating issue instead of a blanket stall-on-use.
LDT_PARAMS = dataclasses.replace(
    INO_PARAMS, name="InO-LDT", issue_policy="ldt"
)

#: The CG-OoO consumer: block-granularity scheduling windows (coarse-
#: grain out-of-order, Mohammadi et al.).  Instructions inside one
#: block window issue dataflow-order; blocks retire through a small
#: ring of outstanding block windows instead of a global ROB.
CGOOO_PARAMS = CoreParams(
    name="CG-OoO",
    width=3,
    pipeline_depth=10,
    rob_size=1,
    mem_inflight=8,
    int_regs=128,
    fp_regs=128,
    fetch_to_issue=4,
)

#: Outstanding block windows in the CG-OoO block ring: block *b*
#: cannot start issuing until block *b - CGOOO_BLOCK_WINDOWS* drained.
CGOOO_BLOCK_WINDOWS = 4
#: Instructions one block window can hold; longer dynamic blocks spill
#: into the next window slot (counted as an extra block).
CGOOO_WINDOW_ENTRIES = 32

#: OinO-mode additions (paper section 3.3.2): every architectural
#: register may map to up to 4 physical registers (128-entry PRF) and a
#: 32-entry replay LSQ tracks memory order inside an atomic trace.
OINO_PRF_MAPPINGS_PER_ARCH_REG = 4
OINO_REPLAY_LSQ_ENTRIES = 32
#: Squash + program-order restart penalty when a memoized trace
#: misspeculates (cycles of pipeline refill before re-execution).
OINO_ABORT_PENALTY = 12
