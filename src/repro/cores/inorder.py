"""In-order stall-on-use core model.

Same width and functional units as the OoO (paper section 4.2) but
instructions issue strictly in program order: instruction *i* cannot
issue before instruction *i-1*.  Loads do not block the pipeline until
a dependent instruction reads their destination (stall-on-use), which
the issue-when-sources-ready rule captures naturally.  There is no
register renaming and no reorder window, so a stalled instruction
head-of-line-blocks everything younger — this is where the InO loses
the paper's ~40 % against the OoO on ILP/MLP-rich code.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.cores.base import CoreResult, CoreStats, EnergyEvents
from repro.cores.functional_units import FUPool, fu_type_for
from repro.cores.params import INO_PARAMS, CoreParams
from repro.frontend.branch_predictor import (
    BranchPredictor,
    TournamentPredictor,
)
from repro.frontend.btb import BranchTargetBuffer
from repro.isa.instructions import Instruction
from repro.memory.hierarchy import CoreMemory

_LINE_SHIFT = 6


class InOrderCore:
    """3-wide in-order, stall-on-use consumer core."""

    def __init__(
        self,
        memory: CoreMemory,
        *,
        params: CoreParams = INO_PARAMS,
        predictor: BranchPredictor | None = None,
        btb: BranchTargetBuffer | None = None,
    ):
        self.params = params
        self.memory = memory
        self.predictor = predictor or TournamentPredictor()
        self.btb = btb or BranchTargetBuffer()

    # -- slice-memoization hooks (repro.simcache) ----------------------
    def state_snapshot(self) -> tuple:
        """Persistent cross-slice state (frontend + private memory)."""
        return (
            self.predictor.state_snapshot(),
            self.btb.state_snapshot(),
            self.memory.state_snapshot(),
        )

    def state_restore(self, snap: tuple) -> None:
        """Rebuild the exact state a :meth:`state_snapshot` captured."""
        predictor, btb, memory = snap
        self.predictor.state_restore(predictor)
        self.btb.state_restore(btb)
        self.memory.state_restore(memory)

    def run(
        self,
        stream: Iterable[Instruction],
        max_instructions: int,
        *,
        start_cycle: int = 0,
    ) -> CoreResult:
        p = self.params
        stats = CoreStats()
        energy = EnergyEvents()
        fus = FUPool(p.width)

        reg_ready: dict[int, int] = {}
        store_line_ready: dict[int, int] = {}
        # MSHR limit: a missing access cannot issue until the miss
        # `mem_inflight` older has completed (hits are unconstrained).
        miss_ring: list[int] = [0] * p.mem_inflight
        misses = 0
        # Load-delay tracking (issue_policy="ldt"): registers produced
        # by loads still in flight, and the small queue of parked
        # load-dependents.  Empty structures under the default policy.
        ldt = p.issue_policy == "ldt"
        load_ready: dict[int, int] = {}
        ldt_ring: list[int] = [0] * p.ldt_queue
        parked = 0

        fetch_cycle = start_cycle
        fetched_in_cycle = 0
        redirect_at = start_cycle
        last_fetch_line = -1
        last_issue = start_cycle
        last_complete = start_cycle

        n = 0
        for insn in stream:
            if n >= max_instructions:
                break
            # ---------------- fetch ----------------
            if fetch_cycle < redirect_at:
                fetch_cycle = redirect_at
                fetched_in_cycle = 0
            line = insn.pc >> _LINE_SHIFT
            if line != last_fetch_line:
                res = self.memory.fetch(insn.pc, now=fetch_cycle)
                energy.bump("icache")
                if not res.l1_hit:
                    stats.l1i_misses += 1
                    if not res.l2_hit:
                        stats.l2_misses += 1
                    fetch_cycle += res.latency - self.memory.l1_latency
                    fetched_in_cycle = 0
                last_fetch_line = line
            if fetched_in_cycle >= p.width:
                fetch_cycle += 1
                fetched_in_cycle = 0
            fetched_in_cycle += 1
            energy.bump("fetch")
            energy.bump("decode")

            # ---------------- in-order issue ----------------
            earliest = fetch_cycle + p.fetch_to_issue
            if earliest < last_issue:
                earliest = last_issue
            dispatch = earliest
            load_wait = 0
            for src in insn.srcs:
                t = reg_ready.get(src, 0)
                if t > earliest:
                    earliest = t
                if ldt:
                    lt = load_ready.get(src, 0)
                    if lt > load_wait:
                        load_wait = lt
            energy.bump("rf_read", len(insn.srcs))
            if insn.is_load:
                dep = store_line_ready.get(insn.mem_addr >> _LINE_SHIFT, 0)
                if dep > earliest:
                    earliest = dep
            res = None
            if insn.is_mem:
                energy.bump("dcache")
                if insn.is_load:
                    res = self.memory.load(insn.pc, insn.mem_addr, now=earliest)
                    stats.loads += 1
                else:
                    res = self.memory.store(insn.pc, insn.mem_addr, now=earliest)
                    stats.stores += 1
                if not res.l1_hit:
                    stats.l1d_misses += 1
                    if not res.l2_hit:
                        stats.l2_misses += 1
                    energy.bump("l2")
                    slot = miss_ring[misses % p.mem_inflight]
                    if slot > earliest:
                        earliest = slot

            issue = fus.issue_at(insn.opclass, earliest, insn.base_latency)
            if ldt and issue > dispatch and load_wait > dispatch:
                # The binding stall is an outstanding load: park this
                # instruction in the delay queue and keep the in-order
                # issue floor at its dispatch point so independent
                # younger instructions continue to flow.  A full queue
                # degrades gracefully to stall-on-use (the ring slot
                # becomes the floor).
                slot = ldt_ring[parked % p.ldt_queue]
                last_issue = dispatch if slot <= dispatch else slot
                ldt_ring[parked % p.ldt_queue] = issue + insn.base_latency
                parked += 1
                energy.bump("lsq")
            else:
                last_issue = issue
            energy.bump(fu_type_for(insn.opclass))

            # ---------------- complete ----------------
            complete = issue + insn.base_latency
            if res is not None:
                complete += res.latency - 1
                if insn.is_store:
                    store_line_ready[insn.mem_addr >> _LINE_SHIFT] = complete
                if not res.l1_hit:
                    miss_ring[misses % p.mem_inflight] = complete
                    misses += 1
            if insn.dst is not None:
                reg_ready[insn.dst] = complete
                energy.bump("rf_write")
                if ldt:
                    if insn.is_load:
                        load_ready[insn.dst] = complete
                    else:
                        load_ready.pop(insn.dst, None)
            if complete > last_complete:
                last_complete = complete

            # ---------------- branches ----------------
            if insn.is_branch:
                stats.branches += 1
                energy.bump("bpred")
                wrong = self.predictor.access(insn.pc, insn.taken)
                insn.mispredicted = wrong
                if insn.taken:
                    if self.btb.lookup(insn.pc) is None:
                        fetch_cycle += p.btb_miss_bubble
                        fetched_in_cycle = 0
                        self.btb.install(insn.pc, insn.target)
                if wrong:
                    stats.mispredicts += 1
                    redirect_at = complete + 1
                elif insn.taken:
                    fetch_cycle += 1
                    fetched_in_cycle = 0

            n += 1

        stats.instructions = n
        stats.cycles = max(1, last_complete + 1 - start_cycle)
        return CoreResult(
            core_name=self.params.name, stats=stats, energy_events=energy
        )
