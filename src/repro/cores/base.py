"""Common core infrastructure: stats, energy event counters, results."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, fields


class EnergyEvents(Counter):
    """Per-structure activity counts consumed by :mod:`repro.energy`.

    Keys are structure names (``"rob"``, ``"prf"``, ``"scheduler"`` ...)
    matching :data:`repro.energy.model.DYNAMIC_ENERGY_PJ`.
    """

    def bump(self, structure: str, count: int = 1) -> None:
        self[structure] += count


@dataclass(slots=True)
class CoreStats:
    """Aggregate outcome counters for one simulation window."""

    instructions: int = 0
    cycles: int = 0
    branches: int = 0
    mispredicts: int = 0
    loads: int = 0
    stores: int = 0
    l1i_misses: int = 0
    l1d_misses: int = 0
    l2_misses: int = 0
    traces: int = 0
    # OinO-mode specific:
    sc_trace_hits: int = 0
    sc_trace_misses: int = 0
    memoized_instructions: int = 0
    trace_aborts: int = 0
    abort_penalty_cycles: int = 0

    @property
    def ipc(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles

    @property
    def mispredict_rate(self) -> float:
        if self.branches == 0:
            return 0.0
        return self.mispredicts / self.branches

    def sc_mpki(self) -> float:
        """SC trace-lookup misses per kilo committed instructions."""
        if self.instructions == 0:
            return 0.0
        return 1000.0 * self.sc_trace_misses / self.instructions

    @property
    def memoized_fraction(self) -> float:
        if self.instructions == 0:
            return 0.0
        return self.memoized_instructions / self.instructions

    def counters(self, prefix: str = "") -> dict[str, int]:
        """Flatten every field into telemetry counter entries.

        Keys are ``prefix + field name`` so callers can namespace by
        core kind (``"ooo."``, ``"ino."``) or application.
        """
        return {
            prefix + f.name: getattr(self, f.name)
            for f in fields(self)
        }


@dataclass(slots=True)
class CoreResult:
    """What a core run returns: timing stats plus energy activity."""

    core_name: str
    stats: CoreStats
    energy_events: EnergyEvents

    @property
    def ipc(self) -> float:
        return self.stats.ipc

    @property
    def cycles(self) -> int:
        return self.stats.cycles

    @property
    def instructions(self) -> int:
        return self.stats.instructions
