"""Coarse-grain out-of-order (CG-OoO) block-level core model.

CG-OoO (Mohammadi et al., PAPERS.md) replaces the global reorder
buffer and monolithic scheduler with *block windows*: the dynamic
stream is cut into basic-block-like traces (here: the same
backward-branch trace segmentation the Schedule Cache uses), each
block occupies one small issue window, and instructions issue
dataflow-order *within* their block while a short ring of outstanding
blocks overlaps execution *across* blocks.  Wakeup/select is local to
one small window, so the scheduling energy is a fraction of a full
OoO scheduler's — the model's energy accounting charges the cheap
``bw_select``/``bw_window`` events instead of the OoO ``scheduler``/
``rob``/``rename`` events.

The Schedule Cache doubles as CG-OoO's block-schedule memo: the first
execution of a block pays the block-local select energy and records
its issue order; later executions of the same path read the recorded
order back (one ``sc_read`` per instruction, cheaper than select) —
the same storage substrate the OinO replay mode uses, reused at block
granularity.  Replay is an *energy* shortcut only: issue timing is
computed identically on both paths, so results are deterministic and
independent of SC occupancy.

Timing model, per block:

* a block cannot start issuing before the block
  :data:`~repro.cores.params.CGOOO_BLOCK_WINDOWS` positions older has
  drained (the block-ring floor);
* within a block there is **no** program-order issue floor — each
  instruction issues at its dataflow-ready cycle on the shared
  :class:`~repro.cores.functional_units.FUPool`, older-first on ties;
* a window holds :data:`~repro.cores.params.CGOOO_WINDOW_ENTRIES`
  instructions: instruction *j* also waits for instruction
  *j - entries* of its own block to complete;
* fetch, branch prediction, MSHRs, and store-to-load forwarding are
  exactly the in-order core's mechanisms.

This lands the core between the stall-on-use InO and the full OoO on
both IPC and energy per instruction, which is the point of the
comparison in the ``backend-matrix`` experiment.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.cores.base import CoreResult, CoreStats, EnergyEvents
from repro.cores.functional_units import FUPool, fu_type_for
from repro.cores.params import (
    CGOOO_BLOCK_WINDOWS,
    CGOOO_PARAMS,
    CGOOO_WINDOW_ENTRIES,
    CoreParams,
)
from repro.frontend.branch_predictor import (
    BranchPredictor,
    TournamentPredictor,
)
from repro.frontend.btb import BranchTargetBuffer
from repro.isa.instructions import Instruction
from repro.memory.hierarchy import CoreMemory
from repro.schedule.schedule_cache import Schedule, ScheduleCache
from repro.schedule.trace import Trace, TraceBuilder

_LINE_SHIFT = 6


class CGOoOCore:
    """3-wide block-level out-of-order core (CG-OoO)."""

    def __init__(
        self,
        memory: CoreMemory,
        sc: ScheduleCache,
        *,
        params: CoreParams = CGOOO_PARAMS,
        predictor: BranchPredictor | None = None,
        btb: BranchTargetBuffer | None = None,
    ):
        self.params = params
        self.memory = memory
        self.sc = sc
        self.predictor = predictor or TournamentPredictor()
        self.btb = btb or BranchTargetBuffer()

    # -- slice-memoization hooks (repro.simcache) ----------------------
    def state_snapshot(self) -> tuple:
        """Persistent cross-slice state (frontend + private memory).

        Everything else (scoreboards, rings, the block window state)
        is rebuilt at the top of :meth:`run`.  The SC snapshots
        separately — it is owned by the cluster.
        """
        return (
            self.predictor.state_snapshot(),
            self.btb.state_snapshot(),
            self.memory.state_snapshot(),
        )

    def state_restore(self, snap: tuple) -> None:
        """Rebuild the exact state a :meth:`state_snapshot` captured."""
        predictor, btb, memory = snap
        self.predictor.state_restore(predictor)
        self.btb.state_restore(btb)
        self.memory.state_restore(memory)

    # ------------------------------------------------------------------
    def run(
        self,
        stream: Iterable[Instruction],
        max_instructions: int,
        *,
        start_cycle: int = 0,
    ) -> CoreResult:
        """Execute up to *max_instructions* block by block."""
        self._stats = stats = CoreStats()
        self._energy = EnergyEvents()
        self._fus = FUPool(self.params.width)
        self._reg_ready: dict[int, int] = {}
        self._store_line_ready: dict[int, int] = {}
        self._miss_ring = [0] * self.params.mem_inflight
        self._misses = 0
        self._fetch_cycle = start_cycle
        self._fetched_in_cycle = 0
        self._redirect_at = start_cycle
        self._last_fetch_line = -1
        self._last_complete = start_cycle
        self._block_ring = [start_cycle] * CGOOO_BLOCK_WINDOWS
        self._blocks = 0

        builder = TraceBuilder()
        n = 0
        for insn in stream:
            if n >= max_instructions:
                break
            n += 1
            done = builder.feed(insn)
            if done is not None:
                self._run_block(done)
        tail = builder.flush()
        if tail is not None:
            self._run_block(tail)

        stats.instructions = n
        stats.cycles = max(1, self._last_complete + 1 - start_cycle)
        return CoreResult(
            core_name=self.params.name, stats=stats,
            energy_events=self._energy,
        )

    # ------------------------------------------------------------------
    def _run_block(self, trace: Trace) -> None:
        p = self.params
        stats = self._stats
        energy = self._energy
        stats.traces += 1

        schedule = self.sc.lookup(trace.start_pc, trace.path_hash)
        energy.bump("sc_read")
        insns = trace.instructions
        replayed = (
            schedule is not None
            and len(schedule.issue_order) == len(insns)
        )
        if replayed:
            # Recorded block schedule: skip the window select logic
            # and read the issue order back (energy-only shortcut —
            # the timing below is identical on both paths).
            stats.sc_trace_hits += 1
            stats.memoized_instructions += len(insns)
            energy.bump("sc_read", len(insns))
        else:
            stats.sc_trace_misses += 1
            energy.bump("bw_select", len(insns))

        block_floor = self._block_ring[self._blocks % CGOOO_BLOCK_WINDOWS]
        completes: list[int] = []
        issues: list[int] = []
        block_end = block_floor
        reg_ready = self._reg_ready
        for pos, insn in enumerate(insns):
            # ---------------- fetch ----------------
            if self._fetch_cycle < self._redirect_at:
                self._fetch_cycle = self._redirect_at
                self._fetched_in_cycle = 0
            line = insn.pc >> _LINE_SHIFT
            if line != self._last_fetch_line:
                res = self.memory.fetch(insn.pc, now=self._fetch_cycle)
                energy.bump("icache")
                if not res.l1_hit:
                    stats.l1i_misses += 1
                    if not res.l2_hit:
                        stats.l2_misses += 1
                    self._fetch_cycle += \
                        res.latency - self.memory.l1_latency
                    self._fetched_in_cycle = 0
                self._last_fetch_line = line
            if self._fetched_in_cycle >= p.width:
                self._fetch_cycle += 1
                self._fetched_in_cycle = 0
            self._fetched_in_cycle += 1
            energy.bump("fetch")
            energy.bump("decode")
            energy.bump("bw_window")

            # ---------------- block-window issue ----------------
            earliest = self._fetch_cycle + p.fetch_to_issue
            if earliest < block_floor:
                earliest = block_floor
            if pos >= CGOOO_WINDOW_ENTRIES:
                w = completes[pos - CGOOO_WINDOW_ENTRIES]
                if w > earliest:
                    earliest = w
            for src in insn.srcs:
                t = reg_ready.get(src, 0)
                if t > earliest:
                    earliest = t
            energy.bump("rf_read", len(insn.srcs))
            if insn.is_load:
                dep = self._store_line_ready.get(
                    insn.mem_addr >> _LINE_SHIFT, 0)
                if dep > earliest:
                    earliest = dep
            res = None
            if insn.is_mem:
                energy.bump("dcache")
                if insn.is_load:
                    res = self.memory.load(
                        insn.pc, insn.mem_addr, now=earliest)
                    stats.loads += 1
                else:
                    res = self.memory.store(
                        insn.pc, insn.mem_addr, now=earliest)
                    stats.stores += 1
                if not res.l1_hit:
                    stats.l1d_misses += 1
                    if not res.l2_hit:
                        stats.l2_misses += 1
                    energy.bump("l2")
                    slot = self._miss_ring[
                        self._misses % p.mem_inflight]
                    if slot > earliest:
                        earliest = slot

            issue = self._fus.issue_at(
                insn.opclass, earliest, insn.base_latency)
            energy.bump(fu_type_for(insn.opclass))

            # ---------------- complete ----------------
            complete = issue + insn.base_latency
            if res is not None:
                complete += res.latency - 1
                if insn.is_store:
                    self._store_line_ready[
                        insn.mem_addr >> _LINE_SHIFT] = complete
                if not res.l1_hit:
                    self._miss_ring[self._misses % p.mem_inflight] = \
                        complete
                    self._misses += 1
            if insn.dst is not None:
                reg_ready[insn.dst] = complete
                energy.bump("rf_write")
            if complete > self._last_complete:
                self._last_complete = complete
            if complete > block_end:
                block_end = complete

            # ---------------- branches ----------------
            if insn.is_branch:
                stats.branches += 1
                energy.bump("bpred")
                wrong = self.predictor.access(insn.pc, insn.taken)
                insn.mispredicted = wrong
                if insn.taken:
                    if self.btb.lookup(insn.pc) is None:
                        self._fetch_cycle += p.btb_miss_bubble
                        self._fetched_in_cycle = 0
                        self.btb.install(insn.pc, insn.target)
                if wrong:
                    stats.mispredicts += 1
                    self._redirect_at = complete + 1
                elif insn.taken:
                    self._fetch_cycle += 1
                    self._fetched_in_cycle = 0

            completes.append(complete)
            issues.append(issue)

        self._block_ring[self._blocks % CGOOO_BLOCK_WINDOWS] = block_end
        self._blocks += 1
        if not replayed and insns:
            order = tuple(sorted(range(len(issues)),
                                 key=issues.__getitem__))
            if self.sc.insert(Schedule(
                    trace.start_pc, trace.path_hash, order)):
                energy.bump("sc_write")
