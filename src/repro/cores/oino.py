"""OinO-mode core: an in-order core that replays memoized schedules.

Execution proceeds trace by trace (paper section 3.3.2):

* **SC hit, matching path** — the trace's instructions issue in the
  *recorded OoO order* on the in-order hardware.  Fetch comes from the
  Schedule Cache (cheaper than L1I, no branch predictions needed since
  the schedule asserts the path).  The replay LSQ inserts memory ops in
  original program sequence; if this instance's addresses alias where
  the recorded instance's did not (a load scheduled ahead of an older
  same-line store), the trace **aborts**: squash penalty, then re-run
  in program order.
* **SC hit, path mismatch** — the core speculatively followed the
  memoized path, the actual outcome diverged: abort and re-run in
  program order.  Repeated aborts mark the trace unmemoizable.
* **SC miss** — plain in-order execution from the L1I.

Traces execute atomically: stores are buffered and only become visible
at trace commit, so a squash has no memory side effects to undo.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.cores.base import CoreResult, CoreStats, EnergyEvents
from repro.cores.functional_units import FUPool, fu_type_for
from repro.cores.params import (
    INO_PARAMS,
    OINO_ABORT_PENALTY,
    OINO_REPLAY_LSQ_ENTRIES,
    CoreParams,
)
from repro.frontend.branch_predictor import (
    BranchPredictor,
    TournamentPredictor,
)
from repro.frontend.btb import BranchTargetBuffer
from repro.isa.instructions import Instruction
from repro.memory.hierarchy import CoreMemory
from repro.schedule.schedule_cache import ScheduleCache
from repro.schedule.trace import Trace, TraceBuilder

_LINE_SHIFT = 6
#: Aborts out of executions after which a trace is locally blacklisted.
_ABORT_BIAS_THRESHOLD = 0.25


class OinOCore:
    """In-order core with the OinO memoized-schedule replay mode."""

    def __init__(
        self,
        memory: CoreMemory,
        sc: ScheduleCache,
        *,
        params: CoreParams = INO_PARAMS,
        predictor: BranchPredictor | None = None,
        btb: BranchTargetBuffer | None = None,
        abort_penalty: int = OINO_ABORT_PENALTY,
    ):
        self.params = params
        self.memory = memory
        self.sc = sc
        self.predictor = predictor or TournamentPredictor()
        self.btb = btb or BranchTargetBuffer()
        self.abort_penalty = abort_penalty
        self._abort_counts: dict[int, list[int]] = {}  # pc -> [aborts, runs]
        # Launch gate: per-pc [successful launches, launches].  Traces
        # whose stored schedules rarely match the dynamic path stop
        # being speculatively launched (the paper's trace selection is
        # "heavily biased against traces that mis-speculate", keeping
        # the abort penalty near 0.3 % of execution time).
        self._launch_stats: dict[int, list[int]] = {}

    # -- slice-memoization hooks (repro.simcache) ----------------------
    def state_snapshot(self) -> tuple:
        """Persistent cross-slice state as a hashable tuple.

        Everything else (``_stats``, rings, scoreboards, ...) is rebuilt
        at the top of :meth:`run`, so it never leaks between slices and
        stays out of the memo key.  The SC snapshots separately — it is
        shared with the recorder and owned by the cluster.
        """
        return (
            tuple((pc, c[0], c[1])
                  for pc, c in self._abort_counts.items()),
            tuple((pc, c[0], c[1])
                  for pc, c in self._launch_stats.items()),
            self.predictor.state_snapshot(),
            self.btb.state_snapshot(),
            self.memory.state_snapshot(),
        )

    def state_restore(self, snap: tuple) -> None:
        """Rebuild the exact state a :meth:`state_snapshot` captured."""
        aborts, launches, predictor, btb, memory = snap
        self._abort_counts = {pc: [a, b] for pc, a, b in aborts}
        self._launch_stats = {pc: [a, b] for pc, a, b in launches}
        self.predictor.state_restore(predictor)
        self.btb.state_restore(btb)
        self.memory.state_restore(memory)

    # ------------------------------------------------------------------
    def run(
        self,
        stream: Iterable[Instruction],
        max_instructions: int,
        *,
        start_cycle: int = 0,
    ) -> CoreResult:
        p = self.params
        self._stats = stats = CoreStats()
        self._energy = EnergyEvents()
        self._fus = FUPool(p.width)
        self._reg_ready = {}
        self._store_line_ready = {}
        # MSHR limits on cache misses: the base core's MSHRs in program
        # order, the wider 32-entry replay LSQ in OinO mode.
        self._miss_ring = [0] * p.mem_inflight
        self._replay_ring = [0] * OINO_REPLAY_LSQ_ENTRIES
        self._misses = 0
        self._replay_misses = 0
        # Load-delay tracking (issue_policy="ldt"), program-order mode
        # only: replayed traces already issue in recorded OoO order.
        self._ldt = p.issue_policy == "ldt"
        self._load_ready = {}
        self._ldt_ring = [0] * p.ldt_queue
        self._parked = 0
        self._fetch_cycle = start_cycle
        self._fetched_in_cycle = 0
        self._redirect_at = start_cycle
        self._last_fetch_line = -1
        self._last_issue = start_cycle
        self._last_complete = start_cycle

        builder = TraceBuilder()
        pending: list[Instruction] = []
        n = 0
        for insn in stream:
            if n >= max_instructions:
                break
            pending.append(insn)
            n += 1
            done = builder.feed(insn)
            if done is not None:
                self._run_trace(done)
                pending.clear()
        if pending:
            tail = builder.flush()
            if tail is not None:
                self._exec_program_order(tail.instructions, from_sc=False)

        stats.instructions = n
        stats.cycles = max(1, self._last_complete + 1 - start_cycle)
        return CoreResult(
            core_name="OinO", stats=stats, energy_events=self._energy
        )

    # ------------------------------------------------------------------
    def _run_trace(self, trace: Trace) -> None:
        stats = self._stats
        stats.traces += 1
        schedule = self.sc.lookup(trace.start_pc, trace.path_hash)
        self._energy.bump("sc_read")

        if (
            schedule is not None
            and len(schedule.issue_order) == len(trace)
        ):
            stats.sc_trace_hits += 1
            self._note_launch(trace.start_pc, hit=True)
            if self._replay_aliases(trace, schedule.issue_order):
                # Alias misspeculation is the *schedule's* fault: it
                # counts toward blacklisting the trace.
                self._abort(trace, blame_trace=True)
            else:
                self._exec_replay(trace, schedule.issue_order)
                self._note_run(trace.start_pc, aborted=False)
        elif self.sc.has_pc(trace.start_pc):
            # Schedules exist for this pc but not this path.  If this
            # pc's schedules usually match, the trace predictor will
            # have launched one speculatively: pay the squash.  If they
            # rarely match, the launch gate suppressed speculation and
            # the trace simply misses.
            stats.sc_trace_misses += 1
            if self._should_launch(trace.start_pc):
                self._note_launch(trace.start_pc, hit=False)
                self._abort(trace, blame_trace=False)
            else:
                self._exec_program_order(trace.instructions, from_sc=False)
        else:
            stats.sc_trace_misses += 1
            self._exec_program_order(trace.instructions, from_sc=False)

    def _abort(self, trace: Trace, *, blame_trace: bool) -> None:
        """Squash the speculative trace and restart in program order."""
        stats = self._stats
        stats.trace_aborts += 1
        stats.abort_penalty_cycles += self.abort_penalty
        self._fetch_cycle += self.abort_penalty
        self._fetched_in_cycle = 0
        self._exec_program_order(trace.instructions, from_sc=False)
        if blame_trace:
            self._note_run(trace.start_pc, aborted=True)

    def _should_launch(self, start_pc: int) -> bool:
        counts = self._launch_stats.get(start_pc)
        if counts is None or counts[1] < 8:
            return True
        return counts[0] / counts[1] >= 0.5

    def _note_launch(self, start_pc: int, *, hit: bool) -> None:
        counts = self._launch_stats.setdefault(start_pc, [0, 0])
        counts[0] += int(hit)
        counts[1] += 1
        if counts[1] >= 64:
            # Age the counters so behaviour changes can re-enable
            # (or re-disable) speculation.
            counts[0] //= 2
            counts[1] //= 2

    def _note_run(self, start_pc: int, *, aborted: bool) -> None:
        counts = self._abort_counts.setdefault(start_pc, [0, 0])
        counts[0] += int(aborted)
        counts[1] += 1
        if (
            counts[1] >= 16
            and counts[0] / counts[1] > _ABORT_BIAS_THRESHOLD
        ):
            self.sc.mark_unmemoizable(start_pc)

    @staticmethod
    def _replay_aliases(trace: Trace, order: tuple[int, ...]) -> bool:
        """True if replaying *order* breaks a store->load dependence.

        The replay LSQ holds memory ops in program sequence; an alias
        exists when a load issues (in recorded order) before an older
        same-line store has issued.
        """
        insns = trace.instructions
        unissued_stores: dict[int, list[int]] = {}
        for pos, insn in enumerate(insns):
            if insn.is_store:
                unissued_stores.setdefault(
                    insn.mem_addr >> _LINE_SHIFT, []
                ).append(pos)
        if not unissued_stores:
            # No stores, no store->load order to break: most traces
            # take this exit and skip the replay scan entirely.
            return False
        for pos in order:
            insn = insns[pos]
            if insn.is_store:
                unissued_stores[insn.mem_addr >> _LINE_SHIFT].remove(pos)
            elif insn.is_load:
                older = unissued_stores.get(insn.mem_addr >> _LINE_SHIFT)
                if older and older[0] < pos:
                    return True
        return False

    # ------------------------------------------------------------------
    def _exec_replay(self, trace: Trace, order: tuple[int, ...]) -> None:
        """Issue the trace's instructions in their recorded OoO order."""
        stats = self._stats
        energy = self._energy
        insns = trace.instructions
        stats.memoized_instructions += len(insns)
        stats.branches += trace.num_branches
        # Fetch comes from the SC: one SC read per instruction, no L1I
        # pressure, no branch predictor lookups (path is asserted).
        energy.bump("sc_read", len(insns))
        energy.bump("decode", len(insns))
        energy.bump("oino_prf", len(insns))
        trace_end = self._last_complete
        for pos in order:
            insn = insns[pos]
            complete = self._issue_one(insn, energy, replay=True)
            if insn.is_store:
                # Stores are buffered until trace commit for squash
                # safety, but the store buffer forwards to younger
                # loads, so dependents wait only for the data.
                self._store_line_ready[insn.mem_addr >> _LINE_SHIFT] = \
                    complete
            if complete > trace_end:
                trace_end = complete
        if trace_end > self._last_complete:
            self._last_complete = trace_end

    def _exec_program_order(
        self, insns: list[Instruction], *, from_sc: bool
    ) -> None:
        """Plain InO execution (SC miss or post-abort replay)."""
        p = self.params
        stats = self._stats
        energy = self._energy
        for insn in insns:
            # ---------------- fetch ----------------
            if self._fetch_cycle < self._redirect_at:
                self._fetch_cycle = self._redirect_at
                self._fetched_in_cycle = 0
            line = insn.pc >> _LINE_SHIFT
            if line != self._last_fetch_line:
                res = self.memory.fetch(insn.pc, now=self._fetch_cycle)
                energy["icache"] += 1
                if not res.l1_hit:
                    stats.l1i_misses += 1
                    if not res.l2_hit:
                        stats.l2_misses += 1
                    self._fetch_cycle += res.latency - self.memory.l1_latency
                    self._fetched_in_cycle = 0
                self._last_fetch_line = line
            if self._fetched_in_cycle >= p.width:
                self._fetch_cycle += 1
                self._fetched_in_cycle = 0
            self._fetched_in_cycle += 1
            energy["fetch"] += 1
            energy["decode"] += 1

            complete = self._issue_one(insn, energy, replay=False)

            # ---------------- branches ----------------
            if insn.is_branch:
                stats.branches += 1
                energy["bpred"] += 1
                wrong = self.predictor.access(insn.pc, insn.taken)
                insn.mispredicted = wrong
                if insn.taken:
                    if self.btb.lookup(insn.pc) is None:
                        self._fetch_cycle += p.btb_miss_bubble
                        self._fetched_in_cycle = 0
                        self.btb.install(insn.pc, insn.target)
                if wrong:
                    stats.mispredicts += 1
                    self._redirect_at = complete + 1
                elif insn.taken:
                    self._fetch_cycle += 1
                    self._fetched_in_cycle = 0

    def _issue_one(
        self, insn: Instruction, energy: EnergyEvents, *, replay: bool
    ) -> int:
        """Common in-order issue/execute step; returns completion cycle.

        Called once per dynamic instruction from both execution modes,
        so energy events are recorded with direct ``Counter`` item
        updates (same keys, same totals as ``bump``, one call fewer).
        """
        p = self.params
        stats = self._stats
        if replay:
            earliest = self._last_issue
        else:
            earliest = self._fetch_cycle + p.fetch_to_issue
            if earliest < self._last_issue:
                earliest = self._last_issue
        dispatch = earliest
        load_wait = 0
        ldt = self._ldt and not replay
        reg_ready = self._reg_ready
        for src in insn.srcs:
            t = reg_ready.get(src, 0)
            if t > earliest:
                earliest = t
            if ldt:
                lt = self._load_ready.get(src, 0)
                if lt > load_wait:
                    load_wait = lt
        energy["rf_read"] += len(insn.srcs)
        if insn.is_load:
            dep = self._store_line_ready.get(insn.mem_addr >> _LINE_SHIFT, 0)
            if dep > earliest:
                earliest = dep
        res = None
        missed = False
        if insn.is_mem:
            energy["dcache"] += 1
            if replay:
                energy["oino_lsq"] += 1
            if insn.is_load:
                res = self.memory.load(insn.pc, insn.mem_addr, now=earliest)
                stats.loads += 1
            else:
                res = self.memory.store(insn.pc, insn.mem_addr, now=earliest)
                stats.stores += 1
            if not res.l1_hit:
                missed = True
                stats.l1d_misses += 1
                if not res.l2_hit:
                    stats.l2_misses += 1
                energy["l2"] += 1
                if replay:
                    slot = self._replay_ring[
                        self._replay_misses % OINO_REPLAY_LSQ_ENTRIES]
                else:
                    slot = self._miss_ring[self._misses % p.mem_inflight]
                if slot > earliest:
                    earliest = slot

        base_latency = insn.base_latency
        issue = self._fus.issue_at(insn.opclass, earliest, base_latency)
        if ldt and issue > dispatch and load_wait > dispatch:
            # Park the load-dependent: younger independents keep the
            # dispatch-point floor (see InOrderCore for the model).
            slot = self._ldt_ring[self._parked % p.ldt_queue]
            self._last_issue = dispatch if slot <= dispatch else slot
            self._ldt_ring[self._parked % p.ldt_queue] = \
                issue + base_latency
            self._parked += 1
            energy["lsq"] += 1
        else:
            self._last_issue = issue
        energy[fu_type_for(insn.opclass)] += 1

        complete = issue + base_latency
        if res is not None:
            complete += res.latency - 1
            if insn.is_store and not replay:
                self._store_line_ready[insn.mem_addr >> _LINE_SHIFT] = complete
            if missed:
                if replay:
                    self._replay_ring[
                        self._replay_misses % OINO_REPLAY_LSQ_ENTRIES] = \
                        complete
                    self._replay_misses += 1
                else:
                    self._miss_ring[self._misses % p.mem_inflight] = complete
                    self._misses += 1
        if insn.dst is not None:
            reg_ready[insn.dst] = complete
            energy["rf_write"] += 1
            if ldt:
                if insn.is_load:
                    self._load_ready[insn.dst] = complete
                else:
                    self._load_ready.pop(insn.dst, None)
        if complete > self._last_complete:
            self._last_complete = complete
        return complete
