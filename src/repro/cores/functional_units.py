"""Issue-slot and functional-unit occupancy accounting.

The dataflow-slot core models need to answer one question efficiently:
*given an earliest-ready cycle, when can this instruction actually
issue?*  :class:`SlotPool` tracks per-cycle usage of a resource with a
fixed per-cycle capacity; :class:`FUPool` combines the global issue
width with per-FU-type unit counts and (for divides) non-pipelined
initiation intervals.
"""

from __future__ import annotations

from repro.isa.instructions import OpClass

#: Functional-unit types.
FU_INT = "int_alu"
FU_MUL = "int_mul"
FU_FP = "fp_alu"
FU_FDIV = "fp_div"
FU_MEM = "mem_port"
FU_BR = "branch"

_FU_FOR_OPCLASS = {
    OpClass.IALU: FU_INT,
    OpClass.IMUL: FU_MUL,
    OpClass.IDIV: FU_MUL,
    OpClass.FALU: FU_FP,
    OpClass.FMUL: FU_FP,
    OpClass.FDIV: FU_FDIV,
    OpClass.LOAD: FU_MEM,
    OpClass.STORE: FU_MEM,
    OpClass.BRANCH: FU_BR,
    OpClass.NOP: FU_INT,
}

#: Unit counts for the 3-wide machine (same for OoO and InO, paper §4.2).
DEFAULT_FU_COUNTS = {
    FU_INT: 3,
    FU_MUL: 1,
    FU_FP: 2,
    FU_FDIV: 1,
    FU_MEM: 2,
    FU_BR: 1,
}

#: Op classes that occupy their unit for the full latency (unpipelined).
_UNPIPELINED = frozenset({OpClass.IDIV, OpClass.FDIV})


def fu_type_for(opclass: OpClass) -> str:
    """Functional-unit type an instruction of *opclass* executes on."""
    return _FU_FOR_OPCLASS[opclass]


class SlotPool:
    """Per-cycle capacity tracker with lazy pruning.

    Cycle indices only grow over a run; entries far behind the
    high-water mark are pruned in bulk to bound memory.
    """

    __slots__ = ("capacity", "_used", "_horizon", "_prune_at")

    def __init__(self, capacity: int, prune_window: int = 50_000):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._used: dict[int, int] = {}
        self._horizon = 0
        self._prune_at = prune_window

    def earliest_free(self, cycle: int, span: int = 1) -> int:
        """First cycle >= *cycle* with *span* consecutive free slots."""
        used = self._used
        cap = self.capacity
        if span == 1:
            # Pipelined ops (the overwhelmingly common case): a plain
            # scan without the inner offset loop.
            c = cycle
            get = used.get
            while get(c, 0) >= cap:
                c += 1
            return c
        c = cycle
        while True:
            for offset in range(span):
                if used.get(c + offset, 0) >= cap:
                    c = c + offset + 1
                    break
            else:
                return c

    def reserve(self, cycle: int, span: int = 1) -> None:
        """Consume one slot in each of cycles [cycle, cycle+span)."""
        used = self._used
        if span == 1:
            used[cycle] = used.get(cycle, 0) + 1
        else:
            for c in range(cycle, cycle + span):
                used[c] = used.get(c, 0) + 1
        if cycle > self._horizon:
            self._horizon = cycle
        if len(used) > self._prune_at:
            self._prune()

    def _prune(self) -> None:
        floor = self._horizon - self._prune_at // 2
        self._used = {c: n for c, n in self._used.items() if c >= floor}

    def usage_at(self, cycle: int) -> int:
        return self._used.get(cycle, 0)


class FUPool:
    """Joint issue-width + functional-unit availability."""

    def __init__(self, width: int, counts: dict[str, int] | None = None):
        self.width = width
        counts = dict(DEFAULT_FU_COUNTS if counts is None else counts)
        self.issue_slots = SlotPool(width)
        self.units = {fu: SlotPool(n) for fu, n in counts.items()}
        # Hot-path tables indexed by the OpClass int value: issue_at
        # runs once per dynamic instruction, so the per-call enum hash
        # for the unit lookup and the _UNPIPELINED probe are paid here
        # instead.
        self._unit_by_op = tuple(
            self.units[_FU_FOR_OPCLASS[op]] for op in OpClass)
        self._pipelined_by_op = tuple(
            op not in _UNPIPELINED for op in OpClass)

    def issue_at(self, opclass: OpClass, earliest: int, latency: int) -> int:
        """Find and reserve the first cycle >= *earliest* that has both a
        free issue slot and a free unit; returns the issue cycle."""
        unit = self._unit_by_op[opclass]
        if self._pipelined_by_op[opclass]:
            # Single-cycle occupancy: scan for the first cycle where
            # both pools have a slot (what the general ping-pong loop
            # below converges to), then reserve inline.
            issue = self.issue_slots
            iused = issue._used
            icap = issue.capacity
            uused = unit._used
            ucap = unit.capacity
            iget = iused.get
            uget = uused.get
            c = earliest
            while iget(c, 0) >= icap or uget(c, 0) >= ucap:
                c += 1
            iused[c] = iget(c, 0) + 1
            if c > issue._horizon:
                issue._horizon = c
            if len(iused) > issue._prune_at:
                issue._prune()
            uused[c] = uget(c, 0) + 1
            if c > unit._horizon:
                unit._horizon = c
            if len(uused) > unit._prune_at:
                unit._prune()
            return c
        span = latency
        cycle = earliest
        while True:
            cycle = self.issue_slots.earliest_free(cycle)
            unit_cycle = unit.earliest_free(cycle, span)
            if unit_cycle == cycle:
                self.issue_slots.reserve(cycle)
                unit.reserve(cycle, span)
                return cycle
            cycle = unit_cycle
