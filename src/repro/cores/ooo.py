"""Out-of-order core model (dataflow-slot style).

One pass per instruction computes, in program order, when it fetches,
issues, completes and commits, subject to:

* fetch width and L1I-line access latency, branch-redirect bubbles
  (mispredicted branches restart fetch when they resolve), BTB misses;
* a ``rob_size``-entry window: an instruction cannot dispatch until the
  instruction ``rob_size`` older has committed;
* register dataflow (renaming removes WAR/WAW, so only RAW matters);
* issue width and functional-unit counts (divides are unpipelined);
* an ``lsq_size``-entry load/store queue and dcache access latencies,
  with same-line store->load ordering enforced;
* in-order commit at machine width.

When a :class:`~repro.schedule.recorder.ScheduleRecorder` is attached,
each completed trace is reported together with its issue permutation,
and a Schedule Cache lookup is performed per trace so that SC-MPKI is
measured on the producer side too (the arbitrator's memoizability
signal, paper section 3.2.1).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.cores.base import CoreResult, CoreStats, EnergyEvents
from repro.cores.functional_units import FUPool, SlotPool, fu_type_for
from repro.cores.params import OOO_PARAMS, CoreParams
from repro.frontend.branch_predictor import (
    BranchPredictor,
    TournamentPredictor,
)
from repro.frontend.btb import BranchTargetBuffer
from repro.isa.instructions import Instruction
from repro.memory.hierarchy import CoreMemory, MemoryHierarchy
from repro.schedule.recorder import ScheduleRecorder
from repro.schedule.trace import TraceBuilder

_LINE_SHIFT = 6


def standalone_memory(core_id: int = 0) -> CoreMemory:
    """A private memory hierarchy for single-core experiments."""
    return MemoryHierarchy().core_view(core_id)


class OutOfOrderCore:
    """3-wide out-of-order producer core."""

    def __init__(
        self,
        memory: CoreMemory,
        *,
        params: CoreParams = OOO_PARAMS,
        predictor: BranchPredictor | None = None,
        btb: BranchTargetBuffer | None = None,
        recorder: ScheduleRecorder | None = None,
    ):
        self.params = params
        self.memory = memory
        self.predictor = predictor or TournamentPredictor()
        self.btb = btb or BranchTargetBuffer()
        self.recorder = recorder

    # -- slice-memoization hooks (repro.simcache) ----------------------
    def state_snapshot(self) -> tuple:
        """Persistent cross-slice state as a hashable tuple.

        The OoO core itself is stateless between :meth:`run` calls —
        everything mutable it touches lives in the injected frontend,
        memory and recorder structures, so the snapshot is simply
        theirs.  The recorder's SC snapshots separately (the cluster
        owns and shares it).
        """
        return (
            self.predictor.state_snapshot(),
            self.btb.state_snapshot(),
            self.memory.state_snapshot(),
            None if self.recorder is None
            else self.recorder.state_snapshot(),
        )

    def state_restore(self, snap: tuple) -> None:
        """Rebuild the exact state a :meth:`state_snapshot` captured."""
        predictor, btb, memory, recorder = snap
        self.predictor.state_restore(predictor)
        self.btb.state_restore(btb)
        self.memory.state_restore(memory)
        if recorder is not None:
            self.recorder.state_restore(recorder)

    def run(
        self,
        stream: Iterable[Instruction],
        max_instructions: int,
        *,
        start_cycle: int = 0,
    ) -> CoreResult:
        """Execute up to *max_instructions* from *stream*."""
        p = self.params
        stats = CoreStats()
        energy = EnergyEvents()
        fus = FUPool(p.width)
        commit_slots = SlotPool(p.width)

        reg_ready: dict[int, int] = {}
        store_line_ready: dict[int, int] = {}
        rob_ring: list[int] = [0] * p.rob_size
        lq_ring: list[int] = [0] * p.lq_size
        sq_ring: list[int] = [0] * p.sq_size

        fetch_cycle = start_cycle
        fetched_in_cycle = 0
        redirect_at = start_cycle
        last_fetch_line = -1
        last_commit = start_cycle

        trace_builder = TraceBuilder()
        trace_issues: list[int] = []
        trace_first_issue = -1
        trace_last_complete = 0
        recorder = self.recorder
        sc = recorder.sc if recorder is not None else None

        # Hot-loop locals: attribute loads and per-event Counter bumps
        # dominate the profile at ~10^5 instructions/s.  Constant-rate
        # energy events (fetch/decode/rename/rob/scheduler, per-class
        # FU counts...) are tallied in plain ints/dicts and folded into
        # the Counter once after the loop — same totals, no per-insn
        # Counter.__getitem__/__setitem__ churn.
        memory = self.memory
        mem_load = memory.load
        mem_store = memory.store
        mem_fetch = memory.fetch
        l1_latency = memory.l1_latency
        predictor_access = self.predictor.access
        btb = self.btb
        width = p.width
        fetch_to_issue = p.fetch_to_issue
        rob_size = p.rob_size
        lq_size = p.lq_size
        sq_size = p.sq_size
        btb_miss_bubble = p.btb_miss_bubble
        issue_at = fus.issue_at
        reg_ready_get = reg_ready.get
        store_line_ready_get = store_line_ready.get
        feed = trace_builder.feed
        icache_events = 0
        fu_events: dict[str, int] = {}
        prf_reads = 0
        prf_writes = 0
        mem_events = 0
        l2_fill_events = 0

        n = 0
        loads = 0
        stores = 0
        for insn in stream:
            if n >= max_instructions:
                break
            # ---------------- fetch ----------------
            if fetch_cycle < redirect_at:
                fetch_cycle = redirect_at
                fetched_in_cycle = 0
            line = insn.pc >> _LINE_SHIFT
            if line != last_fetch_line:
                res = mem_fetch(insn.pc, now=fetch_cycle)
                icache_events += 1
                if not res.l1_hit:
                    stats.l1i_misses += 1
                    if not res.l2_hit:
                        stats.l2_misses += 1
                    fetch_cycle += res.latency - l1_latency
                    fetched_in_cycle = 0
                last_fetch_line = line
            if fetched_in_cycle >= width:
                fetch_cycle += 1
                fetched_in_cycle = 0
            fetched_in_cycle += 1

            # ---------------- dispatch (ROB/LSQ occupancy) -------------
            dispatch = fetch_cycle + fetch_to_issue
            rob_slot = n % rob_size
            if dispatch <= rob_ring[rob_slot]:
                dispatch = rob_ring[rob_slot] + 1
            lsq_slot = -1
            if insn.is_load:
                lsq_slot = loads % lq_size
                if dispatch <= lq_ring[lsq_slot]:
                    dispatch = lq_ring[lsq_slot] + 1
            elif insn.is_store:
                lsq_slot = stores % sq_size
                if dispatch <= sq_ring[lsq_slot]:
                    dispatch = sq_ring[lsq_slot] + 1

            # ---------------- register/memory readiness ----------------
            earliest = dispatch
            for src in insn.srcs:
                t = reg_ready_get(src, 0)
                if t > earliest:
                    earliest = t
            prf_reads += len(insn.srcs)

            if insn.is_load:
                dep = store_line_ready_get(insn.mem_addr >> _LINE_SHIFT, 0)
                if dep > earliest:
                    earliest = dep

            # ---------------- issue ----------------
            base_latency = insn.base_latency
            issue = issue_at(insn.opclass, earliest, base_latency)
            fu = fu_type_for(insn.opclass)
            fu_events[fu] = fu_events.get(fu, 0) + 1

            # ---------------- complete ----------------
            complete = issue + base_latency
            if insn.is_mem:
                mem_events += 1
                if insn.is_load:
                    loads += 1
                    res = mem_load(insn.pc, insn.mem_addr, now=issue)
                    stats.loads += 1
                else:
                    stores += 1
                    res = mem_store(insn.pc, insn.mem_addr, now=issue)
                    stats.stores += 1
                if not res.l1_hit:
                    stats.l1d_misses += 1
                    if not res.l2_hit:
                        stats.l2_misses += 1
                    l2_fill_events += 1
                complete += res.latency - 1
                if insn.is_store:
                    store_line_ready[insn.mem_addr >> _LINE_SHIFT] = complete

            if insn.dst is not None:
                reg_ready[insn.dst] = complete
                prf_writes += 1

            # ---------------- branches ----------------
            if insn.is_branch:
                stats.branches += 1
                wrong = predictor_access(insn.pc, insn.taken)
                insn.mispredicted = wrong
                if insn.taken:
                    if btb.lookup(insn.pc) is None:
                        fetch_cycle += btb_miss_bubble
                        fetched_in_cycle = 0
                        btb.install(insn.pc, insn.target)
                if wrong:
                    stats.mispredicts += 1
                    redirect_at = complete + 1
                elif insn.taken:
                    # Taken branches end the fetch group.
                    fetch_cycle += 1
                    fetched_in_cycle = 0

            # ---------------- commit ----------------
            base = complete + 1
            if base < last_commit:
                base = last_commit
            commit = commit_slots.earliest_free(base)
            commit_slots.reserve(commit)
            last_commit = commit
            rob_ring[rob_slot] = commit
            if lsq_slot >= 0:
                if insn.is_load:
                    lq_ring[lsq_slot] = commit
                else:
                    sq_ring[lsq_slot] = commit

            # ---------------- trace recording ----------------
            if recorder is not None:
                trace_issues.append(issue)
                if trace_first_issue < 0 or issue < trace_first_issue:
                    trace_first_issue = issue
                if complete > trace_last_complete:
                    trace_last_complete = complete
                done = feed(insn)
                if done is not None:
                    stats.traces += 1
                    # Stable sort: ties already break by position, so
                    # the issue cycle alone reproduces (issue, k) order.
                    order = tuple(sorted(
                        range(len(trace_issues)),
                        key=trace_issues.__getitem__,
                    ))
                    if sc.lookup(done.start_pc, done.path_hash) is None:
                        stats.sc_trace_misses += 1
                    else:
                        stats.sc_trace_hits += 1
                        stats.memoized_instructions += len(done)
                    recorder.observe(
                        done, order,
                        trace_last_complete - trace_first_issue,
                    )
                    energy.bump("sc_write")
                    trace_issues.clear()
                    trace_first_issue = -1
                    trace_last_complete = 0

            n += 1

        # Fold the batched tallies in, skipping zero counts so the
        # Counter holds exactly the keys the per-event path created.
        for structure, count in (
            ("icache", icache_events),
            ("fetch", n),
            ("decode", n),
            ("rename", n),
            ("rob", n),
            ("scheduler", n),
            ("prf_read", prf_reads),
            ("prf_write", prf_writes),
            ("lsq", mem_events),
            ("dcache", mem_events),
            ("l2", l2_fill_events),
            ("bpred", stats.branches),
            *fu_events.items(),
        ):
            if count:
                energy.bump(structure, count)

        stats.instructions = n
        stats.cycles = max(1, last_commit - start_cycle)
        return CoreResult(
            core_name=self.params.name, stats=stats, energy_events=energy
        )
