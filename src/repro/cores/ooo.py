"""Out-of-order core model (dataflow-slot style).

One pass per instruction computes, in program order, when it fetches,
issues, completes and commits, subject to:

* fetch width and L1I-line access latency, branch-redirect bubbles
  (mispredicted branches restart fetch when they resolve), BTB misses;
* a ``rob_size``-entry window: an instruction cannot dispatch until the
  instruction ``rob_size`` older has committed;
* register dataflow (renaming removes WAR/WAW, so only RAW matters);
* issue width and functional-unit counts (divides are unpipelined);
* an ``lsq_size``-entry load/store queue and dcache access latencies,
  with same-line store->load ordering enforced;
* in-order commit at machine width.

When a :class:`~repro.schedule.recorder.ScheduleRecorder` is attached,
each completed trace is reported together with its issue permutation,
and a Schedule Cache lookup is performed per trace so that SC-MPKI is
measured on the producer side too (the arbitrator's memoizability
signal, paper section 3.2.1).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.cores.base import CoreResult, CoreStats, EnergyEvents
from repro.cores.functional_units import FUPool, SlotPool, fu_type_for
from repro.cores.params import OOO_PARAMS, CoreParams
from repro.frontend.branch_predictor import (
    BranchPredictor,
    TournamentPredictor,
)
from repro.frontend.btb import BranchTargetBuffer
from repro.isa.instructions import Instruction
from repro.memory.hierarchy import CoreMemory, MemoryHierarchy
from repro.schedule.recorder import ScheduleRecorder
from repro.schedule.trace import TraceBuilder

_LINE_SHIFT = 6


def standalone_memory(core_id: int = 0) -> CoreMemory:
    """A private memory hierarchy for single-core experiments."""
    return MemoryHierarchy().core_view(core_id)


class OutOfOrderCore:
    """3-wide out-of-order producer core."""

    def __init__(
        self,
        memory: CoreMemory,
        *,
        params: CoreParams = OOO_PARAMS,
        predictor: BranchPredictor | None = None,
        btb: BranchTargetBuffer | None = None,
        recorder: ScheduleRecorder | None = None,
    ):
        self.params = params
        self.memory = memory
        self.predictor = predictor or TournamentPredictor()
        self.btb = btb or BranchTargetBuffer()
        self.recorder = recorder

    def run(
        self,
        stream: Iterable[Instruction],
        max_instructions: int,
        *,
        start_cycle: int = 0,
    ) -> CoreResult:
        """Execute up to *max_instructions* from *stream*."""
        p = self.params
        stats = CoreStats()
        energy = EnergyEvents()
        fus = FUPool(p.width)
        commit_slots = SlotPool(p.width)

        reg_ready: dict[int, int] = {}
        store_line_ready: dict[int, int] = {}
        rob_ring: list[int] = [0] * p.rob_size
        lq_ring: list[int] = [0] * p.lq_size
        sq_ring: list[int] = [0] * p.sq_size

        fetch_cycle = start_cycle
        fetched_in_cycle = 0
        redirect_at = start_cycle
        last_fetch_line = -1
        last_commit = start_cycle

        trace_builder = TraceBuilder()
        trace_issues: list[int] = []
        trace_first_issue = -1
        trace_last_complete = 0
        recorder = self.recorder
        sc = recorder.sc if recorder is not None else None

        n = 0
        loads = 0
        stores = 0
        for insn in stream:
            if n >= max_instructions:
                break
            # ---------------- fetch ----------------
            if fetch_cycle < redirect_at:
                fetch_cycle = redirect_at
                fetched_in_cycle = 0
            line = insn.pc >> _LINE_SHIFT
            if line != last_fetch_line:
                res = self.memory.fetch(insn.pc, now=fetch_cycle)
                energy.bump("icache")
                if not res.l1_hit:
                    stats.l1i_misses += 1
                    if not res.l2_hit:
                        stats.l2_misses += 1
                    fetch_cycle += res.latency - self.memory.l1_latency
                    fetched_in_cycle = 0
                last_fetch_line = line
            if fetched_in_cycle >= p.width:
                fetch_cycle += 1
                fetched_in_cycle = 0
            fetched_in_cycle += 1
            energy.bump("fetch")
            energy.bump("decode")
            energy.bump("rename")

            # ---------------- dispatch (ROB/LSQ occupancy) -------------
            dispatch = fetch_cycle + p.fetch_to_issue
            rob_slot = n % p.rob_size
            if dispatch <= rob_ring[rob_slot]:
                dispatch = rob_ring[rob_slot] + 1
            lsq_slot = -1
            if insn.is_load:
                lsq_slot = loads % p.lq_size
                if dispatch <= lq_ring[lsq_slot]:
                    dispatch = lq_ring[lsq_slot] + 1
            elif insn.is_store:
                lsq_slot = stores % p.sq_size
                if dispatch <= sq_ring[lsq_slot]:
                    dispatch = sq_ring[lsq_slot] + 1
            energy.bump("rob")
            energy.bump("scheduler")

            # ---------------- register/memory readiness ----------------
            earliest = dispatch
            for src in insn.srcs:
                t = reg_ready.get(src, 0)
                if t > earliest:
                    earliest = t
            energy.bump("prf_read", len(insn.srcs))

            if insn.is_load:
                dep = store_line_ready.get(insn.mem_addr >> _LINE_SHIFT, 0)
                if dep > earliest:
                    earliest = dep

            # ---------------- issue ----------------
            issue = fus.issue_at(insn.opclass, earliest, insn.base_latency)
            energy.bump(fu_type_for(insn.opclass))

            # ---------------- complete ----------------
            complete = issue + insn.base_latency
            if insn.is_mem:
                energy.bump("lsq")
                energy.bump("dcache")
                if insn.is_load:
                    loads += 1
                    res = self.memory.load(insn.pc, insn.mem_addr, now=issue)
                    stats.loads += 1
                else:
                    stores += 1
                    res = self.memory.store(insn.pc, insn.mem_addr, now=issue)
                    stats.stores += 1
                if not res.l1_hit:
                    stats.l1d_misses += 1
                    if not res.l2_hit:
                        stats.l2_misses += 1
                    energy.bump("l2")
                complete += res.latency - 1
                if insn.is_store:
                    store_line_ready[insn.mem_addr >> _LINE_SHIFT] = complete

            if insn.dst is not None:
                reg_ready[insn.dst] = complete
                energy.bump("prf_write")

            # ---------------- branches ----------------
            if insn.is_branch:
                stats.branches += 1
                energy.bump("bpred")
                wrong = self.predictor.access(insn.pc, insn.taken)
                insn.mispredicted = wrong
                if insn.taken:
                    if self.btb.lookup(insn.pc) is None:
                        fetch_cycle += p.btb_miss_bubble
                        fetched_in_cycle = 0
                        self.btb.install(insn.pc, insn.target)
                if wrong:
                    stats.mispredicts += 1
                    redirect_at = complete + 1
                elif insn.taken:
                    # Taken branches end the fetch group.
                    fetch_cycle += 1
                    fetched_in_cycle = 0

            # ---------------- commit ----------------
            base = complete + 1
            if base < last_commit:
                base = last_commit
            commit = commit_slots.earliest_free(base)
            commit_slots.reserve(commit)
            last_commit = commit
            rob_ring[rob_slot] = commit
            if lsq_slot >= 0:
                if insn.is_load:
                    lq_ring[lsq_slot] = commit
                else:
                    sq_ring[lsq_slot] = commit

            # ---------------- trace recording ----------------
            if recorder is not None:
                trace_issues.append(issue)
                if trace_first_issue < 0 or issue < trace_first_issue:
                    trace_first_issue = issue
                if complete > trace_last_complete:
                    trace_last_complete = complete
                done = trace_builder.feed(insn)
                if done is not None:
                    stats.traces += 1
                    order = tuple(sorted(
                        range(len(trace_issues)),
                        key=lambda k: (trace_issues[k], k),
                    ))
                    if sc.lookup(done.start_pc, done.path_hash) is None:
                        stats.sc_trace_misses += 1
                    else:
                        stats.sc_trace_hits += 1
                        stats.memoized_instructions += len(done)
                    recorder.observe(
                        done, order,
                        trace_last_complete - trace_first_issue,
                    )
                    energy.bump("sc_write")
                    trace_issues.clear()
                    trace_first_issue = -1
                    trace_last_complete = 0

            n += 1

        stats.instructions = n
        stats.cycles = max(1, last_commit - start_cycle)
        return CoreResult(
            core_name=self.params.name, stats=stats, energy_events=energy
        )
