"""One knob surface for every cache layer.

The repo grew three caching layers, each with its own switches:

* the **result cache** (:mod:`repro.runner.cache`) — finished work-unit
  payloads on disk, controlled by ``--cache-dir`` / ``--no-cache``;
* the **slice memo** (:mod:`repro.simcache`) — in-memory detailed-tier
  slice replay, controlled by ``--sim-cache`` / ``--no-sim-cache`` and
  the ``MIRAGE_SIM_CACHE`` environment variable;
* the memo's **disk store** — cross-process slice persistence under
  the result-cache directory, controlled by ``--sim-cache-disk`` and
  ``MIRAGE_SIM_CACHE_DISK``.

:class:`CacheConfig` collapses those into one dataclass that the CLI
builds once and threads through
:class:`~repro.experiments.registry.ExperimentParams` to the sweep
runner and (via the process-wide switches in :mod:`repro.simcache`)
the backends.  ``None`` fields mean "follow the environment", so a
config built from defaults changes nothing.

:func:`default_cache_dir` lives here (re-exported from
:mod:`repro.runner.cache` for compatibility) because both the result
cache and the slice store root under it.

:class:`ServiceConfig` is the same idea for the experiment service
(:mod:`repro.service`): one picklable dataclass carrying every server
knob — bind address, fleet size, heartbeat cadence, the service state
directory — that the CLI builds once and hands to
:class:`~repro.service.server.ExperimentServer`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.runner.cache import ResultCache

#: Schema tag for results the experiment service stores through the
#: shared :class:`~repro.runner.cache.ResultCache`.  Folded into every
#: cache key, so bumping it (when the service's job decomposition or
#: payload encoding changes meaning) invalidates service-produced
#: entries without touching the package version.  Lives here, not in
#: :mod:`repro.service`, so the cache can import it without a cycle.
SERVICE_CACHE_TAG = "service-v1"


def default_cache_dir() -> Path:
    """``$MIRAGE_CACHE_DIR``, else ``$XDG_CACHE_HOME/mirage``, else
    ``~/.cache/mirage``."""
    env = os.environ.get("MIRAGE_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "mirage"


def default_service_dir() -> Path:
    """``$MIRAGE_SERVICE_DIR``, else ``service/`` under the cache dir.

    The service directory holds everything a running server owns: the
    ``server.json`` address file, the job journal, and the per-job
    JSONL stream files.  Rooting it under :func:`default_cache_dir`
    keeps every on-disk artifact of the system under one tree.
    """
    env = os.environ.get("MIRAGE_SERVICE_DIR")
    if env:
        return Path(env)
    return default_cache_dir() / "service"


@dataclass
class CacheConfig:
    """Every cache switch, in one picklable place.

    Attributes:
        cache_dir: root for the result cache and the slice store
            (``None`` = :func:`default_cache_dir`).
        use_result_cache: consult/populate the on-disk result cache.
        sim_cache: detailed-tier slice memoization; ``None`` follows
            the ``MIRAGE_SIM_CACHE`` environment (default on).
        sim_cache_disk: persist memoized slices to disk; ``None``
            follows ``MIRAGE_SIM_CACHE_DISK`` (default off).
        backend: the selected registry backend name (see
            :func:`repro.engine.registry.get_backend`); folded into
            every result-cache key so entries from different backends
            never collide.  ``None`` = the default backend pair.
        migration_cost_model: the selected migration pricing (see
            :data:`repro.cmp.migration.MIGRATION_COST_MODELS`), also
            folded into the cache key.  ``None`` = ``"l1-flush"``.
    """

    cache_dir: str | Path | None = None
    use_result_cache: bool = True
    sim_cache: bool | None = None
    sim_cache_disk: bool | None = None
    backend: str | None = None
    migration_cost_model: str | None = None

    @classmethod
    def from_env(cls) -> "CacheConfig":
        """The configuration the current environment implies.

        Materializes the env-var switches into concrete booleans, so
        the result describes (rather than defers to) the environment.
        """
        from repro import simcache

        return cls(
            cache_dir=os.environ.get("MIRAGE_CACHE_DIR") or None,
            use_result_cache=True,
            sim_cache=simcache.enabled(),
            sim_cache_disk=simcache.disk_enabled(),
        )

    def apply(self) -> "CacheConfig":
        """Push the slice-memo switches process-wide and return self.

        Writes through :func:`repro.simcache.set_enabled` /
        :func:`~repro.simcache.set_disk_enabled` (which also export
        the env vars, so ``--jobs`` worker processes inherit them) and
        exports ``MIRAGE_CACHE_DIR`` when a directory is set, so the
        slice store roots under the same tree in every process.
        ``None`` fields change nothing.
        """
        from repro import simcache

        if self.cache_dir is not None:
            os.environ["MIRAGE_CACHE_DIR"] = str(self.cache_dir)
        if self.sim_cache is not None:
            simcache.set_enabled(self.sim_cache)
        if self.sim_cache_disk is not None:
            simcache.set_disk_enabled(self.sim_cache_disk)
        return self

    def result_cache(self) -> "ResultCache | None":
        """The :class:`~repro.runner.cache.ResultCache` this config
        asks for, or ``None`` when the result cache is off."""
        if not self.use_result_cache:
            return None
        from repro.runner.cache import ResultCache

        if self.backend is not None:
            # Resolve through the registry so a typo surfaces here as
            # a roster-listing ValueError, not as a silent cache key.
            from repro.engine.registry import get_backend

            get_backend(self.backend)
        return ResultCache(
            self.cache_dir,
            core_backend=self.backend,
            cost_model=self.migration_cost_model,
        )


@dataclass
class ServiceConfig:
    """Every experiment-server knob, in one picklable place.

    Attributes:
        host: interface the server binds; loopback by default — the
            service trusts its clients.
        port: TCP port to bind; 0 picks an ephemeral port (the bound
            address is published in ``<service_dir>/server.json``).
        workers: worker processes to spawn and keep alive; 0 runs a
            server with no fleet of its own (external workers may
            still connect, which is how the tests drive eviction).
        heartbeat_interval: seconds between worker heartbeats.
        heartbeat_timeout: seconds of heartbeat silence after which a
            worker is evicted and its in-flight unit requeued.
        drain_timeout: seconds a graceful drain waits for in-flight
            work before shutting down anyway.
        service_dir: state directory (``None`` =
            :func:`default_service_dir`): address file, journal,
            per-job stream files.
        cache: the cache switches workers and the dedup layer run
            under; ``None`` means :meth:`CacheConfig.from_env`.
    """

    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 2
    heartbeat_interval: float = 1.0
    heartbeat_timeout: float = 5.0
    drain_timeout: float = 30.0
    service_dir: str | Path | None = None
    cache: CacheConfig | None = None

    def resolved_dir(self) -> Path:
        """The service directory this config addresses, as a Path."""
        if self.service_dir is not None:
            return Path(self.service_dir)
        return default_service_dir()

    def cache_config(self) -> CacheConfig:
        """The cache configuration the service runs under."""
        return self.cache if self.cache is not None else (
            CacheConfig.from_env())
