"""One knob surface for every cache layer.

The repo grew three caching layers, each with its own switches:

* the **result cache** (:mod:`repro.runner.cache`) — finished work-unit
  payloads on disk, controlled by ``--cache-dir`` / ``--no-cache``;
* the **slice memo** (:mod:`repro.simcache`) — in-memory detailed-tier
  slice replay, controlled by ``--sim-cache`` / ``--no-sim-cache`` and
  the ``MIRAGE_SIM_CACHE`` environment variable;
* the memo's **disk store** — cross-process slice persistence under
  the result-cache directory, controlled by ``--sim-cache-disk`` and
  ``MIRAGE_SIM_CACHE_DISK``.

:class:`CacheConfig` collapses those into one dataclass that the CLI
builds once and threads through
:class:`~repro.experiments.registry.ExperimentParams` to the sweep
runner and (via the process-wide switches in :mod:`repro.simcache`)
the backends.  ``None`` fields mean "follow the environment", so a
config built from defaults changes nothing.

:func:`default_cache_dir` lives here (re-exported from
:mod:`repro.runner.cache` for compatibility) because both the result
cache and the slice store root under it.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.runner.cache import ResultCache


def default_cache_dir() -> Path:
    """``$MIRAGE_CACHE_DIR``, else ``$XDG_CACHE_HOME/mirage``, else
    ``~/.cache/mirage``."""
    env = os.environ.get("MIRAGE_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "mirage"


@dataclass
class CacheConfig:
    """Every cache switch, in one picklable place.

    Attributes:
        cache_dir: root for the result cache and the slice store
            (``None`` = :func:`default_cache_dir`).
        use_result_cache: consult/populate the on-disk result cache.
        sim_cache: detailed-tier slice memoization; ``None`` follows
            the ``MIRAGE_SIM_CACHE`` environment (default on).
        sim_cache_disk: persist memoized slices to disk; ``None``
            follows ``MIRAGE_SIM_CACHE_DISK`` (default off).
    """

    cache_dir: str | Path | None = None
    use_result_cache: bool = True
    sim_cache: bool | None = None
    sim_cache_disk: bool | None = None

    @classmethod
    def from_env(cls) -> "CacheConfig":
        """The configuration the current environment implies.

        Materializes the env-var switches into concrete booleans, so
        the result describes (rather than defers to) the environment.
        """
        from repro import simcache

        return cls(
            cache_dir=os.environ.get("MIRAGE_CACHE_DIR") or None,
            use_result_cache=True,
            sim_cache=simcache.enabled(),
            sim_cache_disk=simcache.disk_enabled(),
        )

    def apply(self) -> "CacheConfig":
        """Push the slice-memo switches process-wide and return self.

        Writes through :func:`repro.simcache.set_enabled` /
        :func:`~repro.simcache.set_disk_enabled` (which also export
        the env vars, so ``--jobs`` worker processes inherit them) and
        exports ``MIRAGE_CACHE_DIR`` when a directory is set, so the
        slice store roots under the same tree in every process.
        ``None`` fields change nothing.
        """
        from repro import simcache

        if self.cache_dir is not None:
            os.environ["MIRAGE_CACHE_DIR"] = str(self.cache_dir)
        if self.sim_cache is not None:
            simcache.set_enabled(self.sim_cache)
        if self.sim_cache_disk is not None:
            simcache.set_disk_enabled(self.sim_cache_disk)
        return self

    def result_cache(self) -> "ResultCache | None":
        """The :class:`~repro.runner.cache.ResultCache` this config
        asks for, or ``None`` when the result cache is off."""
        if not self.use_result_cache:
            return None
        from repro.runner.cache import ResultCache

        return ResultCache(self.cache_dir)
