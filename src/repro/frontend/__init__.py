"""Frontend models: branch prediction and the branch target buffer.

Branch behaviour drives two things the paper cares about: the OoO/InO
performance gap for control-bound (LPD) benchmarks, and trace
misspeculation rates in OinO mode (mispredicted traces abort and replay
in program order).
"""

from repro.frontend.branch_predictor import (
    BimodalPredictor,
    BranchPredictor,
    GSharePredictor,
    TournamentPredictor,
)
from repro.frontend.btb import BranchTargetBuffer

__all__ = [
    "BranchPredictor",
    "BimodalPredictor",
    "GSharePredictor",
    "TournamentPredictor",
    "BranchTargetBuffer",
]
