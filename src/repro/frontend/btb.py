"""Branch target buffer.

A small direct-mapped tagged table of branch targets.  A BTB miss on a
taken branch costs a fetch bubble even when the direction prediction
was correct, which matters for the large-footprint irregular-fetch
behaviour the paper attributes to some LPD benchmarks.
"""

from __future__ import annotations


class BranchTargetBuffer:
    """Direct-mapped BTB keyed by pc, storing (tag, target)."""

    def __init__(self, entries: int = 1024):
        if entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self._mask = entries - 1
        self._tags: list[int | None] = [None] * entries
        self._targets: list[int] = [0] * entries
        self.lookups = 0
        self.misses = 0

    def _index(self, pc: int) -> int:
        return (pc >> 2) & self._mask

    def lookup(self, pc: int) -> int | None:
        """Return the cached target for *pc*, or None on a BTB miss."""
        self.lookups += 1
        idx = self._index(pc)
        if self._tags[idx] == pc:
            return self._targets[idx]
        self.misses += 1
        return None

    def install(self, pc: int, target: int) -> None:
        idx = self._index(pc)
        self._tags[idx] = pc
        self._targets[idx] = target

    # -- slice-memoization hooks (repro.simcache) ----------------------
    def state_snapshot(self) -> tuple:
        """Full mutable state as a hashable tuple (simcache keying)."""
        return (self.lookups, self.misses, tuple(self._tags),
                tuple(self._targets))

    def state_restore(self, snap: tuple) -> None:
        """Rebuild the exact state a :meth:`state_snapshot` captured."""
        self.lookups, self.misses, tags, targets = snap
        self._tags = list(tags)
        self._targets = list(targets)

    @property
    def miss_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.misses / self.lookups

    def reset_stats(self) -> None:
        self.lookups = 0
        self.misses = 0
