"""Dynamic branch predictors.

Three classic designs are provided: a bimodal (per-PC 2-bit counter)
table, a gshare (global-history XOR PC) table, and a tournament
predictor that chooses between them with a per-PC meta table.  The
cores use a :class:`TournamentPredictor` by default, matching the
"sophisticated modern core" the paper models in gem5.
"""

from __future__ import annotations

from abc import ABC, abstractmethod


def _saturate(counter: int, taken: bool, bits: int = 2) -> int:
    """Update a saturating counter toward *taken*."""
    top = (1 << bits) - 1
    if taken:
        return min(top, counter + 1)
    return max(0, counter - 1)


class BranchPredictor(ABC):
    """Interface: predict then update with the true outcome."""

    def __init__(self) -> None:
        self.lookups = 0
        self.mispredicts = 0

    @abstractmethod
    def predict(self, pc: int) -> bool:
        """Return the predicted direction for the branch at *pc*."""

    @abstractmethod
    def update(self, pc: int, taken: bool) -> None:
        """Train the predictor with the resolved outcome."""

    def access(self, pc: int, taken: bool) -> bool:
        """Predict, train, and return whether the prediction was wrong."""
        self.lookups += 1
        predicted = self.predict(pc)
        self.update(pc, taken)
        wrong = predicted != taken
        if wrong:
            self.mispredicts += 1
        return wrong

    @property
    def misprediction_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.mispredicts / self.lookups

    def reset_stats(self) -> None:
        self.lookups = 0
        self.mispredicts = 0

    # -- slice-memoization hooks (repro.simcache) ----------------------
    def state_snapshot(self) -> tuple:
        """Full mutable state as a hashable tuple (simcache keying)."""
        raise NotImplementedError

    def state_restore(self, snap: tuple) -> None:
        """Rebuild the exact state a :meth:`state_snapshot` captured."""
        raise NotImplementedError


class BimodalPredictor(BranchPredictor):
    """Per-PC 2-bit saturating counter table."""

    def __init__(self, entries: int = 2048):
        super().__init__()
        if entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self._mask = entries - 1
        self._table = [1] * entries  # weakly not-taken

    def _index(self, pc: int) -> int:
        return (pc >> 2) & self._mask

    def predict(self, pc: int) -> bool:
        return self._table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        idx = self._index(pc)
        self._table[idx] = _saturate(self._table[idx], taken)

    def state_snapshot(self) -> tuple:
        return (self.lookups, self.mispredicts, tuple(self._table))

    def state_restore(self, snap: tuple) -> None:
        self.lookups, self.mispredicts, table = snap
        self._table = list(table)


class GSharePredictor(BranchPredictor):
    """Global-history predictor: index = hash(PC) XOR history."""

    def __init__(self, entries: int = 4096, history_bits: int = 12):
        super().__init__()
        if entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self._mask = entries - 1
        self._table = [1] * entries
        self._history = 0
        self._history_mask = (1 << history_bits) - 1

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self._history) & self._mask

    def predict(self, pc: int) -> bool:
        return self._table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        idx = self._index(pc)
        self._table[idx] = _saturate(self._table[idx], taken)
        self._history = ((self._history << 1) | int(taken)) & self._history_mask

    def state_snapshot(self) -> tuple:
        return (self.lookups, self.mispredicts, self._history,
                tuple(self._table))

    def state_restore(self, snap: tuple) -> None:
        self.lookups, self.mispredicts, self._history, table = snap
        self._table = list(table)


class TournamentPredictor(BranchPredictor):
    """Meta-predictor choosing per-PC between bimodal and gshare."""

    def __init__(self, entries: int = 4096, history_bits: int = 12):
        super().__init__()
        self.bimodal = BimodalPredictor(entries)
        self.gshare = GSharePredictor(entries, history_bits)
        self._meta = [1] * entries  # < 2: prefer bimodal, >= 2: gshare
        self._mask = entries - 1

    def _meta_index(self, pc: int) -> int:
        return (pc >> 2) & self._mask

    def predict(self, pc: int) -> bool:
        if self._meta[self._meta_index(pc)] >= 2:
            return self.gshare.predict(pc)
        return self.bimodal.predict(pc)

    def update(self, pc: int, taken: bool) -> None:
        bim_correct = self.bimodal.predict(pc) == taken
        gsh_correct = self.gshare.predict(pc) == taken
        if bim_correct != gsh_correct:
            idx = self._meta_index(pc)
            self._meta[idx] = _saturate(self._meta[idx], gsh_correct)
        self.bimodal.update(pc, taken)
        self.gshare.update(pc, taken)

    def state_snapshot(self) -> tuple:
        return (self.lookups, self.mispredicts, tuple(self._meta),
                self.bimodal.state_snapshot(),
                self.gshare.state_snapshot())

    def state_restore(self, snap: tuple) -> None:
        self.lookups, self.mispredicts, meta, bim, gsh = snap
        self._meta = list(meta)
        self.bimodal.state_restore(bim)
        self.gshare.state_restore(gsh)

    def access(self, pc: int, taken: bool) -> bool:
        """Fused predict+update: one table read per component.

        The generic :meth:`BranchPredictor.access` costs up to four
        sub-predictions per branch (meta choice, then both components
        re-read during training).  Every dynamic branch in the detailed
        tier funnels through here, so the indices and counter reads are
        computed once and reused; the state transitions are exactly the
        ones the unfused path performs, in the same order.
        """
        self.lookups += 1
        bim = self.bimodal
        gsh = self.gshare
        slot = (pc >> 2) & self._mask
        bim_idx = (pc >> 2) & bim._mask
        gsh_idx = ((pc >> 2) ^ gsh._history) & gsh._mask
        bim_counter = bim._table[bim_idx]
        gsh_counter = gsh._table[gsh_idx]
        bim_taken = bim_counter >= 2
        gsh_taken = gsh_counter >= 2
        predicted = gsh_taken if self._meta[slot] >= 2 else bim_taken
        # Meta trains only when the components disagree.
        if bim_taken != gsh_taken:
            self._meta[slot] = _saturate(self._meta[slot], gsh_taken == taken)
        bim._table[bim_idx] = _saturate(bim_counter, taken)
        gsh._table[gsh_idx] = _saturate(gsh_counter, taken)
        gsh._history = ((gsh._history << 1) | int(taken)) & gsh._history_mask
        wrong = predicted != taken
        if wrong:
            self.mispredicts += 1
        return wrong
