"""SimPoint-style phase analysis (paper section 4.1 methodology).

The paper analyses the first 5 B instructions of each benchmark with
SimPoint and simulates the highest-weighted window.  This module
implements the same pipeline over our synthetic streams:

1. slice the dynamic stream into fixed-size windows;
2. build a **basic-block vector** (BBV) per window — how many
   instructions each static basic block (identified by its start pc)
   contributed;
3. cluster the normalized BBVs with k-means (random restarts,
   deterministic seeding);
4. pick each cluster's most representative window (closest to its
   centroid) and weight it by cluster population.

``pick_simpoint`` returns the paper's choice: the representative of
the heaviest cluster.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np

from repro.isa.instructions import Instruction


@dataclass(frozen=True)
class SimPoint:
    """One representative window."""

    window_index: int       #: index of the representative window
    start_instruction: int  #: first dynamic instruction of that window
    weight: float           #: fraction of windows in its cluster
    cluster: int


def basic_block_vectors(
    stream: Iterable[Instruction],
    *,
    window_size: int = 10_000,
    max_windows: int = 100,
) -> tuple[np.ndarray, list[int]]:
    """Collect per-window basic-block vectors.

    Returns ``(matrix, block_pcs)`` where ``matrix[w, b]`` counts the
    instructions window *w* executed in the basic block starting at
    ``block_pcs[b]``.  Basic blocks are delimited dynamically: a new
    block starts after every control transfer.
    """
    pc_index: dict[int, int] = {}
    rows: list[dict[int, int]] = []
    current: dict[int, int] = {}
    block_start: int | None = None
    in_window = 0
    windows = 0
    for insn in stream:
        if windows >= max_windows:
            break
        if block_start is None:
            block_start = insn.pc
        idx = pc_index.setdefault(block_start, len(pc_index))
        current[idx] = current.get(idx, 0) + 1
        if insn.is_branch and insn.taken:
            block_start = None
        in_window += 1
        if in_window == window_size:
            rows.append(current)
            current = {}
            in_window = 0
            windows += 1
    matrix = np.zeros((len(rows), len(pc_index)))
    for w, row in enumerate(rows):
        for b, count in row.items():
            matrix[w, b] = count
    block_pcs = [pc for pc, _ in sorted(pc_index.items(),
                                        key=lambda kv: kv[1])]
    return matrix, block_pcs


def _kmeans(data: np.ndarray, k: int, *, seed: int,
            iterations: int = 30) -> np.ndarray:
    """Plain k-means; returns per-row cluster labels."""
    rng = np.random.default_rng(seed)
    n = data.shape[0]
    centroids = data[rng.choice(n, size=min(k, n), replace=False)]
    labels = np.zeros(n, dtype=int)
    for _ in range(iterations):
        dists = np.linalg.norm(
            data[:, None, :] - centroids[None, :, :], axis=2)
        new_labels = dists.argmin(axis=1)
        if (new_labels == labels).all():
            break
        labels = new_labels
        for c in range(centroids.shape[0]):
            members = data[labels == c]
            if len(members):
                centroids[c] = members.mean(axis=0)
    return labels


def find_simpoints(
    stream: Iterable[Instruction],
    *,
    window_size: int = 10_000,
    max_windows: int = 60,
    k: int = 4,
    seed: int = 0,
) -> list[SimPoint]:
    """Cluster windows and return one representative per cluster."""
    matrix, _pcs = basic_block_vectors(
        stream, window_size=window_size, max_windows=max_windows)
    if matrix.shape[0] == 0:
        return []
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    normalized = matrix / norms
    k = min(k, matrix.shape[0])
    labels = _kmeans(normalized, k, seed=seed)
    simpoints = []
    for c in sorted(set(labels.tolist())):
        member_idx = np.flatnonzero(labels == c)
        centroid = normalized[member_idx].mean(axis=0)
        dists = np.linalg.norm(normalized[member_idx] - centroid, axis=1)
        rep = int(member_idx[dists.argmin()])
        simpoints.append(SimPoint(
            window_index=rep,
            start_instruction=rep * window_size,
            weight=len(member_idx) / matrix.shape[0],
            cluster=int(c),
        ))
    return sorted(simpoints, key=lambda s: -s.weight)


def pick_simpoint(stream: Iterable[Instruction], **kwargs) -> SimPoint:
    """The paper's selection: the heaviest cluster's representative."""
    simpoints = find_simpoints(stream, **kwargs)
    if not simpoints:
        raise ValueError("stream too short for any analysis window")
    return simpoints[0]
