"""Per-benchmark generator profiles for the synthetic SPEC 2006 suite.

Each :class:`BenchmarkProfile` has two groups of fields:

* **Structural parameters** consumed by :mod:`repro.workloads.generator`
  to synthesise the instruction stream (dependency-chain density,
  memory mix and footprint, branch noise, loop-body shape variants,
  phase structure).  These determine what the detailed cycle-level
  cores in :mod:`repro.cores` actually measure.

* **Calibration targets** distilled from the paper's description of
  each benchmark (Table 1 category, section 2/5 prose): the OoO IPC
  level, the InO:OoO IPC ratio that places it in the HPD (< 0.6) or
  LPD (>= 0.6) category, the oracle memoizable fraction, and the
  schedule volatility that drives Schedule-Cache staleness.  The
  analytic phase profiles used by the interval-level CMP simulator
  (:mod:`repro.characterize`) are derived from these targets, and the
  detailed simulators are validated against the *category* boundaries
  in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

HPD = "HPD"
LPD = "LPD"


@dataclass(frozen=True, slots=True)
class BenchmarkProfile:
    """Generator parameters plus paper-derived calibration targets."""

    name: str
    category: str

    # --- structural: dependencies and instruction mix -----------------
    chain_frac: float        #: prob. a source reads a recent dst (serialises)
    use_distance: int        #: producer->consumer distance of chained deps.
    #: Small (1-2) models tightly-scheduled code whose stalls only an OoO
    #: can hide (HPD); large (6-8) models code the compiler already
    #: scheduled well, which an in-order core runs near-OoO speed (LPD).
    mem_frac: float          #: fraction of body instrs that touch memory
    store_frac: float        #: of memory ops, fraction that are stores
    fp_frac: float           #: of arithmetic ops, fraction on FP units
    longop_frac: float       #: of arithmetic ops, fraction mul/div

    # --- structural: loop-carried recurrences ---------------------------
    loop_carried_frac: float  #: arithmetic ops that update an accumulator
    accum_chains: int        #: independent accumulator chains per body

    # --- structural: memory behaviour ---------------------------------
    footprint_kb: int        #: per-phase data working set
    stride_frac: float       #: strided (prefetchable) fraction of accesses
    pointer_chase_frac: float  #: loads on loop-carried pointer chains
    chase_chains: int        #: parallel pointer chains (MLP available)

    # --- structural: control flow --------------------------------------
    branch_noise: float      #: prob. an internal branch direction is random
    internal_branches: int   #: forward branches inside a loop body
    body_len: int            #: mean loop-body length (instructions)
    variants: int            #: distinct body shapes per static loop
    variant_switch_prob: float  #: per-iteration prob. of changing shape
    code_kb: int             #: static code footprint (L1I pressure)

    # --- structural: phases ---------------------------------------------
    phase_count: int
    phase_weights: tuple[float, ...]
    loops_per_phase: int

    # --- calibration targets (paper-derived) ----------------------------
    target_ipc_ooo: float    #: absolute IPC on the 3-wide OoO
    target_ipc_ratio: float  #: InO IPC / OoO IPC (Table 1 split at 0.6)
    target_memoizable: float  #: oracle fraction of instrs memoizable (Fig 2)
    schedule_volatility: float  #: per-interval SC staleness probability

    def __post_init__(self) -> None:
        if self.category not in (HPD, LPD):
            raise ValueError(f"bad category {self.category!r}")
        if len(self.phase_weights) != self.phase_count:
            raise ValueError("phase_weights must have phase_count entries")
        boundary = 0.6
        in_hpd = self.target_ipc_ratio < boundary
        if in_hpd != (self.category == HPD):
            raise ValueError(
                f"{self.name}: target_ipc_ratio {self.target_ipc_ratio} "
                f"inconsistent with category {self.category}"
            )

    @property
    def is_hpd(self) -> bool:
        return self.category == HPD


def _p(name, category, *, chain, mem, store=0.30, fp=0.0, longop=0.05,
       usedist=2, lc=0.10, accums=3,
       footprint_kb=64, stride=0.85, chase=0.0, chains=4, bnoise=0.02,
       ibranch=2,
       body=48, variants=2, vswitch=0.01, code_kb=16, phases=3,
       weights=None, loops=2, ipc_ooo=1.5, ratio=0.55, memo=0.85,
       vol=0.02) -> BenchmarkProfile:
    """Compact profile constructor with suite-wide defaults."""
    if weights is None:
        weights = tuple(1.0 for _ in range(phases))
    return BenchmarkProfile(
        name=name,
        category=category,
        chain_frac=chain,
        use_distance=usedist,
        loop_carried_frac=lc,
        accum_chains=accums,
        mem_frac=mem,
        store_frac=store,
        fp_frac=fp,
        longop_frac=longop,
        footprint_kb=footprint_kb,
        stride_frac=stride,
        pointer_chase_frac=chase,
        chase_chains=chains,
        branch_noise=bnoise,
        internal_branches=ibranch,
        body_len=body,
        variants=variants,
        variant_switch_prob=vswitch,
        code_kb=code_kb,
        phase_count=phases,
        phase_weights=tuple(weights),
        loops_per_phase=loops,
        target_ipc_ooo=ipc_ooo,
        target_ipc_ratio=ratio,
        target_memoizable=memo,
        schedule_volatility=vol,
    )


#: The 26 benchmarks of the paper's Table 1, HPD first.
#:
#: Recipe notes (derived from calibration sweeps of the detailed cores):
#: * ``chain`` + memory latency *lower* the InO:OoO ratio (program-order
#:   adjacency stalls the InO; the OoO reorders around it) -> HPD knob.
#: * ``lc`` (loop-carried accumulators) and ``bnoise`` (mispredicts hurt
#:   the deep OoO more) *raise* the ratio -> LPD knobs.
#: * ``bnoise``/``variants``/``vswitch`` destroy path repeatability ->
#:   memoizability knobs.
SPEC_PROFILES: dict[str, BenchmarkProfile] = {
    p.name: p
    for p in [
        # ----- High Performance Difference (InO:OoO IPC ratio < 0.6) ---
        _p("cactusADM", HPD, chain=0.52, usedist=1, mem=0.40, fp=0.80, lc=0.30,
           accums=1, footprint_kb=512, stride=0.90, bnoise=0.01,
           ipc_ooo=1.2, ratio=0.50, memo=0.86, vol=0.02),
        _p("bwaves", HPD, chain=0.35, mem=0.45, fp=0.85, lc=0.30, accums=1,
           footprint_kb=1024, stride=0.95, bnoise=0.005, variants=1,
           vswitch=0.0, ipc_ooo=1.4, ratio=0.45, memo=0.88, vol=0.015),
        _p("gamess", HPD, chain=0.50, usedist=1, mem=0.30, fp=0.70, lc=0.30, accums=2,
           footprint_kb=48, bnoise=0.01, ipc_ooo=2.0, ratio=0.55,
           memo=0.90, vol=0.01),
        _p("gromacs", HPD, chain=0.62, usedist=1, mem=0.32, fp=0.70, lc=0.35, accums=2,
           footprint_kb=96, bnoise=0.015, ipc_ooo=1.8, ratio=0.55,
           memo=0.88, vol=0.02),
        _p("h264ref", HPD, chain=0.62, usedist=1, mem=0.32, fp=0.05, lc=0.40, accums=1,
           footprint_kb=96, body=56, bnoise=0.03, ibranch=3, ipc_ooo=2.1,
           ratio=0.50, memo=0.90, vol=0.03),
        _p("hmmer", HPD, chain=0.50, usedist=1, mem=0.30, fp=0.02, lc=0.45, accums=1,
           footprint_kb=16, body=64, variants=1, vswitch=0.0, bnoise=0.005,
           ibranch=1, ipc_ooo=2.4, ratio=0.38, memo=0.95, vol=0.008),
        _p("leslie3d", HPD, chain=0.40, mem=0.42, fp=0.80, lc=0.30,
           accums=1, footprint_kb=768, stride=0.92, bnoise=0.01,
           ipc_ooo=1.3, ratio=0.50, memo=0.86, vol=0.02),
        _p("libquantum", HPD, chain=0.30, mem=0.45, fp=0.10, lc=0.30,
           accums=1, footprint_kb=2048, stride=0.98, variants=1,
           vswitch=0.0, bnoise=0.003, ipc_ooo=1.6, ratio=0.45, memo=0.96,
           vol=0.005),
        _p("mcf", HPD, chain=0.35, mem=0.50, fp=0.0, lc=0.10, accums=1,
           footprint_kb=4096, stride=0.15, chase=0.45, bnoise=0.06,
           variants=4, vswitch=0.20, ipc_ooo=0.45, ratio=0.40, memo=0.30,
           vol=0.15),
        _p("milc", HPD, chain=0.40, mem=0.45, fp=0.80, lc=0.30, accums=1,
           footprint_kb=1024, stride=0.90, bnoise=0.02, ipc_ooo=1.1,
           ratio=0.50, memo=0.82, vol=0.03),
        _p("povray", HPD, chain=0.50, mem=0.30, fp=0.50, lc=0.30, accums=2,
           bnoise=0.06, ibranch=4, ipc_ooo=1.9, ratio=0.58, memo=0.80,
           vol=0.04),
        _p("tonto", HPD, chain=0.50, mem=0.33, fp=0.75, lc=0.35, accums=2,
           footprint_kb=128, bnoise=0.015, ipc_ooo=1.7, ratio=0.55,
           memo=0.85, vol=0.02),
        _p("zeusmp", HPD, chain=0.40, mem=0.40, fp=0.80, lc=0.30, accums=1,
           footprint_kb=512, stride=0.92, bnoise=0.01, ipc_ooo=1.5,
           ratio=0.50, memo=0.86, vol=0.02),
        # ----- Low Performance Difference (ratio >= 0.6) ----------------
        _p("GemsFDTD", LPD, chain=0.35, usedist=12, mem=0.35, fp=0.80,
           lc=0.25, accums=2, longop=0.08, footprint_kb=512, stride=0.90,
           chase=0.20, chains=1, bnoise=0.05, ibranch=3, ipc_ooo=1.0,
           ratio=0.65, memo=0.72, vol=0.03),
        _p("astar", LPD, chain=0.35, usedist=12, mem=0.40, fp=0.0,
           lc=0.20, accums=1, footprint_kb=64, stride=0.30, chase=0.30,
           chains=1, bnoise=0.22, ibranch=5, variants=6, vswitch=0.35,
           ipc_ooo=0.8, ratio=0.80, memo=0.10, vol=0.25),
        _p("bzip2", LPD, chain=0.22, usedist=14, mem=0.35, fp=0.0,
           lc=0.38, accums=2, longop=0.15, footprint_kb=256, stride=0.70,
           bnoise=0.04, ibranch=3, phases=6, weights=(2, 1, 2, 1, 2, 1),
           ipc_ooo=1.3, ratio=0.68, memo=0.85, vol=0.02),
        _p("calculix", LPD, chain=0.30, usedist=14, mem=0.30, fp=0.60,
           lc=0.25, accums=2, longop=0.10, footprint_kb=128, bnoise=0.04,
           ipc_ooo=1.4, ratio=0.62, memo=0.76, vol=0.03),
        _p("dealII", LPD, chain=0.30, usedist=14, mem=0.35, fp=0.40,
           lc=0.25, accums=2, longop=0.10, chase=0.10, chains=2,
           bnoise=0.10, ibranch=4, code_kb=64, variants=3, vswitch=0.05,
           ipc_ooo=1.2, ratio=0.70, memo=0.60, vol=0.05),
        _p("gcc", LPD, chain=0.30, usedist=13, mem=0.35, fp=0.0, lc=0.25,
           accums=2, longop=0.10, footprint_kb=128, stride=0.60,
           chase=0.10, chains=2, bnoise=0.10, ibranch=5, code_kb=128,
           variants=5, vswitch=0.10, phases=5, weights=(1, 1, 1, 1, 1),
           ipc_ooo=1.0, ratio=0.72, memo=0.55, vol=0.30),
        _p("gobmk", LPD, chain=0.30, usedist=14, mem=0.30, fp=0.0,
           lc=0.25, accums=2, longop=0.12, bnoise=0.18, ibranch=6,
           code_kb=96, variants=5, vswitch=0.25, ipc_ooo=0.9, ratio=0.75,
           memo=0.30, vol=0.10),
        _p("namd", LPD, chain=0.35, usedist=10, mem=0.30, fp=0.80,
           lc=0.35, accums=1, footprint_kb=64, variants=1, vswitch=0.0,
           bnoise=0.02, ipc_ooo=1.6, ratio=0.64, memo=0.82, vol=0.015),
        _p("omnetpp", LPD, chain=0.35, usedist=12, mem=0.45, fp=0.0,
           lc=0.20, accums=1, footprint_kb=512, stride=0.30, chase=0.30,
           chains=1, bnoise=0.10, ibranch=4, ipc_ooo=0.7, ratio=0.72,
           memo=0.40, vol=0.10),
        _p("perlbench", LPD, chain=0.30, usedist=14, mem=0.35, fp=0.0,
           lc=0.25, accums=2, longop=0.12, bnoise=0.08, ibranch=5,
           code_kb=96, variants=4, vswitch=0.08, ipc_ooo=1.2, ratio=0.70,
           memo=0.50, vol=0.08),
        _p("sjeng", LPD, chain=0.30, usedist=14, mem=0.28, fp=0.0,
           lc=0.25, accums=2, longop=0.12, bnoise=0.14, ibranch=5,
           variants=4, vswitch=0.15, ipc_ooo=1.0, ratio=0.73, memo=0.35,
           vol=0.08),
        _p("wrf", LPD, chain=0.22, usedist=14, mem=0.38, fp=0.70,
           lc=0.34, accums=2, longop=0.08, footprint_kb=256, stride=0.90,
           chase=0.10, chains=2, bnoise=0.04, ipc_ooo=1.2, ratio=0.66,
           memo=0.76, vol=0.03),
        _p("xalancbmk", LPD, chain=0.25, usedist=14, mem=0.40, fp=0.0,
           lc=0.32, accums=1, footprint_kb=256, stride=0.40, chase=0.20,
           chains=2, bnoise=0.10, ibranch=4, code_kb=128, ipc_ooo=0.9,
           ratio=0.70, memo=0.45, vol=0.08),
    ]
}

ALL_BENCHMARKS: tuple[str, ...] = tuple(SPEC_PROFILES)
HPD_BENCHMARKS: tuple[str, ...] = tuple(
    n for n, p in SPEC_PROFILES.items() if p.category == HPD
)
LPD_BENCHMARKS: tuple[str, ...] = tuple(
    n for n, p in SPEC_PROFILES.items() if p.category == LPD
)


def get_profile(name: str) -> BenchmarkProfile:
    """Look up a benchmark profile by SPEC name (KeyError if unknown)."""
    try:
        return SPEC_PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; choose from {ALL_BENCHMARKS}"
        ) from None
