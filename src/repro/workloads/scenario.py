"""Dynamic workload scenarios: arrivals, departures, traffic shapes.

The paper evaluates fixed mixes — every application present at t=0,
run to completion.  A :class:`Scenario` generalizes that to *traffic*:
a seeded schedule of application arrivals and departures over a fixed
horizon of arbitration intervals, with the arrival intensity following
one of four :data:`SHAPES`:

* ``"steady"``  — arrivals spread evenly over the admission window;
* ``"bursty"``  — most arrivals clumped into a few tight bursts over a
  sparse background (the spike pattern the throughput-under-spike
  metric probes);
* ``"diurnal"`` — a single sinusoidal day-curve peaking mid-horizon;
* ``"mixed"``   — half the population steady, half bursty.

Every schedule is a pure function of ``(shape, n_apps, duration,
seed)``; scenarios are plain frozen data and round-trip losslessly
through JSON (:meth:`Scenario.to_dict` / :meth:`Scenario.from_dict`),
so they can cross process boundaries and serve as cache-key material.

:meth:`Scenario.from_mix` embeds the existing
:class:`~repro.workloads.mixes.WorkloadMix` world as the *degenerate*
scenario — every application arrives at interval 0, nobody departs,
``duration=0`` meaning "run to completion" — which is how the dynamic
engine path proves itself behavior-preserving against
:class:`~repro.cmp.system.CMPSystem`.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.workloads.profiles import ALL_BENCHMARKS

if TYPE_CHECKING:
    from repro.workloads.mixes import WorkloadMix

#: Scenario-layer schema tag, mixed into every
#: :class:`~repro.runner.cache.ResultCache` key (same pattern as
#: :data:`repro.engine.backends.ENGINE_CACHE_TAG`): results produced
#: by a different scenario-generation or lifecycle-semantics
#: generation can never be served against the current layer.
SCENARIO_CACHE_TAG = "scenario-layer/v1"

#: The supported arrival-intensity patterns.
SHAPES = ("steady", "bursty", "diurnal", "mixed")

#: Shape label used by degenerate (fixed-mix) scenarios.
STATIC_SHAPE = "static"


@dataclass(frozen=True, slots=True)
class AppArrival:
    """One application's scheduled lifetime within a scenario.

    ``requested`` records when the application *asked* to start;
    ``arrive`` is when the global scheduler actually admitted it
    (equal until a capacity-constrained placement delays admission).
    ``depart=None`` means the application stays resident until the
    scenario's horizon ends.
    """

    uid: str            #: unique id within the scenario, e.g. "mcf@3"
    benchmark: str      #: profile name (see repro.workloads.profiles)
    arrive: int         #: admission interval index
    depart: int | None = None   #: scheduled retirement interval
    requested: int | None = None  #: originally requested arrival

    def __post_init__(self) -> None:
        if self.arrive < 0:
            raise ValueError(f"negative arrival for {self.uid!r}")
        if self.depart is not None and self.depart <= self.arrive:
            raise ValueError(
                f"{self.uid!r} departs at {self.depart} but arrives "
                f"at {self.arrive}")

    @property
    def queued(self) -> int:
        """Intervals spent queued before admission (0 when unknown)."""
        if self.requested is None:
            return 0
        return max(0, self.arrive - self.requested)

    def to_row(self) -> list:
        """JSON-pure row encoding (inverse of :meth:`from_row`)."""
        return [self.uid, self.benchmark, self.arrive, self.depart,
                self.requested]

    @classmethod
    def from_row(cls, row: Sequence) -> "AppArrival":
        """Rebuild an arrival from its :meth:`to_row` encoding."""
        uid, benchmark, arrive, depart, requested = row
        return cls(uid=uid, benchmark=benchmark, arrive=arrive,
                   depart=depart, requested=requested)


@dataclass(frozen=True, slots=True)
class Scenario:
    """A seeded schedule of application arrivals and departures.

    ``duration`` is the simulation horizon in arbitration intervals;
    ``duration=0`` is the degenerate "run to completion" mode (only
    meaningful when every application arrives at interval 0 and none
    departs — i.e. a :class:`~repro.workloads.mixes.WorkloadMix`).
    """

    name: str
    shape: str
    duration: int
    arrivals: tuple[AppArrival, ...]
    seed: int = 0

    def __post_init__(self) -> None:
        if self.shape not in (*SHAPES, STATIC_SHAPE):
            raise ValueError(f"bad scenario shape {self.shape!r}")
        if self.duration < 0:
            raise ValueError("duration must be >= 0")
        if not self.arrivals:
            raise ValueError("empty scenario")
        uids = [a.uid for a in self.arrivals]
        if len(set(uids)) != len(uids) and not self.is_static:
            raise ValueError(f"duplicate uids in scenario {self.name!r}")
        if self.duration == 0 and not self.is_static:
            raise ValueError(
                "duration=0 (run to completion) requires a static "
                "schedule: all arrivals at 0, no departures")

    def __len__(self) -> int:
        return len(self.arrivals)

    # ------------------------------------------------------------------
    @property
    def benchmarks(self) -> tuple[str, ...]:
        """Benchmark names in schedule order."""
        return tuple(a.benchmark for a in self.arrivals)

    @property
    def is_static(self) -> bool:
        """True for the degenerate all-at-t=0, no-departures schedule."""
        return all(a.arrive == 0 and a.depart is None
                   for a in self.arrivals)

    def population(self, interval: int) -> int:
        """Applications resident during *interval*.

        Departures take effect at the start of their interval, so an
        application with ``depart=k`` is *not* resident at ``k``.
        """
        return sum(
            1 for a in self.arrivals
            if a.arrive <= interval
            and (a.depart is None or interval < a.depart))

    def peak_population(self) -> int:
        """The largest concurrent population the schedule reaches."""
        edges = {a.arrive for a in self.arrivals}
        return max((self.population(t) for t in edges), default=0)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-pure encoding (inverse of :meth:`from_dict`)."""
        return {
            "name": self.name,
            "shape": self.shape,
            "duration": self.duration,
            "seed": self.seed,
            "arrivals": [a.to_row() for a in self.arrivals],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Scenario":
        """Rebuild a scenario from its :meth:`to_dict` encoding."""
        return cls(
            name=data["name"],
            shape=data["shape"],
            duration=data["duration"],
            seed=data.get("seed", 0),
            arrivals=tuple(
                AppArrival.from_row(row) for row in data["arrivals"]),
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_mix(cls, mix: "WorkloadMix") -> "Scenario":
        """The degenerate scenario for a fixed mix.

        Every benchmark arrives at interval 0 with no scheduled
        departure, and ``duration=0`` means "run to completion" — the
        exact semantics :class:`~repro.cmp.system.CMPSystem` gives the
        mix itself.  uids are the bare benchmark names (duplicates
        allowed, as in mixes), so the engine-visible app names are
        byte-identical to the fixed-population path.
        """
        return cls(
            name=mix.name,
            shape=STATIC_SHAPE,
            duration=0,
            arrivals=tuple(
                AppArrival(uid=name, benchmark=name, arrive=0)
                for name in mix.benchmarks),
        )


# ----------------------------------------------------------------------
# Seeded schedule generators
# ----------------------------------------------------------------------
def _arrival_times(shape: str, n_apps: int, duration: int,
                   rng: random.Random) -> list[int]:
    """Admission-window arrival instants for one shape (sorted)."""
    # Leave the last quarter of the horizon arrival-free so late
    # arrivals still accumulate observable residency.
    window = max(1, (3 * duration) // 4)
    if shape == "steady":
        jitter = max(1, window // max(1, 2 * n_apps))
        times = [
            min(window - 1, (i * window) // n_apps
                + rng.randrange(jitter))
            for i in range(n_apps)
        ]
    elif shape == "bursty":
        n_bursts = max(2, n_apps // 8)
        centers = sorted(
            rng.randrange(window) for _ in range(n_bursts))
        spread = max(1, duration // 50)
        times = []
        for _ in range(n_apps):
            if rng.random() < 0.7:      # clumped into a burst
                c = rng.choice(centers)
                t = c + rng.randrange(-spread, spread + 1)
            else:                        # sparse background
                t = rng.randrange(window)
            times.append(min(window - 1, max(0, t)))
    elif shape == "diurnal":
        # One sinusoidal day-curve peaking mid-horizon; sampled with
        # rng.choices over per-interval weights (pure function of the
        # seed, no rejection loop).
        candidates = list(range(window))
        weights = [
            1.0 + math.sin(2.0 * math.pi * t / window - math.pi / 2.0)
            + 1e-3
            for t in candidates
        ]
        times = rng.choices(candidates, weights=weights, k=n_apps)
    elif shape == "mixed":
        half = n_apps // 2
        times = (_arrival_times("steady", half, duration, rng)
                 + _arrival_times("bursty", n_apps - half, duration, rng))
    else:
        raise ValueError(f"unknown scenario shape {shape!r}")
    return sorted(times)


def make_scenario(
    shape: str,
    *,
    n_apps: int,
    duration: int,
    seed: int = 2017,
    pool: Iterable[str] = ALL_BENCHMARKS,
    service: tuple[float, float] = (0.15, 0.45),
    name: str | None = None,
) -> Scenario:
    """Generate one seeded scenario of *shape*.

    Args:
        shape: one of :data:`SHAPES`.
        n_apps: total applications arriving over the horizon.
        duration: simulation horizon in arbitration intervals.
        seed: schedule seed; same arguments → same schedule, always.
        pool: benchmark names to draw from.
        service: (min, max) residency as fractions of *duration*;
            departures past the horizon simply stay resident to the
            end.
        name: scenario display name (default ``{shape}-s{seed}``).
    """
    if shape not in SHAPES:
        raise ValueError(
            f"unknown scenario shape {shape!r} — choose from "
            f"{', '.join(SHAPES)}")
    if n_apps < 1:
        raise ValueError("n_apps must be >= 1")
    if duration < 4:
        raise ValueError("duration must be >= 4 intervals")
    lo, hi = service
    if not 0.0 < lo <= hi:
        raise ValueError("service fractions must satisfy 0 < lo <= hi")
    pool = tuple(pool)
    rng = random.Random(f"{shape}/{n_apps}/{duration}/{seed}")
    times = _arrival_times(shape, n_apps, duration, rng)
    min_service = max(1, int(lo * duration))
    max_service = max(min_service, int(hi * duration))
    arrivals = []
    for k, arrive in enumerate(times):
        benchmark = rng.choice(pool)
        depart = arrive + rng.randint(min_service, max_service)
        arrivals.append(AppArrival(
            uid=f"{benchmark}@{k}", benchmark=benchmark,
            arrive=arrive, depart=depart, requested=arrive,
        ))
    return Scenario(
        name=name or f"{shape}-s{seed}",
        shape=shape,
        duration=duration,
        arrivals=tuple(arrivals),
        seed=seed,
    )
