"""Synthetic benchmark generator.

Turns a :class:`~repro.workloads.profiles.BenchmarkProfile` into a
deterministic dynamic instruction stream with the loop/trace structure
schedule memoization feeds on:

* A benchmark is a cyclic sequence of **phases**; each phase owns its
  own loops, code region and data region, so a phase change both cools
  the caches and makes every memoized schedule stale (paper Figure 5).
* A **loop** has a fixed header at its base pc and ``variants`` distinct
  body shapes, each in its own pc range.  One iteration = header +
  chosen body + backward branch to the header, i.e. exactly one trace
  (~``body_len`` instructions, matching the paper's ~50).
* Iteration-to-iteration variability — body-variant switches, noisy
  internal branches, irregular memory latencies — is what makes a
  benchmark hard to memoize; the profile parameters control each knob.

Streams are infinite (loops restart; phases cycle), so callers decide
run length.  Two streams from the same benchmark object are identical:
all randomness derives from the benchmark seed.
"""

from __future__ import annotations

import random
import zlib
from collections.abc import Iterator
from dataclasses import dataclass

from repro.isa.instructions import FP_REG_BASE, Instruction, OpClass
from repro.workloads.profiles import BenchmarkProfile, get_profile

#: Integer registers reserved as loop-invariants / bases.
_INVARIANT_REGS = (1, 2, 3)
#: Destination registers cycle through this range (int ops).
_INT_DST = tuple(range(4, 24))
_FP_DST = tuple(range(FP_REG_BASE + 4, FP_REG_BASE + 28))
#: Registers holding loop-carried pointer-chase chains (linked lists).
_CHASE_REGS = (24, 25, 26, 27)
#: Registers carrying accumulator recurrences across loop iterations.
_INT_ACCUM = (28, 29, 30)
_FP_ACCUM = (FP_REG_BASE + 28, FP_REG_BASE + 29, FP_REG_BASE + 30)

#: Data-address regions are spaced this far apart per phase.
_PHASE_DATA_SPAN = 1 << 26
#: Default instructions in one full pass over all phases.
DEFAULT_PASS_LENGTH = 240_000


@dataclass(frozen=True, slots=True)
class _MemStream:
    """Address-stream descriptor; offsets live in the stream iterator.

    Keeping the descriptor immutable means every ``stream()`` call
    replays identical addresses (offset state is per-iteration, held in
    a dict local to the dynamic stream).
    """

    key: int             # unique id for per-stream offset bookkeeping
    base: int
    footprint: int
    stride: int          # 0 means random within the footprint

    def next_addr(self, rng: random.Random, offsets: dict[int, int]) -> int:
        if self.stride:
            offset = offsets.get(self.key, 0)
            offsets[self.key] = (offset + self.stride) % self.footprint
            return self.base + offset
        return self.base + rng.randrange(0, self.footprint, 8)


@dataclass(slots=True)
class _Template:
    """Static instruction template inside a loop body variant."""

    opclass: OpClass
    dst: int | None
    srcs: tuple[int, ...]
    stream_id: int | None = None      # memory ops: which _MemStream
    chase: bool = False               # load feeding from previous load
    base_taken: bool = False          # internal branches: sticky outcome
    skip: int = 0                     # instructions skipped when taken


@dataclass(slots=True)
class _Loop:
    base_pc: int
    header: list[_Template]
    variants: list[list[_Template]]
    variant_pcs: list[int]
    streams: list[_MemStream]
    mean_trip: int


@dataclass(slots=True)
class _Phase:
    index: int
    loops: list[_Loop]
    weight: float


class SyntheticBenchmark:
    """A deterministic synthetic program standing in for one SPEC run.

    Args:
        profile: benchmark profile (structure + calibration targets).
        seed: stream seed; same seed => identical stream.
        base_addr: start of this program's address space (lets several
            apps coexist in one shared L2 without aliasing).
        pass_length: dynamic instructions in one cycle through all
            phases; phase boundaries scale with ``phase_weights``.
    """

    def __init__(
        self,
        profile: BenchmarkProfile,
        *,
        seed: int = 0,
        base_addr: int | None = None,
        pass_length: int = DEFAULT_PASS_LENGTH,
    ):
        self.profile = profile
        self.seed = seed
        self.pass_length = pass_length
        name_hash = zlib.crc32(profile.name.encode())
        if base_addr is None:
            base_addr = (name_hash & 0xFF) << 30
        self.base_addr = base_addr
        self._stream_keys = 0
        build_rng = random.Random((seed << 16) ^ name_hash)
        self._phases = [
            self._build_phase(i, build_rng) for i in range(profile.phase_count)
        ]
        total_w = sum(p.weight for p in self._phases)
        self._phase_budgets = [
            max(1_000, int(pass_length * p.weight / total_w))
            for p in self._phases
        ]

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.profile.name

    @property
    def phase_budgets(self) -> list[int]:
        """Instructions spent in each phase per pass."""
        return list(self._phase_budgets)

    def phase_at(self, instr_index: int) -> int:
        """Phase id active at dynamic instruction *instr_index*."""
        pos = instr_index % sum(self._phase_budgets)
        for i, budget in enumerate(self._phase_budgets):
            if pos < budget:
                return i
            pos -= budget
        return len(self._phase_budgets) - 1

    def _build_phase(self, index: int, rng: random.Random) -> _Phase:
        prof = self.profile
        code_base = 0x1000_0000 + index * (prof.code_kb * 1024 * 4)
        data_base = self.base_addr + index * _PHASE_DATA_SPAN
        loops = []
        for li in range(prof.loops_per_phase):
            loops.append(
                self._build_loop(
                    base_pc=code_base + li * 0x4000,
                    data_base=data_base + li * (_PHASE_DATA_SPAN // 8),
                    rng=rng,
                )
            )
        return _Phase(index=index, loops=loops,
                      weight=prof.phase_weights[index])

    def _build_loop(self, base_pc: int, data_base: int,
                    rng: random.Random) -> _Loop:
        prof = self.profile
        streams: list[_MemStream] = []

        def new_stream() -> int:
            footprint = max(1024, prof.footprint_kb * 1024 // max(
                1, prof.loops_per_phase * 6))
            strided = rng.random() < prof.stride_frac
            self._stream_keys += 1
            streams.append(
                _MemStream(
                    key=self._stream_keys,
                    base=data_base + len(streams) * footprint,
                    footprint=footprint,
                    stride=(8 if rng.random() < 0.5 else 64) if strided else 0,
                )
            )
            return len(streams) - 1

        header = [
            _Template(OpClass.IALU, dst=_INVARIANT_REGS[0],
                      srcs=(_INVARIANT_REGS[0],)),           # induction
            _Template(OpClass.IALU, dst=None,
                      srcs=(_INVARIANT_REGS[0], _INVARIANT_REGS[1])),  # cmp
        ]
        variants = []
        for _ in range(max(1, prof.variants)):
            variants.append(self._build_body(rng, new_stream))
        variant_pcs = [
            base_pc + 0x400 * (v + 1) for v in range(len(variants))
        ]
        return _Loop(
            base_pc=base_pc,
            header=header,
            variants=variants,
            variant_pcs=variant_pcs,
            streams=streams,
            mean_trip=rng.randint(60, 400),
        )

    def _build_body(self, rng: random.Random, new_stream) -> list[_Template]:
        """One loop-body variant: a list of instruction templates."""
        prof = self.profile
        length = max(8, int(rng.gauss(prof.body_len, prof.body_len * 0.15)))
        body: list[_Template] = []
        load_streams: list[int] = []
        store_streams: list[int] = []
        branch_slots = set(
            rng.sample(range(2, max(3, length - 2)),
                       k=min(prof.internal_branches, max(1, length - 4)))
        )
        recent_dsts: list[int] = []
        last_load_dst: int | None = None
        dst_cursor = rng.randrange(len(_INT_DST))
        chase_cursor = 0
        for i in range(length):
            if i in branch_slots:
                body.append(
                    _Template(
                        OpClass.BRANCH, dst=None,
                        srcs=(self._pick_src(rng, recent_dsts),),
                        base_taken=rng.random() < 0.2,
                        skip=rng.randint(2, 4),
                    )
                )
                continue
            r = rng.random()
            if r < prof.mem_frac:
                is_store = rng.random() < prof.store_frac
                if is_store:
                    # Stores mostly write their own streams; a small
                    # crossover onto load streams keeps store->load
                    # aliasing (and OinO replay-LSQ aborts) alive.
                    if load_streams and rng.random() < 0.05:
                        sid = rng.choice(load_streams)
                    else:
                        sid = self._pool_stream(rng, store_streams,
                                                new_stream)
                    body.append(
                        _Template(
                            OpClass.STORE, dst=None,
                            srcs=(self._pick_src(rng, recent_dsts),),
                            stream_id=sid,
                        )
                    )
                elif rng.random() < prof.pointer_chase_frac:
                    # Loop-carried pointer chase: ptr = load(ptr).  The
                    # chain threads through every iteration; how many
                    # parallel chains exist bounds the MLP an OoO can
                    # extract (mcf has several, astar essentially one).
                    ptr = _CHASE_REGS[
                        chase_cursor % min(prof.chase_chains,
                                           len(_CHASE_REGS))
                    ]
                    chase_cursor += 1
                    body.append(
                        _Template(
                            OpClass.LOAD, dst=ptr, srcs=(ptr,),
                            stream_id=self._pool_stream(rng, load_streams,
                                                        new_stream),
                            chase=True,
                        )
                    )
                    recent_dsts.append(ptr)
                else:
                    dst = _INT_DST[dst_cursor % len(_INT_DST)]
                    dst_cursor += 1
                    body.append(
                        _Template(
                            OpClass.LOAD, dst=dst,
                            srcs=(self._pick_src(rng, recent_dsts),),
                            stream_id=self._pool_stream(rng, load_streams,
                                                        new_stream),
                        )
                    )
                    last_load_dst = dst
                    recent_dsts.append(dst)
            else:
                use_fp = rng.random() < prof.fp_frac
                if rng.random() < prof.longop_frac:
                    opclass = OpClass.FMUL if use_fp else OpClass.IMUL
                    if rng.random() < 0.15:
                        opclass = OpClass.FDIV if use_fp else OpClass.IDIV
                else:
                    opclass = OpClass.FALU if use_fp else OpClass.IALU
                if rng.random() < prof.loop_carried_frac:
                    # Accumulator update: a loop-carried recurrence that
                    # bounds cross-iteration overlap on the OoO.
                    accum_pool = _FP_ACCUM if use_fp else _INT_ACCUM
                    acc = accum_pool[
                        rng.randrange(min(prof.accum_chains,
                                          len(accum_pool)))
                    ]
                    body.append(_Template(
                        opclass, dst=acc,
                        srcs=(acc, self._pick_src(rng, recent_dsts)),
                    ))
                    continue
                pool = _FP_DST if use_fp else _INT_DST
                dst = pool[dst_cursor % len(pool)]
                dst_cursor += 1
                srcs = (
                    self._pick_src(rng, recent_dsts),
                    self._pick_src(rng, recent_dsts),
                )
                body.append(_Template(opclass, dst=dst, srcs=srcs))
                recent_dsts.append(dst)
            if len(recent_dsts) > 16:
                recent_dsts.pop(0)
        return body

    def _pick_src(self, rng: random.Random, recent: list[int]) -> int:
        """Chain to a recent destination with ``chain_frac`` probability.

        ``use_distance`` controls how far back the consumer reaches:
        distance 1-2 puts consumers right behind producers (an in-order
        core stalls on every latency), larger distances model code the
        compiler already scheduled (stalls hidden even in order).
        """
        if recent and rng.random() < self.profile.chain_frac:
            reach = int(rng.random() * self.profile.use_distance) + 1
            idx = max(0, len(recent) - reach)
            return recent[idx]
        return rng.choice(_INVARIANT_REGS)

    @staticmethod
    def _pool_stream(rng: random.Random, pool: list[int],
                     new_stream) -> int:
        """Reuse a stream from *pool* (60 %) or allocate a new one."""
        if pool and rng.random() < 0.6:
            return rng.choice(pool)
        sid = new_stream()
        pool.append(sid)
        return sid

    # ------------------------------------------------------------------
    # dynamic stream
    # ------------------------------------------------------------------
    def stream(self) -> Iterator[Instruction]:
        """Yield the dynamic instruction stream from the beginning."""
        rng = random.Random(self.seed ^ 0x5EED_CAFE)
        offsets: dict[int, int] = {}
        seq = 0
        while True:
            for phase, budget in zip(self._phases, self._phase_budgets):
                emitted = 0
                loop_idx = 0
                while emitted < budget:
                    loop = phase.loops[loop_idx % len(phase.loops)]
                    trip = max(8, int(rng.expovariate(1.0 / loop.mean_trip)))
                    for insn in self._run_loop(loop, rng, trip, seq, offsets):
                        yield insn
                        seq += 1
                        emitted += 1
                    loop_idx += 1

    def _run_loop(self, loop: _Loop, rng: random.Random, trips: int,
                  seq: int, offsets: dict[int, int]) -> Iterator[Instruction]:
        prof = self.profile
        variant = 0
        iteration = 0
        for trip in range(trips):
            if prof.variants > 1 and rng.random() < prof.variant_switch_prob:
                variant = rng.randrange(len(loop.variants))
            body = loop.variants[variant]
            body_pc = loop.variant_pcs[variant]
            # Header (at the loop base pc).
            pc = loop.base_pc
            for tmpl in loop.header:
                yield Instruction(seq=seq, pc=pc, opclass=tmpl.opclass,
                                  dst=tmpl.dst, srcs=tmpl.srcs)
                seq += 1
                pc += 4
            # Variant-select branch: taken into the variant body.
            yield Instruction(
                seq=seq, pc=pc, opclass=OpClass.BRANCH, is_branch=True,
                taken=True, target=body_pc,
            )
            seq += 1
            # Body.
            pc = body_pc
            idx = 0
            while idx < len(body):
                tmpl = body[idx]
                if tmpl.opclass is OpClass.BRANCH:
                    taken = tmpl.base_taken
                    if rng.random() < prof.branch_noise:
                        taken = not taken
                    skip = min(tmpl.skip, len(body) - idx - 1)
                    yield Instruction(
                        seq=seq, pc=pc, opclass=OpClass.BRANCH,
                        srcs=tmpl.srcs, is_branch=True, taken=taken,
                        target=pc + 4 * (skip + 1),
                    )
                    seq += 1
                    if taken:
                        # Skip the guarded instructions.
                        idx += skip + 1
                        pc += 4 * (skip + 1)
                        continue
                    idx += 1
                    pc += 4
                    continue
                addr = None
                if tmpl.stream_id is not None:
                    addr = loop.streams[tmpl.stream_id].next_addr(
                        rng, offsets)
                yield Instruction(
                    seq=seq, pc=pc, opclass=tmpl.opclass, dst=tmpl.dst,
                    srcs=tmpl.srcs, mem_addr=addr,
                )
                seq += 1
                pc += 4
                idx += 1
            # Backward branch to the loop header; falls through on exit.
            last = trip == trips - 1
            yield Instruction(
                seq=seq, pc=pc, opclass=OpClass.BRANCH, is_branch=True,
                taken=not last, target=loop.base_pc,
            )
            seq += 1
            iteration += 1


def make_benchmark(name: str, *, seed: int = 0,
                   pass_length: int = DEFAULT_PASS_LENGTH,
                   base_addr: int | None = None) -> SyntheticBenchmark:
    """Construct the synthetic stand-in for SPEC benchmark *name*."""
    return SyntheticBenchmark(
        get_profile(name), seed=seed, pass_length=pass_length,
        base_addr=base_addr,
    )
