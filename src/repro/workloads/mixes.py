"""Multi-application workload mixes (paper section 4.1).

The paper evaluates 32 mixes per configuration, each containing as many
applications as there are InO cores: 10 mixes drawn exclusively from a
single category (HPD-only or LPD-only) and 22 mixing both at random.
``standard_mixes`` reproduces that split deterministically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.workloads.profiles import (
    ALL_BENCHMARKS,
    HPD_BENCHMARKS,
    LPD_BENCHMARKS,
)

#: Mix-category labels used throughout the experiments.
MIX_HPD = "HPD"
MIX_LPD = "LPD"
MIX_RANDOM = "Random"


@dataclass(frozen=True, slots=True)
class WorkloadMix:
    """A named set of benchmarks run together on one CMP."""

    name: str
    category: str
    benchmarks: tuple[str, ...]

    def __post_init__(self) -> None:
        if self.category not in (MIX_HPD, MIX_LPD, MIX_RANDOM):
            raise ValueError(f"bad mix category {self.category!r}")
        if not self.benchmarks:
            raise ValueError("empty mix")

    def __len__(self) -> int:
        return len(self.benchmarks)

    def __iter__(self):
        return iter(self.benchmarks)

    def as_scenario(self):
        """This mix as the degenerate dynamic scenario.

        Every benchmark arrives at interval 0, nobody departs, and the
        run goes to completion — see
        :meth:`repro.workloads.scenario.Scenario.from_mix`.
        """
        # Imported here: repro.workloads.scenario imports the profile
        # tables from this package, so the reverse import stays lazy.
        from repro.workloads.scenario import Scenario

        return Scenario.from_mix(self)


def _sample(pool: tuple[str, ...], k: int, rng: random.Random) -> tuple[str, ...]:
    """Sample *k* benchmarks, reusing the pool when k exceeds its size."""
    picks: list[str] = []
    while len(picks) < k:
        take = min(k - len(picks), len(pool))
        picks.extend(rng.sample(pool, take))
    return tuple(picks)


def standard_mixes(
    apps_per_mix: int,
    *,
    seed: int = 2017,
    n_single_category: int = 10,
    n_random: int = 22,
) -> list[WorkloadMix]:
    """Build the paper's 32-mix workload set for a given cluster size.

    Args:
        apps_per_mix: number of applications per mix (= number of InO
            cores in the configuration under study).
        seed: mix-selection seed.
        n_single_category: total single-category mixes, split evenly
            between HPD-only and LPD-only.
        n_random: mixed-category mixes.
    """
    if apps_per_mix < 1:
        raise ValueError("apps_per_mix must be >= 1")
    rng = random.Random(seed)
    mixes: list[WorkloadMix] = []
    half = n_single_category // 2
    for i in range(half):
        mixes.append(WorkloadMix(
            name=f"hpd{i}", category=MIX_HPD,
            benchmarks=_sample(HPD_BENCHMARKS, apps_per_mix, rng),
        ))
    for i in range(n_single_category - half):
        mixes.append(WorkloadMix(
            name=f"lpd{i}", category=MIX_LPD,
            benchmarks=_sample(LPD_BENCHMARKS, apps_per_mix, rng),
        ))
    for i in range(n_random):
        mixes.append(WorkloadMix(
            name=f"rnd{i}", category=MIX_RANDOM,
            benchmarks=_sample(ALL_BENCHMARKS, apps_per_mix, rng),
        ))
    return mixes
