"""Synthetic SPEC CPU2006-like workload suite.

The paper evaluates on 26 named SPEC 2006 benchmarks (Table 1) compiled
for ARM, with SimPoint-selected 1 B-instruction windows.  Neither the
binaries nor traces are available here, so each benchmark is replaced
by a deterministic synthetic program whose generator parameters are
calibrated to the behaviours the paper describes: its HPD/LPD category
(InO:OoO IPC ratio split at 60 %), its memoizability, its phase
structure and its schedule volatility.  See DESIGN.md section 2 for the
substitution argument.
"""

from repro.workloads.generator import SyntheticBenchmark, make_benchmark
from repro.workloads.mixes import WorkloadMix, standard_mixes
from repro.workloads.profiles import (
    ALL_BENCHMARKS,
    HPD_BENCHMARKS,
    LPD_BENCHMARKS,
    SPEC_PROFILES,
    BenchmarkProfile,
    get_profile,
)
from repro.workloads.scenario import (
    SCENARIO_CACHE_TAG,
    SHAPES,
    AppArrival,
    Scenario,
    make_scenario,
)

__all__ = [
    "BenchmarkProfile",
    "SPEC_PROFILES",
    "ALL_BENCHMARKS",
    "HPD_BENCHMARKS",
    "LPD_BENCHMARKS",
    "get_profile",
    "SyntheticBenchmark",
    "make_benchmark",
    "WorkloadMix",
    "standard_mixes",
    "SCENARIO_CACHE_TAG",
    "SHAPES",
    "AppArrival",
    "Scenario",
    "make_scenario",
]
