"""Per-structure energy/power/area parameters and accounting.

Dynamic energies are per event in picojoules (arbitrary but
self-consistent scale); leakage is picojoules per cycle per structure
instance.  The absolute scale is not the reproduction target — the
paper's McPAT ratios are (see :mod:`repro.energy`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cores.base import EnergyEvents

#: Dynamic energy per event (pJ), keyed by the EnergyEvents structure
#: names that the core models bump.
DYNAMIC_ENERGY_PJ: dict[str, float] = {
    # Frontend
    "fetch": 2.0,          # instruction buffer write/read
    "decode": 2.0,
    "bpred": 2.5,
    "icache": 5.0,
    # OoO backend structures
    "rename": 4.5,
    "rob": 5.0,
    "scheduler": 9.0,      # CAM wakeup + select, the big OoO burner
    "prf_read": 1.8,       # large multi-ported physical register file
    "prf_write": 2.4,
    "lsq": 4.0,
    # InO backend structures
    "rf_read": 0.8,        # small architectural register file
    "rf_write": 1.1,
    # OinO-mode additions
    "oino_prf": 1.6,       # expanded 128-entry PRF bookkeeping
    "oino_lsq": 1.8,       # 32-entry replay LSQ
    "sc_read": 2.2,        # fetching trace blocks from the small SC
    "sc_write": 30.0,      # compacted SC writes are expensive
    # CG-OoO block-window structures: wakeup/select local to one small
    # window costs a fraction of the global "scheduler" CAM.
    "bw_select": 3.5,      # block-window wakeup + select
    "bw_window": 1.2,      # window entry write/occupancy bookkeeping
    # Functional units
    "int_alu": 2.5,
    "int_mul": 6.0,
    "fp_alu": 5.5,
    "fp_div": 9.0,
    "mem_port": 2.0,
    "branch": 1.5,
    # Memory
    "dcache": 6.0,
    "l2": 28.0,
}

#: Leakage per cycle (pJ/cycle) per core kind and notable adders.
LEAKAGE_PW_PER_CYCLE: dict[str, float] = {
    "ooo": 34.0,    # big windows and ports leak
    "ino": 8.0,
    "oino_extra": 1.6,   # expanded PRF + replay LSQ
    "sc": 0.8,           # 8 KB SC: ~10 % on top of InO leakage
    "cgooo": 14.0,       # block windows leak more than InO, far
                         # less than the global OoO structures
}

#: Relative core areas (InO = 1.0), including private L1s and, for
#: OinO, the SC and mode additions.  Calibrated against Figure 6.
AREA_UNITS: dict[str, float] = {
    "ino": 1.0,
    "oino": 1.35,
    "cgooo": 1.6,
    "ooo": 2.2,
}


@dataclass(slots=True)
class EnergyBreakdown:
    """Energy for one simulation window, per structure."""

    dynamic_pj: dict[str, float] = field(default_factory=dict)
    leakage_pj: float = 0.0

    @property
    def dynamic_total_pj(self) -> float:
        return sum(self.dynamic_pj.values())

    @property
    def total_pj(self) -> float:
        return self.dynamic_total_pj + self.leakage_pj

    def power_pw_per_cycle(self, cycles: int) -> float:
        """Average power in pJ/cycle over the window."""
        if cycles <= 0:
            return 0.0
        return self.total_pj / cycles

    def merged(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        out = EnergyBreakdown(dynamic_pj=dict(self.dynamic_pj),
                              leakage_pj=self.leakage_pj + other.leakage_pj)
        for k, v in other.dynamic_pj.items():
            out.dynamic_pj[k] = out.dynamic_pj.get(k, 0.0) + v
        return out


class CoreEnergyModel:
    """Turns a core run's event counts into energy numbers."""

    def __init__(
        self,
        dynamic_pj: dict[str, float] | None = None,
        leakage: dict[str, float] | None = None,
    ):
        self.dynamic_pj = dict(DYNAMIC_ENERGY_PJ if dynamic_pj is None
                               else dynamic_pj)
        self.leakage = dict(LEAKAGE_PW_PER_CYCLE if leakage is None
                            else leakage)

    def breakdown(self, kind: str, events: EnergyEvents,
                  cycles: int) -> EnergyBreakdown:
        """Energy for a window of *cycles* on a core of *kind*.

        *kind* is one of ``"ooo"``, ``"ino"``, ``"oino"``, ``"cgooo"``.
        """
        if kind not in ("ooo", "ino", "oino", "cgooo"):
            raise ValueError(f"unknown core kind {kind!r}")
        dynamic: dict[str, float] = {}
        for structure, count in events.items():
            pj = self.dynamic_pj.get(structure)
            if pj is None:
                raise KeyError(f"no energy coefficient for {structure!r}")
            dynamic[structure] = pj * count
        if kind == "cgooo":
            # Block windows replace both the OoO global structures and
            # the InO baseline; the SC doubles as the schedule memo.
            leak = (self.leakage["cgooo"] + self.leakage["sc"]) * cycles
            return EnergyBreakdown(dynamic_pj=dynamic, leakage_pj=leak)
        leak = self.leakage["ooo" if kind == "ooo" else "ino"] * cycles
        if kind == "oino":
            leak += (self.leakage["oino_extra"] + self.leakage["sc"]) * cycles
        if kind == "ooo":
            leak += self.leakage["sc"] * cycles  # producer-side SC
        return EnergyBreakdown(dynamic_pj=dynamic, leakage_pj=leak)

    def energy_pj(self, kind: str, events: EnergyEvents, cycles: int) -> float:
        return self.breakdown(kind, events, cycles).total_pj

    # ------------------------------------------------------------------
    # Interval-tier shortcuts: average power (pJ/cycle) per core kind at
    # a given activity level, used by the CMP simulator where detailed
    # event counts are not available.  ``activity`` is committed IPC.
    # ------------------------------------------------------------------
    #: Average dynamic energy per committed instruction (pJ).  The InO
    #: value matches what the detailed tier measures from its event
    #: counts; the OoO and OinO values sit above their committed-work
    #: measurements (≈38 and ≈17 pJ) because the interval tier must
    #: also cover energy the event counts omit — wrong-path
    #: fetch/execute on mispredicts and squashed trace replays — which
    #: burns on exactly those two cores.  The resulting totals
    #: reproduce the paper's McPAT ratios (see repro.energy).
    EPI_PJ = {"ooo": 52.0, "ino": 14.5, "oino": 21.0, "cgooo": 30.0}

    def interval_power(self, kind: str, ipc: float) -> float:
        """Average power (pJ/cycle) for the interval tier."""
        if kind == "cgooo":
            leak = self.leakage["cgooo"] + self.leakage["sc"]
            return leak + self.EPI_PJ[kind] * ipc
        leak = self.leakage["ooo" if kind == "ooo" else "ino"]
        if kind == "oino":
            leak += self.leakage["oino_extra"] + self.leakage["sc"]
        if kind == "ooo":
            leak += self.leakage["sc"]
        return leak + self.EPI_PJ[kind] * ipc

    def interval_energy(self, kind: str, ipc: float, cycles: int) -> float:
        """Energy (pJ) for an interval of *cycles* at committed *ipc*."""
        return self.interval_power(kind, ipc) * cycles


def core_area(kind: str) -> float:
    """Area of one core (relative units, InO = 1.0)."""
    return AREA_UNITS[kind]


def cmp_area(n_consumers: int, n_producers: int, *,
             mirage: bool = True) -> float:
    """Total CMP area for a ``n:1``-style configuration.

    Args:
        n_consumers: number of small cores.
        n_producers: number of OoO cores.
        mirage: when True the small cores carry the OinO additions
            (SC + expanded PRF + replay LSQ); when False they are
            traditional InO cores.
    """
    small = AREA_UNITS["oino" if mirage else "ino"]
    return n_consumers * small + n_producers * AREA_UNITS["ooo"]
