"""McPAT-like energy, power and area models.

The paper uses McPAT for absolute numbers; here a per-structure
event-energy model is calibrated to reproduce the paper's *ratios*:

* InO consumes ~1/5 the power of the OoO and <1/2 the area, making it
  ~3x more energy-efficient at ~1/2 the performance (Figure 1).
* OinO mode raises InO dynamic power 2.4x (bigger PRF +14 %, replay
  LSQ +5.5 %, SC +10 % leakage) but stays well under the OoO, which
  burns 2.1x OinO power (Figure 9a).
* Area: InO = 1.0 unit, OoO = 2.2, OinO = 1.35 — these reproduce
  Figure 6 (a traditional 4:1 Het-CMP is +55 % over 4:0 Homo-InO; the
  OinO mode adds another ~23 %) and the headline 8:1 Mirage at ~74 %
  of the 8-OoO homogeneous CMP's area.
"""

from repro.energy.model import (
    AREA_UNITS,
    DYNAMIC_ENERGY_PJ,
    LEAKAGE_PW_PER_CYCLE,
    CoreEnergyModel,
    EnergyBreakdown,
    cmp_area,
    core_area,
)

__all__ = [
    "CoreEnergyModel",
    "EnergyBreakdown",
    "DYNAMIC_ENERGY_PJ",
    "LEAKAGE_PW_PER_CYCLE",
    "AREA_UNITS",
    "core_area",
    "cmp_area",
]
