"""Reporting utilities: export experiment results and render timelines.

The experiment drivers return plain dicts/lists; these helpers turn
them into CSV/JSON files for downstream plotting and render the
paper's timeline figures (5 and 10) as ASCII charts for terminal use.
"""

from __future__ import annotations

import csv
import json
import io
from collections.abc import Mapping, Sequence
from pathlib import Path


def to_json(result: Mapping, path: str | Path) -> Path:
    """Write an experiment result dict as pretty JSON."""
    path = Path(path)
    path.write_text(json.dumps(result, indent=2, default=_coerce))
    return path


def _coerce(value):
    if hasattr(value, "__dict__"):
        return vars(value)
    return str(value)


def rows_to_csv(rows: Sequence[Mapping], path: str | Path) -> Path:
    """Write a list of flat dicts (an experiment's ``rows``) as CSV."""
    path = Path(path)
    rows = list(rows)
    if not rows:
        path.write_text("")
        return path
    fieldnames = list(rows[0].keys())
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames,
                                extrasaction="ignore")
        writer.writeheader()
        writer.writerows(rows)
    return path


def ascii_timeline(
    series: Sequence[Mapping],
    *,
    value_key: str = "ipc",
    mark_key: str = "on_ooo",
    width: int = 72,
    height: int = 12,
    title: str = "",
) -> str:
    """Render a per-interval series as an ASCII scatter (Figures 5/10).

    Points where ``mark_key`` is truthy render as ``o`` (on the OoO,
    the figures' blue points); the rest as ``.`` (on the InO, red).
    """
    if not series:
        return "(empty timeline)"
    values = [float(s[value_key]) for s in series]
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    # Downsample to the requested width.
    step = max(1, len(series) // width)
    sampled = series[::step][:width]
    grid = [[" "] * len(sampled) for _ in range(height)]
    for x, point in enumerate(sampled):
        frac = (float(point[value_key]) - lo) / span
        y = height - 1 - int(frac * (height - 1))
        grid[y][x] = "o" if point.get(mark_key) else "."
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{hi:8.2f} +" + "-" * len(sampled))
    for row in grid:
        lines.append(" " * 9 + "|" + "".join(row))
    lines.append(f"{lo:8.2f} +" + "-" * len(sampled))
    lines.append(" " * 10 + f"intervals 0..{series[-1].get('interval', len(series))}"
                 f"   (o = on OoO, . = on InO)")
    return "\n".join(lines)


def summary_table(result: Mapping, *, float_fmt: str = "{:.3f}") -> str:
    """Render a flat mapping of scalars as an aligned two-column table."""
    out = io.StringIO()
    scalars = {
        k: v for k, v in result.items()
        if isinstance(v, (int, float, str, bool))
    }
    if not scalars:
        return "(no scalar fields)"
    width = max(len(str(k)) for k in scalars)
    for key, value in scalars.items():
        if isinstance(value, float):
            value = float_fmt.format(value)
        out.write(f"{str(key):<{width}}  {value}\n")
    return out.getvalue().rstrip("\n")
