"""Scenario-level metrics: tails, SLAs, throughput under spikes.

The fixed-mix experiments summarize a run by its mean (STP, energy);
a *traffic* scenario needs distributional answers — how long did an
arriving application wait for its first OoO grant, how many tenants
met their service objective, what happened to throughput while the
population spiked.  These helpers are pure functions over plain
Python sequences so cached, serial and parallel runs reduce to
bit-identical summaries.

All percentiles use the classic linear-interpolation definition
(numpy's default) computed in pure Python, so no numpy import is
needed on the scenario summary path.
"""

from __future__ import annotations

from collections.abc import Sequence

#: The tail points every scenario table reports.
TAIL_POINTS = (50.0, 95.0, 99.0)


def percentile(values: Sequence[float], q: float) -> float:
    """The *q*-th percentile (0..100) with linear interpolation.

    Matches numpy's default ("linear") definition; returns ``0.0``
    for an empty sequence so summary tables never divide by absent
    data.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError("percentile q must be in [0, 100]")
    data = sorted(values)
    if not data:
        return 0.0
    if len(data) == 1:
        return float(data[0])
    rank = (q / 100.0) * (len(data) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(data) - 1)
    frac = rank - lo
    return data[lo] + (data[hi] - data[lo]) * frac


def tail_summary(values: Sequence[float],
                 points: Sequence[float] = TAIL_POINTS) -> dict:
    """``{"p50": ..., "p95": ..., "p99": ...}`` over *values*."""
    return {f"p{point:g}": percentile(values, point)
            for point in points}


def sla_attainment(progresses: Sequence[float],
                   target: float) -> float:
    """The fraction of applications meeting a progress SLA.

    *progresses* are normalized per-application progress rates
    (achieved IPC over alone-on-OoO IPC, in (0, 1]); an application
    attains the SLA when its rate is at least *target*.  Returns 1.0
    for an empty population (no tenant was failed).
    """
    if not progresses:
        return 1.0
    met = sum(1 for p in progresses if p >= target)
    return met / len(progresses)


def spike_throughput(population: Sequence[int],
                     throughput: Sequence[float],
                     *, quantile: float = 90.0) -> dict:
    """Throughput under load spikes vs the run overall.

    Splits the per-interval *throughput* series by whether that
    interval's *population* was at or above the series' *quantile*-th
    percentile, and reports the mean in each regime plus their ratio
    (``spike / overall``; 1.0 means throughput held up under the
    spike).  Intervals with zero population are excluded from the
    overall mean so idle lead-ins do not dilute it.
    """
    if len(population) != len(throughput):
        raise ValueError("population/throughput series length mismatch")
    busy = [(p, t) for p, t in zip(population, throughput) if p > 0]
    if not busy:
        return {"overall": 0.0, "spike": 0.0, "ratio": 1.0}
    threshold = percentile([p for p, _ in busy], quantile)
    overall = sum(t for _, t in busy) / len(busy)
    spike_rows = [t for p, t in busy if p >= threshold]
    spike = sum(spike_rows) / len(spike_rows) if spike_rows else 0.0
    return {
        "overall": overall,
        "spike": spike,
        "ratio": spike / overall if overall > 0 else 1.0,
    }
