"""System-level metrics used by the arbitrators and experiments."""

from repro.metrics.scenario import (
    percentile,
    sla_attainment,
    spike_throughput,
    tail_summary,
)
from repro.metrics.stats import (
    delta_sc_mpki,
    fairness_index,
    speedup,
    system_throughput,
    util_share,
)

__all__ = [
    "speedup",
    "system_throughput",
    "delta_sc_mpki",
    "util_share",
    "fairness_index",
    "percentile",
    "tail_summary",
    "sla_attainment",
    "spike_throughput",
]
