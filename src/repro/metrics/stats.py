"""Scheduling metrics (paper section 3.2).

* ``speedup`` — Equation 2: IPC achieved relative to the application's
  (last-observed) OoO IPC.
* ``system_throughput`` — STP, the mean of all applications' speedups.
* ``delta_sc_mpki`` — Equation 1: the energy-oriented arbitrator's
  memoization-staleness signal.
* ``util_share`` — Equation 3: the fairness arbitrator's effective
  OoO timeshare, counting memoized InO execution as OoO time.
"""

from __future__ import annotations

from collections.abc import Sequence


def speedup(ipc_current: float, ipc_ooo: float) -> float:
    """Equation 2: current IPC over the IPC last observed on the OoO."""
    if ipc_ooo <= 0:
        return 1.0
    return ipc_current / ipc_ooo


def system_throughput(speedups: Sequence[float]) -> float:
    """STP: mean of per-application speedups."""
    if not speedups:
        return 0.0
    return sum(speedups) / len(speedups)


def delta_sc_mpki(sc_mpki_ino: float, sc_mpki_ooo: float,
                  *, floor: float = 0.1) -> float:
    """Equation 1: (SC-MPKI_InO - SC-MPKI_OoO) / SC-MPKI_OoO.

    ``floor`` guards the division for highly-memoizable phases whose
    producer-side SC-MPKI approaches zero.
    """
    denom = max(sc_mpki_ooo, floor)
    return (sc_mpki_ino - sc_mpki_ooo) / denom


def util_share(t_ooo: float, t_ino_memoized: float, app_speedup: float,
               t_overall: float) -> float:
    """Equation 3: effective OoO timeshare of one application.

    Time spent executing memoized schedules on the InO counts toward
    OoO time, scaled by the speedup it achieves.
    """
    if t_overall <= 0:
        return 0.0
    return (t_ooo + t_ino_memoized * app_speedup) / t_overall


def fairness_index(shares: Sequence[float]) -> float:
    """Jain's fairness index over per-application OoO shares (0..1]."""
    if not shares:
        return 1.0
    total = sum(shares)
    sq = sum(s * s for s in shares)
    if total == 0 or sq == 0:
        # All-zero shares, or values so small that squaring
        # underflows: treat as perfectly fair.
        return 1.0
    return min(1.0, (total * total) / (len(shares) * sq))
