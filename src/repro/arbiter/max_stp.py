"""Throughput-oriented arbitration for traditional Het-CMPs
(paper section 3.2.2, modelling prior work such as Becchi & Crowley)."""

from __future__ import annotations

from repro.arbiter.base import AppView, Arbitrator


class MaxSTPArbitrator(Arbitrator):
    """Give the OoO to the application with the lowest speedup.

    ``speedup`` compares the current InO IPC to the IPC last observed
    on the OoO; every application is forcibly sampled on the OoO at
    least once per ``sample_every`` intervals (paper: 50 M cycles) to
    keep those estimates from going stale.  The OoO is never gated.
    """

    name = "maxSTP"

    def __init__(self, *, sample_every: int = 50):
        self.sample_every = sample_every

    def pick(self, views: list[AppView], *, interval_index: int,
             slots: int = 1) -> list[int]:
        """Stale estimates first, then the lowest-speedup apps."""
        stale = sorted(
            (v for v in views
             if v.ipc_ooo_last is None
             or v.intervals_since_ooo >= self.sample_every),
            key=lambda v: -v.intervals_since_ooo,
        )
        slowest = sorted(views, key=lambda v: v.speedup)
        picked: list[int] = []
        for v in stale + slowest:
            if v.index not in picked:
                picked.append(v.index)
            if len(picked) >= slots:
                break
        return picked
