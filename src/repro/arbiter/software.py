"""Software (OS-level) arbitration (paper section 3.2.4).

The hardware arbitrator reacts at 1 M-cycle interval boundaries; an
arbitrator in the OS is restricted to scheduler-timeslice granularity
(~10 ms ≈ 20 M cycles at 2 GHz), i.e. it can only *re-decide* every
``reaction_intervals`` hardware intervals and holds its last decision
in between.  The paper predicts its effectiveness is lower because
memoizability decays sharply at coarser reaction times (Figure 3b);
:mod:`repro.experiments.software_arbiter` quantifies exactly that.
"""

from __future__ import annotations

from repro.arbiter.base import AppView, Arbitrator

#: 10 ms OS timeslice over the paper's 1 M-cycle hardware interval.
OS_TIMESLICE_INTERVALS = 20


class SoftwareArbitrator(Arbitrator):
    """Wraps any arbitrator, limiting it to OS reaction granularity."""

    def __init__(self, inner: Arbitrator,
                 reaction_intervals: int = OS_TIMESLICE_INTERVALS):
        if reaction_intervals < 1:
            raise ValueError("reaction_intervals must be >= 1")
        self.inner = inner
        self.reaction_intervals = reaction_intervals
        self.name = f"software-{inner.name}"
        self._held: list[int] = []
        self._decided_at: int | None = None

    def pick(self, views: list[AppView], *, interval_index: int,
             slots: int = 1) -> list[int]:
        due = (
            self._decided_at is None
            or interval_index - self._decided_at >= self.reaction_intervals
        )
        if due:
            self._held = self.inner.pick(
                views, interval_index=interval_index, slots=slots)
            self._decided_at = interval_index
        return list(self._held)

    def reset(self) -> None:
        self.inner.reset()
        self._held = []
        self._decided_at = None
