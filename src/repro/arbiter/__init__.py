"""Runtime arbitrators (paper section 3.2).

The arbitrator is a hardware extension of the OoO that polls all
applications' performance counters at interval boundaries and decides
who gets the producer OoO next — or whether to power it down.

* :class:`SCMPKIArbitrator` — energy-oriented: picks the highest
  ΔSC-MPKI above a threshold, damped by a ping-pong decay; gates the
  OoO when nobody qualifies.
* :class:`MaxSTPArbitrator` — throughput-oriented prior-work runtime
  for traditional Het-CMPs: lowest speedup wins, with forced sampling.
* :class:`SCMPKIMaxSTPArbitrator` — throughput-oriented on Mirage.
* :class:`FairArbitrator` — plain round-robin equal timeshare.
* :class:`SCMPKIFairArbitrator` — round-robin that skips applications
  already meeting their share through memoization, gating the OoO.
"""

from repro.arbiter.base import AppView, Arbitrator
from repro.arbiter.fair import FairArbitrator, SCMPKIFairArbitrator
from repro.arbiter.max_stp import MaxSTPArbitrator
from repro.arbiter.sc_mpki import SCMPKIArbitrator, SCMPKIMaxSTPArbitrator

__all__ = [
    "AppView",
    "Arbitrator",
    "SCMPKIArbitrator",
    "MaxSTPArbitrator",
    "SCMPKIMaxSTPArbitrator",
    "FairArbitrator",
    "SCMPKIFairArbitrator",
]
