"""Fairness-oriented arbitration (paper section 3.2.3)."""

from __future__ import annotations

from repro.arbiter.base import AppView, Arbitrator


class _RotationCursor:
    """A round-robin cursor that survives population changes.

    For a fixed population this is exactly the historical integer
    cursor — same arithmetic, same state, bit-identical picks.  When
    a lifecycle phase admits or retires applications between picks
    (the view list's names change), :meth:`align` re-anchors the
    cursor by *name*: it lands on the first still-present application
    at or after the old cursor position, so nobody's turn is skipped
    or double-served just because indices shifted underneath.
    """

    __slots__ = ("index", "names")

    def __init__(self) -> None:
        self.index = 0
        self.names: tuple[str, ...] | None = None

    def reset(self) -> None:
        """Rewind to application 0 and forget the last membership."""
        self.index = 0
        self.names = None

    def align(self, views: list[AppView]) -> None:
        """Re-anchor the cursor if the population changed since the
        last pick; a no-op (same arithmetic as before the cursor
        learned names) while membership is stable."""
        old = self.names
        names = tuple(v.name for v in views)
        if old is not None and names != old and old:
            n_old = len(old)
            for k in range(n_old):
                candidate = old[(self.index + k) % n_old]
                try:
                    self.index = names.index(candidate)
                    break
                except ValueError:
                    continue
            else:
                self.index = 0
        self.names = names


class FairArbitrator(Arbitrator):
    """Strict round-robin: every application gets an equal OoO share.

    Models the fair scheduler on a traditional Het-CMP: the OoO is
    always busy and applications migrate at every interval boundary,
    which is exactly the energy/overhead problem Figure 13 shows.
    Handles a variable population: the rotation re-anchors by
    application name when a scenario's lifecycle events shift view
    indices (see :class:`_RotationCursor`).
    """

    name = "Fair"

    def __init__(self) -> None:
        self._cursor = _RotationCursor()

    def pick(self, views: list[AppView], *, interval_index: int,
             slots: int = 1) -> list[int]:
        """The next *slots* applications in round-robin order."""
        if not views:
            return []
        cursor = self._cursor
        cursor.align(views)
        picked = []
        for k in range(min(slots, len(views))):
            picked.append(views[(cursor.index + k) % len(views)].index)
        cursor.index = (cursor.index + len(picked)) % len(views)
        return picked

    def reset(self) -> None:
        """Rewind the round-robin cursor to application 0."""
        self._cursor.reset()


class SCMPKIFairArbitrator(Arbitrator):
    """Round-robin with memoization awareness (paper SC-MPKI-fair).

    Time spent running memoized schedules on the InO counts toward an
    application's OoO share (Equation 3).  The next application in
    round-robin order is only migrated if it is *behind* its fair share
    or its Schedule Cache has gone stale; otherwise the OoO is powered
    down for the interval — fairness with energy savings.  Like
    :class:`FairArbitrator`, the rotation survives mid-run population
    changes by re-anchoring on application names.
    """

    name = "SC-MPKI-fair"

    def __init__(self, *, threshold: float = 1.0):
        self.threshold = threshold
        self._cursor = _RotationCursor()

    def pick(self, views: list[AppView], *, interval_index: int,
             slots: int = 1) -> list[int]:
        """Round-robin scan, migrating only behind-share/stale apps."""
        if not views:
            return []
        self._cursor.align(views)
        fair_share = 1.0 / len(views)
        picked: list[int] = []
        scanned = 0
        cursor = self._cursor.index
        while scanned < len(views) and len(picked) < slots:
            view = views[cursor % len(views)]
            cursor += 1
            scanned += 1
            behind = view.util < fair_share
            stale = view.delta_sc_mpki > self.threshold
            if behind or stale:
                picked.append(view.index)
        # Advance past everything we scanned so skipped apps are not
        # re-examined first next time (their turn passed).
        self._cursor.index = cursor % len(views)
        return picked

    def reset(self) -> None:
        """Rewind the round-robin cursor to application 0."""
        self._cursor.reset()
