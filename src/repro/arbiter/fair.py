"""Fairness-oriented arbitration (paper section 3.2.3)."""

from __future__ import annotations

from repro.arbiter.base import AppView, Arbitrator


class FairArbitrator(Arbitrator):
    """Strict round-robin: every application gets an equal OoO share.

    Models the fair scheduler on a traditional Het-CMP: the OoO is
    always busy and applications migrate at every interval boundary,
    which is exactly the energy/overhead problem Figure 13 shows.
    """

    name = "Fair"

    def __init__(self) -> None:
        self._cursor = 0

    def pick(self, views: list[AppView], *, interval_index: int,
             slots: int = 1) -> list[int]:
        """The next *slots* applications in round-robin order."""
        if not views:
            return []
        picked = []
        for k in range(min(slots, len(views))):
            picked.append(views[(self._cursor + k) % len(views)].index)
        self._cursor = (self._cursor + len(picked)) % len(views)
        return picked

    def reset(self) -> None:
        """Rewind the round-robin cursor to application 0."""
        self._cursor = 0


class SCMPKIFairArbitrator(Arbitrator):
    """Round-robin with memoization awareness (paper SC-MPKI-fair).

    Time spent running memoized schedules on the InO counts toward an
    application's OoO share (Equation 3).  The next application in
    round-robin order is only migrated if it is *behind* its fair share
    or its Schedule Cache has gone stale; otherwise the OoO is powered
    down for the interval — fairness with energy savings.
    """

    name = "SC-MPKI-fair"

    def __init__(self, *, threshold: float = 1.0):
        self.threshold = threshold
        self._cursor = 0

    def pick(self, views: list[AppView], *, interval_index: int,
             slots: int = 1) -> list[int]:
        """Round-robin scan, migrating only behind-share/stale apps."""
        if not views:
            return []
        fair_share = 1.0 / len(views)
        picked: list[int] = []
        scanned = 0
        cursor = self._cursor
        while scanned < len(views) and len(picked) < slots:
            view = views[cursor % len(views)]
            cursor += 1
            scanned += 1
            behind = view.util < fair_share
            stale = view.delta_sc_mpki > self.threshold
            if behind or stale:
                picked.append(view.index)
        # Advance past everything we scanned so skipped apps are not
        # re-examined first next time (their turn passed).
        self._cursor = cursor % len(views)
        return picked

    def reset(self) -> None:
        """Rewind the round-robin cursor to application 0."""
        self._cursor = 0
