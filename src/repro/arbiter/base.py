"""Arbitrator interface and the performance-counter view it polls."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.metrics import delta_sc_mpki, speedup

if TYPE_CHECKING:
    from repro.engine.views import AppViewBatch


@dataclass(slots=True)
class AppView:
    """One application's performance counters as the arbitrator sees
    them at an interval boundary (paper section 3.2)."""

    index: int
    name: str
    ipc_current: float          #: IPC over the last interval
    ipc_ooo_last: float | None  #: IPC last time this app ran on the OoO
    sc_mpki_ino: float          #: SC-MPKI over the last InO interval
    sc_mpki_ooo: float | None   #: SC-MPKI measured while memoizing
    intervals_since_ooo: int    #: intervals since last OoO residence
    util: float                 #: Equation-3 effective OoO timeshare
    on_ooo: bool

    @property
    def speedup(self) -> float:
        """Equation 2 estimate using the stale OoO IPC."""
        if self.ipc_ooo_last is None:
            return 0.0  # never sampled: assume maximal slowdown
        return speedup(self.ipc_current, self.ipc_ooo_last)

    @property
    def delta_sc_mpki(self) -> float:
        """Equation 1; conservative when the app was never memoized."""
        if self.sc_mpki_ooo is None:
            # Never on the OoO: everything misses, treat as strongly
            # stale so the app gets a first memoize phase.
            return float("inf") if self.sc_mpki_ino > 0 else 0.0
        return delta_sc_mpki(self.sc_mpki_ino, self.sc_mpki_ooo)


class Arbitrator(ABC):
    """Decides OoO occupancy for the next interval."""

    #: Display name used by the experiments/figures.
    name: str = "base"

    @abstractmethod
    def pick(self, views: list[AppView], *, interval_index: int,
             slots: int = 1) -> list[int]:
        """Return the app indices to run on the producer core(s).

        Up to *slots* indices (one per OoO).  An empty list powers the
        OoO(s) down for the interval.
        """

    def pick_batch(self, batch: "AppViewBatch", *, interval_index: int,
                   slots: int = 1) -> list[int]:
        """Batch-first entry point the engine pipeline prefers.

        The default materializes the historical view list from the
        batch and defers to :meth:`pick`, so subclassing ``pick``
        alone keeps working; arbitrators with a column fast path
        override this and must return the identical indices.
        """
        return self.pick(batch.views(), interval_index=interval_index,
                         slots=slots)

    def reset(self) -> None:
        """Clear internal state between runs (default: stateless)."""
