"""Energy-efficiency-oriented arbitration (paper section 3.2.1)."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.arbiter.base import AppView, Arbitrator

if TYPE_CHECKING:
    from repro.engine.views import AppViewBatch

_INF = float("inf")


class SCMPKIArbitrator(Arbitrator):
    """Pick the application with the highest ΔSC-MPKI above a threshold.

    ΔSC-MPKI spikes when an application's Schedule Cache goes stale —
    the prime moment to refresh it on the producer.  Applications that
    recently held the OoO are damped by a decay factor so that
    volatile-schedule codes (gcc) do not ping-pong.  When no candidate
    clears the threshold the OoO is powered down for the interval.
    """

    name = "SC-MPKI"

    def __init__(self, *, threshold: float = 0.8, decay_strength: float = 8.0,
                 starvation_intervals: int = 200):
        self.threshold = threshold
        self.decay_strength = decay_strength
        #: Safety valve: every app is sampled on the OoO at least once
        #: per this many intervals so IPC/SC-MPKI estimates stay fresh.
        self.starvation_intervals = starvation_intervals

    def _score(self, view: AppView) -> float:
        delta = view.delta_sc_mpki
        if delta == float("inf"):
            return float("inf")
        decay = 1.0 + self.decay_strength / max(1, view.intervals_since_ooo)
        return delta / decay

    def pick(self, views: list[AppView], *, interval_index: int,
             slots: int = 1) -> list[int]:
        """Starving apps first, then the highest decayed ΔSC-MPKI."""
        starving = [
            v for v in views
            if v.intervals_since_ooo >= self.starvation_intervals
        ]
        # Score each view exactly once (delta_sc_mpki is a computed
        # property); the stable sort on the precomputed score keeps
        # ties in view order, same as sorting with _score as the key.
        scored = [(self._score(v), v) for v in views]
        candidates = [
            v for _, v in sorted(
                (pair for pair in scored if pair[0] > self.threshold),
                key=lambda pair: pair[0], reverse=True,
            )
        ]
        picked: list[int] = []
        for v in starving + candidates:
            if v.index not in picked:
                picked.append(v.index)
            if len(picked) >= slots:
                break
        return picked

    # ------------------------------------------------------------------
    def pick_batch(self, batch: "AppViewBatch", *, interval_index: int,
                   slots: int = 1) -> list[int]:
        """Column fast path over the batch, identical to :meth:`pick`.

        ΔSC-MPKI, decay and the stable candidate ordering read the
        three counters they need straight off the batch — either the
        live ``AppState`` records or the vector backend's numpy
        columns — instead of materializing ``AppView`` objects.
        Subclasses that override :meth:`pick` fall back to it so their
        policy is never silently bypassed.
        """
        if type(self).pick is not SCMPKIArbitrator.pick:
            return self.pick(batch.views(), interval_index=interval_index,
                             slots=slots)
        if batch.apps is not None:
            return self._pick_states(batch.apps, slots)
        return self._pick_arrays(batch, slots)

    def _pick_states(self, apps, slots: int) -> list[int]:
        threshold = self.threshold
        ds = self.decay_strength
        starvation = self.starvation_intervals
        starving: list[int] = []
        ordered: list[tuple[float, int]] = []
        for i, app in enumerate(apps):
            iso = app.intervals_since_ooo
            if iso >= starvation:
                starving.append(i)
            ooo = app.sc_mpki_ooo_last
            if ooo is None:
                score = _INF if app.sc_mpki_ino_last > 0 else 0.0
            else:
                # Conditionals spell out max(ooo, 0.1) / max(1, iso):
                # identical values, no builtin call on the hot loop.
                delta = (app.sc_mpki_ino_last - ooo) / (
                    ooo if ooo > 0.1 else 0.1)
                if delta == _INF:
                    score = _INF
                else:
                    score = delta / (1.0 + ds / (iso if iso > 1 else 1))
            if score > threshold:
                ordered.append((score, i))
        ordered.sort(key=lambda pair: pair[0], reverse=True)
        picked: list[int] = []
        for i in starving + [i for _, i in ordered]:
            if i not in picked:
                picked.append(i)
            if len(picked) >= slots:
                break
        return picked

    def _pick_arrays(self, batch: "AppViewBatch",
                     slots: int) -> list[int]:
        import numpy as np
        ino = batch.sc_mpki_ino
        ooo = batch.sc_mpki_ooo
        iso = batch.intervals_since_ooo
        known = ~np.isnan(ooo)
        safe = np.where(known, ooo, 1.0)
        delta = np.where(
            known, (ino - safe) / np.maximum(safe, 0.1),
            np.where(ino > 0, np.inf, 0.0))
        decay = 1.0 + self.decay_strength / np.maximum(1, iso)
        score = delta / decay     # inf stays inf: decay >= 1
        starving = np.nonzero(iso >= self.starvation_intervals)[0]
        cand = np.nonzero(score > self.threshold)[0]
        order = np.argsort(-score[cand], kind="stable")
        picked: list[int] = []
        for i in starving.tolist() + cand[order].tolist():
            if i not in picked:
                picked.append(i)
            if len(picked) >= slots:
                break
        return picked


class SCMPKIMaxSTPArbitrator(Arbitrator):
    """Throughput-oriented arbitration on the Mirage architecture.

    Prefers memoization opportunities weighted by the slowdown they
    would repair; when nothing is memoizable it still engages the OoO
    for the slowest application (never powers down), mirroring the
    always-on behaviour of maxSTP.
    """

    name = "SC-MPKI+maxSTP"

    def __init__(self, *, threshold: float = 1.0):
        self.threshold = threshold

    def pick(self, views: list[AppView], *, interval_index: int,
             slots: int = 1) -> list[int]:
        """Highest memoization-gain apps; lowest speedup as fallback."""
        def gain(view: AppView) -> float:
            slowdown = 1.0 - min(1.0, view.speedup)
            delta = view.delta_sc_mpki
            if delta == float("inf"):
                return float("inf")
            return delta * max(slowdown, 0.05)

        memoizable = sorted(
            (v for v in views if v.delta_sc_mpki > self.threshold),
            key=gain, reverse=True,
        )
        fallback = sorted(views, key=lambda v: v.speedup)
        picked: list[int] = []
        for v in list(memoizable) + fallback:
            if v.index not in picked:
                picked.append(v.index)
            if len(picked) >= slots:
                break
        return picked
