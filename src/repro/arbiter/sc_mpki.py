"""Energy-efficiency-oriented arbitration (paper section 3.2.1)."""

from __future__ import annotations

from repro.arbiter.base import AppView, Arbitrator


class SCMPKIArbitrator(Arbitrator):
    """Pick the application with the highest ΔSC-MPKI above a threshold.

    ΔSC-MPKI spikes when an application's Schedule Cache goes stale —
    the prime moment to refresh it on the producer.  Applications that
    recently held the OoO are damped by a decay factor so that
    volatile-schedule codes (gcc) do not ping-pong.  When no candidate
    clears the threshold the OoO is powered down for the interval.
    """

    name = "SC-MPKI"

    def __init__(self, *, threshold: float = 0.8, decay_strength: float = 8.0,
                 starvation_intervals: int = 200):
        self.threshold = threshold
        self.decay_strength = decay_strength
        #: Safety valve: every app is sampled on the OoO at least once
        #: per this many intervals so IPC/SC-MPKI estimates stay fresh.
        self.starvation_intervals = starvation_intervals

    def _score(self, view: AppView) -> float:
        delta = view.delta_sc_mpki
        if delta == float("inf"):
            return float("inf")
        decay = 1.0 + self.decay_strength / max(1, view.intervals_since_ooo)
        return delta / decay

    def pick(self, views: list[AppView], *, interval_index: int,
             slots: int = 1) -> list[int]:
        starving = [
            v for v in views
            if v.intervals_since_ooo >= self.starvation_intervals
        ]
        # Score each view exactly once (delta_sc_mpki is a computed
        # property); the stable sort on the precomputed score keeps
        # ties in view order, same as sorting with _score as the key.
        scored = [(self._score(v), v) for v in views]
        candidates = [
            v for _, v in sorted(
                (pair for pair in scored if pair[0] > self.threshold),
                key=lambda pair: pair[0], reverse=True,
            )
        ]
        picked: list[int] = []
        for v in starving + candidates:
            if v.index not in picked:
                picked.append(v.index)
            if len(picked) >= slots:
                break
        return picked


class SCMPKIMaxSTPArbitrator(Arbitrator):
    """Throughput-oriented arbitration on the Mirage architecture.

    Prefers memoization opportunities weighted by the slowdown they
    would repair; when nothing is memoizable it still engages the OoO
    for the slowest application (never powers down), mirroring the
    always-on behaviour of maxSTP.
    """

    name = "SC-MPKI+maxSTP"

    def __init__(self, *, threshold: float = 1.0):
        self.threshold = threshold

    def pick(self, views: list[AppView], *, interval_index: int,
             slots: int = 1) -> list[int]:
        def gain(view: AppView) -> float:
            slowdown = 1.0 - min(1.0, view.speedup)
            delta = view.delta_sc_mpki
            if delta == float("inf"):
                return float("inf")
            return delta * max(slowdown, 0.05)

        memoizable = sorted(
            (v for v in views if v.delta_sc_mpki > self.threshold),
            key=gain, reverse=True,
        )
        fallback = sorted(views, key=lambda v: v.speedup)
        picked: list[int] = []
        for v in list(memoizable) + fallback:
            if v.index not in picked:
                picked.append(v.index)
            if len(picked) >= slots:
                break
        return picked
