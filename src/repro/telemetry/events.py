"""The telemetry event schema shared by both simulator tiers.

Every engine phase (and the detailed cycle-level cluster) reports what
it did through a small set of *typed* records.  One schema serves the
interval tier, the detailed tier, the runner cache and the JSONL trace
files, so serial, parallel, cached and detailed runs all serialize
identical telemetry and cross-tier comparisons are structural rather
than ad-hoc.

Record kinds:

* ``"interval"`` — one application's outcome for one arbitration
  interval (or one detailed-tier slice).  Supersedes the old
  ``IntervalSample`` history rows behind Figures 5 and 10.
* ``"arbitration"`` — which applications were granted the producer
  OoO(s) at an interval boundary.
* ``"migration"`` — the cost breakdown of one core migration, with
  the exact cycle components the
  :class:`~repro.cmp.migration.MigrationCostModel` computed plus the
  Schedule-Cache bytes that crossed the shared bus.
* ``"energy"`` — the energy charged to one application this interval.
* ``"lifecycle"`` — one application arriving into or departing from a
  dynamic scenario run (see :mod:`repro.engine.lifecycle`).
* ``"run"`` — an end-of-run summary with the final counter totals.
* ``"job"`` — one state change of a job inside the experiment service
  (:mod:`repro.service`); the per-job JSONL stream that ``mirage
  tail`` follows is a sequence of these.
* ``"worker"`` — one lifecycle event of a service worker process:
  spawn, heartbeat, eviction, drain.

Records round-trip losslessly through JSON (:func:`to_record` /
:func:`from_record`): floats survive via shortest-repr, and no field
ever holds a non-finite value.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import ClassVar, Union


@dataclass(slots=True)
class IntervalRecord:
    """One application's per-interval trace row (Figures 5 and 10)."""

    interval: int               #: arbitration interval (or slice) index
    app: str
    on_ooo: bool
    ipc: float
    speedup: float              #: vs running alone on an OoO, capped at 1
    sc_mpki_ino: float
    delta_sc_mpki: float        #: Equation 1, floored against /0
    phase_id: int               #: -1 where no phase model exists

    kind: ClassVar[str] = "interval"


@dataclass(slots=True)
class ArbitrationRecord:
    """The arbitrator's pick for one interval."""

    interval: int
    chosen: list[str]           #: app names granted a producer slot
    slots: int                  #: producer cores available

    kind: ClassVar[str] = "arbitration"


@dataclass(slots=True)
class MigrationRecord:
    """Cost accounting for one application migration."""

    interval: int
    app: str
    to_ooo: bool
    sc_bytes: int               #: SC payload shipped over the bus
    drain_cycles: int
    l1_warmup_cycles: int
    sc_transfer_cycles: int
    bus_contention_cycles: int
    charged_cycles: float       #: what the engine actually billed
    l1_flush_dirty: int = 0     #: detailed tier: dirty lines written back
    l1_flush_lines: int = 0     #: detailed tier: total lines dropped

    kind: ClassVar[str] = "migration"


@dataclass(slots=True)
class EnergyRecord:
    """Energy charged to one application for one interval."""

    interval: int
    app: str
    core: str                   #: "ooo" | "ino" | "oino"
    energy_pj: float            #: 0.0 once the app completed its budget

    kind: ClassVar[str] = "energy"


@dataclass(slots=True)
class LifecycleRecord:
    """One application arriving or departing mid-run.

    Emitted by :class:`~repro.engine.lifecycle.LifecyclePhase` when a
    scenario schedule admits or retires an application; ``resident``
    is the cluster population *after* the event took effect.
    """

    interval: int
    app: str                    #: scenario uid (unique within the run)
    event: str                  #: "arrive" | "depart"
    benchmark: str = ""         #: profile name behind the uid
    cluster: str = ""           #: cluster label in multi-cluster runs
    resident: int = 0           #: population after the event
    completions: int = 0        #: budget completions (depart only)
    residency_intervals: int = 0  #: intervals resident (depart only)

    kind: ClassVar[str] = "lifecycle"


@dataclass(slots=True)
class JobRecord:
    """One state change of a service job, as streamed to clients.

    The experiment server (:mod:`repro.service`) appends these to the
    job's JSONL stream file; ``mirage tail`` renders them live.  The
    terminal ``"done"`` record's ``payload`` carries the job's full
    result envelopes, byte-identical to what a direct
    :class:`~repro.runner.executor.SweepRunner` run would encode.
    """

    job_id: str
    event: str                  #: queued|started|unit|done|failed|cancelled
    experiment: str = ""        #: what was submitted, for humans
    units_total: int = 0
    units_done: int = 0
    priority: int = 0
    worker_id: str = ""         #: who produced this event, if a worker
    detail: str = ""            #: error text / coalescing notes
    payload: dict = field(default_factory=dict)  #: result envelopes

    kind: ClassVar[str] = "job"


@dataclass(slots=True)
class WorkerRecord:
    """One lifecycle event of a service worker process."""

    worker_id: str
    event: str                  #: spawned|registered|busy|idle|evicted|drained|exited
    pid: int = 0
    unit_digest: str = ""       #: the unit involved, for busy/evicted
    units_done: int = 0         #: completed by this worker so far
    detail: str = ""            #: eviction reason, exit status

    kind: ClassVar[str] = "worker"


@dataclass(slots=True)
class RunRecord:
    """End-of-run summary: identity plus final counter totals."""

    config: str
    arbitrator: str
    intervals: int
    total_cycles: float
    counters: dict = field(default_factory=dict)

    kind: ClassVar[str] = "run"


TelemetryEvent = Union[
    IntervalRecord, ArbitrationRecord, MigrationRecord,
    EnergyRecord, LifecycleRecord, JobRecord, WorkerRecord, RunRecord,
]

#: Registry used by :func:`from_record` and the ``mirage trace`` command.
EVENT_TYPES: dict[str, type] = {
    cls.kind: cls
    for cls in (IntervalRecord, ArbitrationRecord, MigrationRecord,
                EnergyRecord, LifecycleRecord, JobRecord, WorkerRecord,
                RunRecord)
}


def to_record(event: TelemetryEvent) -> dict:
    """Flatten an event to a JSON-safe dict (``kind`` first)."""
    out = {"kind": event.kind}
    out.update(asdict(event))
    return out


def from_record(record: dict) -> TelemetryEvent:
    """Rebuild a typed event from :func:`to_record` output."""
    fields = dict(record)
    kind = fields.pop("kind", None)
    cls = EVENT_TYPES.get(kind)
    if cls is None:
        raise ValueError(f"unknown telemetry record kind {kind!r}")
    return cls(**fields)
