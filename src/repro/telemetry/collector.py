"""The telemetry hub: typed counters plus event fan-out to sinks.

One :class:`Telemetry` instance rides along with a simulation (either
tier).  Phases bump :class:`Counters` unconditionally — they are cheap
totals — but only *build* event records when some attached sink
subscribed to that kind (:meth:`Telemetry.wants`), so uninstrumented
runs keep their old cost.
"""

from __future__ import annotations

from repro.telemetry.events import TelemetryEvent
from repro.telemetry.profiler import PhaseProfiler
from repro.telemetry.sinks import MemorySink, TelemetrySink


class Counters(dict):
    """Typed counter map: ``name -> running numeric total``.

    Names are dotted ``layer.metric`` strings
    (``"migration.sc_bytes"``, ``"ooo.instructions"``, ...).
    """

    def bump(self, name: str, value=1) -> None:
        """Add *value* (default 1) to the counter *name*."""
        self[name] = self.get(name, 0) + value

    def merge(self, other) -> None:
        """Add every counter of *other* (any mapping) into this one."""
        for name, value in other.items():
            self[name] = self.get(name, 0) + value


class Telemetry:
    """Collects counters, profiles phases, and fans events to sinks."""

    def __init__(self, sinks=()):
        self.sinks: list[TelemetrySink] = list(sinks)
        self.counters = Counters()
        self.profiler = PhaseProfiler()

    # -- sinks ---------------------------------------------------------
    def attach(self, sink: TelemetrySink) -> TelemetrySink:
        """Add *sink* and return it (handy for local captures)."""
        self.sinks.append(sink)
        return sink

    def detach(self, sink: TelemetrySink) -> None:
        """Remove a previously attached sink."""
        self.sinks.remove(sink)

    def close(self) -> None:
        """Close every attached sink (flushes file-backed ones)."""
        for sink in self.sinks:
            sink.close()

    # -- events --------------------------------------------------------
    def wants(self, kind: str) -> bool:
        """True if any sink subscribed to *kind* — emitters check this
        before building a record, so unobserved kinds cost nothing."""
        if not self.sinks:      # the common uninstrumented case
            return False
        return any(sink.wants(kind) for sink in self.sinks)

    def emit(self, event: TelemetryEvent) -> None:
        """Deliver *event* to every sink subscribed to its kind."""
        for sink in self.sinks:
            if sink.wants(event.kind):
                sink.emit(event)

    # -- conveniences --------------------------------------------------
    @classmethod
    def recording(cls, kinds=None) -> tuple["Telemetry", MemorySink]:
        """A fresh hub with one attached :class:`MemorySink`."""
        telemetry = cls()
        return telemetry, telemetry.attach(MemorySink(kinds))

    def summarize_run(self, *, config: str, arbitrator: str,
                      intervals: int, total_cycles: float) -> None:
        """Close out one run: bump ``run.intervals`` and emit the
        :class:`~repro.telemetry.events.RunRecord` (with a snapshot of
        every counter) if any sink subscribed.  Both simulator tiers
        end their ``run()`` through this one path.
        """
        from repro.telemetry.events import RunRecord

        self.counters.bump("run.intervals", intervals)
        if self.wants("run"):
            self.emit(RunRecord(
                config=config,
                arbitrator=arbitrator,
                intervals=intervals,
                total_cycles=total_cycles,
                counters=dict(self.counters),
            ))
