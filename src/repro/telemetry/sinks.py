"""Telemetry sinks: where emitted events go.

A sink declares which record kinds it wants (``kinds=None`` = all);
the :class:`~repro.telemetry.collector.Telemetry` hub only *builds*
records some sink asked for, so an unobserved simulation pays nothing
for the instrumentation.
"""

from __future__ import annotations

import json
from abc import ABC, abstractmethod
from pathlib import Path

from repro.telemetry.events import TelemetryEvent, from_record, to_record


class TelemetrySink(ABC):
    """Consumes telemetry events of the kinds it subscribes to."""

    #: Record kinds this sink accepts; ``None`` means every kind.
    kinds: frozenset[str] | None = None

    def wants(self, kind: str) -> bool:
        """True if this sink subscribed to records of *kind*."""
        return self.kinds is None or kind in self.kinds

    @abstractmethod
    def emit(self, event: TelemetryEvent) -> None:
        """Consume one event (only called when :meth:`wants` is true)."""

    def close(self) -> None:
        """Flush and release any resources (default: nothing)."""


class MemorySink(TelemetrySink):
    """Collects events in a list — the in-process trace consumer."""

    def __init__(self, kinds=None):
        self.kinds = frozenset(kinds) if kinds is not None else None
        self.events: list[TelemetryEvent] = []

    def emit(self, event: TelemetryEvent) -> None:
        """Append the event to the in-memory list."""
        self.events.append(event)

    def records(self, kind: str | None = None) -> list[TelemetryEvent]:
        """Stored events, optionally filtered to one kind."""
        if kind is None:
            return list(self.events)
        return [e for e in self.events if e.kind == kind]


class JSONLSink(TelemetrySink):
    """Streams events to a JSON-Lines file (one record per line).

    The file opens lazily on the first event; ``mode="a"`` lets many
    runs of one CLI invocation share a single trace file.
    """

    def __init__(self, path, *, mode: str = "w", kinds=None):
        if mode not in ("w", "a"):
            raise ValueError("mode must be 'w' or 'a'")
        self.path = Path(path)
        self.mode = mode
        self.kinds = frozenset(kinds) if kinds is not None else None
        self.written = 0
        self._handle = None

    def emit(self, event: TelemetryEvent) -> None:
        """Write the event as one JSON line (opens the file lazily)."""
        if self._handle is None:
            if self.path.parent != Path("."):
                self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open(self.mode)
        self._handle.write(dump_record(event) + "\n")
        self.written += 1

    def close(self) -> None:
        """Close the file handle; a later emit reopens in append."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def dump_record(event: TelemetryEvent) -> str:
    """One event as a compact single-line JSON string."""
    return json.dumps(to_record(event), separators=(",", ":"))


def read_trace(path) -> list[TelemetryEvent]:
    """Load a JSONL trace file back into typed events."""
    events = []
    with Path(path).open() as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(from_record(json.loads(line)))
    return events
