"""Structured telemetry shared by both simulator tiers.

The interval engine's phases and the detailed cycle-level cluster emit
one schema of typed records (:mod:`repro.telemetry.events`) into a
:class:`Telemetry` hub, which keeps running :class:`Counters`, profiles
per-phase wall time, and fans events out to sinks — in-memory capture
for the figures, JSONL streaming for ``mirage --trace``.

>>> from repro.telemetry import Telemetry, MemorySink
>>> telemetry, trace = Telemetry.recording(kinds={"interval"})
>>> system = CMPSystem(config, models, arb, telemetry=telemetry)
>>> system.run()
>>> trace.records("interval")      # the Figure 5/10 timeline rows
"""

from repro.telemetry.collector import Counters, Telemetry
from repro.telemetry.events import (
    EVENT_TYPES,
    ArbitrationRecord,
    EnergyRecord,
    IntervalRecord,
    JobRecord,
    LifecycleRecord,
    MigrationRecord,
    RunRecord,
    TelemetryEvent,
    WorkerRecord,
    from_record,
    to_record,
)
from repro.telemetry.profiler import PhaseProfiler
from repro.telemetry.sinks import (
    JSONLSink,
    MemorySink,
    TelemetrySink,
    dump_record,
    read_trace,
)

__all__ = [
    "EVENT_TYPES",
    "ArbitrationRecord",
    "Counters",
    "EnergyRecord",
    "IntervalRecord",
    "JSONLSink",
    "JobRecord",
    "LifecycleRecord",
    "MemorySink",
    "MigrationRecord",
    "PhaseProfiler",
    "RunRecord",
    "Telemetry",
    "TelemetryEvent",
    "TelemetrySink",
    "WorkerRecord",
    "dump_record",
    "from_record",
    "read_trace",
    "to_record",
]
