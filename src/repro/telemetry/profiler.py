"""Per-phase wall-time profiling for the interval engine.

The engine times every phase invocation; the accumulated seconds show
where a sweep's wall-clock actually goes (arbitration vs execution vs
energy integration), which is the first thing to look at before
optimizing either tier.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter


class PhaseProfiler:
    """Accumulates wall-clock seconds and call counts per phase."""

    def __init__(self):
        self.seconds: dict[str, float] = {}
        self.calls: dict[str, int] = {}

    def add(self, name: str, seconds: float) -> None:
        """Record one invocation of *name* taking *seconds*."""
        self.seconds[name] = self.seconds.get(name, 0.0) + seconds
        self.calls[name] = self.calls.get(name, 0) + 1

    @contextmanager
    def time(self, name: str):
        """Context manager form of :meth:`add` for custom phases."""
        start = perf_counter()
        try:
            yield
        finally:
            self.add(name, perf_counter() - start)

    @property
    def total_seconds(self) -> float:
        """Wall seconds across every phase recorded so far."""
        return sum(self.seconds.values())

    def as_dict(self) -> dict[str, dict]:
        """``{phase: {"seconds": ..., "calls": ...}}`` for export."""
        return {
            name: {"seconds": self.seconds[name],
                   "calls": self.calls.get(name, 0)}
            for name in self.seconds
        }

    def summary(self) -> str:
        """One line per phase, slowest first."""
        if not self.seconds:
            return "(no phases profiled)"
        width = max(len(n) for n in self.seconds)
        lines = []
        for name, secs in sorted(self.seconds.items(),
                                 key=lambda kv: -kv[1]):
            calls = self.calls.get(name, 0)
            lines.append(f"{name:<{width}}  {secs:8.4f}s  "
                         f"{calls} calls")
        return "\n".join(lines)
