"""Warm worker pools: persistent processes, zero-copy transport, LPT.

Every parallel path in the repo used to pay a fresh
``ProcessPoolExecutor`` per call: :class:`~repro.runner.executor
.SweepRunner` spawned one per sweep, :func:`repro.cmp.sharded.fan_out`
one per fan-out, and a ``mirage all --jobs N`` run therefore forked
and tore down a pool per experiment.  :class:`WarmPool` replaces that
churn with a **process-global pool of persistent workers**: spawned
once, preloaded with :mod:`repro` (inherited under ``fork``, imported
at startup under ``spawn``), reused across sweeps and fan-outs, and
respawned on crash with the in-flight batch requeued — the same
discipline the experiment-service fleet applies to its TCP workers.

Transport
---------
Task and result envelopes are pickled with **protocol 5** and
out-of-band buffer extraction (:func:`encode_envelope`), so payloads
that expose :class:`pickle.PickleBuffer`-aware buffers (numpy arrays,
big byte blobs) travel as raw segments instead of being copied into
the pickle stream.  Large envelopes move through a
:class:`multiprocessing.shared_memory` ring (:class:`ShmRing`) — the
parent writes segments into the ring and ships only a small
``(offset, sizes, digest)`` descriptor through the queue; each worker
owns a private result segment for the return trip.  Every shared-
memory read is **digest-verified** (SHA-256 over the segments) and
falls back to inline pickling when the ring is exhausted or a
digest mismatches, so shared-memory pressure or corruption costs
time, never correctness.  Envelopes decoded from shared memory borrow
the segment's storage until the batch result is acknowledged;
task functions must not leak buffer views into results (none of the
repo's unit payloads do — they build fresh result objects).

Scheduling
----------
:meth:`WarmPool.map` returns results in input order but *dispatches*
longest-expected-first when per-item cost hints are given
(:func:`lpt_order` — unknown costs are conservatively treated as
infinite and go first).  Assignment is demand-driven — an idle worker
immediately pulls the next pending batch, which is work stealing by
construction — and cheap items are coalesced into dynamic chunks
(:func:`chunk_sizes`) so queue round-trips never dominate wide sweeps
of tiny units.  With LPT ordering, a sweep's wall clock tracks its
critical path instead of its submission order.

Toggling
--------
The pool defaults to **on** and is consulted by every parallel path;
``MIRAGE_WARM_POOL=0`` (or :func:`set_warm_pool_enabled`) restores
the legacy per-call executors.  Worker processes set
``MIRAGE_POOL_WORKER`` so nested fan-outs inside a pool worker
degrade to the serial path instead of forking grandchildren.  The
pool is a pure transport/scheduling layer: results are bit-identical
to serial execution by construction (same ``execute_unit``, same
deterministic merge order), and the CI ``--pool-gate`` holds it to
that byte for byte.
"""

from __future__ import annotations

import atexit
import hashlib
import os
import pickle
import queue as queue_mod
import time
import weakref
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

#: Environment toggle: warm pool on unless set to ``"0"``.
ENV_VAR = "MIRAGE_WARM_POOL"

#: Set inside pool workers; nested pool use degrades to serial there.
WORKER_ENV_VAR = "MIRAGE_POOL_WORKER"

#: Task-ring capacity (bytes) of the shared parent->worker segment.
DEFAULT_RING_BYTES = 8 * 1024 * 1024

#: Per-worker result-segment capacity (bytes).
DEFAULT_RESULT_BYTES = 4 * 1024 * 1024

#: Envelopes smaller than this go inline: queue pipes beat the ring's
#: allocator bookkeeping for small payloads.
SHM_MIN_BYTES = 16 * 1024

#: How many times a batch survives a worker crash before its items
#: are failed (the service fleet's respawn-budget idea, per batch).
MAX_CRASH_RETRIES = 2

#: Poll interval while waiting on results; liveness checks run on
#: this cadence, so crash detection latency is bounded by it.
POLL_SECONDS = 0.05

_enabled: bool | None = None

#: Every live pool, so the atexit sweep can release shared segments
#: even for pools a caller forgot to shut down.
_all_pools: "weakref.WeakSet[WarmPool] | None" = None


def warm_pool_enabled() -> bool:
    """The process-wide default: on unless switched off.

    Resolution order: the last :func:`set_warm_pool_enabled` call,
    else ``MIRAGE_WARM_POOL``, else on.  Always off *inside* a pool
    worker (no nested pools — daemonic workers cannot fork children).
    """
    global _enabled
    if os.environ.get(WORKER_ENV_VAR) == "1":
        return False
    if _enabled is None:
        _enabled = os.environ.get(ENV_VAR, "1") != "0"
    return _enabled


def set_warm_pool_enabled(flag: bool) -> None:
    """Flip the process-wide default and export it to child processes."""
    global _enabled
    _enabled = bool(flag)
    os.environ[ENV_VAR] = "1" if _enabled else "0"


class PoolUnavailable(RuntimeError):
    """The pool cannot run here (sandbox, nesting, or disabled).

    Callers catch this and degrade to their legacy path — the
    per-call executor or plain serial execution — which is
    bit-identical by construction.
    """


class PoolTaskError(RuntimeError):
    """A task function raised (or crashed its worker beyond retries)."""


# ----------------------------------------------------------------------
# Scheduling helpers
# ----------------------------------------------------------------------
def lpt_order(costs: Sequence[float | None]) -> list[int]:
    """Longest-processing-time-first dispatch order over *costs*.

    Items with unknown cost (``None``) are conservatively treated as
    infinitely long and dispatched first (in index order); known
    costs follow in descending order, ties broken by index — the
    whole order is a pure function of *costs*, so identical sweeps
    dispatch identically.
    """
    return sorted(
        range(len(costs)),
        key=lambda i: (costs[i] is not None, -(costs[i] or 0.0), i))


def chunk_sizes(n_items: int, n_workers: int) -> int:
    """Dynamic chunk width for *n_items* over *n_workers*.

    Small batches dispatch singly (best makespan: nothing queues
    behind a long item); wide sweeps of cheap items coalesce so the
    queue round-trip cost stays sublinear.  Mirrors the classic
    executor heuristic but re-evaluated per dispatch, so the tail of
    a sweep always degrades back to single-item assignments.
    """
    if n_items <= 2 * n_workers:
        return 1
    return min(16, max(1, n_items // (4 * n_workers)))


# ----------------------------------------------------------------------
# Zero-copy envelopes
# ----------------------------------------------------------------------
def encode_envelope(obj: Any) -> list[bytes | memoryview]:
    """Pickle *obj* at protocol 5 with out-of-band buffer extraction.

    Returns the segment list ``[stream, buffer, buffer, ...]`` —
    buffer segments are raw :class:`memoryview`\\ s of the object's
    own storage (zero copies for ``PickleBuffer``-aware payloads
    such as numpy arrays); plain-data payloads produce a single
    stream segment.
    """
    buffers: list[pickle.PickleBuffer] = []
    stream = pickle.dumps(obj, protocol=5,
                          buffer_callback=buffers.append)
    return [stream, *[b.raw() for b in buffers]]


def decode_envelope(segments: Sequence[bytes | memoryview]) -> Any:
    """Rebuild the object from :func:`encode_envelope` segments."""
    return pickle.loads(segments[0], buffers=list(segments[1:]))


def decode_from_shm(segments: Sequence[memoryview]) -> Any:
    """Decode an envelope whose segments live in shared memory.

    Out-of-band buffers are copied out: the reconstructed object
    could otherwise alias ring storage that the allocator reuses
    the moment this batch resolves.  The pickle *stream* (the bulk
    of a typical envelope) is still consumed straight from the
    segment with no intermediate copy, and every view is released
    so the segment can be unmapped cleanly.
    """
    try:
        return pickle.loads(segments[0],
                            buffers=[bytes(s) for s in segments[1:]])
    finally:
        for view in segments:
            view.release()


def envelope_digest(segments: Sequence[bytes | memoryview]) -> str:
    """SHA-256 over the concatenated segments (transport check)."""
    h = hashlib.sha256()
    for segment in segments:
        h.update(segment)
    return h.hexdigest()


class ShmRing:
    """A shared-memory segment with a parent-side region allocator.

    The parent is the only allocator and the only writer; workers
    attach read-only by name and are handed ``(offset, sizes)``
    descriptors.  A region is freed when the batch it carried
    resolves (its result arrived, or the batch was requeued after a
    crash), which is by construction after the worker stopped
    reading it.  Allocation is first-fit over a sorted free list
    with coalescing on free; :meth:`alloc` returning ``None`` (ring
    exhausted) is the signal to fall back to inline transport.
    """

    def __init__(self, nbytes: int):
        from multiprocessing import shared_memory

        self.shm = shared_memory.SharedMemory(create=True, size=nbytes)
        self.nbytes = nbytes
        self._free: list[list[int]] = [[0, nbytes]]  # [offset, length]

    @property
    def name(self) -> str:
        return self.shm.name

    def alloc(self, nbytes: int) -> int | None:
        """First-fit region of *nbytes*, or ``None`` when exhausted."""
        for span in self._free:
            if span[1] >= nbytes:
                offset = span[0]
                span[0] += nbytes
                span[1] -= nbytes
                if span[1] == 0:
                    self._free.remove(span)
                return offset
        return None

    def free(self, offset: int, nbytes: int) -> None:
        """Return a region; adjacent free spans coalesce."""
        self._free.append([offset, nbytes])
        self._free.sort()
        merged: list[list[int]] = []
        for span in self._free:
            if merged and merged[-1][0] + merged[-1][1] == span[0]:
                merged[-1][1] += span[1]
            else:
                merged.append(span)
        self._free = merged

    def write(self, offset: int,
              segments: Sequence[bytes | memoryview]) -> tuple[int, ...]:
        """Copy *segments* consecutively at *offset*; returns sizes."""
        sizes = []
        cursor = offset
        for segment in segments:
            view = memoryview(segment).cast("B")
            n = view.nbytes
            self.shm.buf[cursor:cursor + n] = view
            cursor += n
            sizes.append(n)
        return tuple(sizes)

    def close(self, *, unlink: bool = False) -> None:
        try:
            self.shm.close()
            if unlink:
                self.shm.unlink()
        except (OSError, FileNotFoundError):
            pass


def read_segments(buf, offset: int,
                  sizes: Sequence[int]) -> list[memoryview]:
    """Zero-copy views of consecutive segments inside *buf*."""
    views = []
    cursor = offset
    for n in sizes:
        views.append(memoryview(buf)[cursor:cursor + n])
        cursor += n
    return views


def _attach_shm(name: str | None):
    """Attach a shared segment by name, silencing tracker adoption.

    Attaching registers the segment with the resource tracker even
    though the parent owns its lifetime.  Under ``spawn`` the worker
    has its *own* tracker which would unlink the segment out from
    under the parent when the worker exits — unregister there.
    Under ``fork`` the tracker process is shared with the parent, so
    unregistering would erase the parent's own registration; leave
    it alone (the duplicate register is an idempotent no-op).
    """
    if not name:
        return None
    import multiprocessing
    from multiprocessing import shared_memory

    try:
        shm = shared_memory.SharedMemory(name=name)
    except (OSError, FileNotFoundError):
        return None
    if multiprocessing.get_start_method(allow_none=True) != "fork":
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:
            pass
    return shm


# ----------------------------------------------------------------------
# The worker loop
# ----------------------------------------------------------------------
def _resolve_target(target: str, cache: dict) -> Callable:
    fn = cache.get(target)
    if fn is None:
        import importlib

        mod_name, _, fn_name = target.partition(":")
        fn = importlib.import_module(mod_name)
        for part in fn_name.split("."):
            fn = getattr(fn, part)
        cache[target] = fn
    return fn


def _worker_main(worker_seq: int, inbox, outbox,
                 ring_name: str | None, result_name: str | None) -> None:
    """One persistent worker: read batches, execute, reply. Forever.

    The worker is intentionally dumb (the service fleet's design):
    no queueing, no retry — crash handling lives in the parent, so
    killing a worker at any moment is safe.
    """
    os.environ[WORKER_ENV_VAR] = "1"
    import repro  # noqa: F401 — preload (no-op under fork)

    ring = _attach_shm(ring_name)
    result_seg = _attach_shm(result_name)
    fn_cache: dict[str, Callable] = {}

    def reply_ok(batch_id: int, results: list) -> None:
        segments = encode_envelope(results)
        total = sum(memoryview(s).cast("B").nbytes for s in segments)
        if result_seg is not None and SHM_MIN_BYTES <= total <= len(
                result_seg.buf):
            cursor = 0
            sizes = []
            for segment in segments:
                view = memoryview(segment).cast("B")
                result_seg.buf[cursor:cursor + view.nbytes] = view
                cursor += view.nbytes
                sizes.append(view.nbytes)
            outbox.put(("ok", worker_seq, batch_id, "shm",
                        (0, tuple(sizes), envelope_digest(segments))))
        else:
            outbox.put(("ok", worker_seq, batch_id, "inline",
                        ([bytes(s) for s in segments],
                         envelope_digest(segments))))

    while True:
        message = inbox.get()
        if message[0] == "stop":
            break
        _, batch_id, target, where, payload = message
        try:
            if where == "shm":
                offset, sizes, digest = payload
                if ring is None:
                    raise _TransportError("no ring attached")
                segments = read_segments(ring.buf, offset, sizes)
                if envelope_digest(segments) != digest:
                    for view in segments:
                        view.release()
                    raise _TransportError("task digest mismatch")
                items = decode_from_shm(segments)
            else:
                raw, digest = payload
                if envelope_digest(raw) != digest:
                    raise _TransportError("task digest mismatch")
                items = decode_envelope(raw)
            fn = _resolve_target(target, fn_cache)
            results = [fn(item) for item in items]
            reply_ok(batch_id, results)
        except _TransportError as exc:
            outbox.put(("fail", worker_seq, batch_id, "transport",
                        str(exc)))
        except BaseException as exc:  # noqa: BLE001 — reported upstream
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            try:
                outbox.put(("fail", worker_seq, batch_id, "task",
                            f"{type(exc).__name__}: {exc}"))
            except Exception:
                break


class _TransportError(RuntimeError):
    """Shared-memory envelope could not be trusted; retry inline."""


# ----------------------------------------------------------------------
# Parent-side pool
# ----------------------------------------------------------------------
@dataclass
class _Worker:
    seq: int
    process: Any
    inbox: Any
    result_shm: Any = None           #: parent's attached view
    result_name: str | None = None
    batch: "_Batch | None" = None    #: in flight, or None when idle


@dataclass
class _Batch:
    batch_id: int
    indices: tuple[int, ...]         #: positions in the caller's items
    retries: int = 0
    force_inline: bool = False
    single: bool = False             #: re-dispatched one-by-one
    ring_offset: int | None = None
    ring_bytes: int = 0


@dataclass
class PoolStats:
    """Lifetime counters for one :class:`WarmPool`."""

    batches: int = 0
    tasks: int = 0
    shm_batches: int = 0
    inline_batches: int = 0
    shm_results: int = 0
    inline_results: int = 0
    respawns: int = 0
    transport_retries: int = 0
    maps: int = 0
    spawned_workers: int = 0
    dispatch_orders: list = field(default_factory=list)

    def summary(self) -> str:
        return (f"{self.maps} maps, {self.tasks} tasks in "
                f"{self.batches} batches ({self.shm_batches} shm), "
                f"{self.respawns} respawns")


class WarmPool:
    """A pool of persistent workers shared across sweeps and fan-outs.

    Args:
        workers: worker processes to keep warm (>= 1).
        ring_bytes: task-ring capacity; tiny values force the inline
            fallback (the tests do this deliberately).
        result_bytes: per-worker result-segment capacity; ``0``
            disables result segments (all results inline).

    Raises:
        PoolUnavailable: worker processes cannot be spawned here.
    """

    _shared: "WarmPool | None" = None

    def __init__(self, workers: int, *,
                 ring_bytes: int = DEFAULT_RING_BYTES,
                 result_bytes: int = DEFAULT_RESULT_BYTES):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        import multiprocessing

        self._ctx = multiprocessing.get_context()
        self.stats = PoolStats()
        self._workers: list[_Worker] = []
        self._seq = 0
        self._batch_seq = 0
        self._closed = False
        try:
            self._outbox = self._ctx.Queue()
        except (OSError, PermissionError) as exc:
            raise PoolUnavailable(f"no queue support: {exc}") from exc
        self.ring: ShmRing | None = None
        self.result_bytes = result_bytes
        if ring_bytes > 0:
            try:
                self.ring = ShmRing(ring_bytes)
            except Exception:
                self.ring = None  # shm-less boxes: inline transport
        try:
            for _ in range(workers):
                self._spawn()
        except (OSError, PermissionError) as exc:
            self.shutdown()
            raise PoolUnavailable(f"cannot spawn workers: {exc}") from exc
        global _all_pools
        if _all_pools is None:
            _all_pools = weakref.WeakSet()
            atexit.register(_shutdown_all)
        _all_pools.add(self)

    # -- lifecycle -----------------------------------------------------
    def _spawn(self) -> _Worker:
        self._seq += 1
        inbox = self._ctx.SimpleQueue()
        result_shm = None
        result_name = None
        if self.result_bytes > 0 and self.ring is not None:
            try:
                from multiprocessing import shared_memory

                result_shm = shared_memory.SharedMemory(
                    create=True, size=self.result_bytes)
                result_name = result_shm.name
            except Exception:
                result_shm = None
        process = self._ctx.Process(
            target=_worker_main,
            args=(self._seq, inbox, self._outbox,
                  self.ring.name if self.ring is not None else None,
                  result_name),
            name=f"mirage-pool-{self._seq}",
            daemon=True,
        )
        process.start()
        worker = _Worker(seq=self._seq, process=process, inbox=inbox,
                         result_shm=result_shm, result_name=result_name)
        self._workers.append(worker)
        self.stats.spawned_workers += 1
        return worker

    def ensure(self, workers: int) -> None:
        """Grow the pool to at least *workers* live processes."""
        self._reap(requeue=None)
        while len(self._workers) < workers:
            try:
                self._spawn()
            except (OSError, PermissionError) as exc:
                if not self._workers:
                    raise PoolUnavailable(
                        f"cannot spawn workers: {exc}") from exc
                return

    @property
    def size(self) -> int:
        return len(self._workers)

    @property
    def alive(self) -> bool:
        return bool(self._workers) and not self._closed

    def shutdown(self) -> None:
        """Stop every worker and release the shared segments."""
        self._closed = True
        for worker in self._workers:
            try:
                worker.inbox.put(("stop",))
            except Exception:
                pass
        deadline = time.monotonic() + 1.0
        for worker in self._workers:
            worker.process.join(max(0.0, deadline - time.monotonic()))
            if worker.process.is_alive():
                worker.process.terminate()
            self._release_worker_shm(worker)
        self._workers.clear()
        if self.ring is not None:
            self.ring.close(unlink=True)
            self.ring = None
        if WarmPool._shared is self:
            WarmPool._shared = None

    def _release_worker_shm(self, worker: _Worker) -> None:
        if worker.result_shm is not None:
            try:
                worker.result_shm.close()
                worker.result_shm.unlink()
            except (OSError, FileNotFoundError):
                pass
            worker.result_shm = None

    # -- the shared pool ----------------------------------------------
    @classmethod
    def shared(cls, workers: int | None = None) -> "WarmPool":
        """The process-global pool, created (or grown) on demand.

        Raises :class:`PoolUnavailable` when the warm pool is
        disabled, when called from inside a pool worker, or when
        workers cannot be spawned — callers degrade to their legacy
        path in every case.
        """
        if not warm_pool_enabled():
            raise PoolUnavailable("warm pool disabled")
        want = workers or max(1, (os.cpu_count() or 2) - 1)
        pool = cls._shared
        if pool is None or not pool.alive:
            cls._shared = pool = cls(want)
        else:
            pool.ensure(want)
        return pool

    # -- dispatch ------------------------------------------------------
    def map(self, fn: Callable, items: Sequence[Any], *,
            costs: Sequence[float | None] | None = None) -> list[Any]:
        """Results of ``fn(item)`` for every item, in input order.

        *fn* must be module-level (it travels by dotted name).  With
        *costs* (expected seconds per item, ``None`` = unknown),
        dispatch goes longest-expected-first; without, submission
        order.  Either way results land in input order and are
        bit-identical to ``[fn(item) for item in items]``.
        """
        if self._closed:
            raise PoolUnavailable("pool is shut down")
        items = list(items)
        if not items:
            return []
        self._reap(requeue=None)
        if not self._workers:
            self.ensure(1)
        self.stats.maps += 1
        target = f"{fn.__module__}:{fn.__qualname__}"
        if costs is not None:
            if len(costs) != len(items):
                raise ValueError("costs must match items")
            order = lpt_order(costs)
        else:
            order = list(range(len(items)))
        self.stats.dispatch_orders.append(tuple(order))
        if len(self.stats.dispatch_orders) > 16:
            del self.stats.dispatch_orders[0]

        chunk = chunk_sizes(len(items), len(self._workers))
        # With cost hints, the head of the order is the critical path:
        # dispatch those singly, chunk only the cheap tail.
        pending: deque[_Batch] = deque()
        cursor = 0
        while cursor < len(order):
            width = 1
            if chunk > 1 and (costs is None
                              or costs[order[cursor]] is None
                              or cursor >= 2 * len(self._workers)):
                width = min(chunk, len(order) - cursor)
            pending.append(self._new_batch(
                tuple(order[cursor:cursor + width])))
            cursor += width

        results: list[Any] = [None] * len(items)
        resolved = [False] * len(items)
        errors: list[str] = []
        in_flight = 0

        def dispatch_all() -> int:
            n = 0
            for worker in self._workers:
                if not pending:
                    break
                if worker.batch is None:
                    self._dispatch(worker, pending.popleft(),
                                   target, items)
                    n += 1
            return n

        in_flight += dispatch_all()
        while in_flight > 0:
            try:
                message = self._outbox.get(timeout=POLL_SECONDS)
            except queue_mod.Empty:
                requeued = self._reap(requeue=pending)
                if requeued:
                    in_flight -= requeued
                    if not self._workers:
                        raise PoolUnavailable(
                            "every pool worker died; degrading")
                    in_flight += dispatch_all()
                continue
            kind, wseq, batch_id, *rest = message
            worker = self._worker_by_seq(wseq)
            batch = worker.batch if worker is not None else None
            if (worker is None or batch is None
                    or batch.batch_id != batch_id):
                continue  # stale reply from a presumed-dead worker
            worker.batch = None
            in_flight -= 1
            self._free_batch_ring(batch)
            if kind == "ok":
                where, payload = rest
                try:
                    values = self._read_result(worker, where, payload)
                except _TransportError:
                    self.stats.transport_retries += 1
                    batch.force_inline = True
                    pending.append(batch)
                    in_flight += dispatch_all()
                    continue
                if len(values) != len(batch.indices):
                    errors.append("result arity mismatch")
                    for index in batch.indices:
                        resolved[index] = True
                else:
                    for index, value in zip(batch.indices, values):
                        results[index] = value
                        resolved[index] = True
            else:  # "fail"
                fail_kind, detail = rest
                if fail_kind == "transport":
                    self.stats.transport_retries += 1
                    batch.force_inline = True
                    pending.append(batch)
                elif len(batch.indices) > 1:
                    # Isolate the culprit: re-run the batch singly
                    # (deterministic functions make re-running safe).
                    for index in batch.indices:
                        single = self._new_batch((index,))
                        single.single = True
                        single.force_inline = batch.force_inline
                        pending.append(single)
                else:
                    errors.append(detail)
                    resolved[batch.indices[0]] = True
            in_flight += dispatch_all()

        if errors:
            raise PoolTaskError(errors[0])
        assert all(resolved), "pool lost track of a task"
        return results

    # -- internals -----------------------------------------------------
    def _new_batch(self, indices: tuple[int, ...]) -> _Batch:
        self._batch_seq += 1
        return _Batch(batch_id=self._batch_seq, indices=indices)

    def _worker_by_seq(self, seq: int) -> _Worker | None:
        for worker in self._workers:
            if worker.seq == seq:
                return worker
        return None

    def _dispatch(self, worker: _Worker, batch: _Batch,
                  target: str, items: list) -> None:
        segments = encode_envelope(
            [items[index] for index in batch.indices])
        total = sum(memoryview(s).cast("B").nbytes for s in segments)
        where, payload = "inline", None
        if (self.ring is not None and not batch.force_inline
                and total >= SHM_MIN_BYTES):
            offset = self.ring.alloc(total)
            if offset is not None:
                sizes = self.ring.write(offset, segments)
                batch.ring_offset = offset
                batch.ring_bytes = total
                where = "shm"
                payload = (offset, sizes, envelope_digest(segments))
                self.stats.shm_batches += 1
        if where == "inline":
            payload = ([bytes(s) for s in segments],
                       envelope_digest(segments))
            self.stats.inline_batches += 1
        worker.batch = batch
        self.stats.batches += 1
        self.stats.tasks += len(batch.indices)
        worker.inbox.put(("run", batch.batch_id, target, where, payload))

    def _read_result(self, worker: _Worker, where: str,
                     payload) -> list:
        if where == "shm":
            offset, sizes, digest = payload
            if worker.result_shm is None:
                raise _TransportError("no result segment")
            segments = read_segments(worker.result_shm.buf, offset,
                                     sizes)
            if envelope_digest(segments) != digest:
                for view in segments:
                    view.release()
                raise _TransportError("result digest mismatch")
            self.stats.shm_results += 1
            return decode_from_shm(segments)
        raw, digest = payload
        if envelope_digest(raw) != digest:
            raise _TransportError("result digest mismatch")
        self.stats.inline_results += 1
        return decode_envelope(raw)

    def _free_batch_ring(self, batch: _Batch) -> None:
        if batch.ring_offset is not None and self.ring is not None:
            self.ring.free(batch.ring_offset, batch.ring_bytes)
        batch.ring_offset = None
        batch.ring_bytes = 0

    def _reap(self, requeue: "deque[_Batch] | None") -> int:
        """Respawn dead workers; requeue their in-flight batches.

        Returns how many in-flight batches were pulled back (the
        caller's ``in_flight`` bookkeeping subtracts them before the
        requeued batches re-dispatch).
        """
        pulled = 0
        for worker in list(self._workers):
            if worker.process.is_alive():
                continue
            self._workers.remove(worker)
            self._release_worker_shm(worker)
            batch = worker.batch
            if batch is not None and requeue is not None:
                pulled += 1
                self._free_batch_ring(batch)
                batch.retries += 1
                if batch.retries > MAX_CRASH_RETRIES:
                    raise PoolTaskError(
                        f"task crashed its worker "
                        f"{batch.retries} times "
                        f"(items {list(batch.indices)})")
                requeue.appendleft(batch)
            self.stats.respawns += 1
            try:
                self._spawn()
            except (OSError, PermissionError):
                pass  # map() degrades when no workers remain
        return pulled


def _shutdown_all() -> None:
    for pool in list(_all_pools or ()):
        if not pool._closed:
            pool.shutdown()
