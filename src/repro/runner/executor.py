"""The sweep runner: cached, optionally-parallel work-unit execution.

:class:`SweepRunner.map` preserves unit order, so drivers aggregate
results exactly as their old serial loops did — the serial and parallel
paths produce bit-identical tables.  Units already in the cache are
returned without executing; the rest fan out over the process-global
:class:`~repro.runner.pool.WarmPool` when ``jobs > 1`` — persistent
workers reused across sweeps, with per-unit wall times persisted by the
:class:`~repro.runner.cache.ResultCache` feeding longest-expected-first
dispatch — falling back to a per-sweep ``ProcessPoolExecutor`` when the
pool is disabled (``MIRAGE_WARM_POOL=0``), and to the serial path for
pickling-hostile units or when worker processes cannot be spawned.
Results are written back to the cache as they complete.

With ``trace=`` set, every CMP unit is forced to record its
per-interval history and the runner appends the telemetry trace —
one run record per unit followed by its interval records — to the
JSONL file *in unit order, from the parent process*.  Serial,
parallel and cache-hit executions of the same units therefore write
byte-identical traces.
"""

from __future__ import annotations

import dataclasses
import pickle
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

from repro.cmp.system import CMPResult
from repro.runner import units as units_mod
from repro.runner.cache import MISS, ResultCache, unit_digest
from repro.runner.pool import PoolUnavailable, WarmPool, warm_pool_enabled
from repro.runner.units import WorkUnit, unit_label
from repro.telemetry.events import RunRecord
from repro.telemetry.sinks import dump_record


@dataclass
class RunnerStats:
    """Timing and cache instrumentation for one runner's lifetime."""

    jobs: int = 1
    cache_hits: int = 0
    cache_misses: int = 0
    units_run: int = 0
    unit_seconds: list[float] = field(default_factory=list)
    wall_seconds: float = 0.0
    mode: str = "serial"        #: "serial" | "parallel" | "warm-pool"
    trace_records: int = 0               #: JSONL records appended
    #: ``(seconds, label)`` for every executed unit — the fix for the
    #: old behaviour where per-unit timing died with the run: the
    #: executor persists these through the cache for LPT dispatch and
    #: the CLI surfaces the worst offenders.
    unit_timings: list[tuple[float, str]] = field(default_factory=list)

    @property
    def total_units(self) -> int:
        return self.cache_hits + self.cache_misses

    def note_unit(self, seconds: float, label: str) -> None:
        self.units_run += 1
        self.unit_seconds.append(seconds)
        self.unit_timings.append((seconds, label))

    def slowest_summary(self, k: int = 3) -> str:
        """``label 1.2s; label 0.8s`` for the *k* slowest units."""
        worst = sorted(self.unit_timings, reverse=True)[:k]
        return "; ".join(f"{label} {seconds:.2f}s"
                         for seconds, label in worst)

    def summary(self) -> str:
        """One-line report for the CLI."""
        parts = [f"{self.total_units} units"]
        if self.units_run:
            mean = sum(self.unit_seconds) / len(self.unit_seconds)
            parts.append(
                f"{self.units_run} executed ({self.mode}, jobs={self.jobs},"
                f" {mean:.2f}s mean {max(self.unit_seconds):.2f}s max)")
        if self.cache_hits:
            parts.append(f"{self.cache_hits} from cache")
        if self.trace_records:
            parts.append(f"{self.trace_records} trace records")
        parts.append(f"{self.wall_seconds:.1f}s wall")
        return "; ".join(parts)


def _picklable(obj: Any) -> bool:
    try:
        pickle.dumps(obj)
        return True
    except Exception:
        return False


class SweepRunner:
    """Executes :class:`WorkUnit` batches with caching and fan-out.

    Args:
        jobs: worker processes; 1 (the default) stays in-process.
        cache: a :class:`ResultCache`, or None to always execute.
        experiment: name folded into every cache key, so identical
            units cached under different experiments don't collide
            with a future schema change of either driver.
        trace: JSONL file the telemetry trace of every CMP result is
            appended to (``None`` disables tracing).
    """

    def __init__(self, *, jobs: int = 1, cache: ResultCache | None = None,
                 experiment: str = "", trace: str | Path | None = None):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.cache = cache
        self.experiment = experiment
        self.trace = Path(trace) if trace is not None else None
        self.stats = RunnerStats(jobs=jobs)

    # ------------------------------------------------------------------
    def map(self, units: Sequence[WorkUnit]) -> list[Any]:
        """Results for *units*, in order."""
        start = time.perf_counter()
        units = list(units)
        if self.trace is not None:
            # Tracing needs the per-interval history; forcing the flag
            # here (rather than in each driver) also folds it into the
            # cache key, so traced and untraced sweeps never share
            # entries with mismatched history.
            units = [
                dataclasses.replace(u, record_history=True)
                if u.kind == "cmp" else u
                for u in units
            ]
        results: list[Any] = [None] * len(units)
        pending: list[int] = []
        for i, unit in enumerate(units):
            hit = (self.cache.get(self.experiment, unit)
                   if self.cache is not None else MISS)
            if hit is not MISS:
                results[i] = hit
                self.stats.cache_hits += 1
            else:
                pending.append(i)
                self.stats.cache_misses += 1
        if pending:
            self._execute(units, pending, results)
            if self.cache is not None:
                for i in pending:
                    self.cache.put(self.experiment, units[i], results[i])
        if self.trace is not None:
            self._append_trace(results)
        self.stats.wall_seconds += time.perf_counter() - start
        return results

    def run(self, unit: WorkUnit) -> Any:
        """Convenience for a single unit."""
        return self.map([unit])[0]

    # ------------------------------------------------------------------
    def _append_trace(self, results: Sequence[Any]) -> None:
        """Append each CMP result's telemetry records, in unit order.

        Runs in the parent process on the ordered ``results`` list, so
        the trace bytes are independent of jobs/cache state.
        """
        self.trace.parent.mkdir(parents=True, exist_ok=True)
        with open(self.trace, "a") as handle:
            for result in results:
                if not isinstance(result, CMPResult):
                    continue
                run = RunRecord(
                    config=result.config_name,
                    arbitrator=result.arbitrator_name,
                    intervals=result.intervals,
                    total_cycles=result.total_cycles,
                    counters={
                        "migrations": result.migrations,
                        "energy_pj": result.energy_pj,
                    },
                )
                handle.write(dump_record(run) + "\n")
                self.stats.trace_records += 1
                for record in result.history:
                    handle.write(dump_record(record) + "\n")
                    self.stats.trace_records += 1

    # ------------------------------------------------------------------
    def _execute(self, units, pending, results) -> None:
        timings: dict[str, float] = {}
        try:
            want_pool = (self.jobs > 1 and len(pending) > 1
                         and all(_picklable(units[i]) for i in pending))
            if want_pool and warm_pool_enabled():
                try:
                    self._execute_warm(units, pending, results, timings)
                    return
                except PoolUnavailable:
                    pass  # pool can't run here: try the legacy pool
            if want_pool:
                try:
                    self._execute_parallel(units, pending, results,
                                           timings)
                    return
                except (OSError, PermissionError):
                    pass  # no subprocess support here: fall through
            for i in pending:
                payload, seconds = units_mod.timed_execute(units[i])
                results[i] = payload
                self.stats.note_unit(seconds, unit_label(units[i]))
                timings[unit_digest(self.experiment, units[i])] = seconds
        finally:
            # Persist whatever we timed — the next sweep's LPT input.
            if self.cache is not None:
                self.cache.record_timings(self.experiment, timings)

    def _execute_warm(self, units, pending, results, timings) -> None:
        """Fan out over the shared warm pool, longest-expected-first.

        Cost hints come from the wall times previous runs persisted
        (:meth:`ResultCache.load_timings`); units never seen before
        have no hint and are conservatively dispatched first.
        """
        pool = WarmPool.shared(self.jobs)
        digests = [unit_digest(self.experiment, units[i])
                   for i in pending]
        hints = (self.cache.load_timings(self.experiment)
                 if self.cache is not None else {})
        pairs = pool.map(units_mod.timed_execute,
                         [units[i] for i in pending],
                         costs=[hints.get(d) for d in digests])
        self.stats.mode = "warm-pool"
        for i, digest, (payload, seconds) in zip(pending, digests,
                                                 pairs):
            results[i] = payload
            self.stats.note_unit(seconds, unit_label(units[i]))
            timings[digest] = seconds

    def _execute_parallel(self, units, pending, results,
                          timings) -> None:
        workers = min(self.jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(units_mod.timed_execute, units[i]): i
                for i in pending
            }
            self.stats.mode = "parallel"
            for future in as_completed(futures):
                payload, seconds = future.result()
                i = futures[future]
                results[i] = payload
                self.stats.note_unit(seconds, unit_label(units[i]))
                timings[unit_digest(self.experiment, units[i])] = seconds


def run_units(units: Sequence[WorkUnit],
              runner: SweepRunner | None = None) -> list[Any]:
    """Map *units* through *runner*, or serially when none is given."""
    return (runner or SweepRunner()).map(units)
