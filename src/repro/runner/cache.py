"""Deterministic on-disk result cache for sweep work units.

Results live under ``~/.cache/mirage/`` (override with
``MIRAGE_CACHE_DIR`` or ``--cache-dir``), one JSON file per work unit,
keyed by the SHA-256 of ``(experiment, unit fields, package version)``.
Streams are deterministic per ``(benchmark, seed)``, so a cached
:class:`~repro.cmp.system.CMPResult` is bit-identical to a re-run:
floats survive the JSON round-trip exactly (``repr`` shortest-float),
and ``"call"`` payloads are JSON-normalised at execution time.

Bumping :data:`repro.__version__` invalidates every entry, so stale
results can never leak across simulator changes; the key also folds in
the engine/backend schema tag
(:data:`repro.engine.backends.ENGINE_CACHE_TAG`) and the scenario
schema tag (:data:`repro.workloads.scenario.SCENARIO_CACHE_TAG`), so
results produced by a different loop/backend/scenario generation are
invalidated even when the package version is unchanged.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any

import repro
from repro import simcache
from repro.cmp.system import CMPResult
# Canonical home is repro.config (the slice store roots there too);
# re-exported here because this was its historical address.
from repro.config import SERVICE_CACHE_TAG, default_cache_dir  # noqa: F401
from repro.engine.backends import ENGINE_CACHE_TAG
from repro.runner.units import WorkUnit
from repro.telemetry.events import IntervalRecord
from repro.workloads.scenario import SCENARIO_CACHE_TAG

#: Sentinel distinguishing "not cached" from a legitimately-None payload.
MISS = object()


def unit_digest(experiment: str, unit: WorkUnit) -> str:
    """A *version-free* digest identifying a unit's workload.

    Unlike :meth:`ResultCache.key_material`, this deliberately folds
    in **no** version or schema tags: it keys the per-unit wall-time
    hints behind the LPT scheduler, and a unit's *cost* survives
    version bumps even when its cached *result* must not.  A stale
    hint can only mis-order dispatch (costing a little makespan),
    never change a result.
    """
    material = json.dumps(
        {"experiment": experiment, "unit": dataclasses.asdict(unit)},
        sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(material.encode()).hexdigest()[:32]


def encode_payload(value: Any) -> dict:
    """JSON-safe envelope for a unit result."""
    if isinstance(value, CMPResult):
        return {"type": "CMPResult", "value": dataclasses.asdict(value)}
    return {"type": "json", "value": value}


def decode_payload(envelope: dict) -> Any:
    if envelope["type"] == "CMPResult":
        fields = dict(envelope["value"])
        fields["history"] = [
            IntervalRecord(**sample)
            for sample in fields.get("history", [])
        ]
        return CMPResult(**fields)
    return envelope["value"]


class ResultCache:
    """Maps ``(experiment, WorkUnit)`` to a stored unit result."""

    def __init__(self, cache_dir: str | Path | None = None, *,
                 version: str | None = None,
                 backend: str | None = None,
                 sim_cache: bool | None = None,
                 core_backend: str | None = None,
                 cost_model: str | None = None):
        self.root = Path(cache_dir) if cache_dir else default_cache_dir()
        self.version = version or repro.__version__
        self.backend = backend or ENGINE_CACHE_TAG
        # Slice memoization is designed to be bit-transparent, but the
        # cache key still records the setting: if a memoization bug
        # ever produced a wrong result, flipping the switch must not
        # serve the tainted entry back.
        self.sim_cache = (simcache.enabled() if sim_cache is None
                          else bool(sim_cache))
        # The selected registry backend and migration cost model are
        # part of what a result *means*: entries produced under
        # different selections can never collide.  None = the process
        # defaults ("analytic+detailed" pair, flat L1-flush pricing).
        self.core_backend = core_backend or "default"
        self.cost_model = cost_model or "l1-flush"

    # -- keying --------------------------------------------------------
    def key_material(self, experiment: str, unit: WorkUnit) -> str:
        """The canonical JSON string the cache key digests.

        The warm worker pool (``MIRAGE_WARM_POOL``) is deliberately
        **absent** from this material: the pool is a pure
        transport/scheduling layer whose results are bit-identical to
        serial execution by construction, so pooled and unpooled runs
        must share cache entries (``tests/test_pool.py`` asserts the
        key is identical under both toggles, and the CI
        ``--pool-gate`` holds the printed tables to the same byte).
        """
        return json.dumps(
            {
                "backend": self.backend,
                "core_backend": self.core_backend,
                "cost_model": self.cost_model,
                "experiment": experiment,
                # Scenario schedules and their placement semantics are
                # part of what a cached result means: bumping the
                # scenario-layer tag invalidates dynamic-run entries
                # without touching the package version.
                "scenario": SCENARIO_CACHE_TAG,
                # The experiment service stores its job results through
                # this cache (that sharing *is* the dedup layer), so
                # its schema generation is part of the key too.
                "service": SERVICE_CACHE_TAG,
                "sim_cache": self.sim_cache,
                "unit": dataclasses.asdict(unit),
                "version": self.version,
            },
            sort_keys=True, separators=(",", ":"), default=str,
        )

    def path_for(self, experiment: str, unit: WorkUnit) -> Path:
        """The entry file a unit's result lives at (digest-named)."""
        digest = hashlib.sha256(
            self.key_material(experiment, unit).encode()).hexdigest()
        return (self.root / f"v{self.version}" / (experiment or "adhoc")
                / f"{digest[:32]}.json")

    # -- access --------------------------------------------------------
    def get(self, experiment: str, unit: WorkUnit) -> Any:
        """The stored payload, or :data:`MISS`."""
        path = self.path_for(experiment, unit)
        try:
            entry = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return MISS
        # Guard against (vanishingly unlikely) digest collisions and
        # hand-edited files.
        if entry.get("key") != self.key_material(experiment, unit):
            return MISS
        try:
            return decode_payload(entry["payload"])
        except (KeyError, TypeError):
            return MISS

    def put(self, experiment: str, unit: WorkUnit, payload: Any) -> Path:
        """Atomically publish a unit's payload; returns its path."""
        path = self.path_for(experiment, unit)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "key": self.key_material(experiment, unit),
            "payload": encode_payload(payload),
        }
        # Atomic publish: concurrent `mirage` runs may share the dir.
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(entry, handle)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    # -- per-unit wall-time hints --------------------------------------
    def timings_path(self, experiment: str) -> Path:
        """Where an experiment's ``{unit_digest: seconds}`` hints live.

        Deliberately *outside* the ``v<version>/`` entry tree: timing
        hints are advisory scheduler input keyed by
        :func:`unit_digest`, so they survive version bumps that
        invalidate the results themselves.
        """
        return self.root / "timings" / f"{experiment or 'adhoc'}.json"

    def load_timings(self, experiment: str) -> dict[str, float]:
        """The persisted wall-time hints (empty when none or corrupt)."""
        try:
            entry = json.loads(self.timings_path(experiment).read_text())
            wall = entry.get("wall", {})
            return {str(k): float(v) for k, v in wall.items()}
        except (OSError, json.JSONDecodeError, TypeError, ValueError):
            return {}

    def record_timings(self, experiment: str,
                       timings: dict[str, float]) -> None:
        """Merge *timings* into the persisted hints, atomically.

        Best-effort by design: a full disk or read-only cache must
        never fail a sweep over scheduling hints.
        """
        if not timings:
            return
        path = self.timings_path(experiment)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            merged = self.load_timings(experiment)
            merged.update(
                {k: round(float(v), 6) for k, v in timings.items()})
            entry = {"schema": "mirage-timings/v1", "wall": merged}
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            with os.fdopen(fd, "w") as handle:
                json.dump(entry, handle, sort_keys=True)
            os.replace(tmp, path)
        except OSError:
            pass
