"""Deterministic on-disk result cache for sweep work units.

Results live under ``~/.cache/mirage/`` (override with
``MIRAGE_CACHE_DIR`` or ``--cache-dir``), one JSON file per work unit,
keyed by the SHA-256 of ``(experiment, unit fields, package version)``.
Streams are deterministic per ``(benchmark, seed)``, so a cached
:class:`~repro.cmp.system.CMPResult` is bit-identical to a re-run:
floats survive the JSON round-trip exactly (``repr`` shortest-float),
and ``"call"`` payloads are JSON-normalised at execution time.

Bumping :data:`repro.__version__` invalidates every entry, so stale
results can never leak across simulator changes; the key also folds in
the engine/backend schema tag
(:data:`repro.engine.backends.ENGINE_CACHE_TAG`) and the scenario
schema tag (:data:`repro.workloads.scenario.SCENARIO_CACHE_TAG`), so
results produced by a different loop/backend/scenario generation are
invalidated even when the package version is unchanged.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any

import repro
from repro import simcache
from repro.cmp.system import CMPResult
# Canonical home is repro.config (the slice store roots there too);
# re-exported here because this was its historical address.
from repro.config import SERVICE_CACHE_TAG, default_cache_dir  # noqa: F401
from repro.engine.backends import ENGINE_CACHE_TAG
from repro.runner.units import WorkUnit
from repro.telemetry.events import IntervalRecord
from repro.workloads.scenario import SCENARIO_CACHE_TAG

#: Sentinel distinguishing "not cached" from a legitimately-None payload.
MISS = object()


def encode_payload(value: Any) -> dict:
    """JSON-safe envelope for a unit result."""
    if isinstance(value, CMPResult):
        return {"type": "CMPResult", "value": dataclasses.asdict(value)}
    return {"type": "json", "value": value}


def decode_payload(envelope: dict) -> Any:
    if envelope["type"] == "CMPResult":
        fields = dict(envelope["value"])
        fields["history"] = [
            IntervalRecord(**sample)
            for sample in fields.get("history", [])
        ]
        return CMPResult(**fields)
    return envelope["value"]


class ResultCache:
    """Maps ``(experiment, WorkUnit)`` to a stored unit result."""

    def __init__(self, cache_dir: str | Path | None = None, *,
                 version: str | None = None,
                 backend: str | None = None,
                 sim_cache: bool | None = None,
                 core_backend: str | None = None,
                 cost_model: str | None = None):
        self.root = Path(cache_dir) if cache_dir else default_cache_dir()
        self.version = version or repro.__version__
        self.backend = backend or ENGINE_CACHE_TAG
        # Slice memoization is designed to be bit-transparent, but the
        # cache key still records the setting: if a memoization bug
        # ever produced a wrong result, flipping the switch must not
        # serve the tainted entry back.
        self.sim_cache = (simcache.enabled() if sim_cache is None
                          else bool(sim_cache))
        # The selected registry backend and migration cost model are
        # part of what a result *means*: entries produced under
        # different selections can never collide.  None = the process
        # defaults ("analytic+detailed" pair, flat L1-flush pricing).
        self.core_backend = core_backend or "default"
        self.cost_model = cost_model or "l1-flush"

    # -- keying --------------------------------------------------------
    def key_material(self, experiment: str, unit: WorkUnit) -> str:
        """The canonical JSON string the cache key digests."""
        return json.dumps(
            {
                "backend": self.backend,
                "core_backend": self.core_backend,
                "cost_model": self.cost_model,
                "experiment": experiment,
                # Scenario schedules and their placement semantics are
                # part of what a cached result means: bumping the
                # scenario-layer tag invalidates dynamic-run entries
                # without touching the package version.
                "scenario": SCENARIO_CACHE_TAG,
                # The experiment service stores its job results through
                # this cache (that sharing *is* the dedup layer), so
                # its schema generation is part of the key too.
                "service": SERVICE_CACHE_TAG,
                "sim_cache": self.sim_cache,
                "unit": dataclasses.asdict(unit),
                "version": self.version,
            },
            sort_keys=True, separators=(",", ":"), default=str,
        )

    def path_for(self, experiment: str, unit: WorkUnit) -> Path:
        """The entry file a unit's result lives at (digest-named)."""
        digest = hashlib.sha256(
            self.key_material(experiment, unit).encode()).hexdigest()
        return (self.root / f"v{self.version}" / (experiment or "adhoc")
                / f"{digest[:32]}.json")

    # -- access --------------------------------------------------------
    def get(self, experiment: str, unit: WorkUnit) -> Any:
        """The stored payload, or :data:`MISS`."""
        path = self.path_for(experiment, unit)
        try:
            entry = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return MISS
        # Guard against (vanishingly unlikely) digest collisions and
        # hand-edited files.
        if entry.get("key") != self.key_material(experiment, unit):
            return MISS
        try:
            return decode_payload(entry["payload"])
        except (KeyError, TypeError):
            return MISS

    def put(self, experiment: str, unit: WorkUnit, payload: Any) -> Path:
        """Atomically publish a unit's payload; returns its path."""
        path = self.path_for(experiment, unit)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "key": self.key_material(experiment, unit),
            "payload": encode_payload(payload),
        }
        # Atomic publish: concurrent `mirage` runs may share the dir.
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(entry, handle)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path
