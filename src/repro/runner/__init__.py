"""Parallel sweep execution with deterministic result caching.

The experiment drivers describe their per-mix simulations as picklable
:class:`~repro.runner.units.WorkUnit` values; a
:class:`~repro.runner.executor.SweepRunner` executes a batch —
serially, or fanned out over worker processes — consulting an on-disk
:class:`~repro.runner.cache.ResultCache` first.  Unit order is
preserved, and every execution path (serial, parallel, cached) yields
bit-identical results because the simulator is deterministic per seed.

>>> from repro.runner import SweepRunner, ResultCache, cmp_unit
>>> runner = SweepRunner(jobs=4, cache=ResultCache(), experiment="fig7")
>>> results = runner.map([cmp_unit(mix, "SC-MPKI") for mix in mixes])
>>> runner.stats.summary()
"""

from repro.runner.cache import (
    MISS,
    ResultCache,
    default_cache_dir,
    unit_digest,
)
from repro.runner.executor import RunnerStats, SweepRunner, run_units
from repro.runner.pool import (
    PoolTaskError,
    PoolUnavailable,
    WarmPool,
    lpt_order,
    set_warm_pool_enabled,
    warm_pool_enabled,
)
from repro.runner.units import (
    ARBITRATORS,
    TRADITIONAL,
    WorkUnit,
    call_unit,
    cmp_unit,
    execute_unit,
    homo_unit,
    unit_label,
)

__all__ = [
    "ARBITRATORS",
    "TRADITIONAL",
    "MISS",
    "PoolTaskError",
    "PoolUnavailable",
    "ResultCache",
    "RunnerStats",
    "SweepRunner",
    "WarmPool",
    "WorkUnit",
    "call_unit",
    "cmp_unit",
    "default_cache_dir",
    "execute_unit",
    "homo_unit",
    "lpt_order",
    "run_units",
    "set_warm_pool_enabled",
    "unit_digest",
    "unit_label",
    "warm_pool_enabled",
]
