"""Work units: the picklable jobs the sweep runner executes.

A :class:`WorkUnit` captures everything needed to reproduce one
simulation — benchmark names, arbitrator, cluster shape, time scale —
as plain immutable data, so it can cross a process boundary and serve
as a deterministic cache key.  :func:`execute_unit` rebuilds the
simulation from that description and runs it; because workload streams
and the interval simulator are pure functions of their seeds, executing
the same unit in any process yields bit-identical results.

Three kinds of unit cover the experiment drivers:

* ``"cmp"`` — an arbitrated Mirage/Het-CMP cluster (``run_mix`` and
  friends), returning a :class:`~repro.cmp.system.CMPResult`;
* ``"homo"`` — a homogeneous OoO or InO baseline (``run_homo``);
* ``"call"`` — any module-level function named by dotted path, for
  drivers whose per-unit work is not a CMP simulation (Figure 3's
  analytic sweep, the tier-validation halves).  Its return value must
  be JSON-pure and is normalised through a JSON round-trip so cached
  and fresh runs are indistinguishable.
"""

from __future__ import annotations

import importlib
import json
import time
from dataclasses import dataclass
from functools import lru_cache
from typing import Any

from repro.arbiter import (
    FairArbitrator,
    MaxSTPArbitrator,
    SCMPKIArbitrator,
    SCMPKIFairArbitrator,
    SCMPKIMaxSTPArbitrator,
)
from repro.arbiter.software import SoftwareArbitrator
from repro.characterize import AppModel, analytic_model
from repro.cmp import ClusterConfig, SIM_SCALE, TimeScale
from repro.cmp.system import CMPSystem, run_homo

#: Arbitrator factories by display name (fresh instance per run: the
#: fair arbitrators carry round-robin state).
ARBITRATORS: dict[str, type] = {
    "SC-MPKI": SCMPKIArbitrator,
    "SC-MPKI+maxSTP": SCMPKIMaxSTPArbitrator,
    "maxSTP": MaxSTPArbitrator,
    "Fair": FairArbitrator,
    "SC-MPKI-fair": SCMPKIFairArbitrator,
}

#: Which architectures each arbitrator runs on (paper section 5.2):
#: maxSTP and Fair model traditional (no-memoization) Het-CMPs.
TRADITIONAL = {"maxSTP", "Fair"}


@lru_cache(maxsize=256)
def app_model(name: str) -> AppModel:
    return analytic_model(name)


@dataclass(frozen=True)
class WorkUnit:
    """One independent, picklable job of a sweep."""

    kind: str                              #: "cmp" | "homo" | "call"
    benchmarks: tuple[str, ...] = ()
    arbitrator: str | None = None          #: cmp units
    homo_kind: str | None = None           #: homo units: "ooo" | "ino"
    n_consumers: int | None = None         #: default: len(benchmarks)
    n_producers: int = 1
    mirage: bool | None = None             #: default: by TRADITIONAL
    scale: tuple[int, ...] | None = None   #: TimeScale fields; None=SIM
    max_intervals: int | None = None
    reaction_intervals: int = 1            #: >1 wraps SoftwareArbitrator
    record_history: bool = False
    target: str = ""                       #: call units: "pkg.mod:func"
    args: tuple = ()
    kwargs: tuple = ()                     #: sorted (key, value) pairs


def _benchmarks(mix) -> tuple[str, ...]:
    return tuple(mix)


def _scale_tuple(scale: TimeScale | None) -> tuple[int, ...] | None:
    if scale is None or scale == SIM_SCALE:
        return None
    return (
        scale.interval_cycles,
        scale.sample_period_cycles,
        scale.app_instruction_budget,
        scale.drain_cycles,
        scale.l1_warmup_cycles,
        scale.sc_transfer_cycles,
    )


def cmp_unit(
    mix,
    arbitrator: str,
    *,
    n_consumers: int | None = None,
    n_producers: int = 1,
    mirage: bool | None = None,
    scale: TimeScale | None = None,
    max_intervals: int | None = None,
    reaction_intervals: int = 1,
    record_history: bool = False,
) -> WorkUnit:
    """An arbitrated cluster run over *mix* (iterable of names)."""
    return WorkUnit(
        kind="cmp",
        benchmarks=_benchmarks(mix),
        arbitrator=arbitrator,
        n_consumers=n_consumers,
        n_producers=n_producers,
        mirage=mirage,
        scale=_scale_tuple(scale),
        max_intervals=max_intervals,
        reaction_intervals=reaction_intervals,
        record_history=record_history,
    )


def homo_unit(
    mix,
    kind: str,
    *,
    n_consumers: int | None = None,
    n_producers: int = 1,
    scale: TimeScale | None = None,
) -> WorkUnit:
    """A homogeneous ``"ooo"`` / ``"ino"`` baseline over *mix*."""
    return WorkUnit(
        kind="homo",
        benchmarks=_benchmarks(mix),
        homo_kind=kind,
        n_consumers=n_consumers,
        n_producers=n_producers,
        scale=_scale_tuple(scale),
    )


def call_unit(target: str, *args, **kwargs) -> WorkUnit:
    """A plain function call: ``target`` is ``"pkg.module:function"``.

    Arguments and the return value must be JSON-representable; results
    are JSON-normalised so cached and fresh runs agree exactly.
    """
    return WorkUnit(
        kind="call", target=target, args=tuple(args),
        kwargs=tuple(sorted(kwargs.items())),
    )


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def execute_unit(unit: WorkUnit) -> Any:
    """Run one unit; pure given the unit's fields."""
    if unit.kind == "call":
        mod_name, _, fn_name = unit.target.partition(":")
        fn = getattr(importlib.import_module(mod_name), fn_name)
        value = fn(*unit.args, **dict(unit.kwargs))
        # Normalise (tuples -> lists, etc.) so a cache round-trip is
        # indistinguishable from a fresh run.
        return json.loads(json.dumps(value))

    scale = TimeScale(*unit.scale) if unit.scale else SIM_SCALE
    models = [app_model(name) for name in unit.benchmarks]
    n_consumers = (len(unit.benchmarks) if unit.n_consumers is None
                   else unit.n_consumers)

    if unit.kind == "homo":
        config = ClusterConfig(
            n_consumers=n_consumers, n_producers=unit.n_producers,
            scale=scale)
        return run_homo(models, kind=unit.homo_kind, config=config)

    if unit.kind != "cmp":
        raise ValueError(f"unknown unit kind {unit.kind!r}")
    mirage = (unit.arbitrator not in TRADITIONAL if unit.mirage is None
              else unit.mirage)
    config = ClusterConfig(
        n_consumers=n_consumers, n_producers=unit.n_producers,
        mirage=mirage, scale=scale)
    arbitrator = ARBITRATORS[unit.arbitrator]()
    if unit.reaction_intervals > 1:
        arbitrator = SoftwareArbitrator(
            arbitrator, reaction_intervals=unit.reaction_intervals)
    system = CMPSystem(config, models, arbitrator,
                       record_history=unit.record_history)
    if unit.max_intervals is not None:
        return system.run(max_intervals=unit.max_intervals)
    return system.run()


def timed_execute(unit: WorkUnit) -> tuple[Any, float]:
    """(result, wall seconds) — the pool's entry point."""
    start = time.perf_counter()
    result = execute_unit(unit)
    return result, time.perf_counter() - start


def unit_label(unit: WorkUnit) -> str:
    """A short human tag for a unit (the ``slowest units`` line)."""
    if unit.kind == "call":
        fn = unit.target.rpartition(":")[2] or unit.target
        args = ",".join(str(a) for a in unit.args[:2])
        return f"{fn}({args})" if args else f"{fn}()"
    mix = "+".join(unit.benchmarks[:3])
    if len(unit.benchmarks) > 3:
        mix += f"+{len(unit.benchmarks) - 3}"
    tag = unit.homo_kind if unit.kind == "homo" else unit.arbitrator
    return f"{unit.kind}:{tag}[{mix}]"
