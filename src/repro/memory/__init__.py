"""Memory hierarchy substrate.

Each core owns private 32 KB L1 instruction and data caches plus an
8 KB Schedule Cache; all cores in a cluster share a 2 MB L2 with a
stride prefetcher over a 32 B-wide coherent bus (paper Table 2).  The
bus is a contention point: application migration re-uses it to move
Schedule Cache contents between cores.
"""

from repro.memory.bus import SharedBus
from repro.memory.cache import Cache, CacheConfig, CacheStats
from repro.memory.coherence import CoherenceDirectory, CoherenceState
from repro.memory.hierarchy import AccessResult, CoreMemory, MemoryHierarchy
from repro.memory.prefetcher import StridePrefetcher
from repro.memory.tlb import TLB, TLBStats

__all__ = [
    "TLB",
    "TLBStats",
    "Cache",
    "CacheConfig",
    "CacheStats",
    "SharedBus",
    "CoherenceDirectory",
    "CoherenceState",
    "StridePrefetcher",
    "MemoryHierarchy",
    "CoreMemory",
    "AccessResult",
]
