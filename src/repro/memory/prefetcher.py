"""Stride prefetcher for the shared L2 (paper Table 2).

A classic reference-prediction table: per-PC entries track the last
address and stride; after two confirmations the prefetcher issues
fills ``degree`` strides ahead.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(slots=True)
class _Entry:
    last_addr: int
    stride: int = 0
    confidence: int = 0


class StridePrefetcher:
    """Per-PC stride detector driving L2 prefetch fills."""

    def __init__(self, entries: int = 256, degree: int = 2,
                 confirm_threshold: int = 2):
        self.entries = entries
        self.degree = degree
        self.confirm_threshold = confirm_threshold
        self._table: dict[int, _Entry] = {}
        self.issued = 0
        self.trained = 0

    def observe(self, pc: int, addr: int) -> list[int]:
        """Train on a demand access; return addresses to prefetch."""
        self.trained += 1
        entry = self._table.get(pc)
        if entry is None:
            if len(self._table) >= self.entries:
                # FIFO-ish eviction: drop the oldest inserted entry.
                self._table.pop(next(iter(self._table)))
            self._table[pc] = _Entry(last_addr=addr)
            return []
        stride = addr - entry.last_addr
        if stride != 0 and stride == entry.stride:
            entry.confidence = min(entry.confidence + 1, 4)
        else:
            entry.confidence = 0
            entry.stride = stride
        entry.last_addr = addr
        if entry.confidence >= self.confirm_threshold and entry.stride:
            prefetches = [
                addr + entry.stride * k for k in range(1, self.degree + 1)
            ]
            self.issued += len(prefetches)
            return prefetches
        return []

    # -- slice-memoization hooks (repro.simcache) ----------------------
    def state_snapshot(self) -> tuple:
        """Full mutable state as a hashable tuple (simcache keying).

        Table order matters: eviction is FIFO over insertion order, so
        the snapshot preserves it for :meth:`state_restore`.
        """
        return (
            self.issued, self.trained,
            tuple(
                (pc, e.last_addr, e.stride, e.confidence)
                for pc, e in self._table.items()
            ),
        )

    def state_restore(self, snap: tuple) -> None:
        """Rebuild the exact state a :meth:`state_snapshot` captured."""
        issued, trained, entries = snap
        self.issued = issued
        self.trained = trained
        self._table = {
            pc: _Entry(last_addr=last_addr, stride=stride,
                       confidence=confidence)
            for pc, last_addr, stride, confidence in entries
        }

    def reset_stats(self) -> None:
        self.issued = 0
        self.trained = 0
