"""Translation lookaside buffers (paper Table 2: per-core I/D TLBs).

Fully-associative, LRU, 4 KB pages.  A miss triggers a page-table walk
that reads from the shared L2 (walk latency charged to the access);
large-footprint benchmarks (mcf's 4 MB working set spans ~1 k pages)
feel this on both core types.
"""

from __future__ import annotations

from dataclasses import dataclass

PAGE_SHIFT = 12  # 4 KB pages


@dataclass(slots=True)
class TLBStats:
    accesses: int = 0
    misses: int = 0

    @property
    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def reset(self) -> None:
        self.accesses = 0
        self.misses = 0


class TLB:
    """Fully-associative, LRU translation buffer."""

    def __init__(self, entries: int = 64, walk_latency: int = 20,
                 name: str = "tlb"):
        if entries < 1:
            raise ValueError("entries must be >= 1")
        self.entries = entries
        self.walk_latency = walk_latency
        self.name = name
        self.stats = TLBStats()
        self._pages: dict[int, int] = {}   # page -> last-use stamp
        self._clock = 0

    def access(self, addr: int) -> int:
        """Translate *addr*; returns added latency (0 on a hit)."""
        self._clock += 1
        self.stats.accesses += 1
        page = addr >> PAGE_SHIFT
        if page in self._pages:
            self._pages[page] = self._clock
            return 0
        self.stats.misses += 1
        if len(self._pages) >= self.entries:
            victim = min(self._pages, key=self._pages.get)
            del self._pages[victim]
        self._pages[page] = self._clock
        return self.walk_latency

    # -- slice-memoization hooks (repro.simcache) ----------------------
    def state_snapshot(self) -> tuple:
        """Full mutable state as a hashable tuple (simcache keying)."""
        stats = self.stats
        return (self._clock, stats.accesses, stats.misses,
                tuple(self._pages.items()))

    def state_restore(self, snap: tuple) -> None:
        """Rebuild the exact state a :meth:`state_snapshot` captured."""
        clock, accesses, misses, pages = snap
        self._clock = clock
        self.stats.accesses = accesses
        self.stats.misses = misses
        self._pages = dict(pages)

    def flush(self) -> int:
        """Drop all translations (context/application switch)."""
        dropped = len(self._pages)
        self._pages.clear()
        return dropped

    @property
    def resident(self) -> int:
        return len(self._pages)
