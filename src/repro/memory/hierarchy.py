"""Per-core memory hierarchy: L1 I/D + shared L2 + main memory.

``MemoryHierarchy`` owns the shared pieces (L2, stride prefetcher, bus,
directory); ``CoreMemory`` is the per-core view (L1I, L1D) that the core
models call into.  Access latency is returned in cycles and already
includes the levels traversed (paper Table 2: L1 2 cycles, L2 15,
memory 120).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.bus import SharedBus
from repro.memory.cache import Cache, CacheConfig
from repro.memory.coherence import CoherenceDirectory
from repro.memory.prefetcher import StridePrefetcher
from repro.memory.tlb import TLB


@dataclass(frozen=True, slots=True)
class AccessResult:
    """Outcome of one demand access."""

    latency: int
    l1_hit: bool
    l2_hit: bool

    @property
    def went_to_memory(self) -> bool:
        return not (self.l1_hit or self.l2_hit)


#: Default latencies (cycles), paper Table 2.
L1_LATENCY = 2
L2_LATENCY = 15
MEM_LATENCY = 120


class MemoryHierarchy:
    """Shared L2 + prefetcher + bus + coherence directory."""

    def __init__(
        self,
        *,
        l2_size: int = 2 * 1024 * 1024,
        l2_assoc: int = 16,
        line_bytes: int = 64,
        l2_latency: int = L2_LATENCY,
        mem_latency: int = MEM_LATENCY,
        prefetcher: StridePrefetcher | None = None,
        bus: SharedBus | None = None,
    ):
        self.l2 = Cache(
            CacheConfig(l2_size, l2_assoc, line_bytes, l2_latency), name="L2"
        )
        self.l2_latency = l2_latency
        self.mem_latency = mem_latency
        self.line_bytes = line_bytes
        self.prefetcher = prefetcher or StridePrefetcher()
        self.bus = bus or SharedBus()
        self.directory = CoherenceDirectory(line_bytes)
        self._cores: dict[int, CoreMemory] = {}

    def core_view(self, core_id: int, **l1_kwargs) -> "CoreMemory":
        """Create (or return) the private-L1 view for *core_id*."""
        if core_id not in self._cores:
            self._cores[core_id] = CoreMemory(core_id, self, **l1_kwargs)
        return self._cores[core_id]

    # -- slice-memoization hooks (repro.simcache) ----------------------
    def state_snapshot(self) -> tuple:
        """Snapshot of the *shared* structures a slice can touch.

        Covers the L2, prefetcher, bus and directory; the per-core L1
        views snapshot separately (:meth:`CoreMemory.state_snapshot`)
        so a memo key only carries the cores a slice actually runs on.
        """
        return (
            self.l2.state_snapshot(),
            self.prefetcher.state_snapshot(),
            self.bus.state_snapshot(),
            self.directory.state_snapshot(),
        )

    def state_restore(self, snap: tuple) -> None:
        """Rebuild the exact shared state a snapshot captured."""
        l2, prefetcher, bus, directory = snap
        self.l2.state_restore(l2)
        self.prefetcher.state_restore(prefetcher)
        self.bus.state_restore(bus)
        self.directory.state_restore(directory)

    #: Ceiling on per-request bus queueing: issue timestamps from the
    #: dataflow-slot cores are only locally ordered, so unbounded
    #: serialization would amplify timestamp noise into phantom queues.
    MAX_BUS_CONTENTION = 8

    def l2_access(self, core_id: int, pc: int, addr: int, *,
                  write: bool, now: int = 0,
                  timed: bool = True) -> tuple[int, bool]:
        """Access the shared L2; return (added latency, l2_hit).

        The refill crosses the shared L1<->L2 bus.  ``timed=True``
        serializes it against other data refills at timestamp *now*
        (concurrent cores queue behind each other); instruction-side
        refills pass ``timed=False`` — their fetch-clock timestamps
        are not comparable with data-issue timestamps, so they count
        as bandwidth only.
        """
        hit = self.l2.access(addr, write=write)
        if write:
            self.directory.on_write(core_id, addr)
        else:
            self.directory.on_read(core_id, addr)
        for pf_addr in self.prefetcher.observe(pc, addr):
            self.l2.fill(pf_addr)
        contention = 0
        if timed:
            start, _finish = self.bus.transfer(now, self.line_bytes)
            contention = min(start - now, self.MAX_BUS_CONTENTION)
        else:
            self.bus.record(self.line_bytes)
        if hit:
            return self.l2_latency + contention, True
        return self.l2_latency + self.mem_latency + contention, False


class CoreMemory:
    """One core's private L1 caches over the shared hierarchy."""

    def __init__(
        self,
        core_id: int,
        shared: MemoryHierarchy,
        *,
        l1i_size: int = 32 * 1024,
        l1d_size: int = 32 * 1024,
        l1_assoc: int = 4,
        l1_latency: int = L1_LATENCY,
        itlb_entries: int = 48,
        dtlb_entries: int = 64,
        tlb_walk_latency: int = 20,
    ):
        line = shared.line_bytes
        self.core_id = core_id
        self.shared = shared
        self.l1i = Cache(
            CacheConfig(l1i_size, l1_assoc, line, l1_latency), name="L1I"
        )
        self.l1d = Cache(
            CacheConfig(l1d_size, l1_assoc, line, l1_latency), name="L1D"
        )
        self.itlb = TLB(itlb_entries, tlb_walk_latency, name="ITLB")
        self.dtlb = TLB(dtlb_entries, tlb_walk_latency, name="DTLB")
        self.l1_latency = l1_latency

    def fetch(self, pc: int, *, now: int = 0) -> AccessResult:
        """Instruction fetch at *pc* (at core cycle *now*)."""
        walk = self.itlb.access(pc)
        if self.l1i.access(pc):
            return AccessResult(self.l1_latency + walk, True, True)
        added, l2_hit = self.shared.l2_access(
            self.core_id, pc, pc, write=False, now=now, timed=False
        )
        return AccessResult(self.l1_latency + walk + added, False, l2_hit)

    def load(self, pc: int, addr: int, *, now: int = 0) -> AccessResult:
        walk = self.dtlb.access(addr)
        if self.l1d.access(addr):
            return AccessResult(self.l1_latency + walk, True, True)
        added, l2_hit = self.shared.l2_access(
            self.core_id, pc, addr, write=False, now=now
        )
        return AccessResult(self.l1_latency + walk + added, False, l2_hit)

    def store(self, pc: int, addr: int, *, now: int = 0) -> AccessResult:
        walk = self.dtlb.access(addr)
        if self.l1d.access(addr, write=True):
            return AccessResult(self.l1_latency + walk, True, True)
        added, l2_hit = self.shared.l2_access(
            self.core_id, pc, addr, write=True, now=now
        )
        return AccessResult(self.l1_latency + walk + added, False, l2_hit)

    # -- slice-memoization hooks (repro.simcache) ----------------------
    def state_snapshot(self) -> tuple:
        """Touched-line digest of this core's private state (L1s, TLBs)."""
        return (
            self.core_id,
            self.l1i.state_snapshot(),
            self.l1d.state_snapshot(),
            self.itlb.state_snapshot(),
            self.dtlb.state_snapshot(),
        )

    def state_restore(self, snap: tuple) -> None:
        """Rebuild the exact per-core state a snapshot captured."""
        _core_id, l1i, l1d, itlb, dtlb = snap
        self.l1i.state_restore(l1i)
        self.l1d.state_restore(l1d)
        self.itlb.state_restore(itlb)
        self.dtlb.state_restore(dtlb)

    def flush_for_migration(self) -> tuple[int, int]:
        """Drain L1s and TLBs (application migrating away).

        Returns (dirty lines written back, total lines dropped); the
        caller converts these to bus traffic and warm-up cost.
        """
        resident = self.l1i.resident_lines + self.l1d.resident_lines
        dirty = self.l1d.flush()
        self.l1i.flush()
        self.itlb.flush()
        self.dtlb.flush()
        self.shared.directory.flush_core(self.core_id)
        return dirty, resident

    def reset_stats(self) -> None:
        self.l1i.stats.reset()
        self.l1d.stats.reset()
        self.itlb.stats.reset()
        self.dtlb.stats.reset()
