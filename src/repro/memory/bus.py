"""Shared coherent bus model.

All L1<->L2 traffic, coherence messages and migration transfers (SC and
register state) serialize over one 32 B-wide bus (paper Table 2,
section 3.3.3).  The model tracks occupancy in bus cycles so that
concurrent transfers queue behind each other; migration cost
experiments (Figure 15) read contention delay from here.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(slots=True)
class BusStats:
    transfers: int = 0
    bytes_moved: int = 0
    busy_cycles: int = 0
    contention_cycles: int = 0

    def reset(self) -> None:
        self.transfers = 0
        self.bytes_moved = 0
        self.busy_cycles = 0
        self.contention_cycles = 0


class SharedBus:
    """A single split-transaction bus with first-come service.

    Time is externally supplied (the callers' cycle counts); the bus
    remembers when it becomes free and makes later requests queue.
    """

    def __init__(self, width_bytes: int = 32, cycles_per_beat: int = 1):
        self.width_bytes = width_bytes
        self.cycles_per_beat = cycles_per_beat
        self.stats = BusStats()
        self._free_at = 0

    def beats_for(self, num_bytes: int) -> int:
        """Bus beats needed to move *num_bytes*."""
        return -(-num_bytes // self.width_bytes)  # ceil division

    def record(self, num_bytes: int) -> None:
        """Account traffic without serializing it.

        Used for requests whose timestamps live on a different model
        clock (instruction-fetch refills): they contribute to bandwidth
        statistics but must not create phantom queueing against
        data-side timestamps.
        """
        if num_bytes <= 0:
            return
        self.stats.transfers += 1
        self.stats.bytes_moved += num_bytes
        self.stats.busy_cycles += self.beats_for(num_bytes) * \
            self.cycles_per_beat

    def transfer(self, now: int, num_bytes: int) -> tuple[int, int]:
        """Request a transfer of *num_bytes* starting no earlier than *now*.

        Returns ``(start_cycle, finish_cycle)``.  Contention (waiting for
        the bus to free up) is recorded in the stats.
        """
        if num_bytes <= 0:
            return now, now
        free_at = self._free_at
        start = now if now >= free_at else free_at
        duration = -(-num_bytes // self.width_bytes) * self.cycles_per_beat
        finish = start + duration
        stats = self.stats
        stats.transfers += 1
        stats.bytes_moved += num_bytes
        stats.busy_cycles += duration
        stats.contention_cycles += start - now
        self._free_at = finish
        return start, finish

    # -- slice-memoization hooks (repro.simcache) ----------------------
    def state_snapshot(self) -> tuple:
        """Full mutable state as a hashable tuple (simcache keying)."""
        stats = self.stats
        return (self._free_at, stats.transfers, stats.bytes_moved,
                stats.busy_cycles, stats.contention_cycles)

    def state_restore(self, snap: tuple) -> None:
        """Rebuild the exact state a :meth:`state_snapshot` captured."""
        (self._free_at, self.stats.transfers, self.stats.bytes_moved,
         self.stats.busy_cycles, self.stats.contention_cycles) = snap

    def occupancy(self, elapsed_cycles: int) -> float:
        """Fraction of *elapsed_cycles* the bus spent busy."""
        if elapsed_cycles <= 0:
            return 0.0
        return min(1.0, self.stats.busy_cycles / elapsed_cycles)

    def reset(self) -> None:
        self.stats.reset()
        self._free_at = 0
