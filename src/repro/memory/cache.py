"""Set-associative cache with true-LRU replacement.

The model is access-accurate rather than port-accurate: each access
classifies as hit or miss and the caller charges the corresponding
latency.  Dirty-line writebacks are surfaced so the bus model can
account for their traffic.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass

#: Victim-selection key for :meth:`Cache._fill` (kept at module level
#: so the hot eviction path does not rebuild it per miss).
_LINE_LAST_USE = operator.attrgetter("last_use")


@dataclass(frozen=True, slots=True)
class CacheConfig:
    """Geometry and timing of one cache."""

    size_bytes: int
    assoc: int
    line_bytes: int = 64
    hit_latency: int = 2

    def __post_init__(self) -> None:
        if self.size_bytes % (self.assoc * self.line_bytes):
            raise ValueError("size must be a multiple of assoc * line size")
        sets = self.num_sets
        if sets & (sets - 1):
            raise ValueError("number of sets must be a power of two")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.assoc * self.line_bytes)


@dataclass(slots=True)
class CacheStats:
    accesses: int = 0
    misses: int = 0
    writebacks: int = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def mpki(self, instructions: int) -> float:
        """Misses per kilo-instruction over *instructions* committed."""
        if instructions == 0:
            return 0.0
        return 1000.0 * self.misses / instructions

    def reset(self) -> None:
        self.accesses = 0
        self.misses = 0
        self.writebacks = 0


@dataclass(slots=True)
class _Line:
    tag: int
    dirty: bool = False
    last_use: int = 0


class Cache:
    """Set-associative, write-back, write-allocate cache."""

    def __init__(self, config: CacheConfig, name: str = "cache"):
        self.config = config
        self.name = name
        self.stats = CacheStats()
        self._sets: list[dict[int, _Line]] = [
            {} for _ in range(config.num_sets)
        ]
        self._clock = 0
        self._set_shift = (config.line_bytes - 1).bit_length()
        self._set_mask = config.num_sets - 1

    def _locate(self, addr: int) -> tuple[int, int]:
        block = addr >> self._set_shift
        return block & self._set_mask, block

    def access(self, addr: int, *, write: bool = False) -> bool:
        """Access *addr*; returns True on hit.

        On a miss the line is allocated (write-allocate); a dirty
        eviction increments ``stats.writebacks``.

        ``_locate`` is inlined here: this is the single hottest call in
        the detailed tier (every fetch/load/store lands here twice, L1
        then L2).
        """
        self._clock += 1
        self.stats.accesses += 1
        tag = addr >> self._set_shift
        lines = self._sets[tag & self._set_mask]
        line = lines.get(tag)
        if line is not None:
            line.last_use = self._clock
            if write:
                line.dirty = True
            return True
        self.stats.misses += 1
        self._fill(lines, tag, write)
        return False

    def probe(self, addr: int) -> bool:
        """Check residency without updating state or stats."""
        set_idx, tag = self._locate(addr)
        return tag in self._sets[set_idx]

    def fill(self, addr: int) -> None:
        """Install a line without counting an access (prefetch fill)."""
        self._clock += 1
        set_idx, tag = self._locate(addr)
        lines = self._sets[set_idx]
        if tag in lines:
            return
        self._fill(lines, tag, write=False)

    def _fill(self, lines: dict[int, _Line], tag: int, write: bool) -> None:
        if len(lines) >= self.config.assoc:
            # min over the values reaches the same line as min over the
            # keys (same dict order, same last_use tie-break) without a
            # per-candidate lambda invocation.
            victim = min(lines.values(), key=_LINE_LAST_USE)
            lines.pop(victim.tag)
            if victim.dirty:
                self.stats.writebacks += 1
        lines[tag] = _Line(tag=tag, dirty=write, last_use=self._clock)

    # -- slice-memoization hooks (repro.simcache) ----------------------
    def state_snapshot(self) -> tuple:
        """Full mutable state as a hashable tuple (simcache keying).

        Lines are listed in per-set dict insertion order so that
        :meth:`state_restore` reproduces not just the contents but the
        iteration order future evictions and snapshots observe.
        """
        stats = self.stats
        return (
            self._clock, stats.accesses, stats.misses, stats.writebacks,
            tuple(
                (set_idx, line.tag, line.dirty, line.last_use)
                for set_idx, lines in enumerate(self._sets)
                for line in lines.values()
            ),
        )

    def state_restore(self, snap: tuple) -> None:
        """Rebuild the exact state a :meth:`state_snapshot` captured."""
        clock, accesses, misses, writebacks, lines = snap
        self._clock = clock
        stats = self.stats
        stats.accesses = accesses
        stats.misses = misses
        stats.writebacks = writebacks
        sets = self._sets
        for bucket in sets:
            bucket.clear()
        for set_idx, tag, dirty, last_use in lines:
            sets[set_idx][tag] = _Line(
                tag=tag, dirty=dirty, last_use=last_use)

    def invalidate(self, addr: int) -> bool:
        """Drop the line holding *addr* if present; True if it was dirty."""
        set_idx, tag = self._locate(addr)
        line = self._sets[set_idx].pop(tag, None)
        return bool(line and line.dirty)

    def flush(self) -> int:
        """Empty the cache; return the number of dirty lines written back."""
        dirty = 0
        for lines in self._sets:
            dirty += sum(1 for line in lines.values() if line.dirty)
            lines.clear()
        self.stats.writebacks += dirty
        return dirty

    @property
    def resident_lines(self) -> int:
        return sum(len(lines) for lines in self._sets)

    @property
    def capacity_lines(self) -> int:
        return self.config.num_sets * self.config.assoc
