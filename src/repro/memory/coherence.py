"""MESI-lite coherence directory for the shared L2.

The evaluated workloads are multi-programmed (no data sharing), so
coherence activity in the paper's system comes from migration: after an
application moves cores, its lines are resident in the old core's L1
and must be invalidated/fetched across the bus.  The directory tracks,
per line, which core holds it and in what state, and yields the
invalidation traffic migration produces.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class CoherenceState(enum.Enum):
    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"


@dataclass(slots=True)
class _DirEntry:
    holders: set[int]
    state: CoherenceState


class CoherenceDirectory:
    """Directory keyed by line address (already line-aligned)."""

    def __init__(self, line_bytes: int = 64):
        self.line_bytes = line_bytes
        self._entries: dict[int, _DirEntry] = {}
        self.invalidations = 0
        self.interventions = 0

    def _line(self, addr: int) -> int:
        return addr // self.line_bytes

    def on_read(self, core_id: int, addr: int) -> int:
        """Record a read; return the number of remote interventions."""
        line = self._line(addr)
        entry = self._entries.get(line)
        if entry is None:
            self._entries[line] = _DirEntry({core_id}, CoherenceState.EXCLUSIVE)
            return 0
        interventions = 0
        if entry.state is CoherenceState.MODIFIED and core_id not in entry.holders:
            interventions = 1  # dirty line supplied by the remote owner
            self.interventions += 1
        entry.holders.add(core_id)
        if len(entry.holders) > 1:
            entry.state = CoherenceState.SHARED
        return interventions

    def on_write(self, core_id: int, addr: int) -> int:
        """Record a write; return the number of invalidations sent."""
        line = self._line(addr)
        entry = self._entries.get(line)
        if entry is None:
            self._entries[line] = _DirEntry({core_id}, CoherenceState.MODIFIED)
            return 0
        victims = entry.holders - {core_id}
        self.invalidations += len(victims)
        entry.holders = {core_id}
        entry.state = CoherenceState.MODIFIED
        return len(victims)

    # -- slice-memoization hooks (repro.simcache) ----------------------
    def state_snapshot(self) -> tuple:
        """Full mutable state as a hashable tuple (simcache keying).

        Holder sets are stored sorted so equal directory contents
        always snapshot equal regardless of set build history.  States
        are stored as the enum members themselves — they are immutable
        process-wide singletons, so hashing and equality are O(1) and
        :meth:`state_restore` skips re-constructing them per line.
        """
        return (
            self.invalidations, self.interventions,
            tuple(
                (line, entry.state, tuple(sorted(entry.holders)))
                for line, entry in self._entries.items()
            ),
        )

    def state_restore(self, snap: tuple) -> None:
        """Rebuild the exact state a :meth:`state_snapshot` captured."""
        invalidations, interventions, entries = snap
        self.invalidations = invalidations
        self.interventions = interventions
        self._entries = {
            line: _DirEntry(set(holders), state)
            for line, state, holders in entries
        }

    def evict(self, core_id: int, addr: int) -> None:
        line = self._line(addr)
        entry = self._entries.get(line)
        if entry is None:
            return
        entry.holders.discard(core_id)
        if not entry.holders:
            del self._entries[line]

    def flush_core(self, core_id: int) -> int:
        """Remove *core_id* from every entry (migration); return count."""
        dropped = 0
        dead: list[int] = []
        for line, entry in self._entries.items():
            if core_id in entry.holders:
                entry.holders.discard(core_id)
                dropped += 1
                if not entry.holders:
                    dead.append(line)
        for line in dead:
            del self._entries[line]
        self.invalidations += dropped
        return dropped

    @property
    def tracked_lines(self) -> int:
        return len(self._entries)
