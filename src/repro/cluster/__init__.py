"""Cluster-of-clusters: a global scheduler over N Mirage clusters.

One Mirage cluster multiplexes a handful of applications onto a
single producer OoO; a deployment is many such clusters behind a
global admission scheduler.  :mod:`repro.cluster.scheduler` places a
:class:`~repro.workloads.scenario.Scenario`'s arrivals across
clusters under a pluggable :class:`PlacementPolicy` (round-robin /
least-loaded / SC-MPKI-aware), and :mod:`repro.cluster.dynamic` runs
each placed sub-scenario on an independent
:class:`~repro.engine.loop.IntervalEngine` with the lifecycle phase
admitting and retiring tenants mid-run.  Placement is a pure function
of the schedule, so the per-cluster simulations parallelize through
:func:`repro.cmp.sharded.fan_out` and cache through the sweep runner
without changing a single bit of the outcome.
"""

from repro.cluster.dynamic import (
    AppRunSummary,
    ClusterScenarioResult,
    DynamicCluster,
    SeriesPhase,
    cluster_specs,
    run_cluster_scenario,
    run_scenario,
    run_scenario_unit,
    summarize_scenario,
)
from repro.cluster.scheduler import (
    POLICIES,
    ClusterLoad,
    LeastLoadedPolicy,
    Placement,
    PlacementPolicy,
    RoundRobinPolicy,
    SCMPKIAwarePolicy,
    benchmark_pressure,
    place_scenario,
)

__all__ = [
    "POLICIES",
    "AppRunSummary",
    "ClusterLoad",
    "ClusterScenarioResult",
    "DynamicCluster",
    "LeastLoadedPolicy",
    "Placement",
    "PlacementPolicy",
    "RoundRobinPolicy",
    "SCMPKIAwarePolicy",
    "SeriesPhase",
    "benchmark_pressure",
    "cluster_specs",
    "place_scenario",
    "run_cluster_scenario",
    "run_scenario",
    "run_scenario_unit",
    "summarize_scenario",
]
