"""Running scenarios on clusters: the dynamic engine assembly.

:class:`DynamicCluster` is the scenario-world sibling of
:class:`~repro.cmp.system.CMPSystem`: the same interval engine, the
same four standard phases and the same analytic backend, with a
:class:`~repro.engine.lifecycle.LifecyclePhase` in front (admitting
and retiring applications on the scenario's schedule) and a small
series phase behind (recording the per-interval population and
throughput the spike metrics need).  For a *static* scenario the
lifecycle phase never fires and the run flows through the
byte-identical fixed-population path — including the
:func:`~repro.cmp.system.fold_result` fold into a classic
:class:`~repro.cmp.system.CMPResult`.

Multi-cluster runs go through :func:`run_scenario_unit`, a
module-level JSON-pure function: the scenario experiment fans one
unit per ``(policy, cluster)`` over the
:class:`~repro.runner.executor.SweepRunner` (serial, ``--jobs N`` and
cached runs bit-identical), and the direct API :func:`run_scenario`
reuses :func:`repro.cmp.sharded.fan_out` — the same pool idiom the
detailed tier shards with.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.scheduler import Placement, place_scenario
from repro.cmp.config import ClusterConfig, SIM_SCALE
from repro.cmp.migration import MigrationCostModel, make_cost_model
from repro.cmp.system import CMPResult, fold_result
from repro.energy.model import CoreEnergyModel
from repro.engine import (
    AnalyticBackend,
    ArbitrationPhase,
    EnergyPhase,
    EngineContext,
    EnginePhase,
    ExecutionPhase,
    IntervalEngine,
    LifecyclePhase,
    MigrationPhase,
)
from repro.engine.state import AppState
from repro.metrics import (
    fairness_index,
    sla_attainment,
    spike_throughput,
    tail_summary,
)
from repro.telemetry import Telemetry
from repro.workloads.scenario import Scenario

#: Fallback horizon for duration=0 (run-to-completion) scenarios.
DEFAULT_MAX_INTERVALS = 50_000


class SeriesPhase(EnginePhase):
    """Records the per-interval population and throughput series.

    Pure observation (runs last in the pipeline, mutates nothing the
    other phases read), so its presence cannot perturb the simulated
    outcome; the spike-throughput metrics read the two series it
    accumulates.
    """

    name = "series"

    def __init__(self) -> None:
        self.population: list[int] = []
        self.throughput: list[float] = []

    def run(self, ctx: EngineContext) -> None:
        """Append this interval's resident count and summed IPC."""
        self.population.append(len(ctx.apps))
        self.throughput.append(
            sum(o.ipc for o in ctx.outcomes if o is not None))


@dataclass(slots=True)
class AppRunSummary:
    """One application's scenario outcome (JSON-pure via asdict)."""

    uid: str
    benchmark: str
    arrived: int                #: admission interval
    departed: int               #: retirement interval (or run end)
    retired: bool               #: False = still resident at run end
    residency: int              #: intervals resident
    completions: int            #: instruction-budget completions
    ooo_intervals: int          #: intervals granted a producer OoO
    first_ooo_latency: int | None   #: arrival -> first grant, intervals
    progress: float             #: achieved IPC / alone-on-OoO IPC
    energy_pj: float


@dataclass(slots=True)
class ClusterScenarioResult:
    """Outcome of one cluster simulating one (sub-)scenario."""

    label: str
    scenario: str
    intervals: int
    apps: list[AppRunSummary]
    population: list[int]       #: per-interval resident count
    throughput: list[float]     #: per-interval summed IPC
    migrations: int
    arrivals: int
    departures: int
    #: The classic fixed-population fold; only set for static
    #: scenarios, where it is byte-identical to CMPSystem.run().
    cmp: CMPResult | None = field(default=None)

    def to_dict(self) -> dict:
        """JSON-pure encoding (drops the static-only ``cmp`` fold)."""
        return {
            "label": self.label,
            "scenario": self.scenario,
            "intervals": self.intervals,
            "apps": [vars_summary(a) for a in self.apps],
            "population": self.population,
            "throughput": self.throughput,
            "migrations": self.migrations,
            "arrivals": self.arrivals,
            "departures": self.departures,
        }


def vars_summary(summary: AppRunSummary) -> dict:
    """Field dict of a slots dataclass (asdict needs __dict__)."""
    return {name: getattr(summary, name)
            for name in AppRunSummary.__slots__}


class DynamicCluster:
    """One Mirage cluster serving one scenario's schedule.

    Builds the standard pipeline with a
    :class:`~repro.engine.lifecycle.LifecyclePhase` first and a
    :class:`SeriesPhase` last; applications are admitted/retired on
    the scenario's schedule and summarized into
    :class:`AppRunSummary` rows at retirement (or at run end for
    still-resident tenants).
    """

    def __init__(self, config: ClusterConfig, scenario: Scenario, *,
                 arbitrator, energy_model: CoreEnergyModel | None = None,
                 telemetry: Telemetry | None = None,
                 vectorize: bool | None = None, label: str = ""):
        peak = scenario.peak_population()
        if (config.n_producers > 0
                and config.n_consumers + config.n_producers < peak):
            raise ValueError(
                f"{config.name} has "
                f"{config.n_consumers + config.n_producers} cores for "
                f"a peak population of {peak}")
        if config.n_producers > 0 and arbitrator is None:
            raise ValueError("a producer cluster needs an arbitrator")
        # Imported here (not at module top): repro.runner.units imports
        # the cmp stack; the lazy import keeps repro.cluster usable
        # without triggering the runner's registry at import time.
        from repro.runner.units import app_model

        self.config = config
        self.scenario = scenario
        self.arbitrator = arbitrator
        self.label = label or config.name
        self.telemetry = telemetry or Telemetry()
        self.migration = make_cost_model(config)
        self.backend = AnalyticBackend(self.migration,
                                       vectorize=vectorize)
        self.summaries: list[AppRunSummary] = []
        initial: list[AppState] = []
        pending: dict[int, list[AppState]] = {}
        for a in scenario.arrivals:
            state = AppState(
                model=app_model(a.benchmark), uid=a.uid,
                arrived_interval=a.arrive, depart_interval=a.depart)
            if a.arrive == 0:
                initial.append(state)
            else:
                pending.setdefault(a.arrive, []).append(state)
        self.apps = initial
        self.lifecycle = LifecyclePhase(
            pending, announce=list(initial),
            on_retire=self._retire, cluster=self.label)
        self.series = SeriesPhase()
        self.phases = [
            self.lifecycle,
            ArbitrationPhase(arbitrator),
            MigrationPhase(),
            ExecutionPhase(),
            EnergyPhase(energy_model or CoreEnergyModel()),
            self.series,
        ]
        self.engine = IntervalEngine(
            config, self.apps, self.phases, backend=self.backend,
            telemetry=self.telemetry)

    # ------------------------------------------------------------------
    def _summarize(self, app: AppState, departed: int,
                   retired: bool) -> AppRunSummary:
        residency = max(0, departed - app.arrived_interval)
        cycles = residency * self.config.scale.interval_cycles
        alone = max(1e-9, app.model.mean_ipc_ooo)
        progress = (min(1.0, (app.instr_done / cycles) / alone)
                    if cycles > 0 else 0.0)
        latency = (None if app.first_ooo_interval is None
                   else app.first_ooo_interval - app.arrived_interval)
        return AppRunSummary(
            uid=app.display_name,
            benchmark=app.model.name,
            arrived=app.arrived_interval,
            departed=departed,
            retired=retired,
            residency=residency,
            completions=app.completions,
            ooo_intervals=app.ooo_intervals,
            first_ooo_latency=latency,
            progress=progress,
            energy_pj=app.energy_pj,
        )

    def _retire(self, app: AppState, ctx: EngineContext) -> None:
        self.summaries.append(self._summarize(app, ctx.index, True))

    # ------------------------------------------------------------------
    def run(self, *, max_intervals: int | None = None
            ) -> ClusterScenarioResult:
        """Simulate the scenario's horizon; returns the summary.

        Static scenarios run to completion (the classic early-out)
        and additionally carry the byte-identical
        :class:`~repro.cmp.system.CMPResult` fold in ``result.cmp``.
        """
        scenario = self.scenario
        static = scenario.is_static
        horizon = max_intervals
        if horizon is None:
            horizon = scenario.duration or DEFAULT_MAX_INTERVALS
        ctx = self.engine.run(max_intervals=horizon,
                              stop_when_complete=static)
        cmp_fold = None
        if static:
            cmp_fold = fold_result(
                config=self.config,
                arbitrator_name=(self.arbitrator.name
                                 if self.arbitrator else "none"),
                ctx=ctx, apps=self.apps, migration=self.migration,
                history=[],
            )
        # Residents at run end are summarized in admission order so
        # the row order is deterministic.
        for app in self.apps:
            self.summaries.append(
                self._summarize(app, ctx.intervals, False))
        counters = self.telemetry.counters
        result = ClusterScenarioResult(
            label=self.label,
            scenario=scenario.name,
            intervals=ctx.intervals,
            apps=list(self.summaries),
            population=list(self.series.population),
            throughput=list(self.series.throughput),
            migrations=self.migration.total_migrations,
            arrivals=int(counters.get("lifecycle.arrivals", 0)),
            departures=int(counters.get("lifecycle.departures", 0)),
            cmp=cmp_fold,
        )
        self.telemetry.summarize_run(
            config=self.config.name,
            arbitrator=(self.arbitrator.name if self.arbitrator
                        else "none"),
            intervals=ctx.intervals,
            total_cycles=ctx.intervals * ctx.interval,
        )
        return result


# ----------------------------------------------------------------------
# Module-level entry points (picklable, JSON-pure)
# ----------------------------------------------------------------------
def run_cluster_scenario(scenario: Scenario, *, label: str = "",
                         n_consumers: int | None = None,
                         n_producers: int = 1,
                         arbitrator: str = "SC-MPKI",
                         telemetry: Telemetry | None = None,
                         vectorize: bool | None = None
                         ) -> ClusterScenarioResult:
    """Build and run one :class:`DynamicCluster` from plain data.

    *arbitrator* is a registry name
    (:data:`repro.runner.units.ARBITRATORS`); *n_consumers* defaults
    to the scenario's peak population, so any valid schedule fits.
    """
    from repro.runner.units import ARBITRATORS, TRADITIONAL

    peak = max(1, scenario.peak_population())
    config = ClusterConfig(
        n_consumers=peak if n_consumers is None else n_consumers,
        n_producers=n_producers,
        mirage=arbitrator not in TRADITIONAL,
        scale=SIM_SCALE,
    )
    cluster = DynamicCluster(
        config, scenario, arbitrator=ARBITRATORS[arbitrator](),
        telemetry=telemetry, vectorize=vectorize,
        label=label or f"{config.name}[{scenario.name}]")
    return cluster.run()


def run_scenario_unit(spec: dict) -> dict:
    """JSON-pure unit entry point for the sweep runner and the pool.

    *spec* keys: ``scenario`` (a
    :meth:`~repro.workloads.scenario.Scenario.to_dict` encoding),
    plus optional ``label`` / ``n_consumers`` / ``n_producers`` /
    ``arbitrator``.  Returns
    :meth:`ClusterScenarioResult.to_dict` — pure data, so cached,
    serial and pooled executions are indistinguishable.
    """
    scenario = Scenario.from_dict(spec["scenario"])
    result = run_cluster_scenario(
        scenario,
        label=spec.get("label", ""),
        n_consumers=spec.get("n_consumers"),
        n_producers=spec.get("n_producers", 1),
        arbitrator=spec.get("arbitrator", "SC-MPKI"),
    )
    return result.to_dict()


def cluster_specs(placement: Placement, *, capacity: int,
                  arbitrator: str = "SC-MPKI") -> list[dict]:
    """One :func:`run_scenario_unit` spec per placed cluster."""
    return [
        {
            "label": sub.name,
            "scenario": sub.to_dict(),
            "n_consumers": capacity,
            "n_producers": 1,
            "arbitrator": arbitrator,
        }
        for sub in placement.clusters
    ]


def summarize_scenario(cluster_results: list[dict],
                       rejected: int, queued: list[int], *,
                       sla_target: float = 0.5) -> dict:
    """Fold per-cluster result dicts into the scenario metrics row.

    Pure arithmetic over JSON data in cluster order, so the summary
    is identical whether the cluster results came from a serial run,
    a worker pool, or the on-disk result cache.  Applications never
    granted a producer are counted at their full residency (a
    conservative, censored latency), reported as ``never_served``.
    """
    apps = [a for r in cluster_results for a in r["apps"]]
    latencies = []
    never_served = 0
    for a in apps:
        if a["first_ooo_latency"] is None:
            latencies.append(float(a["residency"]))
            never_served += 1
        else:
            latencies.append(float(a["first_ooo_latency"]))
    progresses = [a["progress"] for a in apps]
    horizon = max((len(r["population"]) for r in cluster_results),
                  default=0)
    population = [0] * horizon
    throughput = [0.0] * horizon
    for r in cluster_results:
        for t, p in enumerate(r["population"]):
            population[t] += p
        for t, ipc in enumerate(r["throughput"]):
            throughput[t] += ipc
    spike = spike_throughput(population, throughput)
    return {
        "apps": len(apps),
        "rejected": rejected,
        "never_served": never_served,
        "latency": tail_summary(latencies),
        "queue_delay": tail_summary([float(q) for q in queued]),
        "sla": sla_attainment(progresses, sla_target),
        "sla_target": sla_target,
        "fairness": fairness_index(progresses),
        "stp": (sum(progresses) / len(progresses)) if progresses else 0.0,
        "spike": spike,
        "migrations": sum(r["migrations"] for r in cluster_results),
        "peak_population": max(population, default=0),
    }


def run_scenario(scenario: Scenario, *, n_clusters: int,
                 capacity: int = 12, policy: str = "least-loaded",
                 arbitrator: str = "SC-MPKI",
                 jobs: int | None = None,
                 sla_target: float = 0.5) -> dict:
    """Place and simulate *scenario* across *n_clusters* clusters.

    The direct (non-runner) API: placement via
    :func:`~repro.cluster.scheduler.place_scenario`, one independent
    cluster simulation per sub-scenario fanned out with
    :func:`repro.cmp.sharded.fan_out` (``jobs=None`` serial), and the
    deterministic :func:`summarize_scenario` fold.  Returns a
    JSON-pure dict with ``placement`` / ``clusters`` / ``metrics``.
    """
    from repro.cmp.sharded import fan_out

    placement = place_scenario(
        scenario, n_clusters=n_clusters, capacity=capacity,
        policy=policy)
    specs = cluster_specs(placement, capacity=capacity,
                          arbitrator=arbitrator)
    results = fan_out(run_scenario_unit, specs, jobs)
    metrics = summarize_scenario(
        results, len(placement.rejected), placement.queued_delays,
        sla_target=sla_target)
    return {
        "scenario": scenario.name,
        "shape": scenario.shape,
        "policy": policy,
        "n_clusters": n_clusters,
        "capacity": capacity,
        "arbitrator": arbitrator,
        "clusters": results,
        "rejected": [a.to_row() for a in placement.rejected],
        "metrics": metrics,
    }
