"""The global scheduler: placing arrivals across Mirage clusters.

One Mirage cluster serves at most ``n_consumers`` applications; a
datacenter-scale deployment is N such clusters behind a global
admission scheduler.  :func:`place_scenario` walks a
:class:`~repro.workloads.scenario.Scenario`'s arrivals in time order
and assigns each to a cluster under a :class:`PlacementPolicy`:

* ``"round-robin"``  — cyclic over clusters with free capacity;
* ``"least-loaded"`` — the cluster with the fewest residents at the
  admission instant;
* ``"sc-mpki"``      — balance *OoO pressure* instead of headcount:
  each benchmark's static pressure is how much it loses on an InO
  core (``1 - IPC_InO/IPC_OoO``, from the same per-benchmark phase
  models the arbitrators use), and the arrival goes to the cluster
  whose resident pressure is lowest — an SC-MPKI-aware scheduler
  keeps the OoO-hungry (HPD, poorly-memoizable) tenants apart so no
  single producer core is oversubscribed with them.

Placement is *capacity-aware queueing*: when every cluster is full at
the requested instant the arrival is delayed until a scheduled
departure frees a slot (``AppArrival.queued`` records the wait), and
arrivals that never fit within the horizon are rejected.  The whole
pass is a pure function of the schedule — per-cluster populations are
derived from the already-placed arrive/depart times, never from
simulation outcomes — so the resulting sub-scenarios are independent
and the per-cluster simulations parallelize and cache cleanly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.workloads.scenario import AppArrival, Scenario


def benchmark_pressure(benchmark: str) -> float:
    """Static OoO pressure of one benchmark, in [0, 1).

    How much of its alone-on-OoO throughput the benchmark loses on an
    InO core (``1 - IPC_InO/IPC_OoO`` over the phase model's means):
    ~0 for LPD applications that barely need the producer, large for
    HPD ones that starve without it.
    """
    # Imported here: repro.runner.units imports the cmp/arbiter stack;
    # keeping it lazy lets repro.cluster.scheduler import standalone.
    from repro.runner.units import app_model

    model = app_model(benchmark)
    ooo = max(1e-9, model.mean_ipc_ooo)
    return max(0.0, 1.0 - model.mean_ipc_ino / ooo)


@dataclass(slots=True)
class ClusterLoad:
    """One cluster's load as the scheduler sees it at one instant."""

    index: int
    resident: int       #: applications resident at the instant
    pressure: float     #: summed benchmark_pressure of the residents
    placed: int         #: applications ever placed on this cluster


class PlacementPolicy(ABC):
    """Picks the cluster an arriving application is admitted to."""

    #: Registry/CLI name of the policy.
    name: str = "policy"

    @abstractmethod
    def choose(self, arrival: AppArrival, candidates: list[int],
               loads: list[ClusterLoad]) -> int:
        """The chosen cluster index.

        *candidates* are the clusters with free capacity at the
        admission instant (never empty), *loads* describes every
        cluster; implementations must be deterministic.
        """


class RoundRobinPolicy(PlacementPolicy):
    """Cyclic placement over the clusters with free capacity."""

    name = "round-robin"

    def __init__(self) -> None:
        self._cursor = 0

    def choose(self, arrival: AppArrival, candidates: list[int],
               loads: list[ClusterLoad]) -> int:
        """The next candidate at or after the rotating cursor."""
        n = len(loads)
        for k in range(n):
            c = (self._cursor + k) % n
            if c in candidates:
                self._cursor = (c + 1) % n
                return c
        raise RuntimeError("choose() called with no candidates")


class LeastLoadedPolicy(PlacementPolicy):
    """The cluster with the fewest residents (ties: lowest index)."""

    name = "least-loaded"

    def choose(self, arrival: AppArrival, candidates: list[int],
               loads: list[ClusterLoad]) -> int:
        """The emptiest candidate cluster."""
        return min(candidates,
                   key=lambda c: (loads[c].resident, c))


class SCMPKIAwarePolicy(PlacementPolicy):
    """Balance summed OoO pressure instead of plain headcount."""

    name = "sc-mpki"

    def choose(self, arrival: AppArrival, candidates: list[int],
               loads: list[ClusterLoad]) -> int:
        """The candidate with the least resident OoO pressure."""
        return min(
            candidates,
            key=lambda c: (loads[c].pressure, loads[c].resident, c))


#: Policy registry: CLI/driver name -> factory (fresh instance per
#: placement pass — round-robin carries cursor state).
POLICIES: dict[str, type[PlacementPolicy]] = {
    policy.name: policy
    for policy in (RoundRobinPolicy, LeastLoadedPolicy,
                   SCMPKIAwarePolicy)
}


@dataclass(slots=True)
class Placement:
    """What one placement pass produced."""

    policy: str
    capacity: int
    clusters: list[Scenario]        #: one sub-scenario per cluster
    rejected: list[AppArrival]      #: never fit within the horizon

    @property
    def queued_delays(self) -> list[int]:
        """Admission delay (intervals) of every placed application."""
        return [a.queued for sub in self.clusters for a in sub.arrivals]


def _resident(placed: list[AppArrival], t: int) -> list[AppArrival]:
    return [a for a in placed
            if a.arrive <= t and (a.depart is None or t < a.depart)]


def place_scenario(scenario: Scenario, *, n_clusters: int,
                   capacity: int, policy: str) -> Placement:
    """Assign every arrival of *scenario* to one of *n_clusters*.

    Arrivals are processed in schedule order; an arrival finding all
    clusters full is retried interval by interval (departures free
    slots — the lifecycle phase retires leavers before admitting
    same-interval arrivals, and this model matches that order) and
    rejected if the horizon ends first.  Delayed admissions keep
    their service *length*: the departure slides with the arrival.

    Returns a :class:`Placement` whose sub-scenarios partition the
    admitted arrivals; each is a self-contained
    :class:`~repro.workloads.scenario.Scenario` a single cluster can
    simulate independently.
    """
    if n_clusters < 1:
        raise ValueError("n_clusters must be >= 1")
    if capacity < 1:
        raise ValueError("capacity must be >= 1")
    if policy not in POLICIES:
        raise ValueError(
            f"unknown placement policy {policy!r} — choose from "
            f"{', '.join(POLICIES)}")
    chooser = POLICIES[policy]()
    horizon = scenario.duration or max(
        [a.arrive for a in scenario.arrivals], default=0) + 1
    placed: list[list[AppArrival]] = [[] for _ in range(n_clusters)]
    pressures: dict[str, float] = {}
    rejected: list[AppArrival] = []
    order = sorted(
        range(len(scenario.arrivals)),
        key=lambda k: (scenario.arrivals[k].arrive, k))
    for k in order:
        arrival = scenario.arrivals[k]
        service = (None if arrival.depart is None
                   else arrival.depart - arrival.arrive)
        admitted = False
        for t in range(arrival.arrive, horizon):
            loads = []
            candidates = []
            for c in range(n_clusters):
                residents = _resident(placed[c], t)
                pressure = 0.0
                for r in residents:
                    if r.benchmark not in pressures:
                        pressures[r.benchmark] = benchmark_pressure(
                            r.benchmark)
                    pressure += pressures[r.benchmark]
                loads.append(ClusterLoad(
                    index=c, resident=len(residents),
                    pressure=pressure, placed=len(placed[c])))
                if len(residents) < capacity:
                    candidates.append(c)
            if not candidates:
                continue
            chosen = chooser.choose(arrival, candidates, loads)
            placed[chosen].append(AppArrival(
                uid=arrival.uid,
                benchmark=arrival.benchmark,
                arrive=t,
                depart=None if service is None else t + service,
                requested=(arrival.requested
                           if arrival.requested is not None
                           else arrival.arrive),
            ))
            admitted = True
            break
        if not admitted:
            rejected.append(arrival)
    clusters = [
        Scenario(
            name=f"{scenario.name}/c{c}",
            shape=scenario.shape,
            duration=scenario.duration,
            arrivals=tuple(sub),
            seed=scenario.seed,
        )
        for c, sub in enumerate(placed) if sub
    ]
    return Placement(policy=policy, capacity=capacity,
                     clusters=clusters, rejected=rejected)
