"""Bench: Table 1 — benchmark classification by InO:OoO IPC ratio."""

from repro.experiments import table1


def test_table1_classification(once):
    result = once(table1.run, instructions=20_000)
    # Two-band structure with strong agreement to the paper's labels.
    assert result["agreement"] >= 0.8
    # HPD benchmarks sit below the split, LPD above, on average.
    hpd = [r["ratio"] for r in result["rows"]
           if r["paper_category"] == "HPD"]
    lpd = [r["ratio"] for r in result["rows"]
           if r["paper_category"] == "LPD"]
    assert sum(hpd) / len(hpd) < sum(lpd) / len(lpd)
