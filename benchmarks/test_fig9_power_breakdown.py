"""Bench: Figure 9 — per-structure power and OoO utilization."""

from repro.experiments import fig9_power


def test_fig9_power_breakdown(once):
    result = once(fig9_power.run, instructions=20_000, n_mixes=4)
    power = result["breakdown"]["avg_power"]
    # Paper Figure 9a ratios: OinO ~2.4x InO dynamic power; OoO ~2.1x
    # OinO.  Require the right ordering with generous bands.
    assert 1.3 < power["oino"] / power["ino"] < 4.0
    assert 1.4 < power["ooo"] / power["oino"] < 4.5
    # The OoO's big reorder structures dominate its budget.
    ooo_parts = result["breakdown"]["fractions"]["ooo"]
    reorder = (ooo_parts.get("scheduler", 0) + ooo_parts.get("rob", 0)
               + ooo_parts.get("rename", 0))
    assert reorder > 0.2
    # OinO replays fetch from the SC: it spends a smaller fraction on
    # the I-cache than the plain InO does.
    ino_icache = result["breakdown"]["fractions"]["ino"].get("icache", 0)
    oino_icache = result["breakdown"]["fractions"]["oino"].get(
        "icache", 0)
    assert oino_icache < ino_icache

    # Figure 9b: SC-MPKI gates the OoO at small n, saturates by 12:1;
    # the throughput arbitrators never gate.
    util = {r["n"]: r["active"] for r in result["utilization"]}
    assert util[4]["SC-MPKI"] < util[16]["SC-MPKI"]
    assert util[16]["SC-MPKI"] > 0.9
    assert util[8]["maxSTP"] > 0.99
