"""Bench: Figure 11 — 8:1 benefits by benchmark category."""

from repro.experiments import fig11_categories


def test_fig11_categories(once):
    result = once(fig11_categories.run, mixes_per_category=3)
    hpd, lpd = result["HPD"], result["LPD"]
    # (a) HPD gains more speedup from Mirage than LPD does.
    gain_hpd = hpd["SC-MPKI"]["stp"] - hpd["Homo-InO"]["stp"]
    gain_lpd = lpd["SC-MPKI"]["stp"] - lpd["Homo-InO"]["stp"]
    assert gain_hpd > gain_lpd
    # (b) HPD mixes engage the OoO much more (schedule production).
    assert hpd["SC-MPKI"]["util"] > lpd["SC-MPKI"]["util"]
    # (c) LPD's low utilization translates into lower energy.
    assert lpd["SC-MPKI"]["energy"] < hpd["SC-MPKI"]["energy"]
    # Throughput arbitrators keep the OoO busy regardless of category.
    assert lpd["maxSTP"]["util"] > 0.95
