"""Bench: Figure 8 — energy vs cluster size per arbitrator."""

from repro.experiments import fig8_energy


def test_fig8_energy(once):
    result = once(fig8_energy.run, n_values=(4, 8, 12, 16), n_mixes=6)
    by_n = {r["n"]: r["energy"] for r in result["rows"]}
    # All small-core designs sit far below the all-OoO baseline.
    for energy in by_n.values():
        assert energy["SC-MPKI"] < 0.75
        assert energy["Homo-InO"] < energy["SC-MPKI"]
    # 8:1 SC-MPKI: the paper's ~54 % saving (46 % relative energy).
    assert 0.30 < by_n[8]["SC-MPKI"] < 0.60
    # Relative energy falls as one OoO is amortized over more InOs.
    series = [by_n[n]["SC-MPKI"] for n in (4, 8, 12, 16)]
    assert series[-1] < series[0]
