"""Bench: Figure 12 — per-application OoO timeshare per arbitrator."""

import pytest

from repro.experiments import fig12_fair_share
from repro.metrics import fairness_index


def test_fig12_fair_share(once):
    result = once(fig12_fair_share.run)
    arbs = result["arbitrators"]
    # Fair is exactly even; maxSTP is the most skewed; SC-MPKI less
    # skewed than maxSTP; SC-MPKI-fair close to even.
    assert arbs["Fair"]["fairness_index"] == pytest.approx(1.0, abs=0.02)
    assert (arbs["maxSTP"]["fairness_index"]
            < arbs["SC-MPKI"]["fairness_index"]
            < arbs["SC-MPKI-fair"]["fairness_index"] + 0.05)
    # Equal-share bound: nobody exceeds ~1/8 under the fair variants.
    assert arbs["Fair"]["max_share"] < 1 / 8 + 0.03
    assert arbs["SC-MPKI-fair"]["max_share"] < 1 / 8 + 0.12
    # maxSTP's favourite eats far more than its fair share.
    assert arbs["maxSTP"]["max_share"] > 0.25
