"""Bench: Figure 7 — STP vs cluster size per arbitrator."""

from repro.experiments import fig7_throughput


def test_fig7_throughput(once):
    result = once(fig7_throughput.run, n_values=(4, 8, 12, 16),
                  n_mixes=6)
    by_n = {r["n"]: r["stp"] for r in result["rows"]}
    for stp in by_n.values():
        # Mirage arbitrators beat the traditional runtime, which
        # beats homogeneous InO (paper's Figure 7 ordering).
        assert stp["SC-MPKI"] > stp["maxSTP"] > stp["Homo-InO"]
        # SC-MPKI+maxSTP is essentially as good as SC-MPKI.
        assert abs(stp["SC-MPKI+maxSTP"] - stp["SC-MPKI"]) < 0.08
    # At 8:1 the paper reports ~84 % of Homo-OoO for SC-MPKI and a
    # large gain over Homo-InO; require the gain to be substantial.
    assert by_n[8]["SC-MPKI"] - by_n[8]["Homo-InO"] > 0.10
    # Gains taper as the lone OoO saturates.
    gains = [by_n[n]["SC-MPKI"] - by_n[n]["Homo-InO"]
             for n in (4, 8, 12, 16)]
    assert gains[-1] < gains[0]
