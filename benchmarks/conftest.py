"""Shared pytest-benchmark configuration.

Every bench regenerates one paper table/figure through the same
``repro.experiments.*.run`` driver the CLI uses, then sanity-checks the
shape the paper reports.  Experiments are expensive relative to
microbenchmarks, so each runs exactly once per session (rounds=1).
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run the benched callable a single time and return its result."""

    def _run(func, *args, **kwargs):
        return benchmark.pedantic(
            func, args=args, kwargs=kwargs, rounds=1, iterations=1,
        )

    return _run
