"""Bench: Figure 6 — CMP area vs cluster size."""

import pytest

from repro.experiments import fig6_area


def test_fig6_area(once):
    result = once(fig6_area.run)
    by_n = {r["n"]: r for r in result["rows"]}
    # 8:1 Mirage at ~74 % of the 8-OoO CMP (the abstract's 25 % saving).
    assert by_n[8]["mirage"] == pytest.approx(0.74, abs=0.02)
    for r in result["rows"]:
        # Ordering: InO-only < traditional Het < Mirage < Homo-OoO.
        assert r["homo_ino"] < r["traditional"] < r["mirage"] < 1.0
    # Relative overhead of the one OoO shrinks as n grows.
    mirage_rel = [r["mirage"] for r in result["rows"]]
    assert mirage_rel == sorted(mirage_rel, reverse=True)
