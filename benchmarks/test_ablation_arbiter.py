"""Ablation bench: SC-MPKI arbitrator knobs.

DESIGN.md calls out two design choices in the energy-oriented
arbitrator: the ΔSC-MPKI threshold (how eagerly the OoO is engaged)
and the ping-pong decay.  This ablation sweeps the threshold and
checks the documented trade-off: lower thresholds buy throughput with
OoO busy-time (energy), higher thresholds gate the OoO harder.
"""

from repro.arbiter import SCMPKIArbitrator
from repro.characterize import analytic_model
from repro.cmp import ClusterConfig
from repro.cmp.system import CMPSystem
from repro.workloads import standard_mixes

THRESHOLDS = (0.2, 0.8, 2.0)


def sweep():
    mixes = standard_mixes(8, seed=2017)[:4]
    rows = []
    for threshold in THRESHOLDS:
        stp, util = [], []
        for mix in mixes:
            models = [analytic_model(b) for b in mix]
            res = CMPSystem(
                ClusterConfig(n_consumers=8, n_producers=1, mirage=True),
                models, SCMPKIArbitrator(threshold=threshold),
            ).run()
            stp.append(res.stp)
            util.append(res.ooo_active_fraction)
        rows.append({
            "threshold": threshold,
            "stp": sum(stp) / len(stp),
            "util": sum(util) / len(util),
        })
    return rows


def test_ablation_arbiter_threshold(once):
    rows = once(sweep)
    by_thr = {r["threshold"]: r for r in rows}
    # Eager arbitration uses the OoO more...
    assert by_thr[0.2]["util"] > by_thr[2.0]["util"]
    # ...and performance responds monotonically (within noise).
    assert by_thr[0.2]["stp"] >= by_thr[2.0]["stp"] - 0.02
    # The default (0.8) keeps most of the throughput of the eager
    # setting while gating substantially more.
    assert by_thr[0.8]["stp"] > by_thr[2.0]["stp"] - 0.02
    assert by_thr[0.8]["util"] < by_thr[0.2]["util"]
