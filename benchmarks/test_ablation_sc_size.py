"""Ablation bench: Schedule Cache capacity.

The paper picked 8 KB empirically: performance plateaus around there
while the energy overhead keeps growing linearly (section 4.2).  This
ablation sweeps the SC capacity on the detailed tier and checks the
plateau shape.
"""

from repro.cores import OinOCore, OutOfOrderCore
from repro.memory import MemoryHierarchy
from repro.schedule import ScheduleCache, ScheduleRecorder
from repro.workloads import make_benchmark

SIZES = (1024, 2048, 4096, 8192, 16384)
BENCHMARKS = ("bzip2", "gcc", "h264ref")
N = 25_000


def sweep():
    rows = []
    for size in SIZES:
        ipcs = []
        memo = []
        for name in BENCHMARKS:
            bench = make_benchmark(name, seed=6)
            sc = ScheduleCache(size)
            rec = ScheduleRecorder(sc)
            OutOfOrderCore(
                MemoryHierarchy().core_view(0), recorder=rec
            ).run(bench.stream(), N)
            r = OinOCore(MemoryHierarchy().core_view(1), sc).run(
                bench.stream(), N)
            ipcs.append(r.ipc)
            memo.append(r.stats.memoized_fraction)
        rows.append({
            "size": size,
            "ipc": sum(ipcs) / len(ipcs),
            "memoized": sum(memo) / len(memo),
        })
    return rows


def test_ablation_sc_size(once):
    rows = once(sweep)
    by_size = {r["size"]: r for r in rows}
    # More capacity never hurts memoization coverage materially.
    assert by_size[8192]["memoized"] >= by_size[1024]["memoized"] - 0.02
    # The return from doubling 8 KB is small (the paper's plateau).
    gain_to_8k = by_size[8192]["ipc"] - by_size[1024]["ipc"]
    gain_past_8k = by_size[16384]["ipc"] - by_size[8192]["ipc"]
    assert gain_past_8k <= max(0.02, gain_to_8k)
