"""Ablation bench: Schedule Cache path associativity.

Our SC stores up to 4 control paths per trace start pc (trace-cache
style).  With a single path per pc, multi-path loops thrash the entry
and replay keeps misspeculating — this ablation verifies the design
choice matters for path-diverse benchmarks and not for single-path
ones.
"""

from repro.cores import OinOCore, OutOfOrderCore
from repro.memory import MemoryHierarchy
from repro.schedule import ScheduleCache, ScheduleRecorder
from repro.workloads import make_benchmark

N = 25_000


def run(name, paths_per_pc):
    bench = make_benchmark(name, seed=8)
    sc = ScheduleCache(None, paths_per_pc=paths_per_pc)
    rec = ScheduleRecorder(sc)
    OutOfOrderCore(
        MemoryHierarchy().core_view(0), recorder=rec
    ).run(bench.stream(), N)
    r = OinOCore(MemoryHierarchy().core_view(1), sc).run(
        bench.stream(), N)
    return r.stats.memoized_fraction


def sweep():
    return {
        ("dealII", 1): run("dealII", 1),
        ("dealII", 4): run("dealII", 4),
        ("hmmer", 1): run("hmmer", 1),
        ("hmmer", 4): run("hmmer", 4),
    }


def test_ablation_path_associativity(once):
    result = once(sweep)
    # Path-diverse dealII needs the associativity...
    assert result[("dealII", 4)] > result[("dealII", 1)] + 0.05
    # ...single-path hmmer does not care.
    assert abs(result[("hmmer", 4)] - result[("hmmer", 1)]) < 0.1
