"""Bench: Figure 5 — bzip2's ΔSC-MPKI spikes track its IPC phases."""

from repro.experiments import fig5_bzip2_timeline


def test_fig5_bzip2_timeline(once):
    result = once(fig5_bzip2_timeline.run, intervals=500)
    assert result["n_phase_changes"] > 3
    assert result["n_spikes"] > 0
    # Phase changes show up as ΔSC-MPKI spikes in their locus.
    alignment = fig5_bzip2_timeline.spikes_align_with_phase_changes(
        result)
    assert alignment >= 0.6
    # During stable loops ΔSC-MPKI stays near zero: the median
    # interval is quiet.
    quiet = sorted(s["delta_sc_mpki"] for s in result["series"]
                   if not s["on_ooo"])
    assert quiet[len(quiet) // 2] < 1.0
