"""Bench: Figure 3b — memoizability vs migration cost over interval."""

from repro.experiments import fig3_interval_tradeoff


def test_fig3_interval_tradeoff(once):
    result = once(fig3_interval_tradeoff.run)
    rows = {r["interval_cycles"]: r for r in result["rows"]}
    # Migration losses: >10 % at 1k cycles, ~1 % by 1M (paper text).
    assert rows[1_000]["perf_vs_no_switching"] < 0.90
    assert rows[1_000_000]["perf_vs_no_switching"] > 0.98
    # Memoizability monotonically shrinks with interval length.
    memo = [r["memoizable_fraction"] for r in result["rows"]]
    assert memo == sorted(memo, reverse=True)
    # The chosen 1M-cycle interval keeps most of both.
    assert result["chosen_interval"] == 1_000_000
