"""Bench: Figure 14 — area-neutral 8:1 Mirage vs 5:3 traditional."""

import pytest

from repro.experiments import fig14_area_neutral


def test_fig14_area_neutral(once):
    result = once(fig14_area_neutral.run, n_mixes=4)
    mirage = result["mirage_8_1"]
    trad = result["trad_5_3"]
    # Roughly area-neutral designs.
    assert mirage["area"] == pytest.approx(trad["area"], abs=0.12)
    # Despite two extra OoOs, the traditional CMP is slower and
    # hungrier (paper: ~23 % slower, ~20 % more energy).
    assert mirage["stp"] > trad["stp"]
    assert mirage["energy"] < trad["energy"]
    # The traditional system's OoOs never rest.
    assert trad["util"] > 0.99
    assert mirage["util"] < trad["util"]
