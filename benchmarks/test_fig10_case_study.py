"""Bench: Figure 10 — astar+hmmer+bzip2 case study on 3:1."""

from repro.experiments import fig10_case_study


def test_fig10_case_study(once):
    result = once(fig10_case_study.run, intervals=500)
    maxstp = result["maxSTP"]["apps"]
    scmpki = result["SC-MPKI"]["apps"]
    # astar is neither slow enough (maxSTP) nor memoizable (SC-MPKI):
    # both schedulers leave it on the InO.
    assert maxstp["astar"]["ooo_fraction"] < 0.2
    assert scmpki["astar"]["ooo_fraction"] < 0.2
    # maxSTP dedicates the OoO mostly to hmmer (highest slowdown) and
    # starves bzip2 of equal access.
    assert maxstp["hmmer"]["ooo_fraction"] > \
        maxstp["bzip2"]["ooo_fraction"]
    # Under SC-MPKI, hmmer achieves high performance with far less OoO
    # time (memoized execution), and bzip2 gets a better deal overall.
    assert scmpki["hmmer"]["ooo_fraction"] < \
        maxstp["hmmer"]["ooo_fraction"]
    assert scmpki["hmmer"]["mean_speedup"] > 0.75
    assert scmpki["bzip2"]["mean_speedup"] > \
        maxstp["bzip2"]["mean_speedup"]
    # STP improves while the OoO is used less.
    assert result["SC-MPKI"]["stp"] >= result["maxSTP"]["stp"]
    assert result["SC-MPKI"]["ooo_active"] < \
        result["maxSTP"]["ooo_active"]
