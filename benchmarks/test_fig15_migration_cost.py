"""Bench: Figure 15 — migration cost breakdown and frequency."""

from repro.experiments import fig15_migration


def test_fig15_migration_cost(once):
    result = once(fig15_migration.run, n_mixes=12)
    # Paper: transfer overheads are insignificant (~0.15 % of cycles).
    assert result["overall_transfer_frac"] < 0.01
    # Per migration, L1 refill dominates over the SC transfer.
    for row in result["rows"]:
        if row["migration_frequency"] > 0:
            assert row["l1_transfer_frac"] >= row["sc_transfer_frac"]
    # HPD mixes migrate more often than LPD mixes (schedule
    # production pays off for them).
    by_cat = result["by_category"]
    if "HPD" in by_cat and "LPD" in by_cat:
        assert (by_cat["HPD"]["migration_frequency"]
                >= by_cat["LPD"]["migration_frequency"])
