"""Bench: Figure 2 — oracle memoizability and the OinO boost."""

from repro.experiments import fig2_memoization


def test_fig2_memoization_benefits(once):
    result = once(fig2_memoization.run, instructions=25_000)
    overall = result["groups"]["overall"]
    hpd = result["groups"]["HPD"]
    lpd = result["groups"]["LPD"]
    # A substantial fraction of execution memoizes under the oracle.
    assert overall["memoized_fraction"] > 0.5
    # HPD memoizes more than LPD (paper's Figure 2).
    assert hpd["memoized_fraction"] > lpd["memoized_fraction"]
    # Paper: HPD also gains the larger boost.  Our synthetic LPD
    # stand-ins replay unusually well (their serialization is
    # loop-carried, which recorded schedules preserve perfectly), so
    # the two categories sit near parity here — documented in
    # EXPERIMENTS.md.  Require near-parity or better, not strict order.
    boost_hpd = hpd["perf_with_memoization"] - hpd["perf_plain_ino"]
    boost_lpd = lpd["perf_with_memoization"] - lpd["perf_plain_ino"]
    assert boost_hpd > boost_lpd - 0.05
    # Memoization always helps overall.
    assert (overall["perf_with_memoization"]
            > overall["perf_plain_ino"])
