"""Bench: Figure 1 — InO vs OoO performance/power/energy/area."""

from repro.experiments import fig1_core_characteristics


def test_fig1_core_characteristics(once):
    result = once(fig1_core_characteristics.run, instructions=20_000)
    overall = result["groups"]["overall"]
    # Paper: InO keeps roughly half the performance...
    assert 0.25 < overall["performance"] < 0.75
    # ...at ~1/5 the power, ~1/3 the energy, <1/2 the area.
    assert overall["power"] < 0.45
    assert overall["energy"] < 0.8
    assert overall["area"] < 0.5
    # HPD loses more performance on the InO than LPD does.
    assert (result["groups"]["HPD"]["performance"]
            < result["groups"]["LPD"]["performance"])
