"""Bench: Figure 13 — fair schedulers across cluster sizes."""

from repro.experiments import fig13_fairness


def test_fig13_fairness(once):
    result = once(fig13_fairness.run, n_values=(4, 8, 12, 16), n_mixes=4)
    for row in result["rows"]:
        # SC-MPKI-fair beats plain Fair on performance...
        assert row["SC-MPKI-fair"]["stp"] > row["Fair"]["stp"]
        # ...while using the OoO no more (Fair is always-on)...
        assert row["Fair"]["util"] > 0.99
        assert row["SC-MPKI-fair"]["util"] <= row["Fair"]["util"]
        # ...and both sit far below Homo-OoO energy.
        assert row["SC-MPKI-fair"]["energy"] < 0.8
    # At small n SC-MPKI-fair gates the OoO substantially.
    first = result["rows"][0]
    assert first["SC-MPKI-fair"]["util"] < 0.9
