"""Bench: the abstract's headline claims at 8:1."""

import pytest

from repro.experiments import headline


def test_headline_claims(once):
    r = once(headline.run, n_mixes=8)
    # ~84 % of an 8-OoO homogeneous CMP's performance.
    assert 0.70 <= r["performance_vs_homo_ooo"] <= 0.95
    # A clear increase over the traditional Het-CMP runtime (~28 %).
    assert r["gain_vs_traditional"] > 0.08
    # ~55 % energy saving (45 % relative energy).
    assert 0.30 <= r["energy_vs_homo_ooo"] <= 0.60
    # ~25 % area saving.
    assert r["area_vs_homo_ooo"] == pytest.approx(0.74, abs=0.02)
    # The design scales to about 12 consumers per producer before the
    # OoO saturates.
    util = r["ooo_utilization_by_n"]
    assert util[8] < 0.95
    assert util[12] > 0.9 or util[16] > 0.95
