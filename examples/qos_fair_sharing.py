"""Scenario: QoS-bound multiprogramming with fair OoO sharing.

A provider sells eight tenants "big-core-class" service on one Mirage
cluster (paper section 3.2.3/5.3).  Plain round-robin gives everyone
an equal OoO timeshare but burns the OoO continuously; SC-MPKI-fair
counts memoized InO execution toward each tenant's share, so the OoO
can power down whenever the next tenant in line is already being
served by its Schedule Cache.

    python examples/qos_fair_sharing.py
"""

from repro import (
    ClusterConfig,
    CMPSystem,
    FairArbitrator,
    SCMPKIFairArbitrator,
    analytic_model,
)
from repro.metrics import fairness_index

TENANTS = ["hmmer", "gamess", "bzip2", "namd", "gcc", "povray",
           "libquantum", "calculix"]


def main() -> None:
    models = [analytic_model(n) for n in TENANTS]

    plain = CMPSystem(
        ClusterConfig(n_consumers=8, n_producers=1, mirage=False),
        models, FairArbitrator(),
    ).run()
    mirage = CMPSystem(
        ClusterConfig(n_consumers=8, n_producers=1, mirage=True),
        models, SCMPKIFairArbitrator(),
    ).run()

    print(f"{'tenant':<12} {'Fair share':>10} {'SC-MPKI-fair':>13}")
    for name, a, b in zip(TENANTS, plain.ooo_share_per_app,
                          mirage.ooo_share_per_app):
        print(f"{name:<12} {a:>10.1%} {b:>13.1%}")

    print(f"\n{'':<24} {'Fair':>8} {'SC-MPKI-fair':>13}")
    print(f"{'throughput (STP)':<24} {plain.stp:>8.2f} "
          f"{mirage.stp:>13.2f}")
    print(f"{'OoO active time':<24} {plain.ooo_active_fraction:>8.0%} "
          f"{mirage.ooo_active_fraction:>13.0%}")
    print(f"{'fairness index':<24} "
          f"{fairness_index(plain.ooo_share_per_app):>8.2f} "
          f"{fairness_index(mirage.ooo_share_per_app):>13.2f}")
    print(f"{'energy (pJ, lower=better)':<24} {plain.energy_pj:>8.2e} "
          f"{mirage.energy_pj:>13.2e}")

    print("\nTenants below the 12.5% share under SC-MPKI-fair are not "
          "starved: their Schedule Caches already deliver near-OoO "
          "speed, so the arbitrator banked the energy instead.")


if __name__ == "__main__":
    main()
