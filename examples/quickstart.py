"""Quickstart: the Mirage Cores mechanism on one benchmark.

Runs hmmer (a highly-memoizable HPD benchmark) on the three core
models: the OoO producer memoizes issue schedules into a Schedule
Cache, which then lets an in-order core in OinO mode replay them at
near-OoO speed.

    python examples/quickstart.py
"""

from repro import (
    InOrderCore,
    MemoryHierarchy,
    OinOCore,
    OutOfOrderCore,
    ScheduleCache,
    ScheduleRecorder,
    make_benchmark,
)

INSTRUCTIONS = 40_000


def main() -> None:
    bench = make_benchmark("hmmer", seed=1)
    hier = MemoryHierarchy()

    # 1. The producer OoO runs first; the recorder watches every trace
    #    and memoizes schedules that repeat with high confidence.
    sc = ScheduleCache(capacity_bytes=8 * 1024)
    recorder = ScheduleRecorder(sc)
    ooo = OutOfOrderCore(hier.core_view(0), recorder=recorder)
    r_ooo = ooo.run(bench.stream(), INSTRUCTIONS)
    print(f"OoO producer : IPC {r_ooo.ipc:.2f}  "
          f"({recorder.memoized_writes} schedules memoized, "
          f"SC {sc.used_bytes} B used)")

    # 2. A plain in-order core for reference.
    ino = InOrderCore(hier.core_view(1))
    r_ino = ino.run(bench.stream(), INSTRUCTIONS)
    print(f"plain InO    : IPC {r_ino.ipc:.2f}  "
          f"({r_ino.ipc / r_ooo.ipc:.0%} of OoO)")

    # 3. The same in-order hardware in OinO mode, consuming the SC.
    oino = OinOCore(hier.core_view(2), sc)
    r_oino = oino.run(bench.stream(), INSTRUCTIONS)
    print(f"OinO consumer: IPC {r_oino.ipc:.2f}  "
          f"({r_oino.ipc / r_ooo.ipc:.0%} of OoO, "
          f"{r_oino.stats.memoized_fraction:.0%} of instructions "
          f"replayed from memoized schedules)")

    gain = r_oino.ipc / r_ino.ipc - 1
    print(f"\nmemoization turned the in-order core "
          f"{gain:+.0%} faster — that is the mirage.")


if __name__ == "__main__":
    main()
