"""Scenario: sizing a Mirage cluster under an area budget.

An SoC architect has the area of six OoO cores to spend and wants the
best multiprogrammed throughput.  This example sweeps consumer counts,
simulates each candidate cluster on random mixes, and reports
throughput-per-area — reproducing the paper's conclusion that the
useful range tops out around 12 consumers per producer.

    python examples/design_space.py
"""

from repro import (
    ClusterConfig,
    CMPSystem,
    SCMPKIArbitrator,
    analytic_model,
    cmp_area,
    standard_mixes,
)
from repro.energy.model import AREA_UNITS

AREA_BUDGET = 6 * AREA_UNITS["ooo"]   # silicon for six big cores
N_CANDIDATES = (4, 6, 8, 10, 12, 16)
MIXES_PER_POINT = 3


def main() -> None:
    print(f"area budget: {AREA_BUDGET:.1f} units "
          f"(= 6 OoO cores)\n")
    print(f"{'config':>7} {'area':>6} {'fits':>5} {'STP':>6} "
          f"{'STP/area':>9} {'OoO busy':>9}")
    best = None
    largest_util = 0.0
    for n in N_CANDIDATES:
        area = cmp_area(n, 1, mirage=True)
        fits = area <= AREA_BUDGET
        stps, utils = [], []
        for mix in standard_mixes(n, seed=7)[:MIXES_PER_POINT]:
            models = [analytic_model(b) for b in mix]
            res = CMPSystem(
                ClusterConfig(n_consumers=n, n_producers=1, mirage=True),
                models, SCMPKIArbitrator(),
            ).run()
            stps.append(res.stp * n)   # jobs x mean speedup
            utils.append(res.ooo_active_fraction)
        stp = sum(stps) / len(stps)
        util = sum(utils) / len(utils)
        per_area = stp / area
        print(f"{n:>5}:1 {area:>6.1f} {'yes' if fits else 'no':>5} "
              f"{stp:>6.2f} {per_area:>9.3f} {util:>9.0%}")
        if fits and (best is None or per_area > best[1]):
            best = (n, per_area)
        largest_util = util

    n, per_area = best
    print(f"\nbest in budget: {n}:1 "
          f"(throughput/area {per_area:.3f}); beyond ~12:1 the lone "
          f"producer saturates ({largest_util:.0%} busy at "
          f"{N_CANDIDATES[-1]}:1) and extra consumers stop paying for "
          f"their area.")


if __name__ == "__main__":
    main()
