"""Scenario: consolidating a mixed batch onto one socket.

A data-center operator wants to run eight heterogeneous jobs on one
chip within a fixed area/power envelope (the paper's motivating
trade-off).  This example compares four designs for the same mix:

* 8 big OoO cores (fast, hot, huge),
* 8 little InO cores (cool, slow),
* a traditional 8:1 Het-CMP with a maxSTP runtime,
* an 8:1 Mirage cluster with the SC-MPKI arbitrator.

    python examples/datacenter_consolidation.py
"""

from repro import (
    ClusterConfig,
    CMPSystem,
    MaxSTPArbitrator,
    SCMPKIArbitrator,
    analytic_model,
    cmp_area,
    run_homo,
)
from repro.energy.model import AREA_UNITS

JOBS = ["hmmer", "mcf", "bzip2", "gcc", "libquantum", "astar",
        "namd", "xalancbmk"]


def main() -> None:
    models = [analytic_model(n) for n in JOBS]
    cfg_mirage = ClusterConfig(n_consumers=8, n_producers=1, mirage=True)
    cfg_trad = ClusterConfig(n_consumers=8, n_producers=1, mirage=False)

    homo_ooo = run_homo(models, kind="ooo", config=cfg_mirage)
    homo_ino = run_homo(models, kind="ino", config=cfg_mirage)
    trad = CMPSystem(cfg_trad, models, MaxSTPArbitrator()).run()
    mirage = CMPSystem(cfg_mirage, models, SCMPKIArbitrator()).run()

    base_energy = homo_ooo.energy_pj
    base_area = 8 * AREA_UNITS["ooo"]
    rows = [
        ("8x OoO (homogeneous)", homo_ooo.stp, 1.0, 1.0),
        ("8x InO (homogeneous)", homo_ino.stp,
         homo_ino.energy_pj / base_energy, 8 * AREA_UNITS["ino"] / base_area),
        ("8:1 traditional + maxSTP", trad.stp,
         trad.energy_pj / base_energy,
         cmp_area(8, 1, mirage=False) / base_area),
        ("8:1 Mirage + SC-MPKI", mirage.stp,
         mirage.energy_pj / base_energy,
         cmp_area(8, 1, mirage=True) / base_area),
    ]
    print(f"{'design':<28} {'throughput':>10} {'energy':>8} {'area':>6}")
    for name, stp, energy, area in rows:
        print(f"{name:<28} {stp:>10.2f} {energy:>8.0%} {area:>6.0%}")

    print(f"\nMirage keeps {mirage.stp:.0%} of the all-OoO throughput "
          f"at {mirage.energy_pj / base_energy:.0%} of its energy, and "
          f"power-gates the shared OoO "
          f"{1 - mirage.ooo_active_fraction:.0%} of the time.")


if __name__ == "__main__":
    main()
