"""Tests for the experiment drivers: structure and paper shapes.

These run the same ``run()`` functions as the benchmark harness, at
reduced sizes, and check the qualitative claims each figure makes.
"""

import pytest

from repro.experiments import (
    EXPERIMENTS,
    fig1_core_characteristics,
    fig2_memoization,
    fig3_interval_tradeoff,
    fig5_bzip2_timeline,
    fig6_area,
    fig7_throughput,
    fig8_energy,
    fig10_case_study,
    fig12_fair_share,
    fig14_area_neutral,
    fig15_migration,
    headline,
    table1,
)

pytestmark = pytest.mark.filterwarnings("ignore")

QUICK_BENCHES = ("hmmer", "mcf", "astar", "bzip2", "gcc", "libquantum")


class TestRegistry:
    def test_all_experiments_registered(self):
        # 16 paper tables/figures + 5 extension/validation drivers.
        assert len(EXPERIMENTS) == 21
        for exp in EXPERIMENTS.values():
            assert hasattr(exp, "run")
            assert hasattr(exp, "main")
            assert hasattr(exp, "print_table")

    def test_quick_mapping_is_centralised(self):
        from repro.experiments.registry import QUICK_OVERRIDES

        assert set(QUICK_OVERRIDES) == set(EXPERIMENTS)
        for name, overrides in QUICK_OVERRIDES.items():
            unknown = set(overrides) - EXPERIMENTS[name].accepts
            assert not unknown, (name, unknown)


class TestTable1:
    def test_two_band_structure(self):
        result = table1.run(instructions=8_000, benchmarks=QUICK_BENCHES)
        assert 0.0 < result["boundary"] < 1.0
        assert result["agreement"] >= 0.5

    def test_rows_have_categories(self):
        result = table1.run(instructions=5_000,
                            benchmarks=("hmmer", "astar"))
        cats = {r["benchmark"]: r for r in result["rows"]}
        assert cats["hmmer"]["ratio"] < cats["astar"]["ratio"]


class TestFig1:
    def test_ino_is_cheaper_and_slower(self):
        result = fig1_core_characteristics.run(
            instructions=8_000, benchmarks=QUICK_BENCHES)
        overall = result["groups"]["overall"]
        assert overall["performance"] < 1.0
        assert overall["power"] < 0.5       # paper: ~1/5
        assert overall["energy"] < 1.0      # ~3x efficient
        assert overall["area"] < 0.5

    def test_hpd_slower_than_lpd_on_ino(self):
        result = fig1_core_characteristics.run(
            instructions=8_000, benchmarks=QUICK_BENCHES)
        assert (result["groups"]["HPD"]["performance"]
                < result["groups"]["LPD"]["performance"])


class TestFig2:
    def test_memoization_helps(self):
        result = fig2_memoization.run(instructions=15_000,
                                      benchmarks=QUICK_BENCHES)
        overall = result["groups"]["overall"]
        assert overall["perf_with_memoization"] > overall["perf_plain_ino"]
        assert 0.1 < overall["memoized_fraction"] <= 1.0

    def test_hpd_memoizes_more(self):
        result = fig2_memoization.run(instructions=15_000,
                                      benchmarks=QUICK_BENCHES)
        assert (result["groups"]["HPD"]["memoized_fraction"]
                > result["groups"]["LPD"]["memoized_fraction"])


class TestFig3:
    def test_migration_overhead_falls_with_interval(self):
        result = fig3_interval_tradeoff.run()
        perfs = [r["perf_vs_no_switching"] for r in result["rows"]]
        assert perfs == sorted(perfs)
        assert perfs[0] < 0.9          # >10 % loss at 1k cycles
        assert perfs[-1] > 0.99        # negligible at 10M

    def test_memoizability_falls_with_interval(self):
        result = fig3_interval_tradeoff.run()
        memo = [r["memoizable_fraction"] for r in result["rows"]]
        assert memo == sorted(memo, reverse=True)

    def test_chosen_interval_is_balanced(self):
        result = fig3_interval_tradeoff.run()
        at_choice = next(
            r for r in result["rows"]
            if r["interval_cycles"] == result["chosen_interval"])
        assert at_choice["perf_vs_no_switching"] > 0.98
        assert at_choice["memoizable_fraction"] > 0.4


class TestFig5:
    def test_timeline_has_spikes_aligned_with_phases(self):
        result = fig5_bzip2_timeline.run(intervals=300)
        assert result["n_phase_changes"] > 0
        assert result["n_spikes"] > 0
        alignment = fig5_bzip2_timeline.spikes_align_with_phase_changes(
            result)
        assert alignment > 0.5


class TestFig6:
    def test_paper_area_shape(self):
        rows = fig6_area.run()["rows"]
        by_n = {r["n"]: r for r in rows}
        assert by_n[8]["mirage"] == pytest.approx(0.74, abs=0.02)
        for r in rows:
            assert r["homo_ino"] < r["traditional"] < r["mirage"] < 1.0


class TestFig7AndFig8:
    def test_throughput_ordering(self):
        result = fig7_throughput.run(n_values=(8,), n_mixes=3)
        stp = result["rows"][0]["stp"]
        assert stp["Homo-InO"] < stp["maxSTP"] < stp["SC-MPKI"] <= 1.0

    def test_gains_taper_with_n(self):
        result = fig7_throughput.run(n_values=(4, 16), n_mixes=2)
        gain = {
            r["n"]: r["stp"]["SC-MPKI"] - r["stp"]["Homo-InO"]
            for r in result["rows"]
        }
        assert gain[16] < gain[4] + 0.05

    def test_energy_below_homo_ooo(self):
        result = fig8_energy.run(n_values=(8,), n_mixes=3)
        energy = result["rows"][0]["energy"]
        assert energy["SC-MPKI"] < 0.7
        assert energy["Homo-InO"] < energy["SC-MPKI"]


class TestFig10:
    def test_case_study_story(self):
        result = fig10_case_study.run(intervals=300)
        scmpki = result["SC-MPKI"]["apps"]
        maxstp = result["maxSTP"]["apps"]
        # astar gets little OoO time under both schedulers.
        assert scmpki["astar"]["ooo_fraction"] < 0.15
        # SC-MPKI serves hmmer mostly via memoization...
        assert (scmpki["hmmer"]["ooo_fraction"]
                < maxstp["hmmer"]["ooo_fraction"])
        # ...while hmmer still performs better than under maxSTP.
        assert (scmpki["hmmer"]["mean_speedup"]
                > maxstp["hmmer"]["mean_speedup"])
        # And the OoO is free to power down much more often.
        assert result["SC-MPKI"]["ooo_active"] < \
            result["maxSTP"]["ooo_active"]


class TestFig12:
    def test_fairness_ordering(self):
        result = fig12_fair_share.run()
        arbs = result["arbitrators"]
        assert arbs["Fair"]["fairness_index"] == pytest.approx(1.0,
                                                               abs=0.02)
        assert (arbs["maxSTP"]["fairness_index"]
                < arbs["SC-MPKI-fair"]["fairness_index"])

    def test_sc_mpki_fair_caps_at_share(self):
        result = fig12_fair_share.run()
        fair = result["arbitrators"]["SC-MPKI-fair"]
        assert fair["max_share"] <= 1 / 8 + 0.12


class TestFig14:
    def test_mirage_beats_area_neutral_traditional(self):
        result = fig14_area_neutral.run(n_mixes=2)
        assert result["mirage_8_1"]["stp"] > result["trad_5_3"]["stp"]
        assert result["mirage_8_1"]["energy"] < result["trad_5_3"]["energy"]
        assert result["mirage_8_1"]["area"] == pytest.approx(
            result["trad_5_3"]["area"], abs=0.12)


class TestFig15:
    def test_transfer_overhead_tiny(self):
        result = fig15_migration.run(n_mixes=4)
        assert result["overall_transfer_frac"] < 0.01  # paper: 0.15 %


class TestHeadline:
    def test_abstract_numbers(self):
        r = headline.run(n_mixes=4)
        assert 0.70 <= r["performance_vs_homo_ooo"] <= 0.95
        assert r["gain_vs_traditional"] > 0.05
        assert 0.30 <= r["energy_vs_homo_ooo"] <= 0.60
        assert r["area_vs_homo_ooo"] == pytest.approx(0.74, abs=0.02)

    def test_ooo_saturates_by_12(self):
        r = headline.run(n_mixes=3)
        util = r["ooo_utilization_by_n"]
        assert util[12] > 0.9 or util[16] > 0.9
