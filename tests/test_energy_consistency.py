"""Cross-tier energy consistency.

The interval tier charges energy through per-instruction constants
(``CoreEnergyModel.EPI_PJ``); the detailed tier counts structure
events.  They must stay in a sane relationship: the committed-work
measurement bounds the constant from below (the constant additionally
covers wrong-path work the event counts omit), and never exceeds it by
much.
"""

import pytest

from repro.cores import InOrderCore, OinOCore, OutOfOrderCore
from repro.energy import CoreEnergyModel
from repro.memory import MemoryHierarchy
from repro.schedule import ScheduleCache, ScheduleRecorder
from repro.workloads import make_benchmark

SAMPLE = ("hmmer", "bzip2", "libquantum", "gobmk")
N = 15_000


@pytest.fixture(scope="module")
def measured_epi():
    em = CoreEnergyModel()
    totals = {"ooo": [0.0, 0], "ino": [0.0, 0], "oino": [0.0, 0]}
    for name in SAMPLE:
        bench = make_benchmark(name, seed=2)
        sc = ScheduleCache(None)
        rec = ScheduleRecorder(sc)
        runs = {
            "ooo": OutOfOrderCore(
                MemoryHierarchy().core_view(0), recorder=rec
            ).run(bench.stream(), N),
            "ino": InOrderCore(MemoryHierarchy().core_view(1)).run(
                bench.stream(), N),
            "oino": OinOCore(MemoryHierarchy().core_view(2), sc).run(
                bench.stream(), N),
        }
        for kind, result in runs.items():
            bd = em.breakdown(kind, result.energy_events, result.cycles)
            totals[kind][0] += bd.dynamic_total_pj
            totals[kind][1] += result.instructions
    return {kind: pj / n for kind, (pj, n) in totals.items()}


class TestEPIConsistency:
    def test_interval_constants_cover_committed_work(self, measured_epi):
        em = CoreEnergyModel()
        for kind, measured in measured_epi.items():
            constant = em.EPI_PJ[kind]
            # Constant >= committed-work measurement (it also covers
            # wrong-path waste), but within 2x of it.
            assert constant >= measured * 0.9, (kind, measured)
            assert constant <= measured * 2.0, (kind, measured)

    def test_epi_ordering_matches_tiers(self, measured_epi):
        assert (measured_epi["ooo"] > measured_epi["oino"]
                >= measured_epi["ino"] * 0.95)

    def test_oino_premium_over_ino(self, measured_epi):
        """OinO-mode structures make replayed instructions cost more
        than plain InO instructions (paper: +14 % PRF, +5.5 % LSQ,
        SC fetches)."""
        assert measured_epi["oino"] > measured_epi["ino"]
