"""Suite-wide parametrized sanity checks: every benchmark, every
arbitrator, every experiment driver behaves."""

import itertools

import pytest

from repro.experiments.common import ARBITRATORS
from repro.workloads import ALL_BENCHMARKS, get_profile, make_benchmark


@pytest.mark.parametrize("name", ALL_BENCHMARKS)
class TestEveryBenchmark:
    def test_stream_generates(self, name):
        bench = make_benchmark(name, seed=0)
        insns = list(itertools.islice(bench.stream(), 2_000))
        assert len(insns) == 2_000
        assert all(i.pc % 4 == 0 for i in insns)

    def test_traces_exist(self, name):
        bench = make_benchmark(name, seed=0)
        insns = itertools.islice(bench.stream(), 4_000)
        assert any(i.is_backward_branch for i in insns)

    def test_profile_sanity(self, name):
        prof = get_profile(name)
        assert 0.0 <= prof.target_memoizable <= 1.0
        assert 0.0 < prof.target_ipc_ooo <= 3.0
        assert 0.0 <= prof.schedule_volatility <= 1.0
        assert prof.body_len >= 8
        assert 0.0 <= prof.mem_frac <= 0.7

    def test_analytic_model_builds(self, name):
        from repro.characterize import analytic_model
        model = analytic_model(name)
        assert all(p.ipc_ooo > 0 for p in model.phases)
        assert all(0 <= p.memoizable <= 1 for p in model.phases)


@pytest.mark.parametrize("arb_name", sorted(ARBITRATORS))
class TestEveryArbitrator:
    def test_runs_a_small_mix(self, arb_name):
        from repro.experiments.common import run_mix
        from repro.workloads import standard_mixes
        mix = standard_mixes(4, seed=99)[0]
        result = run_mix(mix, arb_name)
        assert result.intervals > 0
        assert len(result.speedups) == 4
        assert 0.0 <= result.ooo_active_fraction <= 1.0

    def test_fresh_instances_are_independent(self, arb_name):
        a = ARBITRATORS[arb_name]()
        b = ARBITRATORS[arb_name]()
        assert a is not b
        assert a.name == b.name
