"""Tests for the experiment service (repro.service).

Covers the queue, coalescing-through-the-cache, heartbeat eviction
and requeue, worker SIGKILL recovery, graceful drain, journal replay
after a simulated crash, the HTTP client round-trip, and the
end-to-end byte-identity of streamed results against a direct
SweepRunner execution.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import threading
import time

import pytest

from repro.config import CacheConfig, ServiceConfig
from repro.runner.cache import encode_payload
from repro.runner.executor import SweepRunner
from repro.service import (
    ServerHandle,
    ServiceClient,
    ServiceError,
    SubmitRequest,
    discover,
)
from repro.service.jobs import Job, JobQueue, UnitTask
from repro.service.journal import Journal, replay
from repro.service.protocol import (
    decompose,
    dump_message,
    load_message,
    unit_from_dict,
    unit_to_dict,
)
from repro.service.worker import run_worker
from repro.runner.units import call_unit

@pytest.fixture(autouse=True)
def _restore_mirage_env():
    """Server startup exports cache env vars; keep them test-local."""
    keys = ("MIRAGE_CACHE_DIR", "MIRAGE_SIM_CACHE",
            "MIRAGE_SIM_CACHE_DISK", "MIRAGE_SERVICE_DIR")
    saved = {key: os.environ.get(key) for key in keys}
    yield
    for key, value in saved.items():
        if value is None:
            os.environ.pop(key, None)
        else:
            os.environ[key] = value


ECHO = "repro.service.protocol:echo_unit"
SLEEP = "repro.service.protocol:sleep_unit"
FLAKY = "repro.service.protocol:flaky_unit"


def _config(tmp_path, **kwargs) -> ServiceConfig:
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("service_dir", tmp_path / "svc")
    kwargs.setdefault("cache", CacheConfig(
        cache_dir=str(tmp_path / "cache"), use_result_cache=True))
    return ServiceConfig(**kwargs)


def _echo_request(tag: str, **kwargs) -> SubmitRequest:
    return SubmitRequest(target=ECHO, kwargs=(("tag", tag),), **kwargs)


def _wait_for(predicate, timeout=20.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    raise AssertionError(f"timed out waiting for {message}")


# ----------------------------------------------------------------------
# Queue ordering
# ----------------------------------------------------------------------
def _task(digest, priority=0, seq=0):
    return UnitTask(digest=digest, unit=call_unit(ECHO, tag=digest),
                    priority=priority, seq=seq)


def test_queue_orders_by_priority_then_submission():
    queue = JobQueue()
    queue.push(_task("low", priority=0, seq=1))
    queue.push(_task("high", priority=5, seq=2))
    queue.push(_task("mid", priority=2, seq=3))
    queue.push(_task("tie", priority=5, seq=4))
    assert [queue.pop() for _ in range(4)] == [
        "high", "tie", "mid", "low"]
    assert queue.pop() is None


def test_queue_requeue_keeps_original_seq():
    queue = JobQueue()
    evicted = _task("evicted", seq=1)
    queue.push(evicted)
    queue.push(_task("later", seq=2))
    assert queue.pop() == "evicted"
    queue.push(evicted)            # requeue after a worker died
    assert queue.pop() == "evicted"   # still ahead of "later"
    assert queue.pop() == "later"


def test_queue_discard_and_shadowed_entries():
    queue = JobQueue()
    task = _task("a", priority=0, seq=1)
    queue.push(task)
    task.priority = 9
    queue.push(task)               # shadows the stale heap entry
    assert len(queue) == 1
    assert queue.pop() == "a"
    assert queue.pop() is None     # the stale entry is skipped
    queue.push(task)
    queue.discard("a")
    assert queue.pop() is None


def test_units_done_counts_duplicate_units():
    """A job whose decomposition repeats a unit still reports
    units_done == units_total on completion (results are keyed by
    digest, digests may repeat)."""
    unit = call_unit(ECHO, tag="dup")
    job = Job(job_id="j1", request=SubmitRequest(target=ECHO),
              digests=["d", "d"], units=[unit, unit])
    assert (job.units_total, job.units_done) == (2, 0)
    job.results["d"] = {"kind": "json", "payload": 1}
    assert job.units_done == 2
    assert job.info()["units_done"] == job.info()["units_total"] == 2


# ----------------------------------------------------------------------
# Protocol round-trips
# ----------------------------------------------------------------------
def test_unit_dict_round_trip_preserves_digest(tmp_path):
    from repro.runner.cache import ResultCache

    cache = ResultCache(tmp_path / "cache")
    from repro.service.protocol import unit_digest

    unit = call_unit(ECHO, tag="x", value=3)
    again = unit_from_dict(json.loads(json.dumps(unit_to_dict(unit))))
    assert again == unit
    assert unit_digest(cache, again) == unit_digest(cache, unit)


def test_decompose_validates_names():
    with pytest.raises(ValueError, match="unknown experiment"):
        decompose(SubmitRequest(experiments=("nope",)))
    with pytest.raises(ValueError, match="nothing to run"):
        decompose(SubmitRequest())
    units = decompose(SubmitRequest(experiments=("all",), quick=True))
    from repro.experiments import EXPERIMENTS

    assert len(units) == len(EXPERIMENTS)
    assert all(u.kind == "call" for u in units)


# ----------------------------------------------------------------------
# Journal
# ----------------------------------------------------------------------
def test_journal_replay_tolerates_truncation(tmp_path):
    path = tmp_path / "journal.jsonl"
    journal = Journal(path)
    journal.append({"event": "submit", "id": "j1", "seq": 1,
                    "priority": 2, "request": {}, "units": [],
                    "digests": ["d1"]})
    journal.append({"event": "submit", "id": "j2", "seq": 2,
                    "request": {}, "units": [], "digests": ["d2"]})
    journal.append({"event": "state", "id": "j1", "state": "done"})
    journal.close()
    with path.open("a") as handle:
        handle.write('{"event": "state", "id": "j2", "sta')  # crash
    state = replay(path)
    assert state.max_job_number == 2
    assert state.max_seq == 2
    assert state.jobs["j1"].state == "done"
    assert [j.job_id for j in state.unfinished()] == ["j2"]


# ----------------------------------------------------------------------
# Server integration (in-process, real worker subprocesses)
# ----------------------------------------------------------------------
def test_client_round_trip_and_errors(tmp_path):
    handle = ServerHandle.start(_config(tmp_path))
    try:
        client = ServiceClient(service_dir=tmp_path / "svc")
        assert discover(tmp_path / "svc") == handle.address
        health = client.health()
        assert health["ok"] and health["version"]
        response = client.submit(_echo_request("round-trip"))
        job_id = response["job"]["id"]
        assert response["coalesced"] is False
        assert client.result(job_id, timeout=60) == [
            {"value": None, "tag": "round-trip"}]
        assert client.job(job_id)["state"] == "done"
        assert any(j["id"] == job_id for j in client.jobs())
        with pytest.raises(ServiceError, match="no job"):
            client.job("j999")
        with pytest.raises(ServiceError, match="unknown experiment"):
            client.submit(SubmitRequest(experiments=("nope",)))
    finally:
        handle.stop(drain=False)


def test_concurrent_identical_submissions_coalesce(tmp_path):
    handle = ServerHandle.start(_config(tmp_path, workers=2))
    try:
        client = ServiceClient(service_dir=tmp_path / "svc")
        request = SubmitRequest(target=SLEEP, args=(0.8,))
        first = client.submit(request)
        second = client.submit(request)
        assert second["coalesced"] is True
        assert second["job"]["id"] == first["job"]["id"]
        assert second["job"]["submissions"] == 2
        job_id = first["job"]["id"]
        assert client.result(job_id, timeout=60) == [{"slept": 0.8}]
        stats = client.health()["stats"]
        assert stats["executions"] == 1      # one execution for both
        assert stats["coalesced"] == 1
        # A third, later identical submission is a pure cache hit.
        third = client.submit(request)
        assert third["job"]["id"] != job_id
        assert third["job"]["state"] == "done"
        assert client.health()["stats"]["executions"] == 1
    finally:
        handle.stop(drain=False)


def test_heartbeat_timeout_evicts_and_requeues(tmp_path):
    config = _config(tmp_path, workers=0, heartbeat_interval=0.1,
                     heartbeat_timeout=0.6)
    handle = ServerHandle.start(config)
    try:
        host, port = handle.address
        token = json.loads(
            (tmp_path / "svc" / "server.json").read_text())["token"]
        client = ServiceClient(service_dir=tmp_path / "svc")
        job_id = client.submit(_echo_request("evict-me"))["job"]["id"]

        # A scripted worker: registers, takes the unit, then goes
        # silent (no heartbeats) while "executing" forever.
        sock = socket.create_connection((host, port))
        sock.sendall((dump_message(
            {"type": "hello", "worker_id": "fake", "token": token,
             "pid": 0}) + "\n").encode())
        reader = sock.makefile("r")
        run_message = load_message(reader.readline())
        assert run_message["type"] == "run"

        _wait_for(lambda: client.health()["stats"]["evictions"] >= 1,
                  message="eviction")
        stats = client.health()["stats"]
        assert stats["requeues"] >= 1
        sock.close()

        # A healthy worker picks the requeued unit up and finishes it.
        thread = threading.Thread(
            target=run_worker, args=(host, port, "healthy", token),
            kwargs={"heartbeat_interval": 0.1}, daemon=True)
        thread.start()
        record = client.wait(job_id, timeout=30)
        assert record["event"] == "done"
        events = [r["event"] for r in client.tail(job_id, timeout=10)]
        assert "requeued" in events
    finally:
        handle.stop(drain=False)


def test_sigkilled_worker_job_requeues_and_completes(tmp_path):
    flag = tmp_path / "flaky.flag"
    config = _config(tmp_path, workers=2, heartbeat_interval=0.1,
                     heartbeat_timeout=0.8)
    handle = ServerHandle.start(config)
    try:
        client = ServiceClient(service_dir=tmp_path / "svc")
        request = SubmitRequest(
            target=FLAKY, args=(str(flag),), kwargs=(("sleep_s", 60.0),))
        job_id = client.submit(request)["job"]["id"]
        # The flag file appears once a worker is inside the unit.
        _wait_for(flag.exists, message="first execution to start")
        busy = [w for w in client.health()["workers"]
                if w["state"] == "busy"]
        assert busy, "a worker should be executing the unit"
        os.kill(busy[0]["pid"], signal.SIGKILL)
        record = client.wait(job_id, timeout=60)
        assert record["event"] == "done"
        payload = record["payload"]["results"][0]
        assert payload["value"] == {"attempt": "retry"}
        stats = client.health()["stats"]
        assert stats["requeues"] >= 1
        assert stats["respawns"] >= 1
    finally:
        handle.stop(drain=False)


def test_large_result_payload_round_trips(tmp_path):
    """Worker result lines bigger than asyncio's default 64 KiB
    stream limit survive the JSONL protocol (the listener runs with
    PROTOCOL_LINE_LIMIT)."""
    handle = ServerHandle.start(_config(tmp_path))
    try:
        client = ServiceClient(service_dir=tmp_path / "svc")
        big = "x" * 300_000          # ~300 KB once JSON-encoded
        request = SubmitRequest(
            target=ECHO, kwargs=(("tag", "big"), ("value", big)))
        job_id = client.submit(request)["job"]["id"]
        assert client.result(job_id, timeout=60) == [
            {"value": big, "tag": "big"}]
    finally:
        handle.stop(drain=False)


def test_oversized_result_line_fails_unit_not_loop(tmp_path,
                                                   monkeypatch):
    """A result line beyond PROTOCOL_LINE_LIMIT fails the unit (and
    its jobs) instead of evict/requeue-looping forever."""
    import repro.service.server as server_mod

    monkeypatch.setattr(server_mod, "PROTOCOL_LINE_LIMIT", 2048)
    handle = ServerHandle.start(_config(tmp_path))
    try:
        client = ServiceClient(service_dir=tmp_path / "svc")
        request = SubmitRequest(
            target=ECHO, kwargs=(("tag", "huge"), ("value", "y" * 8192)))
        job_id = client.submit(request)["job"]["id"]
        record = client.wait(job_id, timeout=60)
        assert record["event"] == "failed"
        assert "protocol limit" in record["detail"]
        # The server survives and keeps serving.
        assert client.health()["ok"]
        assert client.job(job_id)["state"] == "failed"
    finally:
        handle.stop(drain=False)


def test_graceful_drain_finishes_accepted_work(tmp_path):
    handle = ServerHandle.start(_config(tmp_path, workers=1))
    client = ServiceClient(service_dir=tmp_path / "svc")
    request = SubmitRequest(target=SLEEP, args=(0.6,))
    job_id = client.submit(request)["job"]["id"]
    client.shutdown(drain=True)
    # Draining servers refuse new work immediately...
    _wait_for(lambda: handle.server._draining, timeout=5,
              message="drain flag")
    with pytest.raises(ServiceError):
        client.submit(_echo_request("rejected"))
    # ...but finish what they accepted before stopping.
    _wait_for(handle.server._stopped.is_set, timeout=30,
              message="drained shutdown")
    job = handle.server.jobs[job_id]
    assert job.state == "done"
    assert not (tmp_path / "svc" / "server.json").exists()
    handle._teardown()


def test_drain_respawns_dead_worker_and_finishes(tmp_path):
    """Losing the only worker mid-drain must not strand the queue:
    respawn stays on while draining (only _stopping suppresses it),
    so the drain completes instead of spinning out its timeout."""
    flag = tmp_path / "flaky.flag"
    config = _config(tmp_path, workers=1, heartbeat_interval=0.1,
                     heartbeat_timeout=0.8, drain_timeout=60.0)
    handle = ServerHandle.start(config)
    client = ServiceClient(service_dir=tmp_path / "svc")
    request = SubmitRequest(
        target=FLAKY, args=(str(flag),), kwargs=(("sleep_s", 60.0),))
    job_id = client.submit(request)["job"]["id"]
    _wait_for(flag.exists, message="first execution to start")
    busy = [w for w in client.health()["workers"]
            if w["state"] == "busy"]
    assert busy, "a worker should be executing the unit"
    client.shutdown(drain=True)
    _wait_for(lambda: handle.server._draining, timeout=5,
              message="drain flag")
    os.kill(busy[0]["pid"], signal.SIGKILL)
    # The respawned worker retries the unit (fast path: flag exists),
    # and the drain finishes well before its 60 s budget.
    _wait_for(handle.server._stopped.is_set, timeout=40,
              message="drained shutdown after worker loss")
    job = handle.server.jobs[job_id]
    assert job.state == "done"
    assert handle.server.stats["respawns"] >= 1
    handle._teardown()


def test_non_loopback_bind_requires_token_for_mutations(tmp_path):
    """POST /jobs executes arbitrary call targets, so a non-loopback
    bind demands the session token; reads stay open."""
    config = _config(tmp_path, workers=0, host="0.0.0.0")
    handle = ServerHandle.start(config)
    try:
        port = handle.address[1]
        token = json.loads(
            (tmp_path / "svc" / "server.json").read_text())["token"]
        # Explicit address, no service dir: the client has no token.
        anon = ServiceClient(address=("127.0.0.1", port))
        assert anon.token == ""
        assert anon.health()["ok"]               # reads stay open
        assert anon.jobs() == []
        with pytest.raises(ServiceError, match="session token"):
            anon.submit(_echo_request("forbidden"))
        with pytest.raises(ServiceError, match="session token"):
            anon.shutdown()
        # The token (explicit or discovered) unlocks mutations.
        authed = ServiceClient(address=("127.0.0.1", port), token=token)
        assert authed.submit(_echo_request("ok-explicit"))["job"]["id"]
        discovered = ServiceClient(service_dir=tmp_path / "svc",
                                   address=("127.0.0.1", port))
        assert discovered.token == token
        assert discovered.submit(_echo_request("ok-found"))["job"]["id"]
    finally:
        handle.stop(drain=False)


def test_truncated_http_request_is_harmless(tmp_path):
    """A client that advertises Content-Length then hangs up must not
    wedge the server (readexactly's IncompleteReadError is handled)."""
    handle = ServerHandle.start(_config(tmp_path, workers=0))
    try:
        host, port = handle.address
        sock = socket.create_connection((host, port))
        sock.sendall(b"POST /jobs HTTP/1.1\r\n"
                     b"Content-Length: 500\r\n\r\nshort")
        sock.close()
        client = ServiceClient(service_dir=tmp_path / "svc")
        assert client.health()["ok"]
    finally:
        handle.stop(drain=False)


def test_journal_replay_after_crash_resubmits(tmp_path):
    # Server A accepts a job but has no workers: nothing executes.
    config_a = _config(tmp_path, workers=0)
    handle_a = ServerHandle.start(config_a)
    client = ServiceClient(service_dir=tmp_path / "svc")
    job_id = client.submit(_echo_request("survive"))["job"]["id"]
    assert client.job(job_id)["state"] == "queued"
    handle_a.abort()               # simulated crash: no finalization

    # Server B replays the journal and runs the job to completion.
    handle_b = ServerHandle.start(_config(tmp_path, workers=1))
    try:
        client = ServiceClient(service_dir=tmp_path / "svc")
        record = client.wait(job_id, timeout=60)
        assert record["event"] == "done"
        # Replayed history (including the original queued record) is
        # visible to late tails, and the id counter moved on.
        events = [r["event"] for r in client.tail(job_id, timeout=10)]
        assert events[0] == "queued"
        assert "requeued" in events
        new_id = client.submit(_echo_request("after"))["job"]["id"]
        assert int(new_id[1:]) > int(job_id[1:])
    finally:
        handle_b.stop(drain=False)


def test_streamed_result_matches_direct_sweeprunner(tmp_path):
    """The ISSUE's e2e identity: the streamed JSONL result payload is
    byte-identical to the same units run directly through
    SweepRunner."""
    request = SubmitRequest(
        experiments=("table1",), quick=True, n_mixes=2, seed=7)
    units = decompose(request)

    handle = ServerHandle.start(_config(tmp_path, workers=2))
    try:
        client = ServiceClient(service_dir=tmp_path / "svc")
        job_id = client.submit(request)["job"]["id"]
        record = client.wait(job_id, timeout=600)
        assert record["event"] == "done"
        streamed = record["payload"]["results"]
    finally:
        handle.stop(drain=False)

    direct = [encode_payload(result)
              for result in SweepRunner(experiment="service").map(units)]
    canonical = dict(separators=(",", ":"), sort_keys=True)
    assert (json.dumps(streamed, **canonical)
            == json.dumps(direct, **canonical))
