"""Tests for the SimPoint-style phase analysis."""

import itertools

import pytest

from repro.workloads import make_benchmark
from repro.workloads.simpoints import (
    basic_block_vectors,
    find_simpoints,
    pick_simpoint,
)


class TestBBV:
    def test_window_counts_sum_to_window_size(self):
        bench = make_benchmark("hmmer", seed=3)
        matrix, _pcs = basic_block_vectors(
            bench.stream(), window_size=5_000, max_windows=4)
        assert matrix.shape[0] == 4
        assert matrix.sum(axis=1).tolist() == [5_000.0] * 4

    def test_blocks_are_pc_identified(self):
        bench = make_benchmark("gcc", seed=3)
        matrix, pcs = basic_block_vectors(
            bench.stream(), window_size=4_000, max_windows=3)
        assert matrix.shape[1] == len(pcs)
        assert len(set(pcs)) == len(pcs)

    def test_short_stream_yields_no_windows(self):
        bench = make_benchmark("hmmer", seed=3)
        stream = itertools.islice(bench.stream(), 100)
        matrix, _ = basic_block_vectors(stream, window_size=5_000)
        assert matrix.shape[0] == 0


class TestSimPoints:
    def test_weights_sum_to_one(self):
        bench = make_benchmark("bzip2", seed=3)
        sps = find_simpoints(bench.stream(), window_size=5_000,
                             max_windows=30, k=4)
        assert sps
        assert sum(s.weight for s in sps) == pytest.approx(1.0)

    def test_deterministic(self):
        bench = make_benchmark("bzip2", seed=3)
        a = find_simpoints(bench.stream(), window_size=5_000,
                           max_windows=20, k=3)
        b = find_simpoints(bench.stream(), window_size=5_000,
                           max_windows=20, k=3)
        assert a == b

    def test_phased_benchmark_yields_multiple_clusters(self):
        # bzip2 has 6 distinct phases; the windows must not all land
        # in one cluster.
        bench = make_benchmark("bzip2", seed=3)
        sps = find_simpoints(bench.stream(), window_size=10_000,
                             max_windows=40, k=5)
        assert len(sps) >= 2

    def test_pick_returns_heaviest(self):
        bench = make_benchmark("gcc", seed=3)
        sps = find_simpoints(bench.stream(), window_size=5_000,
                             max_windows=20, k=3)
        top = pick_simpoint(bench.stream(), window_size=5_000,
                            max_windows=20, k=3)
        assert top.weight == max(s.weight for s in sps)

    def test_pick_raises_on_tiny_stream(self):
        bench = make_benchmark("gcc", seed=3)
        with pytest.raises(ValueError):
            pick_simpoint(itertools.islice(bench.stream(), 50),
                          window_size=5_000)

    def test_representative_window_in_range(self):
        bench = make_benchmark("hmmer", seed=3)
        top = pick_simpoint(bench.stream(), window_size=5_000,
                            max_windows=12, k=3)
        assert 0 <= top.window_index < 12
        assert top.start_instruction == top.window_index * 5_000
