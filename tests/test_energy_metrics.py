"""Unit tests for the energy/area model and scheduling metrics."""

import pytest

from repro.cores.base import EnergyEvents
from repro.energy import CoreEnergyModel, cmp_area, core_area
from repro.energy.model import AREA_UNITS
from repro.metrics import (
    delta_sc_mpki,
    fairness_index,
    speedup,
    system_throughput,
    util_share,
)


class TestEnergyModel:
    def test_breakdown_sums(self):
        em = CoreEnergyModel()
        events = EnergyEvents()
        events.bump("fetch", 100)
        events.bump("int_alu", 50)
        bd = em.breakdown("ino", events, cycles=100)
        assert bd.dynamic_total_pj == pytest.approx(
            100 * em.dynamic_pj["fetch"] + 50 * em.dynamic_pj["int_alu"])
        assert bd.leakage_pj == pytest.approx(100 * em.leakage["ino"])
        assert bd.total_pj == bd.dynamic_total_pj + bd.leakage_pj

    def test_unknown_structure_raises(self):
        em = CoreEnergyModel()
        events = EnergyEvents()
        events.bump("mystery", 1)
        with pytest.raises(KeyError):
            em.breakdown("ino", events, 10)

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            CoreEnergyModel().breakdown("gpu", EnergyEvents(), 10)

    def test_oino_leaks_more_than_ino(self):
        em = CoreEnergyModel()
        e = EnergyEvents()
        ino = em.breakdown("ino", e, 1000)
        oino = em.breakdown("oino", e, 1000)
        assert oino.leakage_pj > ino.leakage_pj
        # SC leakage is ~10 % of InO leakage (paper claims ~10 %).
        assert (oino.leakage_pj - ino.leakage_pj) / ino.leakage_pj < 0.5

    def test_merged_breakdowns(self):
        em = CoreEnergyModel()
        e1, e2 = EnergyEvents(), EnergyEvents()
        e1.bump("fetch", 10)
        e2.bump("fetch", 5)
        e2.bump("decode", 5)
        merged = em.breakdown("ino", e1, 10).merged(
            em.breakdown("ino", e2, 10))
        assert merged.dynamic_pj["fetch"] == pytest.approx(
            15 * em.dynamic_pj["fetch"])

    def test_interval_power_ordering(self):
        """At equal IPC: OoO burns most, OinO between, InO least."""
        em = CoreEnergyModel()
        p_ooo = em.interval_power("ooo", 1.0)
        p_oino = em.interval_power("oino", 1.0)
        p_ino = em.interval_power("ino", 1.0)
        assert p_ooo > p_oino > p_ino

    def test_paper_power_ratio_ino_vs_ooo(self):
        """InO ~1/5 of OoO power at the respective typical IPCs."""
        em = CoreEnergyModel()
        p_ooo = em.interval_power("ooo", 1.4)
        p_ino = em.interval_power("ino", 0.75)
        assert 3.5 < p_ooo / p_ino < 7.5

    def test_power_zero_cycles(self):
        em = CoreEnergyModel()
        bd = em.breakdown("ino", EnergyEvents(), 0)
        assert bd.power_pw_per_cycle(0) == 0.0


class TestArea:
    def test_relative_core_areas(self):
        assert core_area("ino") == 1.0
        assert core_area("ino") < core_area("oino") < core_area("ooo")
        # Paper: InO is less than half the OoO's area.
        assert core_area("ino") / core_area("ooo") < 0.5

    def test_mirage_8_1_is_about_74_percent(self):
        mirage = cmp_area(8, 1, mirage=True)
        homo = 8 * AREA_UNITS["ooo"]
        assert mirage / homo == pytest.approx(0.74, abs=0.02)

    def test_traditional_4_1_adds_55_percent_over_homo_ino(self):
        trad = cmp_area(4, 1, mirage=False)
        homo_ino = 4 * AREA_UNITS["ino"]
        assert trad / homo_ino == pytest.approx(1.55, abs=0.03)

    def test_oino_mode_adds_about_23_percent(self):
        mirage = cmp_area(4, 1, mirage=True)
        trad = cmp_area(4, 1, mirage=False)
        assert mirage / trad == pytest.approx(1.23, abs=0.03)


class TestMetrics:
    def test_speedup_basic(self):
        assert speedup(0.5, 1.0) == 0.5
        assert speedup(1.0, 0.0) == 1.0   # guarded division

    def test_stp_is_mean(self):
        assert system_throughput([1.0, 0.5]) == 0.75
        assert system_throughput([]) == 0.0

    def test_delta_sc_mpki_equation(self):
        assert delta_sc_mpki(20.0, 10.0) == pytest.approx(1.0)
        assert delta_sc_mpki(10.0, 10.0) == pytest.approx(0.0)

    def test_delta_sc_mpki_floor_guard(self):
        # Highly memoizable phase: producer MPKI near zero.
        assert delta_sc_mpki(5.0, 0.0, floor=0.1) == pytest.approx(50.0)

    def test_util_share_counts_memoized_time(self):
        # Eq 3: memoized InO time counts toward the OoO share.
        plain = util_share(10.0, 0.0, 0.9, 100.0)
        memoized = util_share(10.0, 50.0, 0.9, 100.0)
        assert memoized > plain
        assert memoized == pytest.approx((10 + 45) / 100)

    def test_util_share_zero_time(self):
        assert util_share(1.0, 1.0, 1.0, 0.0) == 0.0

    def test_fairness_index_bounds(self):
        assert fairness_index([0.25] * 4) == pytest.approx(1.0)
        skewed = fairness_index([1.0, 0.0, 0.0, 0.0])
        assert skewed == pytest.approx(0.25)
        assert fairness_index([]) == 1.0
        assert fairness_index([0.0, 0.0]) == 1.0
