"""Unit tests for the five runtime arbitrators."""

import pytest

from repro.arbiter import (
    AppView,
    FairArbitrator,
    MaxSTPArbitrator,
    SCMPKIArbitrator,
    SCMPKIFairArbitrator,
    SCMPKIMaxSTPArbitrator,
)


def view(index, *, ipc=0.8, ipc_ooo=1.0, mpki_ino=2.0, mpki_ooo=2.0,
         since=50, util=0.1, on_ooo=False, name=None):
    return AppView(
        index=index, name=name or f"app{index}", ipc_current=ipc,
        ipc_ooo_last=ipc_ooo, sc_mpki_ino=mpki_ino, sc_mpki_ooo=mpki_ooo,
        intervals_since_ooo=since, util=util, on_ooo=on_ooo,
    )


class TestAppView:
    def test_speedup(self):
        assert view(0, ipc=0.5, ipc_ooo=1.0).speedup == 0.5

    def test_speedup_unsampled_is_zero(self):
        v = view(0)
        object.__setattr__ if False else None
        unsampled = AppView(index=0, name="x", ipc_current=0.5,
                            ipc_ooo_last=None, sc_mpki_ino=1.0,
                            sc_mpki_ooo=None, intervals_since_ooo=99,
                            util=0.0, on_ooo=False)
        assert unsampled.speedup == 0.0
        assert unsampled.delta_sc_mpki == float("inf")

    def test_delta_sc_mpki(self):
        assert view(0, mpki_ino=6.0, mpki_ooo=2.0).delta_sc_mpki == \
            pytest.approx(2.0)


class TestSCMPKI:
    def test_picks_highest_staleness(self):
        arb = SCMPKIArbitrator(threshold=0.5)
        views = [
            view(0, mpki_ino=2.1, mpki_ooo=2.0),   # fresh
            view(1, mpki_ino=20.0, mpki_ooo=2.0),  # stale: delta 9
            view(2, mpki_ino=6.0, mpki_ooo=2.0),   # delta 2
        ]
        assert arb.pick(views, interval_index=0) == [1]

    def test_gates_when_nothing_qualifies(self):
        arb = SCMPKIArbitrator(threshold=0.5, starvation_intervals=10**6)
        views = [view(i, mpki_ino=2.0, mpki_ooo=2.0) for i in range(4)]
        assert arb.pick(views, interval_index=0) == []

    def test_decay_suppresses_recent_switcher(self):
        arb = SCMPKIArbitrator(threshold=0.5, decay_strength=8.0)
        recently = view(0, mpki_ino=20.0, mpki_ooo=2.0, since=1)
        long_ago = view(1, mpki_ino=12.0, mpki_ooo=2.0, since=100)
        assert arb.pick([recently, long_ago], interval_index=0) == [1]

    def test_intrinsically_unmemoizable_avoided(self):
        """astar-like: both MPKIs high, ratio near zero -> not picked."""
        arb = SCMPKIArbitrator(threshold=0.5, starvation_intervals=10**6)
        astar = view(0, mpki_ino=19.0, mpki_ooo=18.0)
        assert arb.pick([astar], interval_index=0) == []

    def test_starvation_forces_sampling(self):
        arb = SCMPKIArbitrator(threshold=0.5, starvation_intervals=100)
        starved = view(0, mpki_ino=2.0, mpki_ooo=2.0, since=150)
        assert arb.pick([starved], interval_index=0) == [0]

    def test_never_sampled_app_wins(self):
        arb = SCMPKIArbitrator()
        fresh = view(0, mpki_ino=20.0, mpki_ooo=2.0)
        never = AppView(index=1, name="new", ipc_current=0.5,
                        ipc_ooo_last=None, sc_mpki_ino=5.0,
                        sc_mpki_ooo=None, intervals_since_ooo=10**9,
                        util=0.0, on_ooo=False)
        picked = arb.pick([fresh, never], interval_index=0)
        assert picked[0] == 1

    def test_multi_slot(self):
        arb = SCMPKIArbitrator(threshold=0.5)
        views = [view(i, mpki_ino=20.0 - i, mpki_ooo=2.0)
                 for i in range(4)]
        picked = arb.pick(views, interval_index=0, slots=2)
        assert picked == [0, 1]


class TestMaxSTP:
    def test_picks_slowest(self):
        arb = MaxSTPArbitrator(sample_every=10**6)
        views = [view(0, ipc=0.9), view(1, ipc=0.3), view(2, ipc=0.6)]
        assert arb.pick(views, interval_index=0) == [1]

    def test_never_gates(self):
        arb = MaxSTPArbitrator()
        views = [view(0, ipc=0.99)]
        assert arb.pick(views, interval_index=0) == [0]

    def test_forced_sampling_beats_slowness(self):
        arb = MaxSTPArbitrator(sample_every=50)
        slow = view(0, ipc=0.2, since=5)
        stale = view(1, ipc=0.9, since=60)
        assert arb.pick([slow, stale], interval_index=0) == [1]

    def test_multi_slot_fills_producers(self):
        arb = MaxSTPArbitrator(sample_every=10**6)
        views = [view(i, ipc=0.1 * (i + 1)) for i in range(5)]
        assert arb.pick(views, interval_index=0, slots=3) == [0, 1, 2]


class TestSCMPKIMaxSTP:
    def test_prefers_memoizable_slow_app(self):
        arb = SCMPKIMaxSTPArbitrator(threshold=0.5)
        views = [
            view(0, ipc=0.5, mpki_ino=20.0, mpki_ooo=2.0),
            view(1, ipc=0.4, mpki_ino=2.0, mpki_ooo=2.0),
        ]
        assert arb.pick(views, interval_index=0) == [0]

    def test_falls_back_to_slowest_and_never_gates(self):
        arb = SCMPKIMaxSTPArbitrator(threshold=0.5)
        views = [view(0, ipc=0.9, mpki_ino=2.0),
                 view(1, ipc=0.3, mpki_ino=2.0)]
        assert arb.pick(views, interval_index=0) == [1]


class TestFair:
    def test_round_robin_order(self):
        arb = FairArbitrator()
        views = [view(i) for i in range(3)]
        picks = [arb.pick(views, interval_index=k)[0] for k in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_reset(self):
        arb = FairArbitrator()
        views = [view(i) for i in range(3)]
        arb.pick(views, interval_index=0)
        arb.reset()
        assert arb.pick(views, interval_index=1) == [0]

    def test_empty_views(self):
        assert FairArbitrator().pick([], interval_index=0) == []


class TestSCMPKIFair:
    def test_skips_app_meeting_share_via_memoization(self):
        arb = SCMPKIFairArbitrator(threshold=0.5)
        served = view(0, util=0.6, mpki_ino=2.0, mpki_ooo=2.0)
        behind = view(1, util=0.05, mpki_ino=2.0, mpki_ooo=2.0)
        # Round robin starts at 0 but 0 is served: gate or skip to 1.
        assert arb.pick([served, behind], interval_index=0) == [1]

    def test_gates_when_everyone_served(self):
        arb = SCMPKIFairArbitrator(threshold=0.5)
        views = [view(i, util=0.9, mpki_ino=2.0, mpki_ooo=2.0)
                 for i in range(4)]
        assert arb.pick(views, interval_index=0) == []

    def test_stale_sc_overrides_met_share(self):
        arb = SCMPKIFairArbitrator(threshold=0.5)
        served_stale = view(0, util=0.9, mpki_ino=20.0, mpki_ooo=2.0)
        assert arb.pick([served_stale], interval_index=0) == [0]

    def test_advances_round_robin(self):
        arb = SCMPKIFairArbitrator(threshold=0.5)
        views = [view(i, util=0.0) for i in range(3)]
        first = arb.pick(views, interval_index=0)
        second = arb.pick(views, interval_index=1)
        assert first == [0] and second == [1]
