"""Tests for the cycle-level (detailed-tier) Mirage cluster.

The detailed cluster exists to validate the interval tier bottom-up:
the same qualitative dynamics must appear when real instructions run
through real cores with real Schedule Cache transfers.
"""


from repro.arbiter import MaxSTPArbitrator, SCMPKIArbitrator
from repro.cmp.detailed import DetailedMirageCluster
from repro.workloads import make_benchmark


def cluster(names, arbitrator=None, **kw):
    benches = [
        make_benchmark(n, seed=5, base_addr=(i + 1) << 34)
        for i, n in enumerate(names)
    ]
    return DetailedMirageCluster(
        benches, arbitrator or SCMPKIArbitrator(), **kw)


class TestDetailedCluster:
    def test_runs_and_reports(self):
        result = cluster(["hmmer", "gcc"]).run(n_slices=8)
        assert result.app_names == ["hmmer", "gcc"]
        assert all(ipc > 0 for ipc in result.ipcs)
        assert 0.0 < result.stp

    def test_schedules_actually_transfer(self):
        c = cluster(["hmmer", "bzip2"])
        result = c.run(n_slices=10)
        # At least one app visited the producer and brought real
        # schedule bytes back across the bus.
        assert result.migrations > 0
        assert result.sc_bytes_transferred > 0
        assert c.hier.bus.stats.bytes_moved > 0

    def test_memoizable_app_replays_after_producer_visit(self):
        c = cluster(["hmmer", "astar"])
        c.run(n_slices=12)
        hmmer = next(a for a in c.apps if a.name == "hmmer")
        # hmmer went to the producer at least once and its SC holds
        # schedules its consumer can replay.
        assert hmmer.ooo_slices > 0
        assert hmmer.sc.num_entries > 0
        assert hmmer.consumer.sc is hmmer.sc

    def test_sc_mpki_prefers_memoizable_apps(self):
        """The arbitrator gives the producer to the memoizable app
        rather than to astar (intrinsically unmemoizable)."""
        c = cluster(["bzip2", "astar"])
        result = c.run(n_slices=14)
        shares = dict(zip(result.app_names, result.ooo_share))
        assert shares["bzip2"] > shares["astar"]

    def test_mirage_cluster_beats_no_producer(self):
        """With the producer in play, a memoizable app runs faster
        than it would on its consumer core alone."""
        with_producer = cluster(["hmmer", "gcc"]).run(n_slices=14)
        # Same apps, but an arbitrator that never grants the OoO.
        class NeverArbitrator(SCMPKIArbitrator):
            def pick(self, views, *, interval_index, slots=1):
                return []
        without = cluster(["hmmer", "gcc"],
                          arbitrator=NeverArbitrator()).run(n_slices=14)
        idx = with_producer.app_names.index("hmmer")
        assert with_producer.ipcs[idx] > without.ipcs[idx]

    def test_max_stp_keeps_producer_busy(self):
        c = cluster(["hmmer", "gcc"], arbitrator=MaxSTPArbitrator())
        c.run(n_slices=10)
        assert sum(a.ooo_slices for a in c.apps) == 10

    def test_streams_advance_without_replay_overlap(self):
        """Slices consume the stream continuously: total instructions
        equal slices x slice size per app."""
        c = cluster(["gcc", "bzip2"], slice_instructions=4_000)
        c.run(n_slices=6)
        for app in c.apps:
            assert app.instructions == 6 * 4_000
