"""Unit tests for branch predictors and the BTB."""

import pytest

from repro.frontend import (
    BimodalPredictor,
    BranchTargetBuffer,
    GSharePredictor,
    TournamentPredictor,
)


class TestBimodal:
    def test_learns_always_taken(self):
        pred = BimodalPredictor(64)
        for _ in range(4):
            pred.access(0x1000, True)
        assert pred.predict(0x1000) is True

    def test_learns_always_not_taken(self):
        pred = BimodalPredictor(64)
        for _ in range(4):
            pred.access(0x1000, False)
        assert pred.predict(0x1000) is False

    def test_hysteresis_survives_single_flip(self):
        pred = BimodalPredictor(64)
        for _ in range(8):
            pred.access(0x1000, True)
        pred.access(0x1000, False)  # one anomaly
        assert pred.predict(0x1000) is True

    def test_mispredict_counting(self):
        pred = BimodalPredictor(64)
        for _ in range(10):
            pred.access(0x1000, True)
        assert pred.mispredicts < 10
        assert pred.lookups == 10

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            BimodalPredictor(100)

    def test_distinct_pcs_use_distinct_counters(self):
        pred = BimodalPredictor(64)
        for _ in range(4):
            pred.access(0x1000, True)
            pred.access(0x1004, False)
        assert pred.predict(0x1000) is True
        assert pred.predict(0x1004) is False

    def test_reset_stats(self):
        pred = BimodalPredictor(64)
        pred.access(0x1000, True)
        pred.reset_stats()
        assert pred.lookups == 0 and pred.mispredicts == 0


class TestGShare:
    def test_learns_global_pattern(self):
        """gshare learns an alternating T/N pattern via history."""
        pred = GSharePredictor(1024, history_bits=8)
        outcome = True
        mispredicts_late = 0
        for i in range(400):
            wrong = pred.access(0x2000, outcome)
            if i >= 300:
                mispredicts_late += wrong
            outcome = not outcome
        assert mispredicts_late <= 5

    def test_bimodal_cannot_learn_alternation(self):
        pred = BimodalPredictor(1024)
        outcome = True
        wrong_late = 0
        for i in range(400):
            wrong = pred.access(0x2000, outcome)
            if i >= 300:
                wrong_late += wrong
            outcome = not outcome
        assert wrong_late >= 40  # ~50 % of 100

    def test_misprediction_rate_property(self):
        pred = GSharePredictor(64)
        assert pred.misprediction_rate == 0.0
        pred.access(0x1000, True)
        assert 0.0 <= pred.misprediction_rate <= 1.0


class TestTournament:
    def test_beats_or_matches_components_on_mixture(self):
        """Tournament should track the better component per branch."""
        biased_pc, pattern_pc = 0x1000, 0x2000
        tour = TournamentPredictor(1024)
        bim = BimodalPredictor(1024)
        outcome = True
        for i in range(600):
            tour.access(biased_pc, True)
            bim.access(biased_pc, True)
            tour.access(pattern_pc, outcome)
            bim.access(pattern_pc, outcome)
            outcome = not outcome
        assert tour.mispredicts <= bim.mispredicts

    def test_learns_biased_branch_quickly(self):
        tour = TournamentPredictor(256)
        for _ in range(8):
            tour.access(0x3000, True)
        assert tour.predict(0x3000) is True


class TestBTB:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(64)
        assert btb.lookup(0x1000) is None
        btb.install(0x1000, 0x2000)
        assert btb.lookup(0x1000) == 0x2000

    def test_conflict_eviction(self):
        btb = BranchTargetBuffer(64)
        btb.install(0x1000, 0x2000)
        conflicting = 0x1000 + 64 * 4   # same index, different tag
        btb.install(conflicting, 0x3000)
        assert btb.lookup(0x1000) is None

    def test_miss_rate(self):
        btb = BranchTargetBuffer(64)
        btb.lookup(0x1000)
        btb.install(0x1000, 0x2000)
        btb.lookup(0x1000)
        assert btb.miss_rate == pytest.approx(0.5)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(100)
